//! Prometheus text-format exposition helpers.
//!
//! Minimal hand-rolled writers for the
//! [text-based exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! one `# HELP` / `# TYPE` header per family, `name{labels} value` sample
//! lines, and cumulative histogram rendering from a
//! [`HistogramSnapshot`] with bucket bounds
//! converted from microseconds to seconds (the Prometheus base unit).

use crate::hist::{HistogramSnapshot, BUCKETS};
use std::fmt::Write;

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline must be backslash-escaped.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a `{k1="v1",k2="v2"}` label block ("" for no labels). Values
/// are escaped; keys are trusted (they come from code, not input).
pub fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Appends a `# HELP` / `# TYPE` family header.
pub fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one `name{labels} value` sample line with an integer value.
pub fn sample_u64(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    let _ = writeln!(out, "{name}{} {value}", label_block(labels));
}

/// Appends one `name{labels} value` sample line with a float value.
pub fn sample_f64(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    let _ = writeln!(out, "{name}{} {value}", label_block(labels));
}

/// Appends the `_bucket`/`_sum`/`_count` series of one histogram with the
/// given extra labels. Bucket `le` bounds are the histogram's inclusive
/// microsecond upper bounds converted to seconds; the saturating last
/// bucket is folded into `+Inf`.
pub fn histogram(out: &mut String, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &n) in snap.buckets.iter().enumerate().take(BUCKETS - 1) {
        cumulative += n;
        let le_seconds = HistogramSnapshot::bucket_upper_bound_us(i) as f64 / 1e6;
        let mut bucket_labels: Vec<(&str, &str)> = labels.to_vec();
        let le = format!("{le_seconds}");
        bucket_labels.push(("le", &le));
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block(&bucket_labels)
        );
    }
    let count = snap.count();
    let mut inf_labels: Vec<(&str, &str)> = labels.to_vec();
    inf_labels.push(("le", "+Inf"));
    let _ = writeln!(out, "{name}_bucket{} {count}", label_block(&inf_labels));
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        label_block(labels),
        snap.sum_us as f64 / 1e6
    );
    let _ = writeln!(out, "{name}_count{} {count}", label_block(labels));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(
            label_block(&[("verb", "query"), ("x", "a\"b")]),
            "{verb=\"query\",x=\"a\\\"b\"}"
        );
        assert_eq!(label_block(&[]), "");
    }

    #[test]
    fn histogram_series_are_cumulative_and_consistent() {
        let h = Histogram::new();
        h.record_us(1); // bucket 0
        h.record_us(3); // bucket 1
        h.record_us(1_000_000); // bucket 19
        let mut out = String::new();
        family(&mut out, "t_seconds", "test", "histogram");
        histogram(&mut out, "t_seconds", &[("verb", "query")], &h.snapshot());

        let buckets: Vec<(&str, u64)> = out
            .lines()
            .filter(|l| l.starts_with("t_seconds_bucket"))
            .map(|l| {
                let (head, value) = l.rsplit_once(' ').unwrap();
                (head, value.parse::<u64>().unwrap())
            })
            .collect();
        assert_eq!(buckets.len(), BUCKETS, "31 finite bounds + one +Inf");
        // Cumulative counts never decrease and +Inf equals the count.
        let mut prev = 0;
        for &(_, v) in &buckets {
            assert!(v >= prev);
            prev = v;
        }
        assert!(buckets.last().unwrap().0.contains("le=\"+Inf\""));
        assert_eq!(buckets.last().unwrap().1, 3);
        // Bucket bounds are in seconds: 1 µs → 1e-6.
        assert!(out.contains("le=\"0.000001\""), "{out}");
        assert!(out.contains("t_seconds_sum{verb=\"query\"} 1.000004"));
        assert!(out.contains("t_seconds_count{verb=\"query\"} 3"));
    }
}
