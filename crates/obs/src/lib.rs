//! # imin-obs
//!
//! Std-only observability primitives for the IMIN engine: lock-free
//! log-bucketed latency [`Histogram`]s, per-phase query [`span`]s threaded
//! through the pooled solver path, Prometheus text-format exposition
//! helpers ([`expo`]), and a structured access log ([`AccessLog`]).
//!
//! The crate is deliberately dependency-free (the build environment has no
//! crates.io access) and allocation-light: recording a latency is one
//! atomic add into a power-of-two bucket, and phase spans accumulate into
//! a `Cell`-based thread-local that costs nothing when inactive.
//!
//! ```
//! use imin_obs::{Histogram, PhaseBreakdown, QUERY_PHASES};
//!
//! // Latency histograms: one atomic add per record, quantiles on demand.
//! let hist = Histogram::new();
//! hist.record_us(120);
//! hist.record_us(95_000);
//! assert_eq!(hist.count(), 2);
//! assert!(hist.quantile_us(0.5) >= 120);
//!
//! // Phase breakdowns: what `QUERY … trace=1` renders into `phases=…`.
//! let mut phases = PhaseBreakdown::default();
//! phases.add_us(imin_obs::Phase::Bfs, 1_500);
//! phases.add_us(imin_obs::Phase::DomTree, 900);
//! let rendered = phases.render(&QUERY_PHASES);
//! assert!(rendered.contains("bfs:1500"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod hist;
pub mod log;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use log::{trace_line, AccessLog, AccessRecord, LogFormat};
pub use span::{Phase, PhaseBreakdown, PHASE_COUNT, QUERY_PHASES, SNAPSHOT_PHASES};
