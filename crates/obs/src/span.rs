//! Per-request phase spans.
//!
//! A *span* is a thread-local accumulator of per-[`Phase`] nanosecond
//! totals, activated by [`begin`] at the start of an instrumented request
//! and drained by [`take`] at the end. Instrumented code calls
//! [`add_ns`]/[`add_us`] freely: when no span is active the calls are a
//! single `Cell` read and return immediately, so un-traced requests pay
//! essentially nothing.
//!
//! Worker threads do not touch the span directly — they accumulate plain
//! `u64` nanosecond slots in their scratch state and the calling thread
//! folds those into its own span after the join (see
//! `imin_core::pool::pooled_decrease_in`).

use std::cell::Cell;

/// Number of [`Phase`] variants; the length of a [`PhaseBreakdown`].
pub const PHASE_COUNT: usize = 13;

/// A named phase of an instrumented request.
///
/// The first ten variants decompose a `QUERY` — eight for the pooled
/// forward path (the split the paper's Algorithms 2–4 are built around)
/// plus two for the reverse-sketch path; the last three decompose a
/// snapshot `RESTORE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Cloning the resident state handles (graph + pool `Arc`s) under the
    /// read lock.
    Clone,
    /// Probing the LRU result cache.
    Probe,
    /// Drawing fresh live-edge samples (zero on the pooled path — the
    /// pool is reused, which is the point of Definition 4).
    Sample,
    /// Acquiring per-sample arena views (per-edge decode is interleaved
    /// with the BFS and attributed to [`Phase::Bfs`]).
    Decode,
    /// Multi-source BFS from the virtual root over each sample.
    Bfs,
    /// Lengauer–Tarjan dominator-tree construction per reached cascade.
    DomTree,
    /// Subtree-size credit accumulation and estimate finalisation.
    Credit,
    /// Greedy blocker selection over the merged estimates.
    Select,
    /// Reverse-sketch path: drawing θ_r reverse live-edge BFS sketches.
    RSample,
    /// Reverse-sketch path: seed-coverage lookups and per-sketch critical
    /// (blockable) set extraction.
    Cover,
    /// Snapshot restore: reading the graph and pool sections.
    SnapRead,
    /// Snapshot restore: structural validation and checksum verification.
    SnapValidate,
    /// Snapshot restore: memory-mapping the pool sections.
    SnapMap,
}

/// The query-path phases, in reporting order.
pub const QUERY_PHASES: [Phase; 10] = [
    Phase::Clone,
    Phase::Probe,
    Phase::Sample,
    Phase::Decode,
    Phase::Bfs,
    Phase::DomTree,
    Phase::Credit,
    Phase::Select,
    Phase::RSample,
    Phase::Cover,
];

/// The snapshot-restore phases, in reporting order.
pub const SNAPSHOT_PHASES: [Phase; 3] = [Phase::SnapRead, Phase::SnapValidate, Phase::SnapMap];

impl Phase {
    /// Stable lowercase name used in `METRICS` labels, trace suffixes and
    /// access-log records.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Clone => "clone",
            Phase::Probe => "probe",
            Phase::Sample => "sample",
            Phase::Decode => "decode",
            Phase::Bfs => "bfs",
            Phase::DomTree => "domtree",
            Phase::Credit => "credit",
            Phase::Select => "select",
            Phase::RSample => "rsample",
            Phase::Cover => "cover",
            Phase::SnapRead => "snap_read",
            Phase::SnapValidate => "snap_validate",
            Phase::SnapMap => "snap_map",
        }
    }

    /// The phase's index into a [`PhaseBreakdown`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Per-phase microsecond totals for one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    us: [u64; PHASE_COUNT],
}

impl PhaseBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Microseconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.us[phase.index()]
    }

    /// Overwrites the microseconds attributed to `phase`.
    pub fn set(&mut self, phase: Phase, us: u64) {
        self.us[phase.index()] = us;
    }

    /// Adds `us` microseconds to `phase`.
    pub fn add_us(&mut self, phase: Phase, us: u64) {
        self.us[phase.index()] += us;
    }

    /// Sum over all phases in microseconds.
    pub fn total_us(&self) -> u64 {
        self.us.iter().sum()
    }

    /// Renders the given phases as `name:us` pairs joined by commas, e.g.
    /// `clone:12,probe:1,sample:0,…` — the `QUERY … trace=1` suffix format.
    pub fn render(&self, phases: &[Phase]) -> String {
        let mut out = String::with_capacity(phases.len() * 12);
        for (i, &phase) in phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(phase.name());
            out.push(':');
            out.push_str(&self.get(phase).to_string());
        }
        out
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SLOTS_NS: Cell<[u64; PHASE_COUNT]> = const { Cell::new([0; PHASE_COUNT]) };
}

/// Activates the current thread's span, zeroing any previous totals.
pub fn begin() {
    ACTIVE.with(|a| a.set(true));
    SLOTS_NS.with(|s| s.set([0; PHASE_COUNT]));
}

/// Whether a span is active on the current thread.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Adds `ns` nanoseconds to `phase` on the current thread's span; no-op
/// when no span is active.
#[inline]
pub fn add_ns(phase: Phase, ns: u64) {
    if !active() {
        return;
    }
    SLOTS_NS.with(|s| {
        let mut slots = s.get();
        slots[phase.index()] += ns;
        s.set(slots);
    });
}

/// Adds `us` microseconds to `phase`; no-op when no span is active.
#[inline]
pub fn add_us(phase: Phase, us: u64) {
    add_ns(phase, us.saturating_mul(1_000));
}

/// Deactivates the current thread's span and returns its totals rounded
/// down to microseconds.
pub fn take() -> PhaseBreakdown {
    ACTIVE.with(|a| a.set(false));
    let slots = SLOTS_NS.with(|s| s.replace([0; PHASE_COUNT]));
    let mut breakdown = PhaseBreakdown::new();
    for (i, ns) in slots.into_iter().enumerate() {
        breakdown.us[i] = ns / 1_000;
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_spans_ignore_adds() {
        assert!(!active());
        add_us(Phase::Bfs, 1_000);
        begin();
        let taken = take();
        assert_eq!(taken.total_us(), 0, "pre-begin adds must not leak in");
    }

    #[test]
    fn begin_add_take_roundtrip() {
        begin();
        assert!(active());
        add_us(Phase::Clone, 12);
        add_ns(Phase::Bfs, 2_500); // 2.5 µs rounds down to 2
        add_us(Phase::Bfs, 3);
        let taken = take();
        assert!(!active());
        assert_eq!(taken.get(Phase::Clone), 12);
        assert_eq!(taken.get(Phase::Bfs), 5);
        assert_eq!(taken.total_us(), 17);
        // The span is drained: a second take is empty.
        begin();
        assert_eq!(take().total_us(), 0);
    }

    #[test]
    fn spans_are_thread_local() {
        begin();
        add_us(Phase::Credit, 7);
        let handle = std::thread::spawn(|| {
            assert!(!active(), "other threads see no active span");
            add_us(Phase::Credit, 99);
        });
        handle.join().unwrap();
        assert_eq!(take().get(Phase::Credit), 7);
    }

    #[test]
    fn breakdown_renders_the_trace_suffix_format() {
        let mut b = PhaseBreakdown::new();
        b.set(Phase::Clone, 12);
        b.add_us(Phase::Select, 4);
        assert_eq!(
            b.render(&[Phase::Clone, Phase::Probe, Phase::Select]),
            "clone:12,probe:0,select:4"
        );
        assert_eq!(b.render(&[]), "");
    }

    #[test]
    fn phase_indices_cover_the_breakdown_exactly() {
        let all: Vec<Phase> = QUERY_PHASES
            .iter()
            .chain(SNAPSHOT_PHASES.iter())
            .copied()
            .collect();
        assert_eq!(all.len(), PHASE_COUNT);
        let mut seen = [false; PHASE_COUNT];
        for phase in all {
            assert!(!seen[phase.index()], "duplicate index for {phase:?}");
            seen[phase.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
