//! Lock-free log-bucketed latency histograms.
//!
//! A [`Histogram`] is 32 power-of-two microsecond buckets of `AtomicU64`
//! plus an atomic running sum and max. Recording is wait-free (one
//! `fetch_add` into the bucket, one into the sum, one `fetch_max`);
//! quantile reads walk the cumulative bucket counts and answer with the
//! bucket's inclusive upper bound, clamped by the observed maximum — an
//! upper estimate that is exact to within a factor of two and never
//! undershoots the true quantile by more than one bucket.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 buckets per histogram. Bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds (bucket 0 additionally absorbs 0), so 32
/// buckets span `[0, 2^32) µs` ≈ 71 minutes, far beyond any single
/// request; larger values saturate into the last bucket.
pub const BUCKETS: usize = 32;

/// Inclusive upper bound of bucket `i` in microseconds.
#[inline]
fn upper_bound_us(i: usize) -> u64 {
    (2u64 << i) - 1
}

/// Bucket index for a microsecond value.
#[inline]
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// A wait-free latency histogram with log2 microsecond buckets.
///
/// All methods take `&self`; the histogram is safe to record into from any
/// number of threads concurrently. Reads (`count`, `quantile_us`,
/// [`Histogram::snapshot`]) are racy against in-flight writers in the
/// benign sense: they observe some interleaving of recent records.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation of `us` microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Relaxed);
        self.sum_us.fetch_add(us, Relaxed);
        self.max_us.fetch_max(us, Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sum of all recorded values in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Relaxed)
    }

    /// Largest recorded value in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Relaxed)
    }

    /// Upper estimate of the `q`-quantile in microseconds (`q` in
    /// `[0, 1]`). Returns 0 for an empty histogram. The answer is the
    /// inclusive upper bound of the bucket holding the rank-`⌈q·count⌉`
    /// observation, clamped by the observed maximum.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.snapshot().quantile_us(q)
    }

    /// A point-in-time copy of the bucket counts, sum and max.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            sum_us: self.sum_us.load(Relaxed),
            max_us: self.max_us.load(Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: plain integers, no atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` covers `[2^i, 2^(i+1))` µs).
    pub buckets: [u64; BUCKETS],
    /// Sum of recorded values in microseconds.
    pub sum_us: u64,
    /// Largest recorded value in microseconds.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Total number of observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive upper bound of bucket `i` in microseconds.
    pub fn bucket_upper_bound_us(i: usize) -> u64 {
        upper_bound_us(i)
    }

    /// Upper estimate of the `q`-quantile in microseconds; see
    /// [`Histogram::quantile_us`].
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                if i == BUCKETS - 1 {
                    // The saturating bucket has no meaningful upper bound.
                    return self.max_us;
                }
                return upper_bound_us(i).min(self.max_us);
            }
        }
        self.max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(upper_bound_us(0), 1);
        assert_eq!(upper_bound_us(9), 1023);
        assert_eq!(upper_bound_us(10), 2047);
    }

    #[test]
    fn quantiles_answer_bucket_upper_bounds_clamped_by_max() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        for _ in 0..99 {
            h.record_us(1_000); // bucket 9, ub 1023
        }
        h.record_us(10_000_000); // one outlier
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_us(), 99_000 + 10_000_000);
        assert_eq!(h.max_us(), 10_000_000);
        // rank ⌈0.5·100⌉ = 50 lands in the 1 ms bucket.
        assert_eq!(h.quantile_us(0.5), 1023);
        assert_eq!(h.quantile_us(0.95), 1023);
        // rank 100 is the outlier; its bucket's ub is clamped by max.
        assert_eq!(h.quantile_us(1.0), 10_000_000.min(upper_bound_us(23)));
    }

    #[test]
    fn max_clamps_single_observation_quantiles() {
        let h = Histogram::new();
        h.record_us(5);
        // bucket 2 has ub 7, but the max is 5.
        assert_eq!(h.quantile_us(0.5), 5);
        assert_eq!(h.quantile_us(0.99), 5);
        assert_eq!(h.max_us(), 5);
    }

    #[test]
    fn saturating_bucket_reports_the_observed_max() {
        let h = Histogram::new();
        h.record_us(u64::MAX / 2);
        assert_eq!(h.quantile_us(0.5), u64::MAX / 2);
    }

    #[test]
    fn snapshot_matches_the_live_histogram() {
        let h = Histogram::new();
        for v in [0, 1, 2, 100, 1_000, 100_000] {
            h.record_us(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), h.count());
        assert_eq!(s.sum_us, h.sum_us());
        assert_eq!(s.max_us, h.max_us());
        assert_eq!(s.quantile_us(0.9), h.quantile_us(0.9));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record_us(t * 1_000 + i % 977);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), threads * per_thread);
    }
}
