//! Structured per-request access logging.
//!
//! An [`AccessLog`] writes one line per request to a shared sink (stderr
//! in `imin-serve`, any `Write + Send` in tests) in either human `text`
//! or machine `json` format. Records carry the verb, outcome, wall-clock
//! latency, cache/coalesce/reject disposition and trace id; requests at
//! or above the configured slow threshold additionally log their full
//! per-phase breakdown.

use crate::span::{PhaseBreakdown, QUERY_PHASES, SNAPSHOT_PHASES};
use std::fmt::Write as _;
use std::io::Write;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Output format of the access log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// One human-readable `key=value` line per request.
    Text,
    /// One JSON object per line (JSON Lines).
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    /// Parses `"text"` / `"json"` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!(
                "unknown log format '{other}' (expected text or json)"
            )),
        }
    }
}

/// One request's worth of access-log fields.
#[derive(Debug, Clone, Copy)]
pub struct AccessRecord<'a> {
    /// Uppercased protocol verb (`"QUERY"`, `"POOL"`, …; `"-"` if empty).
    pub verb: &'a str,
    /// Whether the reply line started with `OK`.
    pub ok: bool,
    /// Wall-clock latency of the whole request in microseconds.
    pub latency_us: u64,
    /// Outcome disposition (`"computed"`, `"cache_hit"`, `"coalesced"`,
    /// `"rejected"`, `"error"`, `"restore"`, or `"-"` for verbs without
    /// one).
    pub disposition: &'a str,
    /// Trace id assigned by the engine (0 when none was assigned).
    pub trace_id: u64,
    /// Per-phase breakdown, when the engine produced one.
    pub phases: Option<&'a PhaseBreakdown>,
}

/// A thread-safe structured access log.
pub struct AccessLog {
    format: LogFormat,
    slow_us: u64,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog")
            .field("format", &self.format)
            .field("slow_us", &self.slow_us)
            .finish_non_exhaustive()
    }
}

impl AccessLog {
    /// An access log writing to the process's stderr, keeping stdout free
    /// for protocol output. `slow_ms` is the slow-query threshold: at or
    /// above it, the phase breakdown is included.
    pub fn to_stderr(format: LogFormat, slow_ms: u64) -> Self {
        Self::to_writer(format, slow_ms, Box::new(std::io::stderr()))
    }

    /// An access log writing to an arbitrary sink (used by tests).
    pub fn to_writer(format: LogFormat, slow_ms: u64, sink: Box<dyn Write + Send>) -> Self {
        AccessLog {
            format,
            slow_us: slow_ms.saturating_mul(1_000),
            sink: Mutex::new(sink),
        }
    }

    /// The configured output format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Writes one record as one line. Phases are included only when
    /// present *and* the request is at or above the slow threshold.
    pub fn record(&self, record: &AccessRecord<'_>) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let slow = record.latency_us >= self.slow_us;
        let phases = record.phases.filter(|_| slow);
        let line = match self.format {
            LogFormat::Text => render_text(ts_ms, record, phases),
            LogFormat::Json => render_json(ts_ms, record, phases),
        };
        let mut sink = self.sink.lock().unwrap_or_else(|poisoned| {
            self.sink.clear_poison();
            poisoned.into_inner()
        });
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }
}

fn phase_pairs(phases: &PhaseBreakdown) -> String {
    let all: Vec<_> = QUERY_PHASES
        .iter()
        .chain(SNAPSHOT_PHASES.iter())
        .copied()
        .filter(|&p| phases.get(p) > 0)
        .collect();
    phases.render(&all)
}

fn render_text(ts_ms: u64, record: &AccessRecord<'_>, phases: Option<&PhaseBreakdown>) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "ts_ms={ts_ms} verb={} ok={} latency_us={} disposition={} trace_id={}",
        record.verb, record.ok, record.latency_us, record.disposition, record.trace_id
    );
    if let Some(phases) = phases {
        let _ = write!(line, " phases={}", phase_pairs(phases));
    }
    line
}

/// Escapes a string for inclusion inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(ts_ms: u64, record: &AccessRecord<'_>, phases: Option<&PhaseBreakdown>) -> String {
    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        "{{\"ts_ms\":{ts_ms},\"verb\":\"{}\",\"ok\":{},\"latency_us\":{},\"disposition\":\"{}\",\"trace_id\":{}",
        json_escape(record.verb),
        record.ok,
        record.latency_us,
        json_escape(record.disposition),
        record.trace_id
    );
    if let Some(phases) = phases {
        line.push_str(",\"phases\":{");
        let mut first = true;
        for phase in QUERY_PHASES.iter().chain(SNAPSHOT_PHASES.iter()) {
            let us = phases.get(*phase);
            if us == 0 {
                continue;
            }
            if !first {
                line.push(',');
            }
            first = false;
            let _ = write!(line, "\"{}\":{us}", phase.name());
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// Prints a `component trace: message` line to stderr — the structured
/// replacement for ad-hoc `IMIN_SNAPSHOT_TRACE` prints, kept greppable
/// under the historical prefix format.
pub fn trace_line(component: &str, message: &str) {
    eprintln!("{component} trace: {message}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;
    use std::sync::Arc;

    /// A `Write + Send` sink the test can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn breakdown() -> PhaseBreakdown {
        let mut b = PhaseBreakdown::new();
        b.set(Phase::Bfs, 800);
        b.set(Phase::DomTree, 400);
        b
    }

    #[test]
    fn text_records_have_the_documented_fields() {
        let buf = SharedBuf::default();
        let log = AccessLog::to_writer(LogFormat::Text, 1, Box::new(buf.clone()));
        let phases = breakdown();
        log.record(&AccessRecord {
            verb: "QUERY",
            ok: true,
            latency_us: 1_500,
            disposition: "computed",
            trace_id: 42,
            phases: Some(&phases),
        });
        let line = buf.contents();
        assert!(line.contains("verb=QUERY"), "{line}");
        assert!(line.contains("ok=true"), "{line}");
        assert!(line.contains("latency_us=1500"), "{line}");
        assert!(line.contains("disposition=computed"), "{line}");
        assert!(line.contains("trace_id=42"), "{line}");
        assert!(line.contains("phases=bfs:800,domtree:400"), "{line}");
        assert!(line.ends_with('\n'));
    }

    #[test]
    fn json_records_are_one_object_per_line() {
        let buf = SharedBuf::default();
        let log = AccessLog::to_writer(LogFormat::Json, 1, Box::new(buf.clone()));
        let phases = breakdown();
        log.record(&AccessRecord {
            verb: "QUERY",
            ok: true,
            latency_us: 1_500,
            disposition: "computed",
            trace_id: 7,
            phases: Some(&phases),
        });
        log.record(&AccessRecord {
            verb: "BAD\"VERB",
            ok: false,
            latency_us: 3,
            disposition: "-",
            trace_id: 0,
            phases: None,
        });
        let contents = buf.contents();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"verb\":\"QUERY\""), "{}", lines[0]);
        assert!(
            lines[0].contains("\"phases\":{\"bfs\":800,\"domtree\":400}"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"verb\":\"BAD\\\"VERB\""),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains("\"ok\":false"), "{}", lines[1]);
        assert!(!lines[1].contains("phases"), "{}", lines[1]);
    }

    #[test]
    fn fast_requests_omit_phases_below_the_slow_threshold() {
        let buf = SharedBuf::default();
        let log = AccessLog::to_writer(LogFormat::Text, 10, Box::new(buf.clone()));
        let phases = breakdown();
        log.record(&AccessRecord {
            verb: "QUERY",
            ok: true,
            latency_us: 9_999, // just under 10 ms
            disposition: "computed",
            trace_id: 1,
            phases: Some(&phases),
        });
        log.record(&AccessRecord {
            verb: "QUERY",
            ok: true,
            latency_us: 10_000, // exactly at the threshold
            disposition: "computed",
            trace_id: 2,
            phases: Some(&phases),
        });
        let contents = buf.contents();
        let lines: Vec<&str> = contents.lines().collect();
        assert!(!lines[0].contains("phases="), "{}", lines[0]);
        assert!(lines[1].contains("phases="), "{}", lines[1]);
    }
}
