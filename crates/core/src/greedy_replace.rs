//! The GreedyReplace algorithm (Algorithm 4) — the paper's most effective
//! heuristic.
//!
//! Motivation (§V-D, Example 3): with an unlimited budget the optimal
//! blocker set is exactly the out-neighbourhood of the seed, yet a plain
//! greedy can spend its budget on "deep" vertices and miss that plateau.
//! GreedyReplace therefore proceeds in two phases:
//!
//! 1. **Out-neighbour phase** — greedily pick blockers among the seed's
//!    out-neighbours only (up to `min(d_out(s), b)` of them), using the
//!    dominator-tree estimator of Algorithm 2 to rank them.
//! 2. **Replacement phase** — revisit the chosen blockers in reverse
//!    insertion order; temporarily un-block each one and ask the estimator
//!    for the best blocker among *all* candidates. If the best vertex is the
//!    one just removed, the procedure terminates early; otherwise the better
//!    vertex replaces it.
//!
//! The resulting spread is never worse than blocking out-neighbours only,
//! and the replacement step recovers the "deep blocker" wins of plain greedy
//! when the budget is small — the best of both behaviours (Table III,
//! Table VII).
//!
//! The preferred entry point is the [`GreedyReplace`] solver behind a
//! [`crate::ContainmentRequest`]: one call shape for any seed-set size
//! (phase 1 ranks the out-neighbours of *every* seed) and either
//! evaluation backend. The free functions below are thin shims kept for
//! source compatibility and are parity-tested byte-identical to the
//! solver.

use crate::decrease::{decrease_es_multi_in, DecreaseConfig, DecreaseWorkspace};
use crate::pool::{pooled_greedy_replace_in, with_pool_workspace, PoolWorkspace, SamplePool};
use crate::request::{shim_request_from_config, ContainmentRequest, EvalBackend};
use crate::sampler::{IcLiveEdgeSampler, SpreadSampler};
use crate::solver::{AlgorithmKind, BlockerSolver};
use crate::types::{AlgorithmConfig, BlockerSelection, SelectionStats};
use crate::Result;
use imin_graph::{DiGraph, VertexId};
use std::time::Instant;

/// Algorithm 4 behind the unified request API (`GR` in the figures).
///
/// Runs with [`GreedyReplaceOptions::default`] (fill-to-budget enabled,
/// matching the pooled implementation). `Fresh` requests redraw θ samples
/// per round; `Pooled` requests re-root a resident pool, with answers
/// bit-identical at any thread count (see [`crate::pool`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyReplace;

impl BlockerSolver for GreedyReplace {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::GreedyReplace
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        if !matches!(request.intervention(), crate::Intervention::BlockVertices) {
            // Edge blocking and prebunking run on the pooled dominator-tree
            // machinery, with the GreedyReplace flavour (seed-first edge
            // rounds, prebunk replacement sweep).
            return crate::intervene::solve_pooled_intervention(self.kind().name(), request, true);
        }
        match *request.backend() {
            EvalBackend::Fresh {
                theta,
                seed,
                threads,
            } => fresh_greedy_replace_with(
                &IcLiveEdgeSampler,
                graph,
                request,
                theta,
                seed,
                threads,
                GreedyReplaceOptions::default(),
            ),
            EvalBackend::Pooled { pool, threads } => with_pool_workspace(|workspace| {
                pooled_greedy_replace_in(
                    pool,
                    graph,
                    request.seeds(),
                    request.forbidden().mask(),
                    request.budget(),
                    threads,
                    workspace,
                )
            }),
            ref other => Err(crate::IminError::BackendUnsupported {
                algorithm: self.kind().name(),
                backend: other.label(),
            }),
        }
    }
}

/// Runs GreedyReplace against a **borrowed resident sample pool** instead
/// of self-sampling: the out-neighbour, fill and replacement phases all
/// price candidates by re-rooting the same θ realisations. The graph is
/// still needed to enumerate the seeds' out-neighbours for phase 1.
/// Results are bit-identical at any `threads` value (see [`crate::pool`]).
///
/// The self-sampling [`greedy_replace`] / [`greedy_replace_with`] below
/// keep their historical per-round-redraw behaviour for one-shot callers.
///
/// # Errors
/// Returns an error on a zero budget, an invalid seed set, or a
/// wrong-length forbidden mask.
pub fn greedy_replace_with_pool(
    pool: &SamplePool,
    graph: &DiGraph,
    seeds: &[VertexId],
    forbidden: &[bool],
    budget: usize,
    threads: usize,
) -> Result<BlockerSelection> {
    pooled_greedy_replace_in(
        pool,
        graph,
        seeds,
        forbidden,
        budget,
        threads,
        &mut PoolWorkspace::new(),
    )
}

/// Options specific to GreedyReplace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GreedyReplaceOptions {
    /// When the seed has fewer than `b` out-neighbours, Algorithm 4 as
    /// written returns fewer than `b` blockers. With this flag enabled (the
    /// default) the remaining budget is filled with AdvancedGreedy-style
    /// picks over all candidates before the replacement phase, so the full
    /// budget is always used.
    pub fill_to_budget: bool,
}

impl Default for GreedyReplaceOptions {
    fn default() -> Self {
        GreedyReplaceOptions {
            fill_to_budget: true,
        }
    }
}

/// Runs GreedyReplace with the standard IC live-edge sampler and default
/// options.
pub fn greedy_replace(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<BlockerSelection> {
    greedy_replace_with(
        &IcLiveEdgeSampler,
        graph,
        source,
        forbidden,
        budget,
        config,
        GreedyReplaceOptions::default(),
    )
}

/// Runs GreedyReplace with an arbitrary sample source and explicit options.
///
/// # Errors
/// Returns an error on a zero budget, zero θ, an invalid source, or a
/// wrong-length forbidden mask.
#[allow(clippy::too_many_arguments)]
pub fn greedy_replace_with<S: SpreadSampler + ?Sized>(
    sampler: &S,
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
    options: GreedyReplaceOptions,
) -> Result<BlockerSelection> {
    let request = shim_request_from_config(graph, &[source], forbidden, budget, config)?;
    fresh_greedy_replace_with(
        sampler,
        graph,
        &request,
        config.theta,
        config.seed,
        config.threads,
        options,
    )
}

/// The `Fresh`-backend phases of Algorithm 4, generic over the sample
/// source and the seed-set size: phase 1 ranks the out-neighbours of every
/// seed, every estimator round prices candidates with
/// [`decrease_es_multi_in`] (historical single-source path for one seed,
/// virtual-root re-rooting for several).
#[allow(clippy::too_many_arguments)]
pub(crate) fn fresh_greedy_replace_with<S: SpreadSampler + ?Sized>(
    sampler: &S,
    graph: &DiGraph,
    request: &ContainmentRequest<'_>,
    theta: usize,
    seed: u64,
    threads: usize,
    options: GreedyReplaceOptions,
) -> Result<BlockerSelection> {
    let start = Instant::now();
    let n = graph.num_vertices();
    let budget = request.budget();
    let mut blocked = vec![false; n];
    let mut blockers: Vec<VertexId> = Vec::with_capacity(budget);
    let mut stats = SelectionStats::default();
    let mut estimated_spread: Option<f64> = None;
    // Shared across the out-neighbour, fill and replacement phases: all
    // estimator rounds of the whole run draw from the same per-thread
    // sample arenas and dominator-tree scratch.
    let mut workspace = DecreaseWorkspace::new();
    let mut round_seed = seed;
    let mut next_cfg = |stats: &mut SelectionStats| {
        round_seed = round_seed.wrapping_add(0x9E3779B9);
        stats.rounds += 1;
        DecreaseConfig {
            theta,
            threads,
            seed: round_seed,
        }
    };
    let eligible = |v: VertexId, blocked: &[bool]| !blocked[v.index()] && request.is_candidate(v);

    // ---- Phase 1: pick blockers among the seeds' out-neighbours -----------
    let mut candidate_pool: Vec<VertexId> = Vec::new();
    for &s in request.seeds() {
        candidate_pool.extend(
            graph
                .out_edges(s)
                .map(|(v, _)| v)
                .filter(|&v| eligible(v, &blocked)),
        );
    }
    candidate_pool.sort_unstable();
    candidate_pool.dedup();

    let out_rounds = candidate_pool.len().min(budget);
    for _ in 0..out_rounds {
        let cfg = next_cfg(&mut stats);
        let estimate = decrease_es_multi_in(
            sampler,
            graph,
            request.seeds(),
            &blocked,
            &cfg,
            &mut workspace,
        )?;
        stats.samples_drawn += estimate.samples;
        let chosen =
            estimate.best_candidate(|v| candidate_pool.contains(&v) && eligible(v, &blocked));
        let Some(chosen) = chosen else { break };
        estimated_spread = Some(estimate.average_reached - estimate.delta[chosen.index()]);
        blocked[chosen.index()] = true;
        blockers.push(chosen);
        candidate_pool.retain(|&v| v != chosen);
    }

    // ---- Optional fill: spend any remaining budget on global greedy picks --
    if options.fill_to_budget {
        while blockers.len() < budget {
            let cfg = next_cfg(&mut stats);
            let estimate = decrease_es_multi_in(
                sampler,
                graph,
                request.seeds(),
                &blocked,
                &cfg,
                &mut workspace,
            )?;
            stats.samples_drawn += estimate.samples;
            let chosen = estimate.best_candidate(|v| eligible(v, &blocked));
            let Some(chosen) = chosen else { break };
            estimated_spread = Some(estimate.average_reached - estimate.delta[chosen.index()]);
            blocked[chosen.index()] = true;
            blockers.push(chosen);
        }
    }

    // ---- Phase 2: replacement in reverse insertion order -------------------
    for idx in (0..blockers.len()).rev() {
        let u = blockers[idx];
        // Temporarily remove u from the blocker set.
        blocked[u.index()] = false;
        let cfg = next_cfg(&mut stats);
        let estimate = decrease_es_multi_in(
            sampler,
            graph,
            request.seeds(),
            &blocked,
            &cfg,
            &mut workspace,
        )?;
        stats.samples_drawn += estimate.samples;
        let chosen = estimate.best_candidate(|v| eligible(v, &blocked));
        let Some(chosen) = chosen else {
            // No candidate at all — put u back and stop replacing.
            blocked[u.index()] = true;
            break;
        };
        estimated_spread = Some(estimate.average_reached - estimate.delta[chosen.index()]);
        blocked[chosen.index()] = true;
        blockers[idx] = chosen;
        if chosen == u {
            // Early termination: the vertex under replacement is already the
            // best choice (Algorithm 4, lines 19–20).
            break;
        }
    }

    stats.elapsed = start.elapsed();
    Ok(BlockerSelection {
        blockers,
        estimated_spread,
        blocked_edges: Vec::new(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advanced_greedy::advanced_greedy;
    use crate::IminError;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn config() -> AlgorithmConfig {
        AlgorithmConfig::fast_for_tests().with_theta(400)
    }

    /// The "deep blocker" topology of Example 3: the seed has two
    /// out-neighbours that funnel into one hub which fans out widely.
    /// For b = 1 the hub is the right blocker; for b = 2 the two
    /// out-neighbours are.
    fn funnel_graph() -> DiGraph {
        let mut edges = vec![
            (vid(0), vid(1), 1.0),
            (vid(0), vid(2), 1.0),
            (vid(1), vid(3), 1.0),
            (vid(2), vid(3), 1.0),
        ];
        for i in 0..5 {
            edges.push((vid(3), vid(4 + i), 1.0));
        }
        DiGraph::from_edges(9, edges).unwrap()
    }

    #[test]
    fn budget_one_replaces_out_neighbor_with_the_hub() {
        let g = funnel_graph();
        let sel = greedy_replace(&g, vid(0), &[false; 9], 1, &config()).unwrap();
        assert_eq!(
            sel.blockers,
            vec![vid(3)],
            "the hub must replace the out-neighbour"
        );
        // Spread left: seed + its two out-neighbours.
        assert!((sel.estimated_spread.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pool_backed_entry_point_agrees_on_the_funnel() {
        let g = funnel_graph();
        let pool = SamplePool::build(&g, 64, 9).unwrap();
        let pooled = greedy_replace_with_pool(&pool, &g, &[vid(0)], &[false; 9], 1, 1).unwrap();
        let classic = greedy_replace(&g, vid(0), &[false; 9], 1, &config()).unwrap();
        assert_eq!(pooled.blockers, classic.blockers);
        assert_eq!(pooled.blockers, vec![vid(3)]);
    }

    #[test]
    fn budget_two_keeps_both_out_neighbors() {
        let g = funnel_graph();
        let sel = greedy_replace(&g, vid(0), &[false; 9], 2, &config()).unwrap();
        let mut chosen = sel.blockers.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![vid(1), vid(2)]);
        assert!((sel.estimated_spread.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn never_worse_than_advanced_greedy_on_funnel() {
        let g = funnel_graph();
        for b in 1..=3 {
            let gr = greedy_replace(&g, vid(0), &[false; 9], b, &config()).unwrap();
            let ag = advanced_greedy(&g, vid(0), &[false; 9], b, &config()).unwrap();
            assert!(
                gr.estimated_spread.unwrap() <= ag.estimated_spread.unwrap() + 1e-9,
                "b={b}: GR {} must be ≤ AG {}",
                gr.estimated_spread.unwrap(),
                ag.estimated_spread.unwrap()
            );
        }
    }

    #[test]
    fn fill_to_budget_uses_whole_budget_when_out_degree_is_small() {
        // Seed has a single out-neighbour but the budget is 3.
        let g = DiGraph::from_edges(
            5,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(2), vid(3), 1.0),
                (vid(3), vid(4), 1.0),
            ],
        )
        .unwrap();
        let sel = greedy_replace(&g, vid(0), &[false; 5], 3, &config()).unwrap();
        assert_eq!(sel.len(), 3);
        // Pure Algorithm 4 (no fill) stops at one blocker.
        let strict = greedy_replace_with(
            &IcLiveEdgeSampler,
            &g,
            vid(0),
            &[false; 5],
            3,
            &config(),
            GreedyReplaceOptions {
                fill_to_budget: false,
            },
        )
        .unwrap();
        assert_eq!(strict.len(), 1);
        assert_eq!(strict.blockers, vec![vid(1)]);
    }

    #[test]
    fn forbidden_out_neighbors_are_skipped() {
        let g = funnel_graph();
        let mut forbidden = vec![false; 9];
        forbidden[1] = true;
        forbidden[2] = true;
        let sel = greedy_replace(&g, vid(0), &forbidden, 2, &config()).unwrap();
        assert!(!sel.blockers.contains(&vid(1)));
        assert!(!sel.blockers.contains(&vid(2)));
        assert!(sel.blockers.contains(&vid(3)));
    }

    #[test]
    fn source_with_no_out_neighbors_still_works() {
        // Disconnected seed: nothing to block is useful, but the call
        // must not fail; with fill enabled it may pick harmless vertices.
        let g = DiGraph::from_edges(3, vec![(vid(1), vid(2), 1.0)]).unwrap();
        let sel = greedy_replace(&g, vid(0), &[false; 3], 2, &config()).unwrap();
        assert!(sel.len() <= 2);
        assert!((sel.estimated_spread.unwrap_or(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = funnel_graph();
        assert!(matches!(
            greedy_replace(&g, vid(0), &[false; 9], 0, &config()),
            Err(IminError::ZeroBudget)
        ));
        assert!(greedy_replace(&g, vid(20), &[false; 9], 1, &config()).is_err());
    }
}
