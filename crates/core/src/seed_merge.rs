//! Multi-seed to single-seed reduction ("From Multiple Seeds to One Seed",
//! §V of the paper).
//!
//! The estimation machinery (Algorithm 2) is presented for a single seed
//! vertex `s`. When the problem has several seeds, a *unified seed* `s'` is
//! added: for every vertex `u` with `h` seed in-neighbours carrying
//! probabilities `p_1..p_h`, the seed edges are removed and replaced by one
//! edge `(s', u)` with probability `1 - Π(1 - p_i)`. Because an active
//! vertex only gets a single chance to activate each out-neighbour, the
//! reduction leaves the spread distribution over non-seed vertices
//! unchanged, and the optimal blocker set is the same as for the original
//! problem.
//!
//! Bookkeeping: the merged graph counts `s'` as one active vertex where the
//! original problem counts `|S|` active seeds, so
//! `E_original = E_merged + |S| - 1`. [`MergedSeeds::to_original_spread`]
//! applies that offset.

use crate::{IminError, Result};
use imin_graph::{DiGraph, GraphBuilder, VertexId};

/// The result of merging a seed set into a single unified seed.
#[derive(Clone, Debug)]
pub struct MergedSeeds {
    /// The merged graph: the original vertices `0..n` plus the unified seed
    /// as vertex `n`. Original seed vertices keep their ids but lose all
    /// incident edges, so they are unreachable from the unified seed and
    /// contribute nothing to the merged spread.
    pub graph: DiGraph,
    /// The unified seed vertex `s'` (always the last vertex).
    pub super_seed: VertexId,
    /// The original seed set (sorted, deduplicated).
    pub original_seeds: Vec<VertexId>,
    /// Number of vertices of the original graph.
    pub original_num_vertices: usize,
}

impl MergedSeeds {
    /// Converts a spread measured on the merged graph (which counts the
    /// unified seed as one active vertex) into the original-graph spread
    /// (which counts every original seed).
    pub fn to_original_spread(&self, merged_spread: f64) -> f64 {
        merged_spread + self.original_seeds.len() as f64 - 1.0
    }

    /// Returns `true` if `v` is one of the original seeds.
    pub fn is_original_seed(&self, v: VertexId) -> bool {
        self.original_seeds.binary_search(&v).is_ok()
    }

    /// Returns `true` if `v` may be blocked: it must be an original-graph
    /// vertex that is not a seed (the problem requires `B ⊆ V \ S`).
    pub fn is_valid_blocker(&self, v: VertexId) -> bool {
        v.index() < self.original_num_vertices && !self.is_original_seed(v)
    }

    /// A blocked mask over the merged graph built from original-graph
    /// blockers.
    ///
    /// # Errors
    /// Returns an error if any blocker is a seed or out of range.
    pub fn blocker_mask(&self, blockers: &[VertexId]) -> Result<Vec<bool>> {
        let mut mask = vec![false; self.graph.num_vertices()];
        for &b in blockers {
            if b.index() >= self.original_num_vertices {
                return Err(IminError::InvalidBlocker {
                    vertex: b.index(),
                    reason: "vertex does not exist in the original graph",
                });
            }
            if self.is_original_seed(b) {
                return Err(IminError::InvalidBlocker {
                    vertex: b.index(),
                    reason: "seed vertices cannot be blocked (B ⊆ V \\ S)",
                });
            }
            mask[b.index()] = true;
        }
        Ok(mask)
    }
}

/// Performs the unified-seed reduction.
///
/// # Errors
/// Returns an error if `seeds` is empty or contains an out-of-range vertex.
pub fn merge_seeds(graph: &DiGraph, seeds: &[VertexId]) -> Result<MergedSeeds> {
    if seeds.is_empty() {
        return Err(IminError::EmptySeedSet);
    }
    let n = graph.num_vertices();
    for &s in seeds {
        if s.index() >= n {
            return Err(IminError::SeedOutOfRange {
                vertex: s.index(),
                num_vertices: n,
            });
        }
    }
    let mut original_seeds: Vec<VertexId> = seeds.to_vec();
    original_seeds.sort_unstable();
    original_seeds.dedup();

    let mut is_seed = vec![false; n];
    for &s in &original_seeds {
        is_seed[s.index()] = true;
    }

    let super_seed = VertexId::new(n);
    let mut builder = GraphBuilder::with_capacity(n + 1, graph.num_edges() + 16);

    // Copy every edge that neither starts nor ends at a seed.
    for e in graph.edges() {
        if is_seed[e.source.index()] || is_seed[e.target.index()] {
            continue;
        }
        builder.add_edge(e.source, e.target, e.probability)?;
    }

    // For every non-seed vertex u with at least one seed in-neighbour, add
    // (s', u) with the noisy-or of the seed-edge probabilities. Duplicate
    // insertions through the builder would also noisy-or correctly, but the
    // explicit combination keeps the construction obvious.
    for u in graph.vertices() {
        if is_seed[u.index()] {
            continue;
        }
        let mut miss = 1.0f64;
        let mut any = false;
        for (src, p) in graph.in_edges(u) {
            if is_seed[src.index()] {
                any = true;
                miss *= 1.0 - p;
            }
        }
        if any {
            builder.add_edge(super_seed, u, 1.0 - miss)?;
        }
    }

    Ok(MergedSeeds {
        graph: builder.build(),
        super_seed,
        original_seeds,
        original_num_vertices: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_diffusion::exact::{exact_expected_spread, ExactSpreadConfig};

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn small_graph() -> DiGraph {
        // Seeds 0 and 1 both point at 2; 2 -> 3; 1 -> 3 directly.
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(2), 0.5),
                (vid(1), vid(2), 0.5),
                (vid(2), vid(3), 0.5),
                (vid(1), vid(3), 0.25),
            ],
        )
        .unwrap()
    }

    #[test]
    fn merged_probabilities_follow_noisy_or() {
        let g = small_graph();
        let merged = merge_seeds(&g, &[vid(0), vid(1)]).unwrap();
        assert_eq!(merged.graph.num_vertices(), 5);
        assert_eq!(merged.super_seed, vid(4));
        // (s', 2) combines 0.5 and 0.5 into 0.75.
        assert!((merged.graph.edge_probability(vid(4), vid(2)).unwrap() - 0.75).abs() < 1e-12);
        // (s', 3) carries only the single seed edge 0.25.
        assert_eq!(merged.graph.edge_probability(vid(4), vid(3)), Some(0.25));
        // Non-seed edge survives unchanged.
        assert_eq!(merged.graph.edge_probability(vid(2), vid(3)), Some(0.5));
        // Seeds lost their edges entirely.
        assert_eq!(merged.graph.out_degree(vid(0)), 0);
        assert_eq!(merged.graph.out_degree(vid(1)), 0);
        assert_eq!(merged.graph.in_degree(vid(0)), 0);
    }

    #[test]
    fn merged_spread_matches_original_spread_exactly() {
        let g = small_graph();
        let seeds = [vid(0), vid(1)];
        let original =
            exact_expected_spread(&g, &seeds, None, ExactSpreadConfig::default()).unwrap();
        let merged = merge_seeds(&g, &seeds).unwrap();
        let merged_spread = exact_expected_spread(
            &merged.graph,
            &[merged.super_seed],
            None,
            ExactSpreadConfig::default(),
        )
        .unwrap();
        assert!(
            (merged.to_original_spread(merged_spread) - original).abs() < 1e-9,
            "merged {merged_spread} vs original {original}"
        );
    }

    #[test]
    fn merged_spread_matches_under_blocking_too() {
        let g = small_graph();
        let seeds = [vid(0), vid(1)];
        let merged = merge_seeds(&g, &seeds).unwrap();
        // Block vertex 2 in both formulations.
        let mut orig_mask = vec![false; 4];
        orig_mask[2] = true;
        let original =
            exact_expected_spread(&g, &seeds, Some(&orig_mask), ExactSpreadConfig::default())
                .unwrap();
        let merged_mask = merged.blocker_mask(&[vid(2)]).unwrap();
        let merged_spread = exact_expected_spread(
            &merged.graph,
            &[merged.super_seed],
            Some(&merged_mask),
            ExactSpreadConfig::default(),
        )
        .unwrap();
        assert!((merged.to_original_spread(merged_spread) - original).abs() < 1e-9);
    }

    #[test]
    fn single_seed_merge_is_mostly_identity() {
        let g = small_graph();
        let merged = merge_seeds(&g, &[vid(0)]).unwrap();
        // With one seed the offset is zero.
        assert_eq!(merged.to_original_spread(2.5), 2.5);
        // Edges not touching the seed are unchanged; the seed's out-edges are
        // rewired through s'.
        assert_eq!(merged.graph.edge_probability(vid(4), vid(2)), Some(0.5));
        assert_eq!(merged.graph.edge_probability(vid(1), vid(3)), Some(0.25));
    }

    #[test]
    fn validity_checks_and_masks() {
        let g = small_graph();
        let merged = merge_seeds(&g, &[vid(0), vid(1), vid(0)]).unwrap();
        assert_eq!(merged.original_seeds, vec![vid(0), vid(1)]);
        assert!(merged.is_original_seed(vid(1)));
        assert!(!merged.is_original_seed(vid(2)));
        assert!(merged.is_valid_blocker(vid(2)));
        assert!(!merged.is_valid_blocker(vid(0)));
        assert!(
            !merged.is_valid_blocker(vid(4)),
            "the unified seed is not blockable"
        );
        assert!(merged.blocker_mask(&[vid(2), vid(3)]).is_ok());
        assert!(merged.blocker_mask(&[vid(0)]).is_err());
        assert!(merged.blocker_mask(&[vid(4)]).is_err());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let g = small_graph();
        assert!(matches!(merge_seeds(&g, &[]), Err(IminError::EmptySeedSet)));
        assert!(matches!(
            merge_seeds(&g, &[vid(9)]),
            Err(IminError::SeedOutOfRange { .. })
        ));
    }

    #[test]
    fn seed_to_seed_edges_are_dropped() {
        let g = DiGraph::from_edges(3, vec![(vid(0), vid(1), 1.0), (vid(1), vid(2), 1.0)]).unwrap();
        let merged = merge_seeds(&g, &[vid(0), vid(1)]).unwrap();
        // The edge 0 -> 1 (seed to seed) disappears; s' -> 2 carries 1.0.
        assert_eq!(merged.graph.edge_probability(vid(3), vid(2)), Some(1.0));
        assert_eq!(merged.graph.num_edges(), 1);
    }
}
