//! Versioned binary persistence of a graph plus its resident sample pool.
//!
//! Building a [`SamplePool`] is by far the most expensive step of the
//! pooled estimator — tens of seconds at production θ — yet the pool
//! depends only on `(graph, pool_seed, θ)`. A *snapshot* captures both the
//! graph and the pool in one checksummed file, so a restarted engine
//! warm-starts by bulk-loading the arenas instead of resampling, and a CI
//! run restores a cached pool instead of rebuilding it.
//!
//! # File format (version 1)
//!
//! All integers are **little-endian**. The file is a fixed 64-byte header,
//! a checksummed payload, and an 8-byte checksum trailer:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `b"IMINSNAP"` |
//! | 8      | 4    | format version (`u32`, currently [`FORMAT_VERSION`]) |
//! | 12     | 4    | reserved, must be 0 |
//! | 16     | 8    | graph fingerprint ([`DiGraph::fingerprint`]) |
//! | 24     | 8    | pool seed (`u64`) |
//! | 32     | 8    | θ — number of realisations (`u64`, ≥ 1) |
//! | 40     | 8    | number of vertices `n` (`u64`) |
//! | 48     | 8    | number of edges `m` (`u64`) |
//! | 56     | 8    | graph-label length in bytes (`u64`) |
//!
//! The payload follows immediately:
//!
//! 1. the graph label (UTF-8, as many bytes as the header announced),
//! 2. the graph section of [`imin_graph::binfmt`] (out-CSR arenas as raw
//!    `u32`/`u64` slices),
//! 3. the pool section: a table of θ per-sample live-edge counts
//!    (`u64` each), then for every sample its CSR arenas verbatim —
//!    `offsets` as `(n + 1) × u32` followed by `targets` as `count × u32`.
//!
//! The trailer is a 64-bit checksum of the payload bytes (a 4-lane
//! multiply–rotate word hash, boundary-independent and fast enough to keep
//! restores bandwidth-bound). The header itself is validated field by
//! field: bad magic, unsupported version, impossible sizes and a file
//! shorter than the header demands all surface as typed
//! [`SnapshotError`]s, and the fingerprint recomputed from the
//! deserialised graph must match the header — a snapshot can never be
//! silently paired with the wrong graph.
//!
//! Every reader path is hardened: corrupt lengths are cross-checked
//! against the exact file size *before* any allocation, so truncated,
//! oversized or bit-flipped files produce [`SnapshotError`]s, never panics
//! or absurd allocations.
//!
//! Set the `IMIN_SNAPSHOT_TRACE` environment variable to have
//! [`load_snapshot`] print a phase breakdown (read+checksum versus
//! convert+allocate) to stderr — the quickest way to tell a slow disk from
//! slow memory provisioning when a restore underperforms.

use crate::pool::{SampleAdjacency, SamplePool};
use crate::{IminError, Result};
use imin_graph::{binfmt, DiGraph};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes at offset 0 of every snapshot file.
pub const MAGIC: [u8; 8] = *b"IMINSNAP";

/// Current snapshot format version. Bump when the layout changes; readers
/// reject every other version with [`SnapshotError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// Fixed byte size of the snapshot header.
pub const HEADER_BYTES: u64 = 64;

/// Maximum accepted graph-label length, a sanity bound on header parsing.
const MAX_LABEL_BYTES: u64 = 65_536;

/// Errors produced while writing or reading snapshot files.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying I/O failure (open, read, write, create).
    Io(std::io::Error),
    /// The file is shorter than its own header/section sizes demand (or
    /// longer — trailing garbage is rejected too).
    Truncated {
        /// Byte size the sections demand.
        expected: u64,
        /// Actual file size.
        actual: u64,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The payload checksum does not match the trailer.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed from the payload.
        computed: u64,
    },
    /// The fingerprint of the deserialised graph does not match the header.
    FingerprintMismatch {
        /// Fingerprint stored in the header.
        stored: u64,
        /// Fingerprint recomputed from the graph section.
        computed: u64,
    },
    /// A structurally impossible value (zero θ, oversized label, per-sample
    /// live-edge count exceeding `m`, header/graph-section disagreement, …).
    Corrupt {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot I/O error: {err}"),
            SnapshotError::Truncated { expected, actual } => write!(
                f,
                "snapshot file is truncated or padded: sections demand {expected} bytes, file has {actual}"
            ),
            SnapshotError::BadMagic => {
                write!(f, "not a snapshot file (bad magic, expected \"IMINSNAP\")")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot payload checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::FingerprintMismatch { stored, computed } => write!(
                f,
                "snapshot graph fingerprint mismatch: header says {stored:#018x}, graph section hashes to {computed:#018x}"
            ),
            SnapshotError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            // An EOF mid-section is a truncation the size pre-checks could
            // not attribute; sizes are unknown at this point.
            SnapshotError::Truncated {
                expected: 0,
                actual: 0,
            }
        } else {
            SnapshotError::Io(err)
        }
    }
}

impl From<SnapshotError> for IminError {
    fn from(err: SnapshotError) -> Self {
        IminError::Snapshot(err)
    }
}

// ---------------------------------------------------------------------------
// Streaming checksum
// ---------------------------------------------------------------------------

/// Boundary-independent streaming checksum over the payload bytes: the byte
/// stream is consumed as little-endian `u64` words round-robined over four
/// independent multiply–rotate lanes (so the four multiply chains overlap in
/// the pipeline), with the total length mixed into the final value. Not
/// cryptographic — it exists to catch torn writes and bit rot.
struct StreamChecksum {
    lanes: [u64; 4],
    pending: [u8; 8],
    pending_len: usize,
    words: u64,
    total: u64,
}

const LANE_PRIME: u64 = 0x9E37_79B9_7F4A_7C15;

impl StreamChecksum {
    fn new() -> Self {
        StreamChecksum {
            lanes: [
                0x243F_6A88_85A3_08D3,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            pending: [0u8; 8],
            pending_len: 0,
            words: 0,
            total: 0,
        }
    }

    #[inline]
    fn push_word(&mut self, word: u64) {
        let lane = &mut self.lanes[(self.words & 3) as usize];
        *lane = (*lane ^ word).wrapping_mul(LANE_PRIME).rotate_left(29);
        self.words += 1;
    }

    fn update(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.pending_len > 0 {
            let need = 8 - self.pending_len;
            let take = need.min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len == 8 {
                self.push_word(u64::from_le_bytes(self.pending));
                self.pending_len = 0;
            } else {
                return;
            }
        }
        // Re-align so the next word goes to lane 0, then run the hot loop
        // with all four lanes in registers: four independent multiply
        // chains per 32-byte block keep the pipeline full, which is what
        // makes multi-gigabyte restores checksum-bound-free. The word→lane
        // assignment (word i → lane i mod 4) is identical to push_word, so
        // the resulting value does not depend on call boundaries.
        while (self.words & 3) != 0 && bytes.len() >= 8 {
            self.push_word(u64::from_le_bytes(
                bytes[..8].try_into().expect("8-byte word"),
            ));
            bytes = &bytes[8..];
        }
        if (self.words & 3) == 0 {
            let mut lanes = self.lanes;
            let mut blocks = bytes.chunks_exact(32);
            let mut n_blocks = 0u64;
            for block in &mut blocks {
                let w = |at: usize| {
                    u64::from_le_bytes(block[at..at + 8].try_into().expect("8-byte lane word"))
                };
                lanes[0] = (lanes[0] ^ w(0)).wrapping_mul(LANE_PRIME).rotate_left(29);
                lanes[1] = (lanes[1] ^ w(8)).wrapping_mul(LANE_PRIME).rotate_left(29);
                lanes[2] = (lanes[2] ^ w(16)).wrapping_mul(LANE_PRIME).rotate_left(29);
                lanes[3] = (lanes[3] ^ w(24)).wrapping_mul(LANE_PRIME).rotate_left(29);
                n_blocks += 1;
            }
            self.lanes = lanes;
            self.words += n_blocks * 4;
            bytes = blocks.remainder();
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.push_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        self.pending[..rest.len()].copy_from_slice(rest);
        self.pending_len = rest.len();
    }

    fn value(&self) -> u64 {
        let mut h = self.total ^ 0x5851_F42D_4C95_7F2D;
        for (i, &lane) in self.lanes.iter().enumerate() {
            let mut tail = lane;
            if i == (self.words & 3) as usize && self.pending_len > 0 {
                // Fold the trailing partial word into its would-be lane;
                // `total` already disambiguates zero padding from real
                // zero bytes.
                let mut padded = [0u8; 8];
                padded[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
                tail = (tail ^ u64::from_le_bytes(padded))
                    .wrapping_mul(LANE_PRIME)
                    .rotate_left(29);
            }
            h ^= tail.rotate_left((i as u32 + 1) * 13);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        h ^ (h >> 31)
    }
}

/// `Write` adapter that feeds everything it forwards into the checksum.
struct ChecksumWriter<W: Write> {
    inner: W,
    sum: StreamChecksum,
    written: u64,
}

impl<W: Write> ChecksumWriter<W> {
    fn new(inner: W) -> Self {
        ChecksumWriter {
            inner,
            sum: StreamChecksum::new(),
            written: 0,
        }
    }
}

impl<W: Write> Write for ChecksumWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.sum.update(&buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// `Read` adapter that feeds everything it yields into the checksum.
struct ChecksumReader<R: Read> {
    inner: R,
    sum: StreamChecksum,
}

impl<R: Read> ChecksumReader<R> {
    fn new(inner: R) -> Self {
        ChecksumReader {
            inner,
            sum: StreamChecksum::new(),
        }
    }
}

impl<R: Read> Read for ChecksumReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.sum.update(&buf[..n]);
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// The decoded fixed-size snapshot header (plus the label that follows it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version stored in the file.
    pub version: u32,
    /// Structural fingerprint of the stored graph.
    pub graph_fingerprint: u64,
    /// Base seed the pool was built from.
    pub pool_seed: u64,
    /// Number of realisations θ in the pool section.
    pub theta: u64,
    /// Vertex count of the stored graph.
    pub num_vertices: u64,
    /// Edge count of the stored graph.
    pub num_edges: u64,
    /// Label the graph was registered under when the snapshot was saved.
    pub label: String,
}

fn decode_header(bytes: &[u8; 64]) -> std::result::Result<(SnapshotHeader, u64), SnapshotError> {
    let word =
        |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 header bytes"));
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let reserved = u32::from_le_bytes(bytes[12..16].try_into().expect("4 header bytes"));
    if reserved != 0 {
        return Err(SnapshotError::Corrupt {
            reason: format!("reserved header field is {reserved}, expected 0"),
        });
    }
    let header = SnapshotHeader {
        version,
        graph_fingerprint: word(16),
        pool_seed: word(24),
        theta: word(32),
        num_vertices: word(40),
        num_edges: word(48),
        label: String::new(),
    };
    let label_len = word(56);
    if header.theta == 0 {
        return Err(SnapshotError::Corrupt {
            reason: "θ is 0 — a pool always holds at least one realisation".into(),
        });
    }
    if header.num_vertices >= u32::MAX as u64 {
        return Err(SnapshotError::Corrupt {
            reason: format!(
                "{} vertices exceeds the supported maximum",
                header.num_vertices
            ),
        });
    }
    if label_len > MAX_LABEL_BYTES {
        return Err(SnapshotError::Corrupt {
            reason: format!("label length {label_len} exceeds the {MAX_LABEL_BYTES}-byte bound"),
        });
    }
    Ok((header, label_len))
}

/// Byte size of everything up to and including the per-sample length table,
/// plus the minimum possible pool arenas (every sample has at least its
/// `n + 1` offsets) and the trailer. Computed in `u128` so corrupt headers
/// cannot overflow.
fn min_file_size(n: u64, m: u64, theta: u64, label_len: u64) -> u128 {
    // Saturating throughout: a hostile header must yield "impossibly big",
    // never an arithmetic panic (n, m and θ can each be u64::MAX here).
    let (n, m, theta) = (n as u128, m as u128, theta as u128);
    let graph = 16u128
        .saturating_add((n + 1).saturating_mul(8))
        .saturating_add(m.saturating_mul(12));
    (HEADER_BYTES as u128)
        .saturating_add(label_len as u128)
        .saturating_add(graph)
        .saturating_add(theta.saturating_mul(8))
        .saturating_add(theta.saturating_mul((n + 1).saturating_mul(4)))
        .saturating_add(8)
}

// ---------------------------------------------------------------------------
// Saving
// ---------------------------------------------------------------------------

/// Facts about a snapshot that was just written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Total file size in bytes (header + payload + trailer).
    pub bytes_written: u64,
    /// Number of realisations θ stored.
    pub theta: usize,
    /// Fingerprint of the stored graph.
    pub graph_fingerprint: u64,
}

/// Writes `graph` and its resident `pool` (plus the engine-facing `label`)
/// as one snapshot file at `path`, overwriting any existing file.
///
/// # Errors
/// Returns [`IminError::PoolGraphMismatch`] when the pool was not built
/// from `graph`, and [`IminError::Snapshot`] for I/O failures or an
/// oversized label.
pub fn save_snapshot(
    path: &Path,
    graph: &DiGraph,
    pool: &SamplePool,
    label: &str,
) -> Result<SnapshotSummary> {
    pool.ensure_matches(graph)?;
    if label.len() as u64 > MAX_LABEL_BYTES {
        return Err(SnapshotError::Corrupt {
            reason: format!(
                "label of {} bytes exceeds the {MAX_LABEL_BYTES}-byte bound",
                label.len()
            ),
        }
        .into());
    }
    let fingerprint = graph.fingerprint();
    let file = File::create(path).map_err(SnapshotError::Io)?;
    let mut writer = BufWriter::with_capacity(4 << 20, file);

    let mut header = [0u8; HEADER_BYTES as usize];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[16..24].copy_from_slice(&fingerprint.to_le_bytes());
    header[24..32].copy_from_slice(&pool.pool_seed().to_le_bytes());
    header[32..40].copy_from_slice(&(pool.theta() as u64).to_le_bytes());
    header[40..48].copy_from_slice(&(graph.num_vertices() as u64).to_le_bytes());
    header[48..56].copy_from_slice(&(graph.num_edges() as u64).to_le_bytes());
    header[56..64].copy_from_slice(&(label.len() as u64).to_le_bytes());
    writer.write_all(&header).map_err(SnapshotError::Io)?;

    let mut payload = ChecksumWriter::new(writer);
    let io_err = SnapshotError::Io;
    payload.write_all(label.as_bytes()).map_err(io_err)?;
    graph.write_binary(&mut payload).map_err(io_err)?;
    for sample in pool.samples() {
        payload
            .write_all(&(sample.targets.len() as u64).to_le_bytes())
            .map_err(io_err)?;
    }
    for sample in pool.samples() {
        binfmt::write_u32s(&mut payload, &sample.offsets).map_err(io_err)?;
        binfmt::write_u32s(&mut payload, &sample.targets).map_err(io_err)?;
    }
    let checksum = payload.sum.value();
    let payload_bytes = payload.written;
    let mut writer = payload.inner;
    writer.write_all(&checksum.to_le_bytes()).map_err(io_err)?;
    writer.flush().map_err(io_err)?;
    Ok(SnapshotSummary {
        bytes_written: HEADER_BYTES + payload_bytes + 8,
        theta: pool.theta(),
        graph_fingerprint: fingerprint,
    })
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

/// A snapshot deserialised back into its in-memory form.
#[derive(Debug)]
pub struct RestoredSnapshot {
    /// The stored graph, with its derived arrays rebuilt.
    pub graph: DiGraph,
    /// The stored pool, arenas bulk-loaded into their exact original layout.
    pub pool: SamplePool,
    /// The label the graph was saved under (may be empty).
    pub label: String,
    /// The validated header.
    pub header: SnapshotHeader,
}

/// Reads and validates only the header (plus label) of the snapshot at
/// `path` — cheap provenance inspection without touching the arenas.
///
/// # Errors
/// Same header-validation errors as [`load_snapshot`].
pub fn peek_header(path: &Path) -> Result<SnapshotHeader> {
    let mut file = File::open(path).map_err(SnapshotError::Io)?;
    let header_bytes = read_header_bytes(&mut file, path)?;
    let (mut header, label_len) = decode_header(&header_bytes)?;
    let mut label = vec![0u8; label_len as usize];
    read_exact_sized(&mut file, &mut label, path)?;
    header.label = String::from_utf8_lossy(&label).into_owned();
    Ok(header)
}

/// Reads the fixed 64-byte header. A file too short to hold one is
/// reported as [`SnapshotError::BadMagic`] when even its leading bytes are
/// not the magic (it is not a snapshot at all), and as
/// [`SnapshotError::Truncated`] when they are.
fn read_header_bytes(
    file: &mut File,
    path: &Path,
) -> std::result::Result<[u8; HEADER_BYTES as usize], SnapshotError> {
    let mut buf = [0u8; HEADER_BYTES as usize];
    let mut filled = 0usize;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(SnapshotError::Io(err)),
        }
    }
    if filled < buf.len() {
        let probe = filled.min(MAGIC.len());
        if buf[..probe] != MAGIC[..probe] {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated {
            expected: HEADER_BYTES,
            actual: std::fs::metadata(path)
                .map(|m| m.len())
                .unwrap_or(filled as u64),
        });
    }
    Ok(buf)
}

/// `read_exact` with EOF reported as [`SnapshotError::Truncated`] carrying
/// the actual file size.
fn read_exact_sized(
    file: &mut File,
    buf: &mut [u8],
    path: &Path,
) -> std::result::Result<(), SnapshotError> {
    file.read_exact(buf).map_err(|err| {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated {
                expected: buf.len() as u64,
                actual: std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
            }
        } else {
            SnapshotError::Io(err)
        }
    })
}

/// Reads `len` little-endian `u32`s through `scratch` into a fresh,
/// exactly-sized vector. `len` has been validated against the file size, so
/// the up-front allocation is safe and EOF cannot occur.
fn read_u32_vec<R: Read>(
    r: &mut R,
    len: usize,
    scratch: &mut [u8],
    timings: &mut (std::time::Duration, std::time::Duration),
) -> std::result::Result<Vec<u32>, SnapshotError> {
    // `scratch` is allocated once per restore and sliced per array —
    // re-zeroing ~200 KB per sample would cost a hidden full-pool memset
    // across a multi-gigabyte restore.
    let scratch = &mut scratch[..len * 4];
    let t0 = std::time::Instant::now();
    r.read_exact(scratch)?;
    let t1 = std::time::Instant::now();
    let out = scratch
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect();
    timings.0 += t1 - t0;
    timings.1 += t1.elapsed();
    Ok(out)
}

/// Loads the snapshot at `path`: validates the header, bulk-loads the graph
/// and pool arenas, and verifies the payload checksum and the graph
/// fingerprint.
///
/// # Errors
/// Every failure mode is a typed [`SnapshotError`] wrapped in
/// [`IminError::Snapshot`]: missing/unreadable file, bad magic, unsupported
/// version, truncation, checksum mismatch, fingerprint mismatch, or
/// structurally impossible sections. Corrupt input never panics.
pub fn load_snapshot(path: &Path) -> Result<RestoredSnapshot> {
    let mut file = File::open(path).map_err(SnapshotError::Io)?;
    let file_len = file.metadata().map_err(SnapshotError::Io)?.len();

    let header_bytes = read_header_bytes(&mut file, path)?;
    let (mut header, label_len) = decode_header(&header_bytes)?;
    let (n, m, theta) = (
        header.num_vertices as usize,
        header.num_edges as usize,
        header.theta as usize,
    );

    // Every section length below derives from the header; reject files that
    // cannot possibly hold them before allocating anything.
    let min_len = min_file_size(
        header.num_vertices,
        header.num_edges,
        header.theta,
        label_len,
    );
    if (file_len as u128) < min_len {
        return Err(SnapshotError::Truncated {
            expected: min_len.min(u64::MAX as u128) as u64,
            actual: file_len,
        }
        .into());
    }

    let mut payload = ChecksumReader::new(&mut file);
    let mut label = vec![0u8; label_len as usize];
    payload
        .read_exact(&mut label)
        .map_err(SnapshotError::from)?;
    header.label = String::from_utf8_lossy(&label).into_owned();

    let graph = DiGraph::read_binary(&mut payload).map_err(|err| match err {
        imin_graph::GraphError::Io(io) => IminError::Snapshot(SnapshotError::from(io)),
        other => IminError::Snapshot(SnapshotError::Corrupt {
            reason: other.to_string(),
        }),
    })?;
    if graph.num_vertices() != n || graph.num_edges() != m {
        return Err(SnapshotError::Corrupt {
            reason: format!(
                "graph section is {}v/{}e but the header says {n}v/{m}e",
                graph.num_vertices(),
                graph.num_edges()
            ),
        }
        .into());
    }
    let computed_fingerprint = graph.fingerprint();
    if computed_fingerprint != header.graph_fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            stored: header.graph_fingerprint,
            computed: computed_fingerprint,
        }
        .into());
    }

    // Per-sample live-edge counts, read as one bulk table; each realisation
    // keeps a subset of the graph's edges, so any count above m is
    // corruption.
    let mut lens_bytes = vec![0u8; theta * 8];
    payload
        .read_exact(&mut lens_bytes)
        .map_err(SnapshotError::from)?;
    let lens: Vec<u64> = lens_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte length")))
        .collect();
    drop(lens_bytes);
    let mut arena_words: u128 = 0;
    for (i, &len) in lens.iter().enumerate() {
        if len > m as u64 {
            return Err(SnapshotError::Corrupt {
                reason: format!("sample {i} claims {len} live edges, graph has only {m}"),
            }
            .into());
        }
        arena_words += (n as u128 + 1) + len as u128;
    }
    let exact_len = HEADER_BYTES as u128
        + label_len as u128
        + binfmt::binary_size(&graph) as u128
        + theta as u128 * 8
        + arena_words * 4
        + 8;
    if file_len as u128 != exact_len {
        return Err(SnapshotError::Truncated {
            expected: exact_len.min(u64::MAX as u128) as u64,
            actual: file_len,
        }
        .into());
    }

    let trace = std::env::var_os("IMIN_SNAPSHOT_TRACE").is_some();
    let phase_start = std::time::Instant::now();
    let mut samples = Vec::with_capacity(theta);
    let max_words = lens
        .iter()
        .map(|&len| len as usize)
        .max()
        .unwrap_or(0)
        .max(n + 1);
    let mut scratch = vec![0u8; max_words * 4];
    let mut timings = (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for (i, &len) in lens.iter().enumerate() {
        let offsets = read_u32_vec(&mut payload, n + 1, &mut scratch, &mut timings)?;
        let targets = read_u32_vec(&mut payload, len as usize, &mut scratch, &mut timings)?;
        // Structural validation while the arrays are cache-hot: the
        // checksum catches accidental corruption, but a buggy or foreign
        // writer can produce checksum-consistent arenas that would panic
        // the estimator's BFS at query time. "Corrupt input never panics"
        // extends to those.
        let corrupt = |what: &str| SnapshotError::Corrupt {
            reason: format!("sample {i}: {what}"),
        };
        if offsets[0] != 0 || u64::from(*offsets.last().expect("offsets are non-empty")) != len {
            return Err(corrupt("offset array does not span its live-edge list").into());
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(corrupt("offset array is not monotone").into());
        }
        if targets.iter().any(|&t| t as usize >= n) {
            return Err(corrupt("live-edge target out of vertex range").into());
        }
        samples.push(SampleAdjacency { offsets, targets });
    }
    if trace {
        eprintln!(
            "snapshot trace: samples phase {:.3}s (read+checksum {:.3}s, convert+alloc {:.3}s)",
            phase_start.elapsed().as_secs_f64(),
            timings.0.as_secs_f64(),
            timings.1.as_secs_f64()
        );
    }

    let computed = payload.sum.value();
    let mut trailer = [0u8; 8];
    read_exact_sized(&mut file, &mut trailer, path)?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed }.into());
    }

    let pool = SamplePool::from_restored_parts(n, m, header.pool_seed, samples);
    Ok(RestoredSnapshot {
        graph,
        pool,
        label: header.label.clone(),
        header,
    })
}

/// The checksum of a payload byte slice, exactly as the trailer stores it.
/// Exposed (hidden) so corruption tests and external tooling can re-seal a
/// deliberately patched payload; not part of the supported API surface.
#[doc(hidden)]
pub fn payload_checksum(payload: &[u8]) -> u64 {
    let mut sum = StreamChecksum::new();
    sum.update(payload);
    sum.value()
}

/// Order-sensitive 64-bit digest of every arena byte of the pool (θ, the
/// per-sample offsets and targets). Two pools have equal digests iff their
/// stored realisations are byte-identical — the cheap way for benchmarks
/// and tests to prove `extend_to` / save–restore bit-identity without
/// holding two multi-gigabyte pools side by side.
pub fn pool_digest(pool: &SamplePool) -> u64 {
    let mut sum = StreamChecksum::new();
    sum.push_word(pool.theta() as u64);
    for sample in pool.samples() {
        sum.push_word(sample.offsets.len() as u64);
        sum.push_word(sample.targets.len() as u64);
        for &o in &sample.offsets {
            sum.push_word(o as u64);
        }
        for &t in &sample.targets {
            sum.push_word(t as u64);
        }
    }
    sum.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_boundary_independent() {
        let bytes: Vec<u8> = (0..1000u32).map(|i| (i * 37 % 251) as u8).collect();
        let mut whole = StreamChecksum::new();
        whole.update(&bytes);
        for split in [1usize, 3, 7, 8, 63, 64, 999] {
            let mut parts = StreamChecksum::new();
            parts.update(&bytes[..split]);
            parts.update(&bytes[split..]);
            assert_eq!(parts.value(), whole.value(), "split at {split}");
        }
        // Single-byte dribble.
        let mut dribble = StreamChecksum::new();
        for b in &bytes {
            dribble.update(std::slice::from_ref(b));
        }
        assert_eq!(dribble.value(), whole.value());
    }

    #[test]
    fn checksum_distinguishes_content_length_and_padding() {
        let mut a = StreamChecksum::new();
        a.update(b"abc");
        let mut b = StreamChecksum::new();
        b.update(b"abc\0");
        assert_ne!(a.value(), b.value(), "zero padding must not collide");
        let mut c = StreamChecksum::new();
        c.update(b"abd");
        assert_ne!(a.value(), c.value());
        assert_ne!(StreamChecksum::new().value(), a.value());
    }

    #[test]
    fn min_file_size_does_not_overflow_on_hostile_headers() {
        // u64::MAX everywhere must not panic (u128 arithmetic).
        let huge = min_file_size(u64::MAX - 2, u64::MAX, u64::MAX, u64::MAX);
        assert!(huge > u64::MAX as u128);
    }
}
