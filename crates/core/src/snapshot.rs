//! Versioned binary persistence of a graph plus its resident sample pool.
//!
//! Building a [`SamplePool`] is by far the most expensive step of the
//! pooled estimator — tens of seconds at production θ — yet the pool
//! depends only on `(graph, pool_seed, θ)`. A *snapshot* captures both the
//! graph and the pool in one checksummed file, so a restarted engine
//! warm-starts by bulk-loading (or memory-mapping) the arenas instead of
//! resampling, and a CI run restores a cached pool instead of rebuilding
//! it.
//!
//! # File format
//!
//! All integers are **little-endian**. Every version is a fixed 64-byte
//! header, a checksummed payload, and an 8-byte checksum trailer:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `b"IMINSNAP"` |
//! | 8      | 4    | format version (`u32`; this build reads 1 and 2) |
//! | 12     | 4    | reserved, must be 0 |
//! | 16     | 8    | graph fingerprint ([`DiGraph::fingerprint`]) |
//! | 24     | 8    | pool seed (`u64`) |
//! | 32     | 8    | θ — number of realisations (`u64`, ≥ 1) |
//! | 40     | 8    | number of vertices `n` (`u64`) |
//! | 48     | 8    | number of edges `m` (`u64`) |
//! | 56     | 8    | graph-label length in bytes (`u64`) |
//!
//! Both versions open the payload identically:
//!
//! 1. the graph label (UTF-8, as many bytes as the header announced),
//! 2. the graph section of [`imin_graph::binfmt`] (out-CSR arenas as raw
//!    `u32`/`u64` slices).
//!
//! ## Version 1 pool section (legacy, read-only)
//!
//! A table of θ per-sample live-edge counts (`u64` each), then for every
//! sample its CSR arenas verbatim — `offsets` as `(n + 1) × u32` followed
//! by `targets` as `count × u32`. Still readable; new files are always v2.
//!
//! ## Version 2 pool section
//!
//! An 8-byte section header — arena kind (`u32`: 1 = raw, 2 = compressed)
//! plus 4 reserved zero bytes — then one of two layouts. *pad* means zero
//! bytes up to the next 4096-byte **absolute file offset**, so every bulk
//! array below starts page-aligned and a memory map can serve it in place:
//!
//! | raw (kind 1) | size |
//! |---|---|
//! | target-start table | `(θ + 1) × u64` |
//! | *pad* | 0–4095 |
//! | consolidated offsets | `θ × (n + 1) × u32` |
//! | *pad* | 0–4095 |
//! | consolidated targets | `total_live × u32` |
//!
//! | compressed (kind 2) | size |
//! |---|---|
//! | live-edge counts | `θ × u64` |
//! | encoding tags (0 = varint, 1 = bitset) | `θ × u8` |
//! | blob-start table | `(θ + 1) × u64` |
//! | *pad* | 0–4095 |
//! | sample blobs | `blob_start[θ]` bytes |
//!
//! The trailer is a 64-bit checksum of the payload bytes **including the
//! pads** (a 4-lane multiply–rotate word hash, boundary-independent and
//! fast enough to keep restores bandwidth-bound).
//!
//! Two restore paths read v2 files:
//!
//! * [`load_snapshot`] — bulk copy into heap arenas, full checksum and
//!   eager structural validation (and the only reader of v1 files);
//! * [`map_snapshot`] — maps the file and serves the bulk arrays zero-copy
//!   out of the page cache. It validates the header, graph fingerprint and
//!   directory tables eagerly but **skips the payload checksum** (hashing
//!   the payload would fault in every page, defeating the point);
//!   per-sample structural validation runs lazily on first touch, and a
//!   corrupt sample surfaces as a diagnostic panic the serving layer
//!   converts to a typed internal error.
//!
//! Every reader path is hardened: corrupt lengths are cross-checked
//! against the exact file size *before* any allocation, so truncated,
//! oversized or bit-flipped files produce [`SnapshotError`]s, never panics
//! or absurd allocations.
//!
//! Restore phases (`snap_read`, `snap_validate`, `snap_map`) are reported
//! through the `imin_obs` span layer, so a serving engine surfaces them in
//! its `METRICS` histograms and access log. Setting the
//! `IMIN_SNAPSHOT_TRACE` environment variable additionally prints the same
//! breakdown to stderr from [`load_snapshot`] / [`map_snapshot`] — the
//! quickest way to tell a slow disk from slow memory provisioning when a
//! restore underperforms.

use crate::arena::{ArenaBacking, Blob, CompressedArena, PoolArena, RawArena, Words, MODE_BITSET};
use crate::mmap::Mmap;
use crate::pool::{graph_csr_copy, SamplePool};
use crate::{IminError, Result};
use imin_graph::{binfmt, DiGraph};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes at offset 0 of every snapshot file.
pub const MAGIC: [u8; 8] = *b"IMINSNAP";

/// Current snapshot format version (what [`save_snapshot`] writes). Readers
/// accept 1 and 2; everything else is
/// [`SnapshotError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version the readers still accept.
pub const OLDEST_READABLE_VERSION: u32 = 1;

/// Fixed byte size of the snapshot header.
pub const HEADER_BYTES: u64 = 64;

/// Alignment of the v2 bulk arrays (absolute file offsets).
const PAGE: u64 = 4096;

/// Arena-kind tags of the v2 pool section header.
const SECTION_RAW: u32 = 1;
const SECTION_COMPRESSED: u32 = 2;

/// Maximum accepted graph-label length, a sanity bound on header parsing.
const MAX_LABEL_BYTES: u64 = 65_536;

static ZERO_PAGE: [u8; PAGE as usize] = [0u8; PAGE as usize];

/// Zero bytes needed to advance the absolute offset `abs` to the next page
/// boundary (0 when already aligned).
fn pad_len(abs: u64) -> usize {
    ((PAGE - (abs % PAGE)) % PAGE) as usize
}

/// Errors produced while writing or reading snapshot files.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying I/O failure (open, read, write, create, map).
    Io(std::io::Error),
    /// The file is shorter than its own header/section sizes demand (or
    /// longer — trailing garbage is rejected too).
    Truncated {
        /// Byte size the sections demand.
        expected: u64,
        /// Actual file size.
        actual: u64,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not one this build reads.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The payload checksum does not match the trailer.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed from the payload.
        computed: u64,
    },
    /// The fingerprint of the deserialised graph does not match the header.
    FingerprintMismatch {
        /// Fingerprint stored in the header.
        stored: u64,
        /// Fingerprint recomputed from the graph section.
        computed: u64,
    },
    /// A structurally impossible value (zero θ, oversized label, per-sample
    /// live-edge count exceeding `m`, header/graph-section disagreement,
    /// non-monotone directory tables, …).
    Corrupt {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot I/O error: {err}"),
            SnapshotError::Truncated { expected, actual } => write!(
                f,
                "snapshot file is truncated or padded: sections demand {expected} bytes, file has {actual}"
            ),
            SnapshotError::BadMagic => {
                write!(f, "not a snapshot file (bad magic, expected \"IMINSNAP\")")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads versions \
                 {OLDEST_READABLE_VERSION} through {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot payload checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::FingerprintMismatch { stored, computed } => write!(
                f,
                "snapshot graph fingerprint mismatch: header says {stored:#018x}, graph section hashes to {computed:#018x}"
            ),
            SnapshotError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            // An EOF mid-section is a truncation the size pre-checks could
            // not attribute; sizes are unknown at this point.
            SnapshotError::Truncated {
                expected: 0,
                actual: 0,
            }
        } else {
            SnapshotError::Io(err)
        }
    }
}

impl From<SnapshotError> for IminError {
    fn from(err: SnapshotError) -> Self {
        IminError::Snapshot(err)
    }
}

// ---------------------------------------------------------------------------
// Streaming checksum
// ---------------------------------------------------------------------------

/// Boundary-independent streaming checksum over the payload bytes: the byte
/// stream is consumed as little-endian `u64` words round-robined over four
/// independent multiply–rotate lanes (so the four multiply chains overlap in
/// the pipeline), with the total length mixed into the final value. Not
/// cryptographic — it exists to catch torn writes and bit rot.
struct StreamChecksum {
    lanes: [u64; 4],
    pending: [u8; 8],
    pending_len: usize,
    words: u64,
    total: u64,
}

const LANE_PRIME: u64 = 0x9E37_79B9_7F4A_7C15;

impl StreamChecksum {
    fn new() -> Self {
        StreamChecksum {
            lanes: [
                0x243F_6A88_85A3_08D3,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            pending: [0u8; 8],
            pending_len: 0,
            words: 0,
            total: 0,
        }
    }

    #[inline]
    fn push_word(&mut self, word: u64) {
        let lane = &mut self.lanes[(self.words & 3) as usize];
        *lane = (*lane ^ word).wrapping_mul(LANE_PRIME).rotate_left(29);
        self.words += 1;
    }

    fn update(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.pending_len > 0 {
            let need = 8 - self.pending_len;
            let take = need.min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len == 8 {
                self.push_word(u64::from_le_bytes(self.pending));
                self.pending_len = 0;
            } else {
                return;
            }
        }
        // Re-align so the next word goes to lane 0, then run the hot loop
        // with all four lanes in registers: four independent multiply
        // chains per 32-byte block keep the pipeline full, which is what
        // makes multi-gigabyte restores checksum-bound-free. The word→lane
        // assignment (word i → lane i mod 4) is identical to push_word, so
        // the resulting value does not depend on call boundaries.
        while (self.words & 3) != 0 && bytes.len() >= 8 {
            self.push_word(u64::from_le_bytes(
                bytes[..8].try_into().expect("8-byte word"),
            ));
            bytes = &bytes[8..];
        }
        if (self.words & 3) == 0 {
            let mut lanes = self.lanes;
            let mut blocks = bytes.chunks_exact(32);
            let mut n_blocks = 0u64;
            for block in &mut blocks {
                let w = |at: usize| {
                    u64::from_le_bytes(block[at..at + 8].try_into().expect("8-byte lane word"))
                };
                lanes[0] = (lanes[0] ^ w(0)).wrapping_mul(LANE_PRIME).rotate_left(29);
                lanes[1] = (lanes[1] ^ w(8)).wrapping_mul(LANE_PRIME).rotate_left(29);
                lanes[2] = (lanes[2] ^ w(16)).wrapping_mul(LANE_PRIME).rotate_left(29);
                lanes[3] = (lanes[3] ^ w(24)).wrapping_mul(LANE_PRIME).rotate_left(29);
                n_blocks += 1;
            }
            self.lanes = lanes;
            self.words += n_blocks * 4;
            bytes = blocks.remainder();
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.push_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        self.pending[..rest.len()].copy_from_slice(rest);
        self.pending_len = rest.len();
    }

    fn value(&self) -> u64 {
        let mut h = self.total ^ 0x5851_F42D_4C95_7F2D;
        for (i, &lane) in self.lanes.iter().enumerate() {
            let mut tail = lane;
            if i == (self.words & 3) as usize && self.pending_len > 0 {
                // Fold the trailing partial word into its would-be lane;
                // `total` already disambiguates zero padding from real
                // zero bytes.
                let mut padded = [0u8; 8];
                padded[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
                tail = (tail ^ u64::from_le_bytes(padded))
                    .wrapping_mul(LANE_PRIME)
                    .rotate_left(29);
            }
            h ^= tail.rotate_left((i as u32 + 1) * 13);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        h ^ (h >> 31)
    }
}

/// `Write` adapter that feeds everything it forwards into the checksum.
struct ChecksumWriter<W: Write> {
    inner: W,
    sum: StreamChecksum,
    written: u64,
}

impl<W: Write> ChecksumWriter<W> {
    fn new(inner: W) -> Self {
        ChecksumWriter {
            inner,
            sum: StreamChecksum::new(),
            written: 0,
        }
    }

    /// Writes zero bytes until the **absolute file offset** (header + payload
    /// written so far) reaches the next page boundary.
    fn pad_to_page(&mut self) -> std::io::Result<()> {
        let pad = pad_len(HEADER_BYTES + self.written);
        self.write_all(&ZERO_PAGE[..pad])
    }
}

impl<W: Write> Write for ChecksumWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.sum.update(&buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// `Read` adapter that feeds everything it yields into the checksum (and
/// counts it, which is what positions the pad skips).
struct ChecksumReader<R: Read> {
    inner: R,
    sum: StreamChecksum,
}

impl<R: Read> ChecksumReader<R> {
    fn new(inner: R) -> Self {
        ChecksumReader {
            inner,
            sum: StreamChecksum::new(),
        }
    }

    /// Absolute file offset of the next unread payload byte.
    fn abs(&self) -> u64 {
        HEADER_BYTES + self.sum.total
    }

    /// Consumes (and checksums) the zero pad up to the next page boundary.
    fn skip_pad(&mut self) -> std::result::Result<(), SnapshotError> {
        let pad = pad_len(self.abs());
        let mut buf = [0u8; PAGE as usize];
        self.read_exact(&mut buf[..pad])?;
        Ok(())
    }
}

impl<R: Read> Read for ChecksumReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.sum.update(&buf[..n]);
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// The decoded fixed-size snapshot header (plus the label that follows it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version stored in the file.
    pub version: u32,
    /// Structural fingerprint of the stored graph.
    pub graph_fingerprint: u64,
    /// Base seed the pool was built from.
    pub pool_seed: u64,
    /// Number of realisations θ in the pool section.
    pub theta: u64,
    /// Vertex count of the stored graph.
    pub num_vertices: u64,
    /// Edge count of the stored graph.
    pub num_edges: u64,
    /// Label the graph was registered under when the snapshot was saved.
    pub label: String,
}

fn decode_header(bytes: &[u8; 64]) -> std::result::Result<(SnapshotHeader, u64), SnapshotError> {
    let word =
        |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 header bytes"));
    if bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if !(OLDEST_READABLE_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let reserved = u32::from_le_bytes(bytes[12..16].try_into().expect("4 header bytes"));
    if reserved != 0 {
        return Err(SnapshotError::Corrupt {
            reason: format!("reserved header field is {reserved}, expected 0"),
        });
    }
    let header = SnapshotHeader {
        version,
        graph_fingerprint: word(16),
        pool_seed: word(24),
        theta: word(32),
        num_vertices: word(40),
        num_edges: word(48),
        label: String::new(),
    };
    let label_len = word(56);
    if header.theta == 0 {
        return Err(SnapshotError::Corrupt {
            reason: "θ is 0 — a pool always holds at least one realisation".into(),
        });
    }
    if header.num_vertices >= u32::MAX as u64 {
        return Err(SnapshotError::Corrupt {
            reason: format!(
                "{} vertices exceeds the supported maximum",
                header.num_vertices
            ),
        });
    }
    if label_len > MAX_LABEL_BYTES {
        return Err(SnapshotError::Corrupt {
            reason: format!("label length {label_len} exceeds the {MAX_LABEL_BYTES}-byte bound"),
        });
    }
    Ok((header, label_len))
}

/// Byte size of the label + graph sections common to both versions.
/// Computed in `u128` so corrupt headers cannot overflow.
fn common_prefix_size(n: u64, m: u64, label_len: u64) -> u128 {
    // Saturating throughout: a hostile header must yield "impossibly big",
    // never an arithmetic panic (n and m can each be u64::MAX here).
    let (n, m) = (n as u128, m as u128);
    let graph = 16u128
        .saturating_add((n + 1).saturating_mul(8))
        .saturating_add(m.saturating_mul(12));
    (HEADER_BYTES as u128)
        .saturating_add(label_len as u128)
        .saturating_add(graph)
}

/// Minimum possible file size for the given header values — enough to bound
/// θ and n against the actual file size *before* any table allocation. The
/// v1 bound additionally includes every sample's `n + 1` offsets; the v2
/// bound only the smallest possible directory (a compressed pool section).
fn min_file_size(version: u32, n: u64, m: u64, theta: u64, label_len: u64) -> u128 {
    let theta_u = theta as u128;
    let base = common_prefix_size(n, m, label_len);
    let pool = if version == 1 {
        theta_u
            .saturating_mul(8)
            .saturating_add(theta_u.saturating_mul((n as u128 + 1).saturating_mul(4)))
    } else {
        // Section header + the smaller (compressed) directory: lens + modes
        // + starts.
        8u128
            .saturating_add(theta_u.saturating_mul(9))
            .saturating_add((theta_u + 1).saturating_mul(8))
    };
    base.saturating_add(pool).saturating_add(8)
}

// ---------------------------------------------------------------------------
// Bulk I/O helpers
// ---------------------------------------------------------------------------

/// Writes a `u64` slice as little-endian bytes, chunked through a stack
/// buffer so tables of any size stay allocation-free.
fn write_u64s<W: Write>(w: &mut W, vals: &[u64]) -> std::io::Result<()> {
    let mut buf = [0u8; 8 * 512];
    for chunk in vals.chunks(512) {
        for (i, v) in chunk.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf[..chunk.len() * 8])?;
    }
    Ok(())
}

/// Reads `len` little-endian `u64`s. `len` has been validated against the
/// file size, so the allocation is bounded by what the file actually holds.
fn read_u64s<R: Read>(r: &mut R, len: usize) -> std::result::Result<Vec<u64>, SnapshotError> {
    let mut out = Vec::with_capacity(len);
    let mut buf = vec![0u8; len.saturating_mul(8).min(4 << 20)];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 8);
        let b = &mut buf[..take * 8];
        r.read_exact(b)?;
        out.extend(
            b.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte word"))),
        );
        remaining -= take;
    }
    Ok(out)
}

/// Reads `len` little-endian `u32`s in bounded chunks (the multi-gigabyte
/// bulk arrays of a v2 restore go through here).
fn read_u32s<R: Read>(r: &mut R, len: usize) -> std::result::Result<Vec<u32>, SnapshotError> {
    let mut out = Vec::with_capacity(len);
    let mut buf = vec![0u8; len.saturating_mul(4).min(4 << 20)];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 4);
        let b = &mut buf[..take * 4];
        r.read_exact(b)?;
        out.extend(
            b.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte word"))),
        );
        remaining -= take;
    }
    Ok(out)
}

/// Reads exactly `len` raw bytes (compressed blob section).
fn read_bytes<R: Read>(r: &mut R, len: usize) -> std::result::Result<Vec<u8>, SnapshotError> {
    let mut out = vec![0u8; len];
    let mut filled = 0usize;
    // Chunked so a corrupt-but-plausible length cannot demand one giant
    // read_exact; `len` has already been validated against the file size.
    while filled < len {
        let take = (len - filled).min(16 << 20);
        r.read_exact(&mut out[filled..filled + take])?;
        filled += take;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Saving
// ---------------------------------------------------------------------------

/// Facts about a snapshot that was just written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Total file size in bytes (header + payload + trailer).
    pub bytes_written: u64,
    /// Number of realisations θ stored.
    pub theta: usize,
    /// Fingerprint of the stored graph.
    pub graph_fingerprint: u64,
}

fn encode_file_header(
    version: u32,
    graph: &DiGraph,
    pool: &SamplePool,
    label: &str,
    fingerprint: u64,
) -> [u8; HEADER_BYTES as usize] {
    let mut header = [0u8; HEADER_BYTES as usize];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&version.to_le_bytes());
    header[16..24].copy_from_slice(&fingerprint.to_le_bytes());
    header[24..32].copy_from_slice(&pool.pool_seed().to_le_bytes());
    header[32..40].copy_from_slice(&(pool.theta() as u64).to_le_bytes());
    header[40..48].copy_from_slice(&(graph.num_vertices() as u64).to_le_bytes());
    header[48..56].copy_from_slice(&(graph.num_edges() as u64).to_le_bytes());
    header[56..64].copy_from_slice(&(label.len() as u64).to_le_bytes());
    header
}

fn check_label(label: &str) -> Result<()> {
    if label.len() as u64 > MAX_LABEL_BYTES {
        return Err(SnapshotError::Corrupt {
            reason: format!(
                "label of {} bytes exceeds the {MAX_LABEL_BYTES}-byte bound",
                label.len()
            ),
        }
        .into());
    }
    Ok(())
}

/// Writes `graph` and its resident `pool` (plus the engine-facing `label`)
/// as one version-2 snapshot file at `path`, overwriting any existing file.
/// The pool section mirrors the pool's arena: a raw pool is written as
/// page-aligned consolidated CSR arrays (mappable zero-copy on restore), a
/// compressed pool as its directory plus blobs.
///
/// # Errors
/// Returns [`IminError::PoolGraphMismatch`] when the pool was not built
/// from `graph`, and [`IminError::Snapshot`] for I/O failures or an
/// oversized label.
pub fn save_snapshot(
    path: &Path,
    graph: &DiGraph,
    pool: &SamplePool,
    label: &str,
) -> Result<SnapshotSummary> {
    pool.ensure_matches(graph)?;
    check_label(label)?;
    let fingerprint = graph.fingerprint();
    let file = File::create(path).map_err(SnapshotError::Io)?;
    let mut writer = BufWriter::with_capacity(4 << 20, file);
    let header = encode_file_header(FORMAT_VERSION, graph, pool, label, fingerprint);
    writer.write_all(&header).map_err(SnapshotError::Io)?;

    let mut payload = ChecksumWriter::new(writer);
    let io_err = SnapshotError::Io;
    payload.write_all(label.as_bytes()).map_err(io_err)?;
    graph.write_binary(&mut payload).map_err(io_err)?;
    match &pool.arena().backing {
        ArenaBacking::Raw(raw) => {
            payload
                .write_all(&SECTION_RAW.to_le_bytes())
                .and_then(|()| payload.write_all(&0u32.to_le_bytes()))
                .map_err(io_err)?;
            write_u64s(&mut payload, &raw.target_start).map_err(io_err)?;
            payload.pad_to_page().map_err(io_err)?;
            binfmt::write_u32s(&mut payload, raw.offsets.as_slice()).map_err(io_err)?;
            payload.pad_to_page().map_err(io_err)?;
            binfmt::write_u32s(&mut payload, raw.targets.as_slice()).map_err(io_err)?;
        }
        ArenaBacking::Compressed(c) => {
            payload
                .write_all(&SECTION_COMPRESSED.to_le_bytes())
                .and_then(|()| payload.write_all(&0u32.to_le_bytes()))
                .map_err(io_err)?;
            write_u64s(&mut payload, &c.lens).map_err(io_err)?;
            payload.write_all(&c.modes).map_err(io_err)?;
            write_u64s(&mut payload, &c.starts).map_err(io_err)?;
            payload.pad_to_page().map_err(io_err)?;
            payload.write_all(c.data.as_slice()).map_err(io_err)?;
        }
    }
    let checksum = payload.sum.value();
    let payload_bytes = payload.written;
    let mut writer = payload.inner;
    writer.write_all(&checksum.to_le_bytes()).map_err(io_err)?;
    writer.flush().map_err(io_err)?;
    Ok(SnapshotSummary {
        bytes_written: HEADER_BYTES + payload_bytes + 8,
        theta: pool.theta(),
        graph_fingerprint: fingerprint,
    })
}

/// Writes the legacy version-1 layout (per-sample CSR arrays). Exposed
/// (hidden) so the backward-compat and hostile-input tests, and the restore
/// benchmarks, can produce genuine v1 files; new code always writes v2.
#[doc(hidden)]
pub fn save_snapshot_v1(
    path: &Path,
    graph: &DiGraph,
    pool: &SamplePool,
    label: &str,
) -> Result<SnapshotSummary> {
    pool.ensure_matches(graph)?;
    check_label(label)?;
    let fingerprint = graph.fingerprint();
    let file = File::create(path).map_err(SnapshotError::Io)?;
    let mut writer = BufWriter::with_capacity(4 << 20, file);
    let header = encode_file_header(1, graph, pool, label, fingerprint);
    writer.write_all(&header).map_err(SnapshotError::Io)?;

    let mut payload = ChecksumWriter::new(writer);
    let io_err = SnapshotError::Io;
    payload.write_all(label.as_bytes()).map_err(io_err)?;
    graph.write_binary(&mut payload).map_err(io_err)?;
    let theta = pool.theta();
    for i in 0..theta {
        payload
            .write_all(&pool.arena().sample_len(i).to_le_bytes())
            .map_err(io_err)?;
    }
    let (mut offsets, mut targets) = (Vec::new(), Vec::new());
    for i in 0..theta {
        pool.sample_csr_into(i, &mut offsets, &mut targets);
        binfmt::write_u32s(&mut payload, &offsets).map_err(io_err)?;
        binfmt::write_u32s(&mut payload, &targets).map_err(io_err)?;
    }
    let checksum = payload.sum.value();
    let payload_bytes = payload.written;
    let mut writer = payload.inner;
    writer.write_all(&checksum.to_le_bytes()).map_err(io_err)?;
    writer.flush().map_err(io_err)?;
    Ok(SnapshotSummary {
        bytes_written: HEADER_BYTES + payload_bytes + 8,
        theta,
        graph_fingerprint: fingerprint,
    })
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

/// A snapshot deserialised back into its in-memory form.
#[derive(Debug)]
pub struct RestoredSnapshot {
    /// The stored graph, with its derived arrays rebuilt.
    pub graph: DiGraph,
    /// The stored pool: heap arenas for [`load_snapshot`], arenas served
    /// out of the mapping for [`map_snapshot`].
    pub pool: SamplePool,
    /// The label the graph was saved under (may be empty).
    pub label: String,
    /// The validated header.
    pub header: SnapshotHeader,
}

/// Reads and validates only the header (plus label) of the snapshot at
/// `path` — cheap provenance inspection without touching the arenas.
///
/// # Errors
/// Same header-validation errors as [`load_snapshot`].
pub fn peek_header(path: &Path) -> Result<SnapshotHeader> {
    let mut file = File::open(path).map_err(SnapshotError::Io)?;
    let header_bytes = read_header_bytes(&mut file, path)?;
    let (mut header, label_len) = decode_header(&header_bytes)?;
    let mut label = vec![0u8; label_len as usize];
    read_exact_sized(&mut file, &mut label, path)?;
    header.label = String::from_utf8_lossy(&label).into_owned();
    Ok(header)
}

/// Reads the fixed 64-byte header. A file too short to hold one is
/// reported as [`SnapshotError::BadMagic`] when even its leading bytes are
/// not the magic (it is not a snapshot at all), and as
/// [`SnapshotError::Truncated`] when they are.
fn read_header_bytes(
    file: &mut File,
    path: &Path,
) -> std::result::Result<[u8; HEADER_BYTES as usize], SnapshotError> {
    let mut buf = [0u8; HEADER_BYTES as usize];
    let mut filled = 0usize;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(SnapshotError::Io(err)),
        }
    }
    if filled < buf.len() {
        let probe = filled.min(MAGIC.len());
        if buf[..probe] != MAGIC[..probe] {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated {
            expected: HEADER_BYTES,
            actual: std::fs::metadata(path)
                .map(|m| m.len())
                .unwrap_or(filled as u64),
        });
    }
    Ok(buf)
}

/// `read_exact` with EOF reported as [`SnapshotError::Truncated`] carrying
/// the actual file size.
fn read_exact_sized(
    file: &mut File,
    buf: &mut [u8],
    path: &Path,
) -> std::result::Result<(), SnapshotError> {
    file.read_exact(buf).map_err(|err| {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated {
                expected: buf.len() as u64,
                actual: std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
            }
        } else {
            SnapshotError::Io(err)
        }
    })
}

fn corrupt(reason: String) -> IminError {
    IminError::Snapshot(SnapshotError::Corrupt { reason })
}

/// Reads and cross-checks the label + graph sections shared by both
/// versions, returning the graph.
fn read_graph_section<R: Read>(
    payload: &mut R,
    header: &mut SnapshotHeader,
    label_len: u64,
) -> Result<DiGraph> {
    let mut label = vec![0u8; label_len as usize];
    payload
        .read_exact(&mut label)
        .map_err(SnapshotError::from)?;
    header.label = String::from_utf8_lossy(&label).into_owned();
    let graph = DiGraph::read_binary(payload).map_err(|err| match err {
        imin_graph::GraphError::Io(io) => IminError::Snapshot(SnapshotError::from(io)),
        other => corrupt(other.to_string()),
    })?;
    if graph.num_vertices() as u64 != header.num_vertices
        || graph.num_edges() as u64 != header.num_edges
    {
        return Err(corrupt(format!(
            "graph section is {}v/{}e but the header says {}v/{}e",
            graph.num_vertices(),
            graph.num_edges(),
            header.num_vertices,
            header.num_edges
        )));
    }
    let computed_fingerprint = graph.fingerprint();
    if computed_fingerprint != header.graph_fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            stored: header.graph_fingerprint,
            computed: computed_fingerprint,
        }
        .into());
    }
    Ok(graph)
}

/// Validates a raw target-start table: monotone from 0, per-sample deltas
/// bounded by `m`.
fn check_target_start(target_start: &[u64], m: u64) -> Result<()> {
    if target_start.first() != Some(&0) {
        return Err(corrupt("target-start table does not begin at 0".into()));
    }
    for (i, w) in target_start.windows(2).enumerate() {
        if w[1] < w[0] {
            return Err(corrupt(format!(
                "target-start table decreases at sample {i}"
            )));
        }
        if w[1] - w[0] > m {
            return Err(corrupt(format!(
                "sample {i} claims {} live edges, graph has only {m}",
                w[1] - w[0]
            )));
        }
    }
    Ok(())
}

/// Validates a compressed directory (lens / modes / starts).
fn check_compressed_directory(lens: &[u64], modes: &[u8], starts: &[u64], m: u64) -> Result<()> {
    for (i, &len) in lens.iter().enumerate() {
        if len > m {
            return Err(corrupt(format!(
                "sample {i} claims {len} live edges, graph has only {m}"
            )));
        }
    }
    for (i, &mode) in modes.iter().enumerate() {
        if mode > MODE_BITSET {
            return Err(corrupt(format!(
                "sample {i} has unknown encoding tag {mode}"
            )));
        }
    }
    if starts.first() != Some(&0) {
        return Err(corrupt("blob-start table does not begin at 0".into()));
    }
    if let Some(i) = starts.windows(2).position(|w| w[1] < w[0]) {
        return Err(corrupt(format!("blob-start table decreases at sample {i}")));
    }
    Ok(())
}

fn check_exact_len(file_len: u64, exact: u128) -> Result<()> {
    if u128::from(file_len) != exact {
        return Err(SnapshotError::Truncated {
            expected: exact.min(u64::MAX as u128) as u64,
            actual: file_len,
        }
        .into());
    }
    Ok(())
}

/// Loads the snapshot at `path` into heap arenas: validates the header,
/// bulk-loads the graph and pool sections, verifies the payload checksum
/// and the graph fingerprint, and structurally validates every sample.
/// Reads both format versions; a v1 file comes back as a consolidated raw
/// arena bit-identical to the historical layout.
///
/// # Errors
/// Every failure mode is a typed [`SnapshotError`] wrapped in
/// [`IminError::Snapshot`]: missing/unreadable file, bad magic, unsupported
/// version, truncation, checksum mismatch, fingerprint mismatch, or
/// structurally impossible sections. Corrupt input never panics.
pub fn load_snapshot(path: &Path) -> Result<RestoredSnapshot> {
    let mut file = File::open(path).map_err(SnapshotError::Io)?;
    let file_len = file.metadata().map_err(SnapshotError::Io)?.len();

    let header_bytes = read_header_bytes(&mut file, path)?;
    let (mut header, label_len) = decode_header(&header_bytes)?;
    let (n, m, theta) = (
        header.num_vertices as usize,
        header.num_edges as usize,
        header.theta as usize,
    );

    // Every section length below derives from the header; reject files that
    // cannot possibly hold them before allocating anything.
    let min_len = min_file_size(
        header.version,
        header.num_vertices,
        header.num_edges,
        header.theta,
        label_len,
    );
    if (file_len as u128) < min_len {
        return Err(SnapshotError::Truncated {
            expected: min_len.min(u64::MAX as u128) as u64,
            actual: file_len,
        }
        .into());
    }

    // Restore phases feed the observability span (restores are rare, so
    // the two clock reads are always taken); `IMIN_SNAPSHOT_TRACE` prints
    // the same breakdown to stderr for quick command-line diagnosis.
    let trace = std::env::var_os("IMIN_SNAPSHOT_TRACE").is_some();
    let (mut read_ns, mut validate_ns) = (0u64, 0u64);
    let mut mark = std::time::Instant::now();
    let mut payload = ChecksumReader::new(&mut file);
    let graph = read_graph_section(&mut payload, &mut header, label_len)?;
    let prefix = common_prefix_size(header.num_vertices, header.num_edges, label_len);

    let arena = if header.version == 1 {
        load_v1_pool_section(&mut payload, &graph, theta, file_len, prefix)?
    } else {
        load_v2_pool_section(&mut payload, &graph, theta, file_len, prefix)?
    };
    crate::pool::lap_instant(&mut mark, &mut read_ns);
    if let Err((i, reason)) = arena.validate_all() {
        return Err(corrupt(format!("sample {i}: {reason}")));
    }

    let computed = payload.sum.value();
    let mut trailer = [0u8; 8];
    read_exact_sized(&mut file, &mut trailer, path)?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed }.into());
    }
    crate::pool::lap_instant(&mut mark, &mut validate_ns);
    imin_obs::span::add_ns(imin_obs::Phase::SnapRead, read_ns);
    imin_obs::span::add_ns(imin_obs::Phase::SnapValidate, validate_ns);
    if trace {
        imin_obs::trace_line(
            "snapshot",
            &format!(
                "read {:.3}s validate {:.3}s ({} bytes, v{})",
                read_ns as f64 / 1e9,
                validate_ns as f64 / 1e9,
                file_len,
                header.version
            ),
        );
    }

    let pool = SamplePool::from_arena(n, m, header.pool_seed, arena);
    Ok(RestoredSnapshot {
        graph,
        pool,
        label: header.label.clone(),
        header,
    })
}

/// Reads a legacy v1 pool section (per-sample CSR arrays) into a
/// consolidated raw arena.
fn load_v1_pool_section<R: Read>(
    payload: &mut ChecksumReader<R>,
    graph: &DiGraph,
    theta: usize,
    file_len: u64,
    prefix: u128,
) -> Result<PoolArena> {
    let n = graph.num_vertices();
    let m = graph.num_edges() as u64;
    let stride = n + 1;
    // Per-sample live-edge counts; each realisation keeps a subset of the
    // graph's edges, so any count above m is corruption.
    let lens = read_u64s(payload, theta)?;
    let mut target_start = Vec::with_capacity(theta + 1);
    target_start.push(0u64);
    let mut acc = 0u64;
    for (i, &len) in lens.iter().enumerate() {
        if len > m {
            return Err(corrupt(format!(
                "sample {i} claims {len} live edges, graph has only {m}"
            )));
        }
        acc += len;
        target_start.push(acc);
    }
    let total = acc as usize;
    let exact = prefix
        .saturating_add(theta as u128 * 8)
        .saturating_add((theta as u128 * stride as u128 + total as u128) * 4)
        .saturating_add(8);
    check_exact_len(file_len, exact)?;

    // Exact length verified against the real file: the two consolidated
    // allocations below are bounded by bytes the file actually holds.
    let mut offsets: Vec<u32> = Vec::with_capacity(theta * stride);
    let mut targets: Vec<u32> = Vec::with_capacity(total);
    let max_words = lens
        .iter()
        .map(|&len| len as usize)
        .max()
        .unwrap_or(0)
        .max(stride);
    let mut scratch = vec![0u8; max_words * 4];
    for &len in &lens {
        let buf = &mut scratch[..stride * 4];
        payload.read_exact(buf).map_err(SnapshotError::from)?;
        offsets.extend(
            buf.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte word"))),
        );
        let buf = &mut scratch[..len as usize * 4];
        payload.read_exact(buf).map_err(SnapshotError::from)?;
        targets.extend(
            buf.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte word"))),
        );
    }
    Ok(PoolArena::raw(
        n,
        theta,
        RawArena {
            stride,
            target_start,
            offsets: Words::Owned(offsets),
            targets: Words::Owned(targets),
        },
    ))
}

/// Reads a v2 pool section (either arena kind) into heap arenas.
fn load_v2_pool_section<R: Read>(
    payload: &mut ChecksumReader<R>,
    graph: &DiGraph,
    theta: usize,
    file_len: u64,
    prefix: u128,
) -> Result<PoolArena> {
    let n = graph.num_vertices();
    let m = graph.num_edges() as u64;
    let mut section = [0u8; 8];
    payload
        .read_exact(&mut section)
        .map_err(SnapshotError::from)?;
    let kind = u32::from_le_bytes(section[0..4].try_into().expect("4-byte kind"));
    let reserved = u32::from_le_bytes(section[4..8].try_into().expect("4-byte reserved"));
    if reserved != 0 {
        return Err(corrupt(format!(
            "reserved pool-section field is {reserved}, expected 0"
        )));
    }
    match kind {
        SECTION_RAW => {
            let stride = n + 1;
            let target_start = read_u64s(payload, theta + 1)?;
            check_target_start(&target_start, m)?;
            let total = target_start[theta];
            let tables_end = prefix + 8 + (theta as u128 + 1) * 8;
            let pad1 = pad_len(tables_end.min(u64::MAX as u128) as u64) as u128;
            let offsets_bytes = theta as u128 * stride as u128 * 4;
            let targets_at = tables_end + pad1 + offsets_bytes;
            let pad2 = pad_len(targets_at.min(u64::MAX as u128) as u64) as u128;
            let exact = targets_at + pad2 + total as u128 * 4 + 8;
            check_exact_len(file_len, exact)?;
            payload.skip_pad()?;
            let offsets = read_u32s(payload, theta * stride)?;
            payload.skip_pad()?;
            let targets = read_u32s(payload, total as usize)?;
            Ok(PoolArena::raw(
                n,
                theta,
                RawArena {
                    stride,
                    target_start,
                    offsets: Words::Owned(offsets),
                    targets: Words::Owned(targets),
                },
            ))
        }
        SECTION_COMPRESSED => {
            let lens = read_u64s(payload, theta)?;
            let mut modes = vec![0u8; theta];
            payload
                .read_exact(&mut modes)
                .map_err(SnapshotError::from)?;
            let starts = read_u64s(payload, theta + 1)?;
            check_compressed_directory(&lens, &modes, &starts, m)?;
            let data_len = starts[theta];
            let data_at = prefix + 8 + theta as u128 * 17 + 8;
            let pad = pad_len(data_at.min(u64::MAX as u128) as u64) as u128;
            let exact = data_at + pad + data_len as u128 + 8;
            check_exact_len(file_len, exact)?;
            payload.skip_pad()?;
            let data = read_bytes(payload, data_len as usize)?;
            let (gr_offsets, gr_targets) = graph_csr_copy(graph);
            Ok(PoolArena::compressed(
                n,
                theta,
                CompressedArena {
                    lens,
                    modes,
                    starts,
                    data: Blob::Owned(data),
                    gr_offsets,
                    gr_targets,
                },
            ))
        }
        other => Err(corrupt(format!("unknown pool-section arena kind {other}"))),
    }
}

/// Bounds-checked slice of the mapped file.
fn take(bytes: &[u8], at: usize, len: usize) -> std::result::Result<&[u8], SnapshotError> {
    let end = at.checked_add(len).ok_or(SnapshotError::Truncated {
        expected: u64::MAX,
        actual: bytes.len() as u64,
    })?;
    if end > bytes.len() {
        return Err(SnapshotError::Truncated {
            expected: end as u64,
            actual: bytes.len() as u64,
        });
    }
    Ok(&bytes[at..end])
}

fn decode_u64_table(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte word")))
        .collect()
}

/// Opens the version-2 snapshot at `path` as a **memory-mapped** pool: the
/// graph and directory tables are deserialised eagerly (with the same
/// header, fingerprint and exact-size validation as [`load_snapshot`]), but
/// the bulk arrays stay in the mapping and are served zero-copy, so the
/// restore cost is independent of pool size.
///
/// The payload checksum is **not** verified — hashing the payload would
/// fault in every page, which is exactly what mapping avoids. Instead every
/// sample is structurally validated on its first use; a corrupt sample
/// raises a diagnostic panic that the serving layer converts to a typed
/// internal error. Callers must keep the file unmodified while the pool is
/// alive.
///
/// # Errors
/// As [`load_snapshot`], plus [`SnapshotError::Corrupt`] for v1 files
/// (their layout is not mappable — use the bulk loader) and on big-endian
/// hosts (the on-disk words cannot be viewed in place).
pub fn map_snapshot(path: &Path) -> Result<RestoredSnapshot> {
    if cfg!(target_endian = "big") {
        return Err(corrupt(
            "memory-mapped restore requires a little-endian host; use the bulk loader".into(),
        ));
    }
    let (mut map_ns, mut validate_ns) = (0u64, 0u64);
    let mut mark = std::time::Instant::now();
    let map = Arc::new(Mmap::map_file(path).map_err(SnapshotError::Io)?);
    crate::pool::lap_instant(&mut mark, &mut map_ns);
    let bytes = map.bytes();
    let file_len = bytes.len() as u64;
    if bytes.len() < HEADER_BYTES as usize {
        let probe = bytes.len().min(MAGIC.len());
        if bytes[..probe] != MAGIC[..probe] {
            return Err(SnapshotError::BadMagic.into());
        }
        return Err(SnapshotError::Truncated {
            expected: HEADER_BYTES,
            actual: file_len,
        }
        .into());
    }
    let header_bytes: [u8; HEADER_BYTES as usize] = bytes[..HEADER_BYTES as usize]
        .try_into()
        .expect("64 header bytes");
    let (mut header, label_len) = decode_header(&header_bytes)?;
    if header.version < 2 {
        return Err(corrupt(format!(
            "version-{} snapshots have no page-aligned sections and cannot be memory-mapped; \
             use the bulk loader",
            header.version
        )));
    }
    let (n, m, theta) = (
        header.num_vertices as usize,
        header.num_edges,
        header.theta as usize,
    );
    let min_len = min_file_size(
        header.version,
        header.num_vertices,
        header.num_edges,
        header.theta,
        label_len,
    );
    if (file_len as u128) < min_len {
        return Err(SnapshotError::Truncated {
            expected: min_len.min(u64::MAX as u128) as u64,
            actual: file_len,
        }
        .into());
    }

    // Label + graph: parsed out of the mapping through the ordinary binary
    // reader (the graph is tiny next to the pool; its derived arrays have
    // to be rebuilt on the heap anyway).
    let label_bytes = take(bytes, HEADER_BYTES as usize, label_len as usize)?;
    header.label = String::from_utf8_lossy(label_bytes).into_owned();
    let graph_at = HEADER_BYTES as usize + label_len as usize;
    let mut cursor = &bytes[graph_at..];
    let before = cursor.len();
    let graph = DiGraph::read_binary(&mut cursor).map_err(|err| match err {
        imin_graph::GraphError::Io(io) => IminError::Snapshot(SnapshotError::from(io)),
        other => corrupt(other.to_string()),
    })?;
    let graph_size = before - cursor.len();
    if graph.num_vertices() != n || graph.num_edges() as u64 != m {
        return Err(corrupt(format!(
            "graph section is {}v/{}e but the header says {n}v/{m}e",
            graph.num_vertices(),
            graph.num_edges()
        )));
    }
    let computed_fingerprint = graph.fingerprint();
    if computed_fingerprint != header.graph_fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            stored: header.graph_fingerprint,
            computed: computed_fingerprint,
        }
        .into());
    }

    let mut at = graph_at + graph_size;
    let section = take(bytes, at, 8)?;
    let kind = u32::from_le_bytes(section[0..4].try_into().expect("4-byte kind"));
    let reserved = u32::from_le_bytes(section[4..8].try_into().expect("4-byte reserved"));
    if reserved != 0 {
        return Err(corrupt(format!(
            "reserved pool-section field is {reserved}, expected 0"
        )));
    }
    at += 8;
    let arena = match kind {
        SECTION_RAW => {
            let stride = n + 1;
            let target_start = decode_u64_table(take(bytes, at, (theta + 1) * 8)?);
            at += (theta + 1) * 8;
            check_target_start(&target_start, m)?;
            let total = target_start[theta];
            at += pad_len(at as u64);
            let offsets_at = at;
            let offsets_bytes = theta as u128 * stride as u128 * 4;
            let targets_at_u128 = offsets_at as u128 + offsets_bytes;
            let pad2 = pad_len(targets_at_u128.min(u64::MAX as u128) as u64) as u128;
            let exact = targets_at_u128 + pad2 + total as u128 * 4 + 8;
            check_exact_len(file_len, exact)?;
            let targets_at = (targets_at_u128 + pad2) as usize;
            PoolArena::raw(
                n,
                theta,
                RawArena {
                    stride,
                    target_start,
                    offsets: Words::Mapped {
                        map: map.clone(),
                        start: offsets_at,
                        len: theta * stride,
                    },
                    targets: Words::Mapped {
                        map: map.clone(),
                        start: targets_at,
                        len: total as usize,
                    },
                },
            )
        }
        SECTION_COMPRESSED => {
            let lens = decode_u64_table(take(bytes, at, theta * 8)?);
            at += theta * 8;
            let modes = take(bytes, at, theta)?.to_vec();
            at += theta;
            let starts = decode_u64_table(take(bytes, at, (theta + 1) * 8)?);
            at += (theta + 1) * 8;
            check_compressed_directory(&lens, &modes, &starts, m)?;
            let data_len = starts[theta];
            at += pad_len(at as u64);
            let exact = at as u128 + data_len as u128 + 8;
            check_exact_len(file_len, exact)?;
            let (gr_offsets, gr_targets) = graph_csr_copy(&graph);
            PoolArena::compressed(
                n,
                theta,
                CompressedArena {
                    lens,
                    modes,
                    starts,
                    data: Blob::Mapped {
                        map: map.clone(),
                        start: at,
                        len: data_len as usize,
                    },
                    gr_offsets,
                    gr_targets,
                },
            )
        }
        other => return Err(corrupt(format!("unknown pool-section arena kind {other}"))),
    };
    // Header decode, graph parse, fingerprint and directory checks: the
    // eager part of a mapped restore (per-sample validation is lazy).
    crate::pool::lap_instant(&mut mark, &mut validate_ns);
    imin_obs::span::add_ns(imin_obs::Phase::SnapMap, map_ns);
    imin_obs::span::add_ns(imin_obs::Phase::SnapValidate, validate_ns);
    if std::env::var_os("IMIN_SNAPSHOT_TRACE").is_some() {
        imin_obs::trace_line(
            "snapshot",
            &format!(
                "map {:.3}s validate {:.3}s ({} bytes, v{}, lazy samples)",
                map_ns as f64 / 1e9,
                validate_ns as f64 / 1e9,
                file_len,
                header.version
            ),
        );
    }
    let pool = SamplePool::from_arena(
        n,
        graph.num_edges(),
        header.pool_seed,
        arena.with_lazy_validation(),
    );
    Ok(RestoredSnapshot {
        graph,
        pool,
        label: header.label.clone(),
        header,
    })
}

/// The checksum of a payload byte slice, exactly as the trailer stores it.
/// Exposed (hidden) so corruption tests and external tooling can re-seal a
/// deliberately patched payload; not part of the supported API surface.
#[doc(hidden)]
pub fn payload_checksum(payload: &[u8]) -> u64 {
    let mut sum = StreamChecksum::new();
    sum.update(payload);
    sum.value()
}

/// Order-sensitive 64-bit digest of every arena byte of the pool (θ, the
/// per-sample offsets and targets, decoded to the canonical raw layout
/// whatever the backend). Two pools have equal digests iff their stored
/// realisations are byte-identical — the cheap way for benchmarks and tests
/// to prove compress / `extend_to` / save–restore bit-identity without
/// holding two multi-gigabyte pools side by side.
pub fn pool_digest(pool: &SamplePool) -> u64 {
    let mut sum = StreamChecksum::new();
    sum.push_word(pool.theta() as u64);
    let (mut offsets, mut targets) = (Vec::new(), Vec::new());
    for i in 0..pool.theta() {
        pool.sample_csr_into(i, &mut offsets, &mut targets);
        sum.push_word(offsets.len() as u64);
        sum.push_word(targets.len() as u64);
        for &o in &offsets {
            sum.push_word(o as u64);
        }
        for &t in &targets {
            sum.push_word(t as u64);
        }
    }
    sum.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_boundary_independent() {
        let bytes: Vec<u8> = (0..1000u32).map(|i| (i * 37 % 251) as u8).collect();
        let mut whole = StreamChecksum::new();
        whole.update(&bytes);
        for split in [1usize, 3, 7, 8, 63, 64, 999] {
            let mut parts = StreamChecksum::new();
            parts.update(&bytes[..split]);
            parts.update(&bytes[split..]);
            assert_eq!(parts.value(), whole.value(), "split at {split}");
        }
        // Single-byte dribble.
        let mut dribble = StreamChecksum::new();
        for b in &bytes {
            dribble.update(std::slice::from_ref(b));
        }
        assert_eq!(dribble.value(), whole.value());
    }

    #[test]
    fn checksum_distinguishes_content_length_and_padding() {
        let mut a = StreamChecksum::new();
        a.update(b"abc");
        let mut b = StreamChecksum::new();
        b.update(b"abc\0");
        assert_ne!(a.value(), b.value(), "zero padding must not collide");
        let mut c = StreamChecksum::new();
        c.update(b"abd");
        assert_ne!(a.value(), c.value());
        assert_ne!(StreamChecksum::new().value(), a.value());
    }

    #[test]
    fn min_file_size_does_not_overflow_on_hostile_headers() {
        // u64::MAX everywhere must not panic (u128 arithmetic).
        for version in [1u32, 2] {
            let huge = min_file_size(version, u64::MAX - 2, u64::MAX, u64::MAX, u64::MAX);
            assert!(huge > u64::MAX as u128);
        }
    }

    #[test]
    fn pad_len_reaches_the_next_page_boundary() {
        assert_eq!(pad_len(0), 0);
        assert_eq!(pad_len(4096), 0);
        assert_eq!(pad_len(1), 4095);
        assert_eq!(pad_len(4095), 1);
        assert_eq!(pad_len(8192 + 17), 4096 - 17);
        for abs in [0u64, 1, 63, 64, 4095, 4096, 4097, 123_456] {
            assert_eq!((abs + pad_len(abs) as u64) % 4096, 0, "abs={abs}");
        }
    }
}
