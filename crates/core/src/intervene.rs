//! Intervention families beyond vertex blocking — edge blocking and
//! prebunking against a resident [`SamplePool`].
//!
//! The paper blocks *vertices*; the surrounding literature shows the same
//! pooled-realisation machinery answers two sibling questions:
//!
//! * **Edge blocking** (Zehmakan & Maurya, arXiv 2308.08860): remove `k`
//!   edges instead of vertices. In a stored realisation a removed edge is a
//!   targeted live-edge deletion — and when the deleted edge `(u, v)` is
//!   the *only* live in-edge of `v` among the reached region, deleting it
//!   detaches exactly the vertices dominated by `v`, so the dominator-tree
//!   subtree size prices the edge **exactly** per realisation.
//! * **Prebunking** (Furutani et al., arXiv 2508.01124): a prebunked
//!   vertex keeps transmitting, but *accepts* each incoming activation
//!   only with probability `α`. Under the integer coin-threshold
//!   representation of the pool this is conditional thinning: a stored
//!   live edge into a prebunked vertex survives an `α`-coin drawn from a
//!   deterministic per-(sample, edge) hash stream — untouched realisations
//!   and vertices pay nothing, and `α = 1.0` keeps every edge, making the
//!   estimate byte-identical to no intervention at all.
//!
//! [`Intervention`] is the request-level selector threaded through
//! [`crate::ContainmentRequest`]; the greedy loops here mirror the pooled
//! vertex loops of [`crate::pool`] (same integer accumulation, same
//! bit-identical-at-any-thread-count contract) but live in their own module
//! so the vertex hot path stays byte-stable.

use crate::decrease::DecreaseEstimate;
use crate::pool::{shard_ranges, SamplePool};
use crate::request::{ContainmentRequest, EvalBackend};
use crate::types::{BlockerSelection, SelectionStats};
use crate::{IminError, Result};
use imin_domtree::DomTreeWorkspace;
use imin_graph::VertexId;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::Range;
use std::str::FromStr;
use std::time::Instant;

/// Sentinel for "no local slot" in the dense renumbering.
const UNMAPPED: u32 = u32::MAX;
/// Global id stored at local 0: the virtual root above the seed set.
const VIRTUAL_ROOT: u32 = u32::MAX;

/// What a containment request removes from the cascade: the paper's vertex
/// blocking (the default), edge blocking, or probabilistic prebunking.
///
/// The wire syntax accepted by [`FromStr`] (and printed by `Display`) is
/// the protocol's `intervene=` parameter: `vertex`, `edge`, or
/// `prebunk:<alpha>` with `alpha ∈ [0, 1]`.
///
/// ```
/// use imin_core::Intervention;
///
/// assert_eq!("vertex".parse::<Intervention>().unwrap(), Intervention::BlockVertices);
/// assert_eq!("edge".parse::<Intervention>().unwrap(), Intervention::BlockEdges);
/// assert_eq!(
///     "prebunk:0.25".parse::<Intervention>().unwrap(),
///     Intervention::Prebunk { alpha: 0.25 },
/// );
/// assert!("prebunk:1.5".parse::<Intervention>().is_err());
/// assert_eq!(Intervention::Prebunk { alpha: 0.25 }.to_string(), "prebunk:0.25");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Intervention {
    /// Remove up to `budget` vertices — today's behaviour, byte-identical
    /// to requests that never mention an intervention.
    #[default]
    BlockVertices,
    /// Remove up to `budget` edges: each removal is a targeted live-edge
    /// deletion in every pooled realisation.
    BlockEdges,
    /// Prebunk up to `budget` vertices: each keeps transmitting but accepts
    /// incoming activations only with probability `alpha`.
    Prebunk {
        /// Acceptance probability of a prebunked vertex, in `[0, 1]`.
        /// `alpha = 0.0` is equivalent to vertex blocking; `alpha = 1.0`
        /// is a no-op.
        alpha: f64,
    },
}

impl Intervention {
    /// Short family label used in error payloads and metrics:
    /// `"vertex"`, `"edge"` or `"prebunk"` (without the `α`).
    pub fn family(self) -> &'static str {
        match self {
            Intervention::BlockVertices => "vertex",
            Intervention::BlockEdges => "edge",
            Intervention::Prebunk { .. } => "prebunk",
        }
    }

    /// Validates the parameters of the family (today: `alpha ∈ [0, 1]` and
    /// finite for [`Intervention::Prebunk`]).
    ///
    /// # Errors
    /// Returns [`IminError::InvalidIntervention`] on an out-of-range or
    /// non-finite `alpha`.
    pub fn validate(self) -> Result<()> {
        if let Intervention::Prebunk { alpha } = self {
            if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
                return Err(IminError::InvalidIntervention {
                    spec: self.to_string(),
                    reason: "alpha must be a finite probability in [0, 1]",
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Intervention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intervention::BlockVertices => f.write_str("vertex"),
            Intervention::BlockEdges => f.write_str("edge"),
            Intervention::Prebunk { alpha } => write!(f, "prebunk:{alpha}"),
        }
    }
}

impl FromStr for Intervention {
    type Err = IminError;

    fn from_str(s: &str) -> Result<Self> {
        let lower = s.trim().to_ascii_lowercase();
        let parsed = match lower.as_str() {
            "vertex" | "vertices" => Intervention::BlockVertices,
            "edge" | "edges" => Intervention::BlockEdges,
            _ => match lower.strip_prefix("prebunk:") {
                Some(alpha) => {
                    let alpha: f64 = alpha.parse().map_err(|_| IminError::InvalidIntervention {
                        spec: s.trim().to_string(),
                        reason: "alpha is not a number",
                    })?;
                    Intervention::Prebunk { alpha }
                }
                None => {
                    return Err(IminError::InvalidIntervention {
                        spec: s.trim().to_string(),
                        reason: "unknown intervention family",
                    })
                }
            },
        };
        parsed.validate()?;
        Ok(parsed)
    }
}

/// `α` scaled to the pool's 2⁵³ integer coin range: an edge into a
/// prebunked vertex survives iff `prebunk_coin(..) >> 11 < threshold`.
/// `α = 1.0` maps to 2⁵³ itself, which every 53-bit draw is strictly below
/// — so full acceptance keeps every edge *exactly* (no boundary case).
fn alpha_threshold(alpha: f64) -> u64 {
    if alpha >= 1.0 {
        1u64 << 53
    } else {
        (alpha * (1u64 << 53) as f64) as u64
    }
}

/// Deterministic per-(sample, edge) coin for prebunk thinning: a
/// splitmix64-style finalizer over the pool seed, the realisation index and
/// the edge endpoints. Pure function of its inputs, so estimates are
/// byte-identical at any thread count and across repeated evaluations.
#[inline]
fn prebunk_coin(pool_seed: u64, sample_idx: u64, src: u32, dst: u32) -> u64 {
    let mut x = pool_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(sample_idx.wrapping_add(1)))
        ^ (((src as u64) << 32) | dst as u64);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// What the re-rooted BFS filters and what the credit pass accumulates.
enum Mode<'a> {
    /// Skip deleted edges; credit each sole-in-edge `(u, v)` with
    /// `subtree_size(v)` into the edge map.
    Edge {
        deleted: &'a HashSet<(u32, u32)>,
        deleted_src: &'a [bool],
    },
    /// Thin live edges into prebunked vertices by the `α`-coin; credit
    /// vertices exactly like the vertex estimator.
    Prebunk {
        prebunked: &'a [bool],
        keep_threshold: u64,
        pool_seed: u64,
    },
}

/// Per-worker scratch for the intervention estimators: the re-rooted
/// cascade (with per-vertex in-degree and sole-predecessor tracking, which
/// the vertex path does not need), the dominator workspace and the integer
/// accumulators. Merging across workers is pure `u64` addition, so results
/// are thread-count-independent exactly like [`crate::pool`].
#[derive(Default)]
struct InterveneScratch {
    vertices: Vec<u32>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    local_of: Vec<u32>,
    /// Live in-edges per local vertex (the virtual-root edge counts for
    /// seeds, keeping them out of the sole-in-edge criterion).
    in_count: Vec<u32>,
    /// Global id of the first live predecessor per local vertex;
    /// [`VIRTUAL_ROOT`] for seeds.
    pred: Vec<u32>,
    sample_offsets: Vec<u32>,
    sample_targets: Vec<u32>,
    domtree: DomTreeWorkspace,
    sizes: Vec<u64>,
    edge_delta: HashMap<(u32, u32), u64>,
    vertex_delta: Vec<u64>,
    reached_sum: u64,
}

impl InterveneScratch {
    fn reset_cascade(&mut self, n: usize) {
        for &v in self.vertices.iter().skip(1) {
            self.local_of[v as usize] = UNMAPPED;
        }
        if self.local_of.len() < n {
            self.local_of.resize(n, UNMAPPED);
        }
        self.vertices.clear();
        self.vertices.push(VIRTUAL_ROOT);
        self.offsets.clear();
        self.offsets.push(0);
        self.targets.clear();
        self.in_count.clear();
        self.in_count.push(0);
        self.pred.clear();
        self.pred.push(VIRTUAL_ROOT);
    }

    fn intern(&mut self, global: u32) -> u32 {
        let slot = self.local_of[global as usize];
        if slot != UNMAPPED {
            return slot;
        }
        let local = self.vertices.len() as u32;
        self.local_of[global as usize] = local;
        self.vertices.push(global);
        self.in_count.push(0);
        self.pred.push(VIRTUAL_ROOT);
        local
    }

    /// Re-roots every realisation in `range` under the intervention and
    /// accumulates credit: subtree sizes per sole-in-edge for `Edge`,
    /// per vertex for `Prebunk`.
    fn accumulate(
        &mut self,
        pool: &SamplePool,
        seeds: &[u32],
        is_seed: &[bool],
        range: Range<usize>,
        mode: &Mode<'_>,
    ) {
        let n = pool.num_vertices();
        self.edge_delta.clear();
        self.vertex_delta.clear();
        self.vertex_delta.resize(n, 0);
        self.reached_sum = 0;
        let only_seeds = 1 + seeds.len();
        for idx in range {
            pool.sample_csr_into(idx, &mut self.sample_offsets, &mut self.sample_targets);
            self.reset_cascade(n);
            // Virtual root → every seed, with probability 1.
            for &s in seeds {
                let local = self.intern(s);
                self.in_count[local as usize] += 1;
                self.targets.push(local);
            }
            self.offsets.push(self.targets.len() as u32);
            let mut head = 1usize;
            while head < self.vertices.len() {
                let u_global = self.vertices[head];
                head += 1;
                let lo = self.sample_offsets[u_global as usize] as usize;
                let hi = self.sample_offsets[u_global as usize + 1] as usize;
                for ti in lo..hi {
                    let t = self.sample_targets[ti];
                    match *mode {
                        Mode::Edge {
                            deleted,
                            deleted_src,
                        } => {
                            if deleted_src[u_global as usize] && deleted.contains(&(u_global, t)) {
                                continue;
                            }
                        }
                        Mode::Prebunk {
                            prebunked,
                            keep_threshold,
                            pool_seed,
                        } => {
                            if prebunked[t as usize]
                                && (prebunk_coin(pool_seed, idx as u64, u_global, t) >> 11)
                                    >= keep_threshold
                            {
                                continue;
                            }
                        }
                    }
                    let t_local = self.intern(t);
                    self.in_count[t_local as usize] += 1;
                    if self.in_count[t_local as usize] == 1 {
                        self.pred[t_local as usize] = u_global;
                    }
                    self.targets.push(t_local);
                }
                self.offsets.push(self.targets.len() as u32);
            }
            let reached = self.vertices.len();
            self.reached_sum += (reached - 1) as u64;
            if reached <= only_seeds {
                continue;
            }
            let tree =
                self.domtree
                    .compute_csr(reached, &self.offsets, &self.targets, VertexId::new(0));
            tree.subtree_sizes_into(&mut self.sizes);
            match *mode {
                Mode::Edge { .. } => {
                    // Exact marginal gain: if (pred, v) is v's only live
                    // in-edge, deleting it detaches exactly the vertices
                    // dominated by v. Seeds are excluded automatically —
                    // their sole in-edge is the virtual-root edge.
                    for v in 1..reached {
                        if self.in_count[v] == 1 && self.pred[v] != VIRTUAL_ROOT {
                            *self
                                .edge_delta
                                .entry((self.pred[v], self.vertices[v]))
                                .or_insert(0) += self.sizes[v];
                        }
                    }
                }
                Mode::Prebunk { .. } => {
                    for (&global, &size) in self.vertices[1..reached]
                        .iter()
                        .zip(&self.sizes[1..reached])
                    {
                        if is_seed[global as usize] {
                            continue;
                        }
                        self.vertex_delta[global as usize] += size;
                    }
                }
            }
        }
    }
}

/// Canonicalises the seed set (sort, dedup, bounds-check) into plain
/// buffers plus a membership mask.
fn stage_seeds(n: usize, seeds: &[VertexId]) -> Result<(Vec<u32>, Vec<bool>)> {
    if seeds.is_empty() {
        return Err(IminError::EmptySeedSet);
    }
    let mut staged = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if s.index() >= n {
            return Err(IminError::SeedOutOfRange {
                vertex: s.index(),
                num_vertices: n,
            });
        }
        staged.push(s.raw());
    }
    staged.sort_unstable();
    staged.dedup();
    let mut is_seed = vec![false; n];
    for &s in &staged {
        is_seed[s as usize] = true;
    }
    Ok((staged, is_seed))
}

/// Runs `accumulate` over the whole pool, sharded across `threads`
/// workers, and merges the integer accumulators (order-independent, so
/// results are bit-identical at any thread count).
fn sharded_accumulate(
    pool: &SamplePool,
    seeds: &[u32],
    is_seed: &[bool],
    threads: usize,
    mode: &Mode<'_>,
) -> (HashMap<(u32, u32), u64>, Vec<u64>, u64) {
    let theta = pool.theta();
    let threads = threads.max(1).min(theta);
    let mut workers: Vec<InterveneScratch> = Vec::new();
    workers.resize_with(threads, InterveneScratch::default);
    if threads <= 1 {
        workers[0].accumulate(pool, seeds, is_seed, 0..theta, mode);
    } else {
        crossbeam::scope(|scope| {
            for (worker, range) in workers.iter_mut().zip(shard_ranges(theta, threads)) {
                scope.spawn(move |_| worker.accumulate(pool, seeds, is_seed, range, mode));
            }
        })
        .expect("intervention-estimator worker panicked");
    }
    let mut iter = workers.into_iter();
    let first = iter.next().expect("at least one worker");
    let mut edge_delta = first.edge_delta;
    let mut vertex_delta = first.vertex_delta;
    let mut reached_total = first.reached_sum;
    for worker in iter {
        reached_total += worker.reached_sum;
        for (edge, d) in worker.edge_delta {
            *edge_delta.entry(edge).or_insert(0) += d;
        }
        for (acc, d) in vertex_delta.iter_mut().zip(worker.vertex_delta) {
            *acc += d;
        }
    }
    (edge_delta, vertex_delta, reached_total)
}

/// Algorithm 2 generalised to prebunking: estimates the spread decrease of
/// every candidate vertex when the vertices of `prebunked` accept incoming
/// activations only with probability `alpha`, by re-rooting the θ stored
/// realisations through the deterministic thinning coins.
///
/// With `alpha = 1.0` the coin keeps every edge, so the returned estimate
/// is byte-identical to [`crate::pool::pooled_decrease`] with nothing
/// blocked — the property test pins this.
///
/// # Errors
/// Returns an error on an empty/out-of-range seed set, a wrong-length
/// `prebunked` mask, or an invalid `alpha`.
pub fn pooled_prebunk_decrease(
    pool: &SamplePool,
    seeds: &[VertexId],
    prebunked: &[bool],
    alpha: f64,
    threads: usize,
) -> Result<DecreaseEstimate> {
    let n = pool.num_vertices();
    if prebunked.len() != n {
        return Err(IminError::Diffusion(
            imin_diffusion::DiffusionError::MaskLengthMismatch {
                mask_len: prebunked.len(),
                num_vertices: n,
            },
        ));
    }
    Intervention::Prebunk { alpha }.validate()?;
    let (staged, is_seed) = stage_seeds(n, seeds)?;
    let mode = Mode::Prebunk {
        prebunked,
        keep_threshold: alpha_threshold(alpha),
        pool_seed: pool.pool_seed(),
    };
    let (_, vertex_delta, reached_total) =
        sharded_accumulate(pool, &staged, &is_seed, threads, &mode);
    let theta = pool.theta();
    let inv = 1.0 / theta as f64;
    Ok(DecreaseEstimate {
        delta: vertex_delta.iter().map(|&d| d as f64 * inv).collect(),
        average_reached: reached_total as f64 * inv,
        samples: theta,
    })
}

/// Greedy edge blocking against a borrowed resident pool: every round
/// prices all live edges by the sole-in-edge dominator credit, deletes the
/// best one from every realisation, and re-evaluates — so the reported
/// `estimated_spread` is exact with respect to the pool, not an
/// accumulation of stale estimates.
///
/// With `seed_first` set (the GreedyReplace-flavoured variant), rounds
/// prefer edges leaving the seed set while any such edge still has positive
/// credit, mirroring Algorithm 4's out-neighbour phase.
///
/// The selection stops early when no remaining edge has positive credit
/// (deleting any edge would change nothing), so fewer than `budget` edges
/// may be returned.
///
/// # Errors
/// Returns an error on a zero budget or an empty/out-of-range seed set.
pub fn pooled_edge_greedy_in(
    pool: &SamplePool,
    seeds: &[VertexId],
    budget: usize,
    threads: usize,
    seed_first: bool,
) -> Result<BlockerSelection> {
    let start = Instant::now();
    if budget == 0 {
        return Err(IminError::ZeroBudget);
    }
    let n = pool.num_vertices();
    let (staged, is_seed) = stage_seeds(n, seeds)?;
    let theta = pool.theta();
    let mut deleted: HashSet<(u32, u32)> = HashSet::new();
    let mut deleted_src = vec![false; n];
    let mut blocked_edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(budget);
    let mut stats = SelectionStats::default();
    let mut estimated_spread = None;
    for round in 0..budget {
        let mode = Mode::Edge {
            deleted: &deleted,
            deleted_src: &deleted_src,
        };
        let (edge_delta, _, reached_total) =
            sharded_accumulate(pool, &staged, &is_seed, threads, &mode);
        stats.samples_drawn += theta;
        let average_reached = reached_total as f64 / theta as f64;
        // Deterministic argmax whatever the map's iteration order: largest
        // credit first, ties towards the lexicographically smallest edge.
        let mut best: Option<((u32, u32), u64)> = None;
        for (&edge, &delta) in &edge_delta {
            if seed_first
                && !is_seed[edge.0 as usize]
                && edge_delta
                    .iter()
                    .any(|(e, &d)| is_seed[e.0 as usize] && d > 0)
            {
                continue;
            }
            let better = match best {
                None => delta > 0,
                Some((b_edge, b_delta)) => delta > b_delta || (delta == b_delta && edge < b_edge),
            };
            if better {
                best = Some((edge, delta));
            }
        }
        let Some(((src, dst), delta)) = best else {
            estimated_spread = Some(average_reached);
            break;
        };
        estimated_spread = Some(average_reached - delta as f64 / theta as f64);
        deleted.insert((src, dst));
        deleted_src[src as usize] = true;
        blocked_edges.push((VertexId::from_raw(src), VertexId::from_raw(dst)));
        stats.rounds = round + 1;
    }
    stats.elapsed = start.elapsed();
    Ok(BlockerSelection {
        blockers: Vec::new(),
        blocked_edges,
        estimated_spread,
        stats,
    })
}

/// Greedy prebunking against a borrowed resident pool: every round prices
/// candidates with [`pooled_prebunk_decrease`] under the prebunk set chosen
/// so far, adds the best one, and finishes with one full evaluation pass so
/// `estimated_spread` reflects the complete intervention (the per-round
/// vertex credits are blocking credits — an upper bound on the prebunk
/// gain whenever `alpha > 0` — so the final pass keeps the report honest).
///
/// With `replace` set (the GreedyReplace-flavoured variant), a reverse
/// replacement sweep revisits each chosen vertex, mirroring Algorithm 4's
/// phase 2 with the same early-termination rule.
///
/// # Errors
/// Returns an error on a zero budget, an empty/out-of-range seed set, a
/// wrong-length forbidden mask, or an invalid `alpha`.
pub fn pooled_prebunk_greedy_in(
    pool: &SamplePool,
    seeds: &[VertexId],
    forbidden: &[bool],
    budget: usize,
    alpha: f64,
    threads: usize,
    replace: bool,
) -> Result<BlockerSelection> {
    let start = Instant::now();
    if budget == 0 {
        return Err(IminError::ZeroBudget);
    }
    let n = pool.num_vertices();
    if forbidden.len() != n {
        return Err(IminError::Diffusion(
            imin_diffusion::DiffusionError::MaskLengthMismatch {
                mask_len: forbidden.len(),
                num_vertices: n,
            },
        ));
    }
    Intervention::Prebunk { alpha }.validate()?;
    let (_, is_seed) = stage_seeds(n, seeds)?;
    let mut prebunked = vec![false; n];
    let mut chosen_order: Vec<VertexId> = Vec::with_capacity(budget);
    let mut stats = SelectionStats::default();
    for round in 0..budget {
        let estimate = pooled_prebunk_decrease(pool, seeds, &prebunked, alpha, threads)?;
        stats.samples_drawn += estimate.samples;
        let chosen = estimate.best_candidate(|v| {
            !is_seed[v.index()] && !prebunked[v.index()] && !forbidden[v.index()]
        });
        let Some(chosen) = chosen else { break };
        prebunked[chosen.index()] = true;
        chosen_order.push(chosen);
        stats.rounds = round + 1;
    }
    if replace {
        for idx in (0..chosen_order.len()).rev() {
            let u = chosen_order[idx];
            prebunked[u.index()] = false;
            stats.rounds += 1;
            let estimate = pooled_prebunk_decrease(pool, seeds, &prebunked, alpha, threads)?;
            stats.samples_drawn += estimate.samples;
            let chosen = estimate.best_candidate(|v| {
                !is_seed[v.index()] && !prebunked[v.index()] && !forbidden[v.index()]
            });
            let Some(chosen) = chosen else {
                prebunked[u.index()] = true;
                break;
            };
            prebunked[chosen.index()] = true;
            chosen_order[idx] = chosen;
            if chosen == u {
                break;
            }
        }
    }
    // One final pass with the complete prebunk set applied: the honest
    // expected spread under the intervention, exact w.r.t. the pool+coins.
    let final_estimate = pooled_prebunk_decrease(pool, seeds, &prebunked, alpha, threads)?;
    stats.samples_drawn += final_estimate.samples;
    stats.elapsed = start.elapsed();
    Ok(BlockerSelection {
        blockers: chosen_order,
        blocked_edges: Vec::new(),
        estimated_spread: Some(final_estimate.average_reached),
        stats,
    })
}

/// Guard for vertex-only solvers: passes vertex-blocking requests through
/// and rejects the sibling families with the typed unsupported error.
pub(crate) fn require_vertex(
    intervention: Intervention,
    algorithm: &'static str,
    backend: &'static str,
) -> Result<()> {
    match intervention {
        Intervention::BlockVertices => Ok(()),
        other => Err(IminError::InterventionUnsupported {
            algorithm,
            backend,
            intervention: other.family(),
        }),
    }
}

/// Shared non-vertex dispatch for the pooled greedy family
/// (AdvancedGreedy and GreedyReplace): routes edge-blocking and prebunking
/// requests to the pooled selectors above, and rejects every other backend
/// with the typed unsupported error — the fresh and sketch backends answer
/// vertex requests only.
///
/// `replace_flavour` selects the GreedyReplace-shaped variants
/// (`seed_first` edge rounds, prebunk replacement sweep).
///
/// The request's forbidden set is a vertex-level constraint and is ignored
/// by edge blocking: an edge may be cut even when one of its endpoints is
/// protected from *vertex* removal.
pub(crate) fn solve_pooled_intervention(
    algorithm: &'static str,
    request: &ContainmentRequest<'_>,
    replace_flavour: bool,
) -> Result<BlockerSelection> {
    match *request.backend() {
        EvalBackend::Pooled { pool, threads } => match request.intervention() {
            Intervention::BlockEdges => pooled_edge_greedy_in(
                pool,
                request.seeds(),
                request.budget(),
                threads,
                replace_flavour,
            ),
            Intervention::Prebunk { alpha } => pooled_prebunk_greedy_in(
                pool,
                request.seeds(),
                request.forbidden().mask(),
                request.budget(),
                alpha,
                threads,
                replace_flavour,
            ),
            Intervention::BlockVertices => {
                unreachable!("vertex requests take the solver's own path")
            }
        },
        ref other => Err(IminError::InterventionUnsupported {
            algorithm,
            backend: other.label(),
            intervention: request.intervention().family(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::pooled_decrease;
    use imin_graph::{generators, DiGraph};

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// 0 -> 1 -> {2, 3}, plus a shortcut 0 -> 3, all probability 1.
    fn diamond() -> DiGraph {
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
                (vid(0), vid(3), 1.0),
            ],
        )
        .unwrap()
    }

    fn wc_pa(n: usize, seed: u64) -> DiGraph {
        imin_diffusion::ProbabilityModel::WeightedCascade
            .apply(&generators::preferential_attachment(n, 3, true, 1.0, seed).unwrap())
            .unwrap()
    }

    #[test]
    fn intervention_parses_and_round_trips() {
        for (spec, expected) in [
            ("vertex", Intervention::BlockVertices),
            ("VERTEX", Intervention::BlockVertices),
            ("edges", Intervention::BlockEdges),
            ("prebunk:0.5", Intervention::Prebunk { alpha: 0.5 }),
            ("prebunk:1", Intervention::Prebunk { alpha: 1.0 }),
            ("prebunk:0", Intervention::Prebunk { alpha: 0.0 }),
        ] {
            assert_eq!(spec.parse::<Intervention>().unwrap(), expected, "{spec}");
        }
        for bad in [
            "",
            "prebunk",
            "prebunk:",
            "prebunk:x",
            "prebunk:-0.1",
            "prebunk:1.5",
            "prebunk:nan",
            "prebunk:inf",
            "edgy",
            "vertex:0.5",
        ] {
            assert!(
                matches!(
                    bad.parse::<Intervention>(),
                    Err(IminError::InvalidIntervention { .. })
                ),
                "{bad:?} must be rejected"
            );
        }
        let display = Intervention::Prebunk { alpha: 0.125 }.to_string();
        assert_eq!(
            display.parse::<Intervention>().unwrap().to_string(),
            display
        );
    }

    #[test]
    fn edge_greedy_cuts_the_sole_feeder_edge() {
        let g = diamond();
        let pool = SamplePool::build(&g, 8, 3).unwrap();
        // Deleting (1, 2) detaches only 2; (0, 1) detaches 1 and 2 (3 stays
        // reachable via the shortcut). The greedy must take (0, 1) first.
        let sel = pooled_edge_greedy_in(&pool, &[vid(0)], 1, 1, false).unwrap();
        assert_eq!(sel.blocked_edges, vec![(vid(0), vid(1))]);
        assert!(sel.blockers.is_empty());
        // Spread 4.0 before (the seed counts); 2.0 after — seed plus vertex
        // 3, which stays reachable through the shortcut.
        assert_eq!(sel.estimated_spread, Some(2.0));
        // A larger budget keeps cutting until no edge helps any more (the
        // seed's own activation cannot be cut, so spread bottoms out at 1).
        let all = pooled_edge_greedy_in(&pool, &[vid(0)], 4, 1, false).unwrap();
        assert_eq!(all.blocked_edges, vec![(vid(0), vid(1)), (vid(0), vid(3))]);
        assert_eq!(all.estimated_spread, Some(1.0));
    }

    #[test]
    fn edge_greedy_is_thread_count_invariant() {
        let g = wc_pa(300, 11);
        let pool = SamplePool::build(&g, 64, 9).unwrap();
        let one = pooled_edge_greedy_in(&pool, &[vid(0), vid(5)], 4, 1, false).unwrap();
        let four = pooled_edge_greedy_in(&pool, &[vid(0), vid(5)], 4, 4, false).unwrap();
        assert_eq!(one.blocked_edges, four.blocked_edges);
        assert_eq!(one.estimated_spread, four.estimated_spread);
    }

    #[test]
    fn prebunk_alpha_one_is_byte_identical_to_no_intervention() {
        let g = wc_pa(400, 7);
        let pool = SamplePool::build(&g, 128, 21).unwrap();
        let none = vec![false; g.num_vertices()];
        let baseline = pooled_decrease(&pool, &[vid(0), vid(3)], &none, 1).unwrap();
        // Prebunk the whole graph at alpha = 1.0: the coin keeps every
        // edge, so the estimate is byte-identical to no intervention.
        let everyone = vec![true; g.num_vertices()];
        for threads in [1, 4] {
            let thinned =
                pooled_prebunk_decrease(&pool, &[vid(0), vid(3)], &everyone, 1.0, threads).unwrap();
            assert_eq!(
                thinned.average_reached.to_bits(),
                baseline.average_reached.to_bits()
            );
            assert_eq!(thinned.delta.len(), baseline.delta.len());
            for (a, b) in thinned.delta.iter().zip(&baseline.delta) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn prebunk_alpha_zero_matches_vertex_blocking_estimates() {
        let g = wc_pa(300, 5);
        let pool = SamplePool::build(&g, 64, 13).unwrap();
        // alpha = 0 never keeps an edge into the treated vertex — exactly a
        // vertex block as far as reachability is concerned.
        let mut mask = vec![false; g.num_vertices()];
        mask[7] = true;
        mask[11] = true;
        let prebunk = pooled_prebunk_decrease(&pool, &[vid(0)], &mask, 0.0, 1).unwrap();
        let blocked = pooled_decrease(&pool, &[vid(0)], &mask, 1).unwrap();
        assert_eq!(
            prebunk.average_reached.to_bits(),
            blocked.average_reached.to_bits()
        );
    }

    #[test]
    fn prebunk_greedy_respects_constraints_and_reports_honest_spread() {
        let g = wc_pa(300, 17);
        let pool = SamplePool::build(&g, 64, 29).unwrap();
        let mut forbidden = vec![false; g.num_vertices()];
        forbidden[2] = true;
        let baseline = pooled_decrease(&pool, &[vid(0)], &vec![false; g.num_vertices()], 1)
            .unwrap()
            .average_reached;
        let sel = pooled_prebunk_greedy_in(&pool, &[vid(0)], &forbidden, 3, 0.3, 1, false).unwrap();
        assert_eq!(sel.blockers.len(), 3);
        assert!(!sel.blockers.contains(&vid(0)), "never the seed");
        assert!(!sel.blockers.contains(&vid(2)), "never a forbidden vertex");
        let spread = sel.estimated_spread.unwrap();
        assert!(
            spread <= baseline,
            "prebunking must not increase the expected spread ({spread} > {baseline})"
        );
        // Thread-count invariance carries over to the full greedy.
        let four =
            pooled_prebunk_greedy_in(&pool, &[vid(0)], &forbidden, 3, 0.3, 4, false).unwrap();
        assert_eq!(four.blockers, sel.blockers);
        assert_eq!(four.estimated_spread, sel.estimated_spread);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = diamond();
        let pool = SamplePool::build(&g, 4, 1).unwrap();
        assert!(matches!(
            pooled_edge_greedy_in(&pool, &[vid(0)], 0, 1, false),
            Err(IminError::ZeroBudget)
        ));
        assert!(matches!(
            pooled_edge_greedy_in(&pool, &[], 1, 1, false),
            Err(IminError::EmptySeedSet)
        ));
        assert!(matches!(
            pooled_edge_greedy_in(&pool, &[vid(9)], 1, 1, false),
            Err(IminError::SeedOutOfRange { .. })
        ));
        assert!(matches!(
            pooled_prebunk_greedy_in(&pool, &[vid(0)], &[false; 4], 1, 1.5, 1, false),
            Err(IminError::InvalidIntervention { .. })
        ));
        assert!(matches!(
            pooled_prebunk_decrease(&pool, &[vid(0)], &[false; 3], 0.5, 1),
            Err(IminError::Diffusion(_))
        ));
    }
}
