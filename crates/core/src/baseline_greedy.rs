//! The BaselineGreedy algorithm (Algorithm 1) — the state of the art the
//! paper improves upon.
//!
//! In every one of the `b` rounds the algorithm evaluates, for **every**
//! candidate blocker, the decrease of expected spread caused by blocking it,
//! using Monte-Carlo simulation, and greedily blocks the best candidate.
//! With `r` simulation rounds this costs `O(b · n · r · m)` (§V-A), which is
//! why it cannot finish within 24 hours on most of the paper's datasets
//! (Figures 7 and 8). It is included as the comparator for the efficiency
//! experiments and as an effectiveness oracle on small graphs.

//!
//! The preferred entry point is the [`BaselineGreedy`] solver behind a
//! [`crate::ContainmentRequest`] (`Fresh` backend only — the algorithm is
//! defined by Monte-Carlo simulation, which a resident sample pool does not
//! provide). The [`baseline_greedy`] free function is a thin single-source
//! shim over it.

use crate::request::{shim_request_from_config, ContainmentRequest, EvalBackend};
use crate::solver::{AlgorithmKind, BlockerSolver};
use crate::types::{AlgorithmConfig, BlockerSelection, SelectionStats};
use crate::{IminError, Result};
use imin_diffusion::montecarlo::MonteCarloEstimator;
use imin_graph::{DiGraph, VertexId};
use std::time::Instant;

/// Algorithm 1 behind the unified request API (`BG` in the figures).
///
/// Requires a `Fresh` backend; `Pooled` requests are rejected with
/// [`IminError::BackendUnsupported`] because the per-candidate evaluation
/// is Monte-Carlo simulation, not live-edge re-rooting.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineGreedy;

impl BlockerSolver for BaselineGreedy {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::BaselineGreedy
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        crate::intervene::require_vertex(
            request.intervention(),
            self.kind().name(),
            request.backend().label(),
        )?;
        let EvalBackend::Fresh { seed, threads, .. } = *request.backend() else {
            return Err(IminError::BackendUnsupported {
                algorithm: self.kind().name(),
                backend: request.backend().label(),
            });
        };
        let start = Instant::now();
        let n = graph.num_vertices();
        let budget = request.budget();
        let rounds = request.mcs_rounds();
        if rounds == 0 {
            return Err(IminError::ZeroSamples);
        }

        let estimator = MonteCarloEstimator {
            rounds,
            threads,
            seed,
        };

        let mut blocked = vec![false; n];
        let mut blockers = Vec::with_capacity(budget);
        let mut stats = SelectionStats::default();
        let mut current_spread = estimator
            .expected_spread_blocked(graph, request.seeds(), Some(&blocked))?
            .mean;
        stats.mcs_rounds_run += rounds;

        for round in 0..budget {
            let mut best: Option<(f64, VertexId)> = None;
            // Enumerate every candidate blocker, exactly as Algorithm 1 does.
            for v in graph.vertices() {
                if blocked[v.index()] || !request.is_candidate(v) {
                    continue;
                }
                blocked[v.index()] = true;
                let spread_after = estimator
                    .expected_spread_blocked(graph, request.seeds(), Some(&blocked))?
                    .mean;
                blocked[v.index()] = false;
                stats.mcs_rounds_run += rounds;
                let decrease = current_spread - spread_after;
                match best {
                    None => best = Some((decrease, v)),
                    Some((bd, _)) if decrease > bd => best = Some((decrease, v)),
                    _ => {}
                }
            }
            let Some((decrease, chosen)) = best else {
                break; // no candidate left
            };
            blocked[chosen.index()] = true;
            blockers.push(chosen);
            current_spread -= decrease;
            stats.rounds = round + 1;
        }

        stats.elapsed = start.elapsed();
        Ok(BlockerSelection {
            blockers,
            estimated_spread: Some(current_spread),
            blocked_edges: Vec::new(),
            stats,
        })
    }
}

/// Runs BaselineGreedy for a single source vertex — the single-source shim
/// over the [`BaselineGreedy`] solver.
///
/// `forbidden[v] = true` marks vertices that may never be blocked (the
/// original seeds and the unified seed); the source itself is always
/// excluded. The returned blockers are in selection order and the
/// `estimated_spread` field carries the Monte-Carlo estimate of the spread
/// that remains after blocking (counting the source as one active vertex).
///
/// # Errors
/// Returns an error on an empty budget, zero Monte-Carlo rounds, or an
/// out-of-range source.
pub fn baseline_greedy(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<BlockerSelection> {
    let request = shim_request_from_config(graph, &[source], forbidden, budget, config)?;
    BaselineGreedy.solve(graph, &request)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn config() -> AlgorithmConfig {
        AlgorithmConfig::fast_for_tests().with_mcs_rounds(400)
    }

    /// 0 -> 1 -> {2, 3, 4}, 0 -> 5. Blocking 1 is clearly optimal for b = 1.
    fn hub_graph() -> DiGraph {
        DiGraph::from_edges(
            6,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
                (vid(1), vid(4), 1.0),
                (vid(0), vid(5), 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn picks_the_obvious_hub_first() {
        let g = hub_graph();
        let sel = baseline_greedy(&g, vid(0), &[false; 6], 1, &config()).unwrap();
        assert_eq!(sel.blockers, vec![vid(1)]);
        // Remaining spread: the seed and vertex 5.
        assert!((sel.estimated_spread.unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(sel.stats.rounds, 1);
        assert!(sel.stats.mcs_rounds_run > 0);
    }

    #[test]
    fn respects_budget_and_selection_order() {
        let g = hub_graph();
        let sel = baseline_greedy(&g, vid(0), &[false; 6], 2, &config()).unwrap();
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.blockers[0], vid(1));
        assert_eq!(sel.blockers[1], vid(5));
        assert!((sel.estimated_spread.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn forbidden_vertices_are_never_chosen() {
        let g = hub_graph();
        let mut forbidden = vec![false; 6];
        forbidden[1] = true;
        let sel = baseline_greedy(&g, vid(0), &forbidden, 1, &config()).unwrap();
        assert_ne!(sel.blockers[0], vid(1));
        // Next best is vertex 5 or one of 2/3/4 (all decrease by 1);
        // vertex 2 wins ties by id order through the strict `>` comparison.
        assert_eq!(sel.blockers[0], vid(2));
    }

    #[test]
    fn budget_larger_than_candidates_blocks_everything_blockable() {
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 1.0)]).unwrap();
        let sel = baseline_greedy(&g, vid(0), &[false; 2], 10, &config()).unwrap();
        assert_eq!(sel.blockers, vec![vid(1)]);
        assert!((sel.estimated_spread.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = hub_graph();
        assert!(matches!(
            baseline_greedy(&g, vid(0), &[false; 6], 0, &config()),
            Err(IminError::ZeroBudget)
        ));
        assert!(baseline_greedy(&g, vid(9), &[false; 6], 1, &config()).is_err());
        let zero_rounds = AlgorithmConfig::fast_for_tests().with_mcs_rounds(0);
        assert!(matches!(
            baseline_greedy(&g, vid(0), &[false; 6], 1, &zero_rounds),
            Err(IminError::ZeroSamples)
        ));
    }
}
