//! The unified containment query: one request type for every algorithm and
//! both evaluation backends.
//!
//! Every method in this crate — the paper's AdvancedGreedy, GreedyReplace
//! and BaselineGreedy, the Exact oracle, and the Rand/OutDegree/Degree/
//! OutNeighbors/PageRank heuristics (§VI-A, Table VII) — answers the same
//! question: *pick `b` blockers for a seed set under a diffusion model*.
//! [`ContainmentRequest`] is that question as a value:
//!
//! * `seeds` — the misinformation seed set. Multi-seed everywhere; a single
//!   source is simply the one-element case.
//! * `budget` — the maximum number of blockers.
//! * [`ForbiddenSet`] — vertices that may never be blocked, as a typed set
//!   instead of a hand-rolled `&[bool]` mask. Seeds are *implicitly*
//!   ineligible and must not appear here (the builder rejects the overlap).
//! * [`EvalBackend`] — how candidate blockers are priced: `Fresh`
//!   self-sampling (the historical per-round redraw driven by what used to
//!   be [`AlgorithmConfig`]) or `Pooled` re-rooting of a resident
//!   [`SamplePool`]. Callers choose amortisation, not function names.
//!
//! Requests are built through a validating builder: empty, duplicate or
//! out-of-range seeds, a zero budget, a wrong-length forbidden mask, a
//! forbidden/seed overlap and a pool built from a different graph are all
//! rejected with typed [`IminError`]s before any algorithm runs. A zero
//! `Fresh` θ passes the builder (rank-only heuristics never sample) and is
//! reported as [`IminError::ZeroSamples`] by the sampling solvers, exactly
//! as the legacy entry points did.
//!
//! ```
//! use imin_core::{AlgorithmKind, ContainmentRequest};
//! use imin_graph::{generators, VertexId};
//!
//! let graph = generators::preferential_attachment(300, 3, false, 0.1, 7).unwrap();
//! let request = ContainmentRequest::builder(&graph)
//!     .seeds([VertexId::new(0), VertexId::new(3)])
//!     .budget(5)
//!     .fresh(400, 0xBEEF, 1)
//!     .build()
//!     .unwrap();
//! let selection = AlgorithmKind::GreedyReplace
//!     .solver()
//!     .solve(&graph, &request)
//!     .unwrap();
//! assert!(selection.blockers.len() <= 5);
//! ```

use crate::intervene::Intervention;
use crate::pool::SamplePool;
use crate::ris::SketchPool;
use crate::types::AlgorithmConfig;
use crate::{IminError, Result};
use imin_graph::{DiGraph, VertexId};

/// A typed set of vertices that may never be chosen as blockers.
///
/// Replaces the hand-rolled `&[bool]` masks of the legacy free functions.
/// The mask always spans every vertex of the graph the request is built
/// against (`len() == num_vertices`); length is validated when the request
/// is built, range when constructing [`ForbiddenSet::from_vertices`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForbiddenSet {
    mask: Vec<bool>,
}

impl ForbiddenSet {
    /// An empty forbidden set over `num_vertices` vertices.
    pub fn none(num_vertices: usize) -> Self {
        ForbiddenSet {
            mask: vec![false; num_vertices],
        }
    }

    /// Wraps an existing boolean mask (`mask[v] = true` ⇒ `v` may never be
    /// blocked). The length is validated against the graph when the request
    /// is built.
    pub fn from_mask(mask: impl Into<Vec<bool>>) -> Self {
        ForbiddenSet { mask: mask.into() }
    }

    /// Builds the set from an explicit vertex list over a graph with
    /// `num_vertices` vertices.
    ///
    /// # Errors
    /// Returns [`IminError::InvalidBlocker`] if a vertex is out of range.
    pub fn from_vertices(num_vertices: usize, vertices: &[VertexId]) -> Result<Self> {
        let mut mask = vec![false; num_vertices];
        for &v in vertices {
            if v.index() >= num_vertices {
                return Err(IminError::InvalidBlocker {
                    vertex: v.index(),
                    reason: "forbidden vertex does not exist in the graph",
                });
            }
            mask[v.index()] = true;
        }
        Ok(ForbiddenSet { mask })
    }

    /// The underlying boolean mask, in the form the low-level algorithm
    /// entry points consume.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Returns `true` if `v` is forbidden (out-of-range vertices are not).
    pub fn contains(&self, v: VertexId) -> bool {
        self.mask.get(v.index()).copied().unwrap_or(false)
    }

    /// Number of vertices the mask spans.
    pub fn num_vertices(&self) -> usize {
        self.mask.len()
    }

    /// Number of forbidden vertices.
    pub fn count(&self) -> usize {
        self.mask.iter().filter(|&&f| f).count()
    }
}

/// How a request prices candidate blockers.
#[derive(Clone, Copy, Debug)]
pub enum EvalBackend<'p> {
    /// Self-sampling: θ fresh live-edge samples are drawn per greedy round
    /// from `seed`-derived RNG streams across `threads` workers — the
    /// historical behaviour of the classic entry points, previously
    /// configured through [`AlgorithmConfig`].
    Fresh {
        /// Number of sampled graphs θ per estimator round.
        theta: usize,
        /// Base RNG seed; all randomness in the run derives from it.
        seed: u64,
        /// Worker threads for sampling and Monte-Carlo estimation.
        threads: usize,
    },
    /// Re-rooting of a resident [`SamplePool`]: no new samples are ever
    /// drawn, the pool's θ realisations are re-rooted at the request's seed
    /// set each round. Answers are bit-identical at any `threads` value
    /// (see [`crate::pool`]).
    Pooled {
        /// The borrowed resident pool.
        pool: &'p SamplePool,
        /// Worker threads for the re-rooting BFS + dominator-tree passes
        /// (a performance knob only — results never depend on it).
        threads: usize,
    },
    /// Transient reverse-reachable sketches: θ_r reverse BFS sketches are
    /// drawn for this one request and discarded (see [`crate::ris`]).
    Sketch {
        /// Number of reverse-reachable sketches θ_r.
        theta_r: usize,
        /// Base RNG seed the indexed per-sketch streams derive from.
        seed: u64,
        /// Worker threads for the sketch build (a performance knob only —
        /// sketches are bit-identical at any thread count).
        threads: usize,
    },
    /// A resident [`SketchPool`]: coverage lookups against pre-built
    /// reverse-reachable sketches, no sampling at query time (see
    /// [`crate::ris`]).
    SketchPooled {
        /// The borrowed resident sketch pool.
        pool: &'p SketchPool,
        /// Worker threads (a performance knob only — results never depend
        /// on it).
        threads: usize,
    },
}

impl EvalBackend<'_> {
    /// Short identifier used in error messages and logs.
    pub fn label(&self) -> &'static str {
        match self {
            EvalBackend::Fresh { .. } => "fresh",
            EvalBackend::Pooled { .. } => "pooled",
            EvalBackend::Sketch { .. } => "sketch",
            EvalBackend::SketchPooled { .. } => "sketch-pooled",
        }
    }

    /// The RNG seed randomised algorithms should derive from: the `Fresh`
    /// or `Sketch` base seed, or the pool seed under `Pooled` /
    /// `SketchPooled` (so pooled answers stay a pure function of the pool
    /// identity).
    pub fn rng_seed(&self) -> u64 {
        match self {
            EvalBackend::Fresh { seed, .. } | EvalBackend::Sketch { seed, .. } => *seed,
            EvalBackend::Pooled { pool, .. } => pool.pool_seed(),
            EvalBackend::SketchPooled { pool, .. } => pool.pool_seed(),
        }
    }

    /// The worker-thread count of any backend.
    pub fn threads(&self) -> usize {
        match self {
            EvalBackend::Fresh { threads, .. }
            | EvalBackend::Pooled { threads, .. }
            | EvalBackend::Sketch { threads, .. }
            | EvalBackend::SketchPooled { threads, .. } => *threads,
        }
    }
}

/// One validated containment question: which `budget` vertices should be
/// blocked to minimise the expected spread from `seeds`?
///
/// Build through [`ContainmentRequest::builder`]; solve through any
/// [`crate::BlockerSolver`], usually obtained from the
/// [`crate::AlgorithmKind`] registry. The seed list is canonical (sorted,
/// deduplicated) by construction.
#[derive(Clone, Debug)]
pub struct ContainmentRequest<'p> {
    seeds: Vec<VertexId>,
    budget: usize,
    forbidden: ForbiddenSet,
    backend: EvalBackend<'p>,
    intervention: Intervention,
    mcs_rounds: usize,
}

impl<'p> ContainmentRequest<'p> {
    /// Starts a builder for a request over `graph` (the graph fixes the
    /// vertex-range, mask-length and pool-shape validation).
    pub fn builder(graph: &DiGraph) -> ContainmentRequestBuilder<'p> {
        ContainmentRequestBuilder::new(graph.num_vertices(), graph.num_edges())
    }

    /// The canonical (sorted, deduplicated) seed set.
    pub fn seeds(&self) -> &[VertexId] {
        &self.seeds
    }

    /// Maximum number of blockers.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The vertices that may never be blocked (seeds are implicitly
    /// ineligible on top of this set).
    pub fn forbidden(&self) -> &ForbiddenSet {
        &self.forbidden
    }

    /// The evaluation backend.
    pub fn backend(&self) -> &EvalBackend<'p> {
        &self.backend
    }

    /// The intervention family the budget buys: vertex blocking (the
    /// default), edge blocking, or prebunking.
    pub fn intervention(&self) -> Intervention {
        self.intervention
    }

    /// Monte-Carlo rounds for algorithms that simulate cascades
    /// (BaselineGreedy and the Exact oracle's evaluator).
    pub fn mcs_rounds(&self) -> usize {
        self.mcs_rounds
    }

    /// Number of vertices of the graph the request was built against.
    pub fn num_vertices(&self) -> usize {
        self.forbidden.num_vertices()
    }

    /// Returns `true` if `v` is one of the request's seeds.
    pub fn is_seed(&self, v: VertexId) -> bool {
        self.seeds.binary_search(&v).is_ok()
    }

    /// Returns `true` if `v` may be chosen as a blocker: not a seed and not
    /// forbidden.
    pub fn is_candidate(&self, v: VertexId) -> bool {
        !self.is_seed(v) && !self.forbidden.contains(v)
    }

    /// Checks that `graph` is the graph this request was built against
    /// (solvers call this before touching any mask).
    ///
    /// # Errors
    /// Returns a mask-length mismatch if the vertex counts differ.
    pub fn ensure_graph(&self, graph: &DiGraph) -> Result<()> {
        if graph.num_vertices() != self.num_vertices() {
            return Err(IminError::Diffusion(
                imin_diffusion::DiffusionError::MaskLengthMismatch {
                    mask_len: self.num_vertices(),
                    num_vertices: graph.num_vertices(),
                },
            ));
        }
        Ok(())
    }
}

/// Validating builder for [`ContainmentRequest`] — see the module docs for
/// the full list of rejected inputs.
#[derive(Clone, Debug)]
pub struct ContainmentRequestBuilder<'p> {
    num_vertices: usize,
    num_edges: usize,
    seeds: Vec<VertexId>,
    budget: usize,
    forbidden: Option<ForbiddenSet>,
    backend: Option<EvalBackend<'p>>,
    intervention: Intervention,
    mcs_rounds: usize,
}

impl<'p> ContainmentRequestBuilder<'p> {
    fn new(num_vertices: usize, num_edges: usize) -> Self {
        ContainmentRequestBuilder {
            num_vertices,
            num_edges,
            seeds: Vec::new(),
            budget: 0,
            forbidden: None,
            backend: None,
            intervention: Intervention::default(),
            mcs_rounds: AlgorithmConfig::default().mcs_rounds,
        }
    }

    /// Adds one seed vertex.
    pub fn seed(mut self, seed: VertexId) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Adds every seed of an iterator.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = VertexId>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Sets the blocking budget (must be positive).
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the forbidden set (defaults to empty).
    pub fn forbid(mut self, forbidden: ForbiddenSet) -> Self {
        self.forbidden = Some(forbidden);
        self
    }

    /// Convenience for [`Self::forbid`] with a raw boolean mask.
    pub fn forbid_mask(self, mask: impl Into<Vec<bool>>) -> Self {
        self.forbid(ForbiddenSet::from_mask(mask))
    }

    /// Selects the self-sampling backend with explicit θ / seed / threads.
    pub fn fresh(mut self, theta: usize, seed: u64, threads: usize) -> Self {
        self.backend = Some(EvalBackend::Fresh {
            theta,
            seed,
            threads,
        });
        self
    }

    /// Selects the self-sampling backend configured from a legacy
    /// [`AlgorithmConfig`] (θ, seed, threads **and** Monte-Carlo rounds).
    pub fn fresh_from(mut self, config: &AlgorithmConfig) -> Self {
        self.mcs_rounds = config.mcs_rounds;
        self.fresh(config.theta, config.seed, config.threads)
    }

    /// Selects the resident-pool backend with the default worker-thread
    /// count.
    pub fn pooled(self, pool: &'p SamplePool) -> Self {
        let threads = imin_diffusion::montecarlo::default_threads();
        self.pooled_with_threads(pool, threads)
    }

    /// Selects the resident-pool backend with an explicit worker-thread
    /// count (results never depend on it — see [`crate::pool`]).
    pub fn pooled_with_threads(mut self, pool: &'p SamplePool, threads: usize) -> Self {
        self.backend = Some(EvalBackend::Pooled { pool, threads });
        self
    }

    /// Selects the transient reverse-sketch backend with explicit θ_r /
    /// seed / threads (see [`crate::ris`]).
    pub fn sketch(mut self, theta_r: usize, seed: u64, threads: usize) -> Self {
        self.backend = Some(EvalBackend::Sketch {
            theta_r,
            seed,
            threads,
        });
        self
    }

    /// Selects a resident reverse-sketch pool as the backend (results
    /// never depend on `threads` — see [`crate::ris`]).
    pub fn sketch_pooled(mut self, pool: &'p SketchPool, threads: usize) -> Self {
        self.backend = Some(EvalBackend::SketchPooled { pool, threads });
        self
    }

    /// Sets any explicit backend.
    pub fn backend(mut self, backend: EvalBackend<'p>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the intervention family (defaults to
    /// [`Intervention::BlockVertices`], the paper's behaviour). The budget
    /// then counts removed edges under [`Intervention::BlockEdges`] and
    /// prebunked vertices under [`Intervention::Prebunk`].
    pub fn intervention(mut self, intervention: Intervention) -> Self {
        self.intervention = intervention;
        self
    }

    /// Sets the Monte-Carlo round count used by simulation-based algorithms
    /// (defaults to the paper's r = 10 000).
    pub fn mcs_rounds(mut self, rounds: usize) -> Self {
        self.mcs_rounds = rounds;
        self
    }

    /// Validates and assembles the request.
    ///
    /// # Errors
    /// * [`IminError::ZeroBudget`] — `budget` is 0.
    /// * [`IminError::EmptySeedSet`] — no seed was supplied.
    /// * [`IminError::SeedOutOfRange`] — a seed is not a graph vertex.
    /// * [`IminError::DuplicateSeed`] — the same seed appears twice.
    /// * a mask-length mismatch — the forbidden mask does not span the
    ///   graph.
    /// * [`IminError::ForbiddenSeedOverlap`] — a seed is marked forbidden
    ///   (seeds are implicitly ineligible; an explicit overlap is a
    ///   mis-built request).
    /// * [`IminError::PoolGraphMismatch`] — a `Pooled` backend's pool was
    ///   built from a graph of a different size.
    /// * [`IminError::InvalidIntervention`] — a prebunk `alpha` outside
    ///   `[0, 1]` (or non-finite).
    pub fn build(self) -> Result<ContainmentRequest<'p>> {
        let n = self.num_vertices;
        if self.budget == 0 {
            return Err(IminError::ZeroBudget);
        }
        self.intervention.validate()?;
        if self.seeds.is_empty() {
            return Err(IminError::EmptySeedSet);
        }
        let mut seeds = self.seeds;
        for &s in &seeds {
            if s.index() >= n {
                return Err(IminError::SeedOutOfRange {
                    vertex: s.index(),
                    num_vertices: n,
                });
            }
        }
        seeds.sort_unstable();
        for pair in seeds.windows(2) {
            if pair[0] == pair[1] {
                return Err(IminError::DuplicateSeed {
                    vertex: pair[0].index(),
                });
            }
        }
        let backend = match self.backend {
            Some(backend) => backend,
            None => {
                let config = AlgorithmConfig::default();
                EvalBackend::Fresh {
                    theta: config.theta,
                    seed: config.seed,
                    threads: config.threads,
                }
            }
        };
        // A `Fresh { theta: 0, .. }` backend is *not* rejected here: only
        // the sampling solvers consume θ, and they report
        // [`IminError::ZeroSamples`] from the estimator exactly as the
        // legacy entry points did — heuristics that never sample keep
        // accepting a zeroed config.
        let pool_shape = match backend {
            EvalBackend::Pooled { pool, .. } => Some((pool.num_vertices(), pool.num_graph_edges())),
            EvalBackend::SketchPooled { pool, .. } => {
                Some((pool.num_vertices(), pool.num_graph_edges()))
            }
            _ => None,
        };
        if let Some((pool_vertices, pool_edges)) = pool_shape {
            if pool_vertices != n || pool_edges != self.num_edges {
                return Err(IminError::PoolGraphMismatch {
                    graph_vertices: n,
                    graph_edges: self.num_edges,
                    pool_vertices,
                    pool_edges,
                });
            }
        }
        let forbidden = self.forbidden.unwrap_or_else(|| ForbiddenSet::none(n));
        if forbidden.num_vertices() != n {
            return Err(IminError::Diffusion(
                imin_diffusion::DiffusionError::MaskLengthMismatch {
                    mask_len: forbidden.num_vertices(),
                    num_vertices: n,
                },
            ));
        }
        for &s in &seeds {
            if forbidden.contains(s) {
                return Err(IminError::ForbiddenSeedOverlap { vertex: s.index() });
            }
        }
        Ok(ContainmentRequest {
            seeds,
            budget: self.budget,
            forbidden,
            backend,
            intervention: self.intervention,
            mcs_rounds: self.mcs_rounds,
        })
    }
}

/// Builds the request a legacy free-function shim stands for: the given
/// seeds with a `Fresh` backend, tolerating masks that (redundantly) mark a
/// seed as forbidden — historical callers did that freely because seeds
/// were excluded by the algorithms anyway, so the seed bits are stripped
/// before the builder's overlap check.
#[allow(clippy::too_many_arguments)]
pub(crate) fn shim_request<'p>(
    graph: &DiGraph,
    seeds: &[VertexId],
    forbidden: &[bool],
    budget: usize,
    theta: usize,
    seed: u64,
    threads: usize,
    mcs_rounds: usize,
) -> Result<ContainmentRequest<'p>> {
    let mut mask = forbidden.to_vec();
    for &s in seeds {
        if let Some(slot) = mask.get_mut(s.index()) {
            *slot = false;
        }
    }
    ContainmentRequest::builder(graph)
        .seeds(seeds.iter().copied())
        .budget(budget)
        .forbid_mask(mask)
        .fresh(theta, seed, threads)
        .mcs_rounds(mcs_rounds)
        .build()
}

/// [`shim_request`] with every knob taken from a legacy [`AlgorithmConfig`].
pub(crate) fn shim_request_from_config<'p>(
    graph: &DiGraph,
    seeds: &[VertexId],
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<ContainmentRequest<'p>> {
    shim_request(
        graph,
        seeds,
        forbidden,
        budget,
        config.theta,
        config.seed,
        config.threads,
        config.mcs_rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn graph() -> DiGraph {
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn forbidden_set_constructors_and_queries() {
        let none = ForbiddenSet::none(3);
        assert_eq!(none.num_vertices(), 3);
        assert_eq!(none.count(), 0);
        let from_mask = ForbiddenSet::from_mask(vec![true, false, true]);
        assert!(from_mask.contains(vid(0)));
        assert!(!from_mask.contains(vid(1)));
        assert!(!from_mask.contains(vid(9)), "out of range is not forbidden");
        assert_eq!(from_mask.count(), 2);
        let from_vertices = ForbiddenSet::from_vertices(3, &[vid(0), vid(2)]).unwrap();
        assert_eq!(from_vertices, from_mask);
        assert!(matches!(
            ForbiddenSet::from_vertices(3, &[vid(5)]),
            Err(IminError::InvalidBlocker { vertex: 5, .. })
        ));
    }

    #[test]
    fn builder_canonicalises_and_defaults() {
        let g = graph();
        let req = ContainmentRequest::builder(&g)
            .seeds([vid(2), vid(0)])
            .budget(3)
            .fresh(16, 9, 2)
            .build()
            .unwrap();
        assert_eq!(req.seeds(), &[vid(0), vid(2)], "seeds are sorted");
        assert_eq!(req.budget(), 3);
        assert!(req.is_seed(vid(2)) && !req.is_seed(vid(1)));
        assert!(req.is_candidate(vid(1)) && !req.is_candidate(vid(0)));
        assert_eq!(req.num_vertices(), 4);
        assert_eq!(req.backend().label(), "fresh");
        assert_eq!(req.backend().rng_seed(), 9);
        assert_eq!(req.backend().threads(), 2);
        assert!(req.ensure_graph(&g).is_ok());
        let other = DiGraph::empty(2);
        assert!(req.ensure_graph(&other).is_err());
        // No explicit backend: paper-default Fresh.
        let req = ContainmentRequest::builder(&g)
            .seed(vid(0))
            .budget(1)
            .build()
            .unwrap();
        assert!(matches!(
            req.backend(),
            EvalBackend::Fresh { theta: 10_000, .. }
        ));
        assert_eq!(req.mcs_rounds(), 10_000);
    }

    #[test]
    fn builder_rejects_every_malformed_request() {
        let g = graph();
        let base = || ContainmentRequest::builder(&g).seed(vid(0)).budget(1);
        assert!(matches!(
            ContainmentRequest::builder(&g).seed(vid(0)).build(),
            Err(IminError::ZeroBudget)
        ));
        assert!(matches!(
            ContainmentRequest::builder(&g).budget(1).build(),
            Err(IminError::EmptySeedSet)
        ));
        assert!(matches!(
            base().seed(vid(9)).build(),
            Err(IminError::SeedOutOfRange {
                vertex: 9,
                num_vertices: 4
            })
        ));
        assert!(matches!(
            base().seed(vid(0)).build(),
            Err(IminError::DuplicateSeed { vertex: 0 })
        ));
        // θ = 0 is a solver concern, not a request-shape error: rank-only
        // heuristics never sample, so the builder lets it through.
        assert!(base().fresh(0, 1, 1).build().is_ok());
        assert!(matches!(
            base().forbid_mask(vec![false; 3]).build(),
            Err(IminError::Diffusion(_))
        ));
        assert!(matches!(
            base().forbid_mask(vec![true, false, false, false]).build(),
            Err(IminError::ForbiddenSeedOverlap { vertex: 0 })
        ));
    }

    #[test]
    fn pooled_backend_is_validated_against_the_graph() {
        let g = graph();
        let pool = SamplePool::build(&g, 4, 1).unwrap();
        let req = ContainmentRequest::builder(&g)
            .seed(vid(0))
            .budget(1)
            .pooled_with_threads(&pool, 2)
            .build()
            .unwrap();
        assert_eq!(req.backend().label(), "pooled");
        assert_eq!(req.backend().threads(), 2);
        assert_eq!(req.backend().rng_seed(), 1, "pool seed drives pooled RNG");
        let tiny = DiGraph::empty(2);
        assert!(matches!(
            ContainmentRequest::builder(&tiny)
                .seed(vid(0))
                .budget(1)
                .pooled(&pool)
                .build(),
            Err(IminError::PoolGraphMismatch { .. })
        ));
    }
}
