//! IMIN under the general triggering model (§V-E).
//!
//! The paper notes that its sampling + dominator-tree machinery is agnostic
//! to *how* the live-edge samples are drawn: any triggering model — IC and
//! LT being the canonical instances — yields sampled graphs on which
//! Algorithms 2–4 run unchanged. This module provides thin wrappers that
//! plug a [`TriggeringModel`] into the generic `*_with` entry points, plus a
//! spread evaluator for the resulting blocker sets.

use crate::advanced_greedy::advanced_greedy_with;
use crate::greedy_replace::{greedy_replace_with, GreedyReplaceOptions};
use crate::sampler::TriggeringSampler;
use crate::types::{AlgorithmConfig, BlockerSelection};
use crate::Result;
use imin_diffusion::triggering::{triggering_expected_spread, TriggeringModel};
use imin_graph::{DiGraph, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// AdvancedGreedy under an arbitrary triggering model.
pub fn advanced_greedy_triggering<M: TriggeringModel + Clone>(
    model: &M,
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<BlockerSelection> {
    let sampler = TriggeringSampler(model.clone());
    advanced_greedy_with(&sampler, graph, source, forbidden, budget, config)
}

/// GreedyReplace under an arbitrary triggering model.
pub fn greedy_replace_triggering<M: TriggeringModel + Clone>(
    model: &M,
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<BlockerSelection> {
    let sampler = TriggeringSampler(model.clone());
    greedy_replace_with(
        &sampler,
        graph,
        source,
        forbidden,
        budget,
        config,
        GreedyReplaceOptions::default(),
    )
}

/// Evaluates a blocker set under a triggering model by repeated live-edge
/// sampling (the triggering analogue of Monte-Carlo evaluation).
pub fn evaluate_triggering_spread<M: TriggeringModel>(
    model: &M,
    graph: &DiGraph,
    seeds: &[VertexId],
    blockers: &[VertexId],
    samples: usize,
    seed: u64,
) -> Result<f64> {
    let mut mask = vec![false; graph.num_vertices()];
    for &b in blockers {
        if b.index() < mask.len() {
            mask[b.index()] = true;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(triggering_expected_spread(
        graph,
        model,
        seeds,
        Some(&mask),
        samples,
        &mut rng,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_diffusion::triggering::{IcTriggering, LtTriggering};

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn hub_graph() -> DiGraph {
        DiGraph::from_edges(
            6,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
                (vid(1), vid(4), 1.0),
                (vid(0), vid(5), 1.0),
            ],
        )
        .unwrap()
    }

    fn cfg() -> AlgorithmConfig {
        AlgorithmConfig::fast_for_tests().with_theta(300)
    }

    #[test]
    fn ic_triggering_matches_plain_advanced_greedy() {
        let g = hub_graph();
        let sel =
            advanced_greedy_triggering(&IcTriggering, &g, vid(0), &[false; 6], 1, &cfg()).unwrap();
        assert_eq!(sel.blockers, vec![vid(1)]);
    }

    #[test]
    fn lt_triggering_produces_valid_blockers_and_reduces_spread() {
        let g = hub_graph();
        let sel =
            greedy_replace_triggering(&LtTriggering, &g, vid(0), &[false; 6], 2, &cfg()).unwrap();
        assert_eq!(sel.len(), 2);
        let before =
            evaluate_triggering_spread(&LtTriggering, &g, &[vid(0)], &[], 4_000, 3).unwrap();
        let after =
            evaluate_triggering_spread(&LtTriggering, &g, &[vid(0)], &sel.blockers, 4_000, 3)
                .unwrap();
        assert!(
            after < before,
            "blocking must reduce the LT spread ({after} vs {before})"
        );
    }

    #[test]
    fn evaluation_ignores_out_of_range_blockers_gracefully() {
        let g = hub_graph();
        let spread =
            evaluate_triggering_spread(&IcTriggering, &g, &[vid(0)], &[vid(50)], 500, 1).unwrap();
        assert!((spread - 6.0).abs() < 1e-9);
    }
}
