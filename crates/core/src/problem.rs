//! High-level facade for the IMIN problem.
//!
//! [`ImninProblem`] owns the unified-seed reduction (§V), keeps the original
//! graph around for evaluation, knows which vertices are blockable
//! (`V \ S`), and exposes every algorithm of the crate behind the
//! [`Algorithm`] registry — the entry point used by the examples and the
//! benchmark harness. Internally each solve is one
//! [`crate::ContainmentRequest`] over the merged graph, dispatched through
//! [`crate::AlgorithmKind::solver`]; there is no per-algorithm `match`
//! here.

use crate::intervene::Intervention;
use crate::request::ContainmentRequest;
use crate::seed_merge::{merge_seeds, MergedSeeds};
use crate::types::{AlgorithmConfig, BlockerSelection};
use crate::{IminError, Result};
use imin_diffusion::exact::{exact_expected_spread, ExactSpreadConfig};
use imin_diffusion::montecarlo::MonteCarloEstimator;
use imin_graph::{DiGraph, VertexId};

/// The blocker-selection algorithms available through [`ImninProblem::solve`]
/// — an alias of the crate-wide [`crate::AlgorithmKind`] registry.
pub use crate::solver::AlgorithmKind as Algorithm;

/// An influence-minimization problem instance: a graph with IC
/// probabilities and a seed set.
#[derive(Clone, Debug)]
pub struct ImninProblem {
    original: DiGraph,
    merged: MergedSeeds,
    forbidden: Vec<bool>,
}

impl ImninProblem {
    /// Creates a problem instance, performing the unified-seed reduction.
    ///
    /// # Errors
    /// Returns an error if the seed set is empty or contains an out-of-range
    /// vertex.
    pub fn new(graph: &DiGraph, seeds: Vec<VertexId>) -> Result<Self> {
        let merged = merge_seeds(graph, &seeds)?;
        // Vertices that can never be blocked in the merged graph: the
        // original seeds and the unified seed itself.
        let mut forbidden = vec![false; merged.graph.num_vertices()];
        for &s in &merged.original_seeds {
            forbidden[s.index()] = true;
        }
        forbidden[merged.super_seed.index()] = true;
        Ok(ImninProblem {
            original: graph.clone(),
            merged,
            forbidden,
        })
    }

    /// The original (pre-merge) graph.
    pub fn graph(&self) -> &DiGraph {
        &self.original
    }

    /// The original seed set (sorted, deduplicated).
    pub fn seeds(&self) -> &[VertexId] {
        &self.merged.original_seeds
    }

    /// The merged single-seed formulation (exposed for benchmarks and tests
    /// that want to drive the low-level algorithms directly).
    pub fn merged(&self) -> &MergedSeeds {
        &self.merged
    }

    /// Returns `true` if `v` may be chosen as a blocker.
    pub fn is_valid_blocker(&self, v: VertexId) -> bool {
        self.merged.is_valid_blocker(v)
    }

    /// Number of candidate blockers (`|V \ S|`).
    pub fn num_candidates(&self) -> usize {
        self.merged.original_num_vertices - self.merged.original_seeds.len()
    }

    /// Runs the selected algorithm with the given budget.
    ///
    /// The returned blockers always refer to vertices of the original graph,
    /// and `estimated_spread` (when present) is converted to original-graph
    /// terms, i.e. it counts every seed as an active vertex — directly
    /// comparable to the numbers in Table VII.
    pub fn solve(
        &self,
        algorithm: Algorithm,
        budget: usize,
        config: &AlgorithmConfig,
    ) -> Result<BlockerSelection> {
        self.solve_with_intervention(algorithm, budget, config, Intervention::BlockVertices)
    }

    /// Runs the selected algorithm under an explicit [`Intervention`]
    /// family: vertex blocking (identical to [`ImninProblem::solve`]), edge
    /// blocking, or prebunking.
    ///
    /// Vertex requests keep the fresh self-sampling backend of `solve`. The
    /// sibling families run the greedy algorithms on the pooled
    /// dominator-tree machinery, so for those this facade builds a
    /// θ-realisation [`crate::SamplePool`] from `config` first; the
    /// rank-only heuristics that support a family run it directly.
    /// Unsupported algorithm×family combinations return
    /// [`IminError::InterventionUnsupported`].
    pub fn solve_with_intervention(
        &self,
        algorithm: Algorithm,
        budget: usize,
        config: &AlgorithmConfig,
        intervention: Intervention,
    ) -> Result<BlockerSelection> {
        // Edge blocking and prebunking skip the unified-seed reduction: the
        // pooled selectors stage multi-seed cascades through a virtual root
        // themselves, and running on the original graph keeps the selected
        // edges/vertices (and the reported spread) in original-graph terms —
        // a merged graph would leak untranslatable super-seed edges into an
        // edge selection.
        if !matches!(intervention, Intervention::BlockVertices) {
            let needs_pool = matches!(
                algorithm,
                Algorithm::AdvancedGreedy | Algorithm::GreedyReplace
            );
            let pool = if needs_pool {
                Some(crate::SamplePool::build_with_threads(
                    &self.original,
                    config.theta,
                    config.seed,
                    config.threads,
                )?)
            } else {
                None
            };
            let builder = ContainmentRequest::builder(&self.original)
                .seeds(self.seeds().iter().copied())
                .budget(budget)
                .intervention(intervention);
            let request = if let Some(pool) = &pool {
                builder.pooled_with_threads(pool, config.threads).build()?
            } else {
                builder.fresh_from(config).build()?
            };
            return algorithm.solver().solve(&self.original, &request);
        }
        let g = &self.merged.graph;
        // The unified seed is the request seed (implicitly ineligible as a
        // blocker); the original seeds stay in the forbidden mask.
        let mut forbidden = self.forbidden.clone();
        forbidden[self.merged.super_seed.index()] = false;
        let builder = ContainmentRequest::builder(g)
            .seed(self.merged.super_seed)
            .budget(budget)
            .forbid_mask(forbidden);
        // RisGreedy runs on reverse sketches, not forward samples; θ doubles
        // as θ_r so one config drives every algorithm of the registry.
        let request = if algorithm == Algorithm::RisGreedy {
            builder
                .mcs_rounds(config.mcs_rounds)
                .sketch(config.theta, config.seed, config.threads)
                .build()?
        } else {
            builder.fresh_from(config).build()?
        };
        let mut selection = algorithm.solver().solve(g, &request)?;
        // Heuristics run on the merged graph but must only return original
        // vertices; the forbidden mask already excludes seeds and the
        // unified seed, and every other merged vertex is an original vertex,
        // so no id translation is required. Spread estimates, however, are
        // in merged terms and need the |S| - 1 offset.
        if let Some(spread) = selection.estimated_spread {
            selection.estimated_spread = Some(self.merged.to_original_spread(spread));
        }
        debug_assert!(selection.blockers.iter().all(|&b| self.is_valid_blocker(b)));
        Ok(selection)
    }

    /// Evaluates a blocker set by Monte-Carlo simulation **on the original
    /// graph with the original seeds** — the procedure used to fill
    /// Table VII (the paper evaluates final blocker sets with 10⁵ rounds).
    ///
    /// # Errors
    /// Returns an error if a blocker is a seed or out of range.
    pub fn evaluate_spread(&self, blockers: &[VertexId], rounds: usize, seed: u64) -> Result<f64> {
        let mask = self.original_blocker_mask(blockers)?;
        let estimator = MonteCarloEstimator {
            rounds,
            threads: imin_diffusion::montecarlo::default_threads(),
            seed,
        };
        Ok(estimator
            .expected_spread_blocked(&self.original, self.seeds(), Some(&mask))?
            .mean)
    }

    /// Evaluates a blocker set exactly by possible-world enumeration (only
    /// feasible when few uncertain edges are reachable; used for the
    /// Exact-vs-GR comparison of Tables V and VI).
    pub fn evaluate_spread_exact(
        &self,
        blockers: &[VertexId],
        max_uncertain_edges: usize,
    ) -> Result<f64> {
        let mask = self.original_blocker_mask(blockers)?;
        Ok(exact_expected_spread(
            &self.original,
            self.seeds(),
            Some(&mask),
            ExactSpreadConfig {
                max_uncertain_edges,
            },
        )?)
    }

    /// Builds a blocked-vertex mask over the original graph, validating that
    /// no blocker is a seed.
    pub fn original_blocker_mask(&self, blockers: &[VertexId]) -> Result<Vec<bool>> {
        let n = self.original.num_vertices();
        let mut mask = vec![false; n];
        for &b in blockers {
            if b.index() >= n {
                return Err(IminError::InvalidBlocker {
                    vertex: b.index(),
                    reason: "vertex does not exist in the original graph",
                });
            }
            if self.merged.is_original_seed(b) {
                return Err(IminError::InvalidBlocker {
                    vertex: b.index(),
                    reason: "seed vertices cannot be blocked (B ⊆ V \\ S)",
                });
            }
            mask[b.index()] = true;
        }
        Ok(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn funnel_graph() -> DiGraph {
        let mut edges = vec![
            (vid(0), vid(1), 1.0),
            (vid(0), vid(2), 1.0),
            (vid(1), vid(3), 1.0),
            (vid(2), vid(3), 1.0),
        ];
        for i in 0..5 {
            edges.push((vid(3), vid(4 + i), 1.0));
        }
        DiGraph::from_edges(9, edges).unwrap()
    }

    fn cfg() -> AlgorithmConfig {
        AlgorithmConfig::fast_for_tests()
            .with_theta(300)
            .with_mcs_rounds(300)
    }

    #[test]
    fn labels_and_listing() {
        assert_eq!(Algorithm::GreedyReplace.label(), "GR");
        assert_eq!(Algorithm::BaselineGreedy.label(), "BG");
        assert!(Algorithm::all().contains(&Algorithm::Exact));
        assert_eq!(Algorithm::all().len(), 10);
    }

    #[test]
    fn problem_accessors() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        assert_eq!(p.seeds(), &[vid(0)]);
        assert_eq!(p.num_candidates(), 8);
        assert!(p.is_valid_blocker(vid(3)));
        assert!(!p.is_valid_blocker(vid(0)));
        assert_eq!(p.graph().num_vertices(), 9);
        assert_eq!(p.merged().graph.num_vertices(), 10);
        assert!(ImninProblem::new(&g, vec![]).is_err());
        assert!(ImninProblem::new(&g, vec![vid(99)]).is_err());
    }

    #[test]
    fn every_algorithm_produces_valid_blockers() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        for &alg in Algorithm::all() {
            let sel = p.solve(alg, 2, &cfg()).unwrap();
            assert!(sel.len() <= 2, "{alg:?} exceeded the budget");
            for &b in &sel.blockers {
                assert!(
                    p.is_valid_blocker(b),
                    "{alg:?} chose an invalid blocker {b}"
                );
            }
        }
    }

    #[test]
    fn non_sampling_algorithms_accept_a_zero_theta_config() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        let zero_theta = cfg().with_theta(0);
        for alg in [
            Algorithm::Random,
            Algorithm::OutDegree,
            Algorithm::Degree,
            Algorithm::PageRank,
            Algorithm::BaselineGreedy,
            Algorithm::Exact,
        ] {
            assert!(p.solve(alg, 2, &zero_theta).is_ok(), "{alg:?} reads no θ");
        }
        // The sampling algorithms still reject θ = 0, from the estimator.
        for alg in [
            Algorithm::AdvancedGreedy,
            Algorithm::GreedyReplace,
            Algorithm::OutNeighbors,
            Algorithm::RisGreedy,
        ] {
            assert!(
                matches!(p.solve(alg, 2, &zero_theta), Err(IminError::ZeroSamples)),
                "{alg:?} must report zero samples"
            );
        }
    }

    #[test]
    fn greedy_replace_reaches_the_optimum_on_the_funnel() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        let gr = p.solve(Algorithm::GreedyReplace, 1, &cfg()).unwrap();
        assert_eq!(gr.blockers, vec![vid(3)]);
        // Original-terms spread after blocking the hub: seed + 2 neighbours.
        assert!((gr.estimated_spread.unwrap() - 3.0).abs() < 1e-9);
        let eval = p.evaluate_spread(&gr.blockers, 400, 3).unwrap();
        assert!((eval - 3.0).abs() < 1e-9);
        let exact = p.evaluate_spread_exact(&gr.blockers, 20).unwrap();
        assert!((exact - 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_seed_problem_counts_all_seeds_in_the_spread() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0), vid(8)]).unwrap();
        // Nothing blocked: everything reachable (9 vertices) is the spread.
        let spread = p.evaluate_spread(&[], 400, 1).unwrap();
        assert!((spread - 9.0).abs() < 1e-9);
        let sel = p.solve(Algorithm::GreedyReplace, 2, &cfg()).unwrap();
        // Blockers must avoid both seeds.
        assert!(!sel.blockers.contains(&vid(0)));
        assert!(!sel.blockers.contains(&vid(8)));
        let est = sel.estimated_spread.unwrap();
        let eval = p.evaluate_spread(&sel.blockers, 400, 2).unwrap();
        assert!(
            (est - eval).abs() < 1e-6,
            "estimate {est} vs evaluation {eval}"
        );
    }

    #[test]
    fn intervention_facade_routes_all_three_families() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        // Vertex requests are the plain solve.
        let vertex = p
            .solve_with_intervention(
                Algorithm::GreedyReplace,
                1,
                &cfg(),
                Intervention::BlockVertices,
            )
            .unwrap();
        assert_eq!(
            vertex.blockers,
            p.solve(Algorithm::GreedyReplace, 1, &cfg())
                .unwrap()
                .blockers
        );
        // Edge blocking on the funnel: one cut cannot sever the hub (two
        // disjoint paths feed it), so the best single edge cut removes the
        // bigger of the two path legs.
        let edge = p
            .solve_with_intervention(
                Algorithm::GreedyReplace,
                2,
                &cfg(),
                Intervention::BlockEdges,
            )
            .unwrap();
        assert!(edge.blockers.is_empty());
        assert!(!edge.blocked_edges.is_empty() && edge.blocked_edges.len() <= 2);
        for &(u, v) in &edge.blocked_edges {
            assert!(g.has_edge(u, v), "selected edge must exist in the graph");
        }
        // Prebunking with alpha = 0 silences its targets completely, so the
        // hub is the natural pick, as in vertex blocking.
        let pre = p
            .solve_with_intervention(
                Algorithm::AdvancedGreedy,
                1,
                &cfg(),
                Intervention::Prebunk { alpha: 0.0 },
            )
            .unwrap();
        assert_eq!(pre.blockers, vec![vid(3)]);
        assert!((pre.estimated_spread.unwrap() - 3.0).abs() < 1e-9);
        // Vertex-only algorithms reject the sibling families with the typed
        // error.
        assert!(matches!(
            p.solve_with_intervention(Algorithm::Exact, 1, &cfg(), Intervention::BlockEdges),
            Err(IminError::InterventionUnsupported { .. })
        ));
        assert!(matches!(
            p.solve_with_intervention(
                Algorithm::RisGreedy,
                1,
                &cfg(),
                Intervention::Prebunk { alpha: 0.5 }
            ),
            Err(IminError::InterventionUnsupported { .. })
        ));
    }

    #[test]
    fn evaluate_rejects_invalid_blockers() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        assert!(p.evaluate_spread(&[vid(0)], 100, 1).is_err());
        assert!(p.evaluate_spread(&[vid(50)], 100, 1).is_err());
        assert!(p.original_blocker_mask(&[vid(3)]).is_ok());
    }

    #[test]
    fn exact_algorithm_agrees_with_greedy_replace_here() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        let exact = p.solve(Algorithm::Exact, 2, &cfg()).unwrap();
        let gr = p.solve(Algorithm::GreedyReplace, 2, &cfg()).unwrap();
        let spread_exact = p.evaluate_spread(&exact.blockers, 500, 5).unwrap();
        let spread_gr = p.evaluate_spread(&gr.blockers, 500, 5).unwrap();
        assert!((spread_exact - spread_gr).abs() < 1e-9);
    }
}
