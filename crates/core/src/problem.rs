//! High-level facade for the IMIN problem.
//!
//! [`ImninProblem`] owns the unified-seed reduction (§V), keeps the original
//! graph around for evaluation, knows which vertices are blockable
//! (`V \ S`), and exposes every algorithm of the crate behind the
//! [`Algorithm`] enum — the entry point used by the examples and the
//! benchmark harness.

use crate::advanced_greedy::advanced_greedy;
use crate::baseline_greedy::baseline_greedy;
use crate::exact_blocker::{exact_blocker_search, ExactSearchConfig};
use crate::greedy_replace::greedy_replace;
use crate::heuristics::{
    degree_blockers, out_degree_blockers, out_neighbor_blockers, pagerank_blockers, random_blockers,
};
use crate::seed_merge::{merge_seeds, MergedSeeds};
use crate::types::{AlgorithmConfig, BlockerSelection};
use crate::{IminError, Result};
use imin_diffusion::exact::{exact_expected_spread, ExactSpreadConfig};
use imin_diffusion::montecarlo::MonteCarloEstimator;
use imin_graph::{DiGraph, VertexId};

/// The blocker-selection algorithms available through [`ImninProblem::solve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 1 — greedy selection with Monte-Carlo evaluation (the
    /// state-of-the-art baseline, `BG` in the figures).
    BaselineGreedy,
    /// Algorithm 3 — greedy selection with dominator-tree estimation (`AG`).
    AdvancedGreedy,
    /// Algorithm 4 — out-neighbour initialisation plus replacement (`GR`).
    GreedyReplace,
    /// Uniform random blockers (`RA`).
    Random,
    /// Highest out-degree blockers (`OD`).
    OutDegree,
    /// Highest total-degree blockers.
    Degree,
    /// Out-neighbours of the seed ranked by estimated decrease
    /// (the `OutNeighbors` strategy of Example 3).
    OutNeighbors,
    /// Highest-PageRank blockers (extension).
    PageRank,
    /// Exhaustive search over all blocker sets (the `Exact` oracle; only
    /// feasible on very small graphs).
    Exact,
}

impl Algorithm {
    /// Short identifier used in experiment tables (`BG`, `AG`, `GR`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::BaselineGreedy => "BG",
            Algorithm::AdvancedGreedy => "AG",
            Algorithm::GreedyReplace => "GR",
            Algorithm::Random => "RA",
            Algorithm::OutDegree => "OD",
            Algorithm::Degree => "DEG",
            Algorithm::OutNeighbors => "ON",
            Algorithm::PageRank => "PR",
            Algorithm::Exact => "EXACT",
        }
    }

    /// All algorithms compared in the paper's Table VII plus this crate's
    /// extensions, in presentation order.
    pub fn all() -> &'static [Algorithm] {
        &[
            Algorithm::Random,
            Algorithm::OutDegree,
            Algorithm::Degree,
            Algorithm::PageRank,
            Algorithm::OutNeighbors,
            Algorithm::BaselineGreedy,
            Algorithm::AdvancedGreedy,
            Algorithm::GreedyReplace,
            Algorithm::Exact,
        ]
    }
}

/// An influence-minimization problem instance: a graph with IC
/// probabilities and a seed set.
#[derive(Clone, Debug)]
pub struct ImninProblem {
    original: DiGraph,
    merged: MergedSeeds,
    forbidden: Vec<bool>,
}

impl ImninProblem {
    /// Creates a problem instance, performing the unified-seed reduction.
    ///
    /// # Errors
    /// Returns an error if the seed set is empty or contains an out-of-range
    /// vertex.
    pub fn new(graph: &DiGraph, seeds: Vec<VertexId>) -> Result<Self> {
        let merged = merge_seeds(graph, &seeds)?;
        // Vertices that can never be blocked in the merged graph: the
        // original seeds and the unified seed itself.
        let mut forbidden = vec![false; merged.graph.num_vertices()];
        for &s in &merged.original_seeds {
            forbidden[s.index()] = true;
        }
        forbidden[merged.super_seed.index()] = true;
        Ok(ImninProblem {
            original: graph.clone(),
            merged,
            forbidden,
        })
    }

    /// The original (pre-merge) graph.
    pub fn graph(&self) -> &DiGraph {
        &self.original
    }

    /// The original seed set (sorted, deduplicated).
    pub fn seeds(&self) -> &[VertexId] {
        &self.merged.original_seeds
    }

    /// The merged single-seed formulation (exposed for benchmarks and tests
    /// that want to drive the low-level algorithms directly).
    pub fn merged(&self) -> &MergedSeeds {
        &self.merged
    }

    /// Returns `true` if `v` may be chosen as a blocker.
    pub fn is_valid_blocker(&self, v: VertexId) -> bool {
        self.merged.is_valid_blocker(v)
    }

    /// Number of candidate blockers (`|V \ S|`).
    pub fn num_candidates(&self) -> usize {
        self.merged.original_num_vertices - self.merged.original_seeds.len()
    }

    /// Runs the selected algorithm with the given budget.
    ///
    /// The returned blockers always refer to vertices of the original graph,
    /// and `estimated_spread` (when present) is converted to original-graph
    /// terms, i.e. it counts every seed as an active vertex — directly
    /// comparable to the numbers in Table VII.
    pub fn solve(
        &self,
        algorithm: Algorithm,
        budget: usize,
        config: &AlgorithmConfig,
    ) -> Result<BlockerSelection> {
        let g = &self.merged.graph;
        let s = self.merged.super_seed;
        let f = &self.forbidden;
        let mut selection = match algorithm {
            Algorithm::BaselineGreedy => baseline_greedy(g, s, f, budget, config)?,
            Algorithm::AdvancedGreedy => advanced_greedy(g, s, f, budget, config)?,
            Algorithm::GreedyReplace => greedy_replace(g, s, f, budget, config)?,
            Algorithm::Random => random_blockers(g, s, f, budget, config.seed)?,
            Algorithm::OutDegree => out_degree_blockers(g, s, f, budget)?,
            Algorithm::Degree => degree_blockers(g, s, f, budget)?,
            Algorithm::OutNeighbors => out_neighbor_blockers(g, s, f, budget, config)?,
            Algorithm::PageRank => pagerank_blockers(g, s, f, budget)?,
            Algorithm::Exact => exact_blocker_search(
                g,
                s,
                f,
                budget,
                &ExactSearchConfig::from_algorithm_config(config),
            )?,
        };
        // Heuristics run on the merged graph but must only return original
        // vertices; the forbidden mask already excludes seeds and the
        // unified seed, and every other merged vertex is an original vertex,
        // so no id translation is required. Spread estimates, however, are
        // in merged terms and need the |S| - 1 offset.
        if let Some(spread) = selection.estimated_spread {
            selection.estimated_spread = Some(self.merged.to_original_spread(spread));
        }
        debug_assert!(selection.blockers.iter().all(|&b| self.is_valid_blocker(b)));
        Ok(selection)
    }

    /// Evaluates a blocker set by Monte-Carlo simulation **on the original
    /// graph with the original seeds** — the procedure used to fill
    /// Table VII (the paper evaluates final blocker sets with 10⁵ rounds).
    ///
    /// # Errors
    /// Returns an error if a blocker is a seed or out of range.
    pub fn evaluate_spread(&self, blockers: &[VertexId], rounds: usize, seed: u64) -> Result<f64> {
        let mask = self.original_blocker_mask(blockers)?;
        let estimator = MonteCarloEstimator {
            rounds,
            threads: imin_diffusion::montecarlo::default_threads(),
            seed,
        };
        Ok(estimator
            .expected_spread_blocked(&self.original, self.seeds(), Some(&mask))?
            .mean)
    }

    /// Evaluates a blocker set exactly by possible-world enumeration (only
    /// feasible when few uncertain edges are reachable; used for the
    /// Exact-vs-GR comparison of Tables V and VI).
    pub fn evaluate_spread_exact(
        &self,
        blockers: &[VertexId],
        max_uncertain_edges: usize,
    ) -> Result<f64> {
        let mask = self.original_blocker_mask(blockers)?;
        Ok(exact_expected_spread(
            &self.original,
            self.seeds(),
            Some(&mask),
            ExactSpreadConfig {
                max_uncertain_edges,
            },
        )?)
    }

    /// Builds a blocked-vertex mask over the original graph, validating that
    /// no blocker is a seed.
    pub fn original_blocker_mask(&self, blockers: &[VertexId]) -> Result<Vec<bool>> {
        let n = self.original.num_vertices();
        let mut mask = vec![false; n];
        for &b in blockers {
            if b.index() >= n {
                return Err(IminError::InvalidBlocker {
                    vertex: b.index(),
                    reason: "vertex does not exist in the original graph",
                });
            }
            if self.merged.is_original_seed(b) {
                return Err(IminError::InvalidBlocker {
                    vertex: b.index(),
                    reason: "seed vertices cannot be blocked (B ⊆ V \\ S)",
                });
            }
            mask[b.index()] = true;
        }
        Ok(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn funnel_graph() -> DiGraph {
        let mut edges = vec![
            (vid(0), vid(1), 1.0),
            (vid(0), vid(2), 1.0),
            (vid(1), vid(3), 1.0),
            (vid(2), vid(3), 1.0),
        ];
        for i in 0..5 {
            edges.push((vid(3), vid(4 + i), 1.0));
        }
        DiGraph::from_edges(9, edges).unwrap()
    }

    fn cfg() -> AlgorithmConfig {
        AlgorithmConfig::fast_for_tests()
            .with_theta(300)
            .with_mcs_rounds(300)
    }

    #[test]
    fn labels_and_listing() {
        assert_eq!(Algorithm::GreedyReplace.label(), "GR");
        assert_eq!(Algorithm::BaselineGreedy.label(), "BG");
        assert!(Algorithm::all().contains(&Algorithm::Exact));
        assert_eq!(Algorithm::all().len(), 9);
    }

    #[test]
    fn problem_accessors() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        assert_eq!(p.seeds(), &[vid(0)]);
        assert_eq!(p.num_candidates(), 8);
        assert!(p.is_valid_blocker(vid(3)));
        assert!(!p.is_valid_blocker(vid(0)));
        assert_eq!(p.graph().num_vertices(), 9);
        assert_eq!(p.merged().graph.num_vertices(), 10);
        assert!(ImninProblem::new(&g, vec![]).is_err());
        assert!(ImninProblem::new(&g, vec![vid(99)]).is_err());
    }

    #[test]
    fn every_algorithm_produces_valid_blockers() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        for &alg in Algorithm::all() {
            let sel = p.solve(alg, 2, &cfg()).unwrap();
            assert!(sel.len() <= 2, "{alg:?} exceeded the budget");
            for &b in &sel.blockers {
                assert!(
                    p.is_valid_blocker(b),
                    "{alg:?} chose an invalid blocker {b}"
                );
            }
        }
    }

    #[test]
    fn greedy_replace_reaches_the_optimum_on_the_funnel() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        let gr = p.solve(Algorithm::GreedyReplace, 1, &cfg()).unwrap();
        assert_eq!(gr.blockers, vec![vid(3)]);
        // Original-terms spread after blocking the hub: seed + 2 neighbours.
        assert!((gr.estimated_spread.unwrap() - 3.0).abs() < 1e-9);
        let eval = p.evaluate_spread(&gr.blockers, 400, 3).unwrap();
        assert!((eval - 3.0).abs() < 1e-9);
        let exact = p.evaluate_spread_exact(&gr.blockers, 20).unwrap();
        assert!((exact - 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_seed_problem_counts_all_seeds_in_the_spread() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0), vid(8)]).unwrap();
        // Nothing blocked: everything reachable (9 vertices) is the spread.
        let spread = p.evaluate_spread(&[], 400, 1).unwrap();
        assert!((spread - 9.0).abs() < 1e-9);
        let sel = p.solve(Algorithm::GreedyReplace, 2, &cfg()).unwrap();
        // Blockers must avoid both seeds.
        assert!(!sel.blockers.contains(&vid(0)));
        assert!(!sel.blockers.contains(&vid(8)));
        let est = sel.estimated_spread.unwrap();
        let eval = p.evaluate_spread(&sel.blockers, 400, 2).unwrap();
        assert!(
            (est - eval).abs() < 1e-6,
            "estimate {est} vs evaluation {eval}"
        );
    }

    #[test]
    fn evaluate_rejects_invalid_blockers() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        assert!(p.evaluate_spread(&[vid(0)], 100, 1).is_err());
        assert!(p.evaluate_spread(&[vid(50)], 100, 1).is_err());
        assert!(p.original_blocker_mask(&[vid(3)]).is_ok());
    }

    #[test]
    fn exact_algorithm_agrees_with_greedy_replace_here() {
        let g = funnel_graph();
        let p = ImninProblem::new(&g, vec![vid(0)]).unwrap();
        let exact = p.solve(Algorithm::Exact, 2, &cfg()).unwrap();
        let gr = p.solve(Algorithm::GreedyReplace, 2, &cfg()).unwrap();
        let spread_exact = p.evaluate_spread(&exact.blockers, 500, 5).unwrap();
        let spread_gr = p.evaluate_spread(&gr.blockers, 500, 5).unwrap();
        assert!((spread_exact - spread_gr).abs() < 1e-9);
    }
}
