//! Exhaustive ("Exact") blocker search.
//!
//! The paper's Exact comparator (§VI-B) enumerates every possible set of `b`
//! blockers and evaluates the expected spread of each candidate set. It is
//! only feasible on the ~100-vertex extracts used for Tables V and VI and is
//! implemented here as the optimality oracle the heuristics are measured
//! against.
//!
//! Candidates are restricted to the vertices reachable from the source —
//! blocking an unreachable vertex can never change the spread, so every
//! optimal solution over the full vertex set has an equivalent inside the
//! reachable region (padding with arbitrary unreachable vertices if fewer
//! than `b` reachable candidates exist).

use crate::types::{AlgorithmConfig, BlockerSelection, SelectionStats};
use crate::{IminError, Result};
use imin_diffusion::exact::{exact_expected_spread, ExactSpreadConfig};
use imin_diffusion::montecarlo::MonteCarloEstimator;
use imin_graph::traversal::reachable_mask;
use imin_graph::{DiGraph, VertexId};
use std::time::Instant;

/// How candidate blocker sets are evaluated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpreadEvaluator {
    /// Monte-Carlo simulation with the given number of rounds — what the
    /// paper's Exact baseline uses (r = 10 000).
    MonteCarlo {
        /// Simulation rounds per candidate set.
        rounds: usize,
    },
    /// Exact possible-world enumeration (only viable when few uncertain
    /// edges are reachable; used for the final Exact-vs-GR comparison).
    Exact {
        /// Maximum number of uncertain edges to enumerate.
        max_uncertain_edges: usize,
    },
}

/// Configuration of the exhaustive search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExactSearchConfig {
    /// Upper bound on the number of candidate sets to evaluate; the search
    /// refuses to start if `C(candidates, b)` exceeds it.
    pub max_combinations: u64,
    /// How each candidate set is evaluated.
    pub evaluator: SpreadEvaluator,
    /// Threads and seed for Monte-Carlo evaluation.
    pub threads: usize,
    /// RNG seed for Monte-Carlo evaluation.
    pub seed: u64,
}

impl Default for ExactSearchConfig {
    fn default() -> Self {
        ExactSearchConfig {
            max_combinations: 2_000_000,
            evaluator: SpreadEvaluator::MonteCarlo { rounds: 10_000 },
            threads: imin_diffusion::montecarlo::default_threads(),
            seed: 0xEC0DE,
        }
    }
}

impl ExactSearchConfig {
    /// Derives an exact-search configuration from a generic
    /// [`AlgorithmConfig`], using its Monte-Carlo round count and seed.
    pub fn from_algorithm_config(config: &AlgorithmConfig) -> Self {
        ExactSearchConfig {
            evaluator: SpreadEvaluator::MonteCarlo {
                rounds: config.mcs_rounds,
            },
            threads: config.threads,
            seed: config.seed,
            ..Default::default()
        }
    }
}

/// Number of `k`-combinations of `n` items, saturating at `u64::MAX`.
pub fn combinations(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = match result.checked_mul((n - i) as u64) {
            Some(v) => v / (i as u64 + 1),
            None => return u64::MAX,
        };
    }
    result
}

/// Exhaustively searches for the blocker set of size `min(b, #candidates)`
/// minimising the evaluated spread.
///
/// # Errors
/// Returns [`IminError::SearchSpaceTooLarge`] when the number of candidate
/// combinations exceeds the configured limit, plus the usual validation
/// errors.
pub fn exact_blocker_search(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &ExactSearchConfig,
) -> Result<BlockerSelection> {
    let start = Instant::now();
    let n = graph.num_vertices();
    if budget == 0 {
        return Err(IminError::ZeroBudget);
    }
    if source.index() >= n {
        return Err(IminError::SeedOutOfRange {
            vertex: source.index(),
            num_vertices: n,
        });
    }

    let reachable = reachable_mask(graph, &[source]);
    let candidates: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| v != source && !forbidden[v.index()] && reachable[v.index()])
        .collect();
    let k = budget.min(candidates.len());
    if k == 0 {
        let mut sel = BlockerSelection::new(Vec::new());
        sel.stats.elapsed = start.elapsed();
        return Ok(sel);
    }
    let combos = combinations(candidates.len(), k);
    if combos > config.max_combinations {
        return Err(IminError::SearchSpaceTooLarge {
            candidates: candidates.len(),
            budget: k,
            limit: config.max_combinations,
        });
    }

    let mcs = MonteCarloEstimator {
        rounds: match config.evaluator {
            SpreadEvaluator::MonteCarlo { rounds } => rounds,
            SpreadEvaluator::Exact { .. } => 0,
        },
        threads: config.threads,
        seed: config.seed,
    };
    let evaluate = |mask: &[bool], stats: &mut SelectionStats| -> Result<f64> {
        match config.evaluator {
            SpreadEvaluator::MonteCarlo { rounds } => {
                stats.mcs_rounds_run += rounds;
                Ok(mcs
                    .expected_spread_blocked(graph, &[source], Some(mask))?
                    .mean)
            }
            SpreadEvaluator::Exact {
                max_uncertain_edges,
            } => Ok(exact_expected_spread(
                graph,
                &[source],
                Some(mask),
                ExactSpreadConfig {
                    max_uncertain_edges,
                },
            )?),
        }
    };

    let mut stats = SelectionStats::default();
    let mut mask = vec![false; n];
    // Lexicographic enumeration of k-combinations by index.
    let mut indices: Vec<usize> = (0..k).collect();
    let mut best_spread = f64::INFINITY;
    let mut best_set: Vec<VertexId> = Vec::new();
    loop {
        for &i in &indices {
            mask[candidates[i].index()] = true;
        }
        let spread = evaluate(&mask, &mut stats)?;
        stats.rounds += 1;
        if spread < best_spread {
            best_spread = spread;
            best_set = indices.iter().map(|&i| candidates[i]).collect();
        }
        for &i in &indices {
            mask[candidates[i].index()] = false;
        }
        // Advance to the next combination.
        let mut pos = k;
        loop {
            if pos == 0 {
                break;
            }
            pos -= 1;
            if indices[pos] != pos + candidates.len() - k {
                indices[pos] += 1;
                for j in pos + 1..k {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
            if pos == 0 {
                indices.clear();
                break;
            }
        }
        if indices.is_empty() {
            break;
        }
        // Detect completion: when the first index passed its maximum.
        if indices[0] > candidates.len() - k {
            break;
        }
    }

    stats.elapsed = start.elapsed();
    Ok(BlockerSelection {
        blockers: best_set,
        estimated_spread: Some(best_spread),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_replace::greedy_replace;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn combination_counts() {
        assert_eq!(combinations(5, 2), 10);
        assert_eq!(combinations(10, 0), 1);
        assert_eq!(combinations(10, 10), 1);
        assert_eq!(combinations(3, 5), 0);
        assert_eq!(combinations(60, 30), 118_264_581_564_861_424);
        assert_eq!(
            combinations(200, 100),
            u64::MAX,
            "saturates instead of overflowing"
        );
    }

    fn funnel_graph() -> DiGraph {
        let mut edges = vec![
            (vid(0), vid(1), 1.0),
            (vid(0), vid(2), 1.0),
            (vid(1), vid(3), 1.0),
            (vid(2), vid(3), 1.0),
        ];
        for i in 0..4 {
            edges.push((vid(3), vid(4 + i), 1.0));
        }
        DiGraph::from_edges(8, edges).unwrap()
    }

    fn search_config() -> ExactSearchConfig {
        ExactSearchConfig {
            evaluator: SpreadEvaluator::Exact {
                max_uncertain_edges: 20,
            },
            ..Default::default()
        }
    }

    #[test]
    fn finds_the_true_optimum_on_the_funnel() {
        let g = funnel_graph();
        let sel = exact_blocker_search(&g, vid(0), &[false; 8], 1, &search_config()).unwrap();
        assert_eq!(sel.blockers, vec![vid(3)]);
        assert!((sel.estimated_spread.unwrap() - 3.0).abs() < 1e-9);

        let sel2 = exact_blocker_search(&g, vid(0), &[false; 8], 2, &search_config()).unwrap();
        let mut blockers = sel2.blockers.clone();
        blockers.sort_unstable();
        assert_eq!(blockers, vec![vid(1), vid(2)]);
        assert!((sel2.estimated_spread.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_replace_matches_exact_on_small_graphs() {
        let g = funnel_graph();
        for b in 1..=2 {
            let exact = exact_blocker_search(&g, vid(0), &[false; 8], b, &search_config()).unwrap();
            let gr = greedy_replace(
                &g,
                vid(0),
                &[false; 8],
                b,
                &AlgorithmConfig::fast_for_tests().with_theta(300),
            )
            .unwrap();
            assert!(
                (gr.estimated_spread.unwrap() - exact.estimated_spread.unwrap()).abs() < 1e-6,
                "b={b}"
            );
        }
    }

    #[test]
    fn monte_carlo_evaluator_also_works() {
        let g = funnel_graph();
        let cfg = ExactSearchConfig {
            evaluator: SpreadEvaluator::MonteCarlo { rounds: 300 },
            threads: 1,
            ..Default::default()
        };
        let sel = exact_blocker_search(&g, vid(0), &[false; 8], 1, &cfg).unwrap();
        assert_eq!(sel.blockers, vec![vid(3)]);
        assert!(sel.stats.mcs_rounds_run >= 300);
    }

    #[test]
    fn search_space_limit_is_enforced() {
        let g = imin_graph::generators::complete(30, 1.0).unwrap();
        let cfg = ExactSearchConfig {
            max_combinations: 100,
            evaluator: SpreadEvaluator::MonteCarlo { rounds: 10 },
            threads: 1,
            seed: 1,
        };
        assert!(matches!(
            exact_blocker_search(&g, vid(0), &[false; 30], 5, &cfg),
            Err(IminError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn no_reachable_candidates_returns_empty_selection() {
        let g = DiGraph::from_edges(3, vec![(vid(1), vid(2), 1.0)]).unwrap();
        let sel = exact_blocker_search(&g, vid(0), &[false; 3], 2, &search_config()).unwrap();
        assert!(sel.is_empty());
    }

    #[test]
    fn budget_capped_at_candidate_count() {
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 1.0)]).unwrap();
        let sel = exact_blocker_search(&g, vid(0), &[false; 2], 5, &search_config()).unwrap();
        assert_eq!(sel.blockers, vec![vid(1)]);
    }

    #[test]
    fn invalid_inputs() {
        let g = funnel_graph();
        assert!(matches!(
            exact_blocker_search(&g, vid(0), &[false; 8], 0, &search_config()),
            Err(IminError::ZeroBudget)
        ));
        assert!(exact_blocker_search(&g, vid(50), &[false; 8], 1, &search_config()).is_err());
    }
}
