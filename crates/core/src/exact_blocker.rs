//! Exhaustive ("Exact") blocker search.
//!
//! The paper's Exact comparator (§VI-B) enumerates every possible set of `b`
//! blockers and evaluates the expected spread of each candidate set. It is
//! only feasible on the ~100-vertex extracts used for Tables V and VI and is
//! implemented here as the optimality oracle the heuristics are measured
//! against.
//!
//! Candidates are restricted to the vertices reachable from the source —
//! blocking an unreachable vertex can never change the spread, so every
//! optimal solution over the full vertex set has an equivalent inside the
//! reachable region (padding with arbitrary unreachable vertices if fewer
//! than `b` reachable candidates exist).

use crate::request::{ContainmentRequest, EvalBackend};
use crate::solver::{AlgorithmKind, BlockerSolver};
use crate::types::{AlgorithmConfig, BlockerSelection, SelectionStats};
use crate::{IminError, Result};
use imin_diffusion::exact::{exact_expected_spread, ExactSpreadConfig};
use imin_diffusion::montecarlo::MonteCarloEstimator;
use imin_graph::traversal::reachable_mask;
use imin_graph::{DiGraph, VertexId};
use std::time::Instant;

/// The Exact oracle behind the unified request API.
///
/// Requires a `Fresh` backend (candidate sets are evaluated by Monte-Carlo
/// simulation with the request's `mcs_rounds`, the paper's setting);
/// `Pooled` requests are rejected with [`IminError::BackendUnsupported`].
/// Callers needing the possible-world evaluator or a custom combination
/// limit use [`exact_blocker_search_multi`] with an explicit
/// [`ExactSearchConfig`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactBlocker;

impl BlockerSolver for ExactBlocker {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Exact
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        crate::intervene::require_vertex(
            request.intervention(),
            self.kind().name(),
            request.backend().label(),
        )?;
        let EvalBackend::Fresh { seed, threads, .. } = *request.backend() else {
            return Err(IminError::BackendUnsupported {
                algorithm: self.kind().name(),
                backend: request.backend().label(),
            });
        };
        exact_blocker_search_multi(
            graph,
            request.seeds(),
            request.forbidden().mask(),
            request.budget(),
            &ExactSearchConfig {
                evaluator: SpreadEvaluator::MonteCarlo {
                    rounds: request.mcs_rounds(),
                },
                threads,
                seed,
                ..Default::default()
            },
        )
    }
}

/// How candidate blocker sets are evaluated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpreadEvaluator {
    /// Monte-Carlo simulation with the given number of rounds — what the
    /// paper's Exact baseline uses (r = 10 000).
    MonteCarlo {
        /// Simulation rounds per candidate set.
        rounds: usize,
    },
    /// Exact possible-world enumeration (only viable when few uncertain
    /// edges are reachable; used for the final Exact-vs-GR comparison).
    Exact {
        /// Maximum number of uncertain edges to enumerate.
        max_uncertain_edges: usize,
    },
}

/// Configuration of the exhaustive search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExactSearchConfig {
    /// Upper bound on the number of candidate sets to evaluate; the search
    /// refuses to start if `C(candidates, b)` exceeds it.
    pub max_combinations: u64,
    /// How each candidate set is evaluated.
    pub evaluator: SpreadEvaluator,
    /// Threads and seed for Monte-Carlo evaluation.
    pub threads: usize,
    /// RNG seed for Monte-Carlo evaluation.
    pub seed: u64,
}

impl Default for ExactSearchConfig {
    fn default() -> Self {
        ExactSearchConfig {
            max_combinations: 2_000_000,
            evaluator: SpreadEvaluator::MonteCarlo { rounds: 10_000 },
            threads: imin_diffusion::montecarlo::default_threads(),
            seed: 0xEC0DE,
        }
    }
}

impl ExactSearchConfig {
    /// Derives an exact-search configuration from a generic
    /// [`AlgorithmConfig`], using its Monte-Carlo round count and seed.
    pub fn from_algorithm_config(config: &AlgorithmConfig) -> Self {
        ExactSearchConfig {
            evaluator: SpreadEvaluator::MonteCarlo {
                rounds: config.mcs_rounds,
            },
            threads: config.threads,
            seed: config.seed,
            ..Default::default()
        }
    }
}

/// Number of `k`-combinations of `n` items, saturating at `u64::MAX`.
pub fn combinations(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = match result.checked_mul((n - i) as u64) {
            Some(v) => v / (i as u64 + 1),
            None => return u64::MAX,
        };
    }
    result
}

/// Exhaustively searches for the blocker set of size `min(b, #candidates)`
/// minimising the evaluated spread, for a single source — the historical
/// shim over [`exact_blocker_search_multi`].
///
/// # Errors
/// Returns [`IminError::SearchSpaceTooLarge`] when the number of candidate
/// combinations exceeds the configured limit, plus the usual validation
/// errors.
pub fn exact_blocker_search(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &ExactSearchConfig,
) -> Result<BlockerSelection> {
    exact_blocker_search_multi(graph, &[source], forbidden, budget, config)
}

/// Exhaustive search for a whole seed set: candidate blockers are the
/// non-seed, non-forbidden vertices reachable from *any* seed, and every
/// candidate set is evaluated against the full seed set.
///
/// # Errors
/// Same conditions as [`exact_blocker_search`], plus an empty seed set.
pub fn exact_blocker_search_multi(
    graph: &DiGraph,
    seeds: &[VertexId],
    forbidden: &[bool],
    budget: usize,
    config: &ExactSearchConfig,
) -> Result<BlockerSelection> {
    let start = Instant::now();
    let n = graph.num_vertices();
    if budget == 0 {
        return Err(IminError::ZeroBudget);
    }
    if seeds.is_empty() {
        return Err(IminError::EmptySeedSet);
    }
    if forbidden.len() != n {
        return Err(IminError::Diffusion(
            imin_diffusion::DiffusionError::MaskLengthMismatch {
                mask_len: forbidden.len(),
                num_vertices: n,
            },
        ));
    }
    let mut seeds: Vec<VertexId> = seeds.to_vec();
    for &s in &seeds {
        if s.index() >= n {
            return Err(IminError::SeedOutOfRange {
                vertex: s.index(),
                num_vertices: n,
            });
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    let seeds = seeds; // canonical from here on
    let is_seed = |v: VertexId| seeds.binary_search(&v).is_ok();

    let reachable = reachable_mask(graph, &seeds);
    let candidates: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| !is_seed(v) && !forbidden[v.index()] && reachable[v.index()])
        .collect();
    let k = budget.min(candidates.len());
    if k == 0 {
        let mut sel = BlockerSelection::new(Vec::new());
        sel.stats.elapsed = start.elapsed();
        return Ok(sel);
    }
    let combos = combinations(candidates.len(), k);
    if combos > config.max_combinations {
        return Err(IminError::SearchSpaceTooLarge {
            candidates: candidates.len(),
            budget: k,
            limit: config.max_combinations,
        });
    }

    let mcs = MonteCarloEstimator {
        rounds: match config.evaluator {
            SpreadEvaluator::MonteCarlo { rounds } => rounds,
            SpreadEvaluator::Exact { .. } => 0,
        },
        threads: config.threads,
        seed: config.seed,
    };
    let evaluate = |mask: &[bool], stats: &mut SelectionStats| -> Result<f64> {
        match config.evaluator {
            SpreadEvaluator::MonteCarlo { rounds } => {
                stats.mcs_rounds_run += rounds;
                Ok(mcs.expected_spread_blocked(graph, &seeds, Some(mask))?.mean)
            }
            SpreadEvaluator::Exact {
                max_uncertain_edges,
            } => Ok(exact_expected_spread(
                graph,
                &seeds,
                Some(mask),
                ExactSpreadConfig {
                    max_uncertain_edges,
                },
            )?),
        }
    };

    let mut stats = SelectionStats::default();
    let mut mask = vec![false; n];
    // Lexicographic enumeration of k-combinations by index.
    let mut indices: Vec<usize> = (0..k).collect();
    let mut best_spread = f64::INFINITY;
    let mut best_set: Vec<VertexId> = Vec::new();
    loop {
        for &i in &indices {
            mask[candidates[i].index()] = true;
        }
        let spread = evaluate(&mask, &mut stats)?;
        stats.rounds += 1;
        if spread < best_spread {
            best_spread = spread;
            best_set = indices.iter().map(|&i| candidates[i]).collect();
        }
        for &i in &indices {
            mask[candidates[i].index()] = false;
        }
        // Advance to the next combination.
        let mut pos = k;
        loop {
            if pos == 0 {
                break;
            }
            pos -= 1;
            if indices[pos] != pos + candidates.len() - k {
                indices[pos] += 1;
                for j in pos + 1..k {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
            if pos == 0 {
                indices.clear();
                break;
            }
        }
        if indices.is_empty() {
            break;
        }
        // Detect completion: when the first index passed its maximum.
        if indices[0] > candidates.len() - k {
            break;
        }
    }

    stats.elapsed = start.elapsed();
    Ok(BlockerSelection {
        blockers: best_set,
        estimated_spread: Some(best_spread),
        blocked_edges: Vec::new(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_replace::greedy_replace;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn combination_counts() {
        assert_eq!(combinations(5, 2), 10);
        assert_eq!(combinations(10, 0), 1);
        assert_eq!(combinations(10, 10), 1);
        assert_eq!(combinations(3, 5), 0);
        assert_eq!(combinations(60, 30), 118_264_581_564_861_424);
        assert_eq!(
            combinations(200, 100),
            u64::MAX,
            "saturates instead of overflowing"
        );
    }

    fn funnel_graph() -> DiGraph {
        let mut edges = vec![
            (vid(0), vid(1), 1.0),
            (vid(0), vid(2), 1.0),
            (vid(1), vid(3), 1.0),
            (vid(2), vid(3), 1.0),
        ];
        for i in 0..4 {
            edges.push((vid(3), vid(4 + i), 1.0));
        }
        DiGraph::from_edges(8, edges).unwrap()
    }

    fn search_config() -> ExactSearchConfig {
        ExactSearchConfig {
            evaluator: SpreadEvaluator::Exact {
                max_uncertain_edges: 20,
            },
            ..Default::default()
        }
    }

    #[test]
    fn finds_the_true_optimum_on_the_funnel() {
        let g = funnel_graph();
        let sel = exact_blocker_search(&g, vid(0), &[false; 8], 1, &search_config()).unwrap();
        assert_eq!(sel.blockers, vec![vid(3)]);
        assert!((sel.estimated_spread.unwrap() - 3.0).abs() < 1e-9);

        let sel2 = exact_blocker_search(&g, vid(0), &[false; 8], 2, &search_config()).unwrap();
        let mut blockers = sel2.blockers.clone();
        blockers.sort_unstable();
        assert_eq!(blockers, vec![vid(1), vid(2)]);
        assert!((sel2.estimated_spread.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_replace_matches_exact_on_small_graphs() {
        let g = funnel_graph();
        for b in 1..=2 {
            let exact = exact_blocker_search(&g, vid(0), &[false; 8], b, &search_config()).unwrap();
            let gr = greedy_replace(
                &g,
                vid(0),
                &[false; 8],
                b,
                &AlgorithmConfig::fast_for_tests().with_theta(300),
            )
            .unwrap();
            assert!(
                (gr.estimated_spread.unwrap() - exact.estimated_spread.unwrap()).abs() < 1e-6,
                "b={b}"
            );
        }
    }

    #[test]
    fn monte_carlo_evaluator_also_works() {
        let g = funnel_graph();
        let cfg = ExactSearchConfig {
            evaluator: SpreadEvaluator::MonteCarlo { rounds: 300 },
            threads: 1,
            ..Default::default()
        };
        let sel = exact_blocker_search(&g, vid(0), &[false; 8], 1, &cfg).unwrap();
        assert_eq!(sel.blockers, vec![vid(3)]);
        assert!(sel.stats.mcs_rounds_run >= 300);
    }

    #[test]
    fn search_space_limit_is_enforced() {
        let g = imin_graph::generators::complete(30, 1.0).unwrap();
        let cfg = ExactSearchConfig {
            max_combinations: 100,
            evaluator: SpreadEvaluator::MonteCarlo { rounds: 10 },
            threads: 1,
            seed: 1,
        };
        assert!(matches!(
            exact_blocker_search(&g, vid(0), &[false; 30], 5, &cfg),
            Err(IminError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn no_reachable_candidates_returns_empty_selection() {
        let g = DiGraph::from_edges(3, vec![(vid(1), vid(2), 1.0)]).unwrap();
        let sel = exact_blocker_search(&g, vid(0), &[false; 3], 2, &search_config()).unwrap();
        assert!(sel.is_empty());
    }

    #[test]
    fn budget_capped_at_candidate_count() {
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 1.0)]).unwrap();
        let sel = exact_blocker_search(&g, vid(0), &[false; 2], 5, &search_config()).unwrap();
        assert_eq!(sel.blockers, vec![vid(1)]);
    }

    #[test]
    fn invalid_inputs() {
        let g = funnel_graph();
        assert!(matches!(
            exact_blocker_search(&g, vid(0), &[false; 8], 0, &search_config()),
            Err(IminError::ZeroBudget)
        ));
        assert!(exact_blocker_search(&g, vid(50), &[false; 8], 1, &search_config()).is_err());
        assert!(matches!(
            exact_blocker_search_multi(&g, &[], &[false; 8], 1, &search_config()),
            Err(IminError::EmptySeedSet)
        ));
        // A wrong-length forbidden mask is an error, not a panic.
        assert!(matches!(
            exact_blocker_search(&g, vid(0), &[false; 3], 1, &search_config()),
            Err(IminError::Diffusion(_))
        ));
    }

    #[test]
    fn multi_seed_search_covers_every_seed_component() {
        // Two disjoint chains: 0 -> 1 -> 2 and 3 -> 4 -> 5; with one
        // blocker per seed the optimum cuts both chains at the neck.
        let g = DiGraph::from_edges(
            6,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(3), vid(4), 1.0),
                (vid(4), vid(5), 1.0),
            ],
        )
        .unwrap();
        let sel =
            exact_blocker_search_multi(&g, &[vid(0), vid(3)], &[false; 6], 2, &search_config())
                .unwrap();
        let mut blockers = sel.blockers.clone();
        blockers.sort_unstable();
        assert_eq!(blockers, vec![vid(1), vid(4)]);
        assert!((sel.estimated_spread.unwrap() - 2.0).abs() < 1e-9);
    }
}
