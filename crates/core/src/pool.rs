//! Resident live-edge sample pools — the query-independent half of
//! Algorithm 2, factored out so one pool can serve unbounded queries.
//!
//! The θ sampled graphs of `DecreaseESComputation` depend only on the graph
//! and the diffusion model (Definition 4), **not** on the seed set, the
//! blocked set or the budget. The classic entry points nevertheless redraw
//! the pool for every greedy round of every question, because their rooted
//! sampler interleaves the coin flips with the seed-outward BFS. This module
//! splits the two halves:
//!
//! * [`SamplePool::build`] materialises θ full-graph live-edge realisations
//!   once. Sample `i` is drawn from its own RNG stream keyed by
//!   [`imin_diffusion::live_edge::indexed_sample_seed`]`(pool_seed, i)`, so
//!   the pool is **bit-identical** no matter how many worker threads build
//!   it (indices are sharded across threads, but each sample's stream is
//!   self-contained).
//! * [`pooled_decrease_in`] answers the per-query half: a multi-source BFS
//!   from the (unmerged) seed set over each stored realisation, skipping
//!   blocked vertices, feeds the same Lengauer–Tarjan workspace the classic
//!   path uses. A virtual root above the seeds plays the role of the
//!   unified seed of §V without materialising a merged graph per query.
//! * [`pooled_advanced_greedy_in`] / [`pooled_greedy_replace_in`] are
//!   Algorithms 3 and 4 on top of a borrowed pool: per-query work is only
//!   re-rooting + dominator trees, which is what makes a resident engine
//!   answer follow-up queries orders of magnitude faster than a cold run.
//!
//! ## Storage backends
//!
//! Live-edge storage goes through a `PoolArena`: the
//! sampling write path fills one consolidated raw-u32 CSR (two allocations
//! for the whole pool), [`SamplePool::compress`] /
//! [`SamplePool::build_compressed_with_threads`] re-encode it as
//! delta-varint or per-sample bitset blobs at a fraction of the bytes, and
//! [`crate::snapshot::map_snapshot`] serves either layout zero-copy out of
//! a mapped snapshot file. Queries are **byte-identical across every
//! backend**: decoding reproduces the exact stored adjacency order, and the
//! estimator's integer accumulation never observes the layout.
//!
//! ## Determinism across thread counts
//!
//! The classic estimator derives one RNG stream per worker thread, so its
//! output depends (statistically, not just bit-wise) on the thread count.
//! The pooled path is stronger: samples are fixed per index, and per-sample
//! subtree sizes are accumulated into **`u64`** sums, whose addition is
//! associative and commutative — any sharding of samples across threads
//! produces the same integers, hence byte-identical blocker selections at
//! every thread count. (The classic path keeps `f64` accumulators to remain
//! bit-compatible with its parity references.)

use crate::arena::{
    encode_sample, ArenaBacking, ArenaKind, Blob, CompressedArena, PoolArena, RawArena, SampleView,
    Words,
};
use crate::decrease::DecreaseEstimate;
use crate::snapshot::SnapshotError;
use crate::types::{BlockerSelection, SelectionStats};
use crate::{IminError, Result};
use imin_diffusion::live_edge::indexed_sample_seed;
use imin_domtree::DomTreeWorkspace;
use imin_graph::{DiGraph, VertexId, THRESHOLD_ALWAYS};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::borrow::Cow;
use std::ops::Range;
use std::time::Instant;

const UNMAPPED: u32 = u32::MAX;
/// Sentinel stored at local id 0 of a re-rooted cascade: the virtual root
/// standing in for the unified seed of §V.
const VIRTUAL_ROOT: u32 = u32::MAX;

/// A resident pool of θ live-edge realisations of one graph.
///
/// Build it once per `(graph, θ, seed)` and answer any number of
/// `(seeds, blocked, budget)` questions against it; the pool never changes
/// after construction (except in-place θ-growth of the raw write path), so
/// it can be shared immutably across query workers.
#[derive(Clone, Debug)]
pub struct SamplePool {
    num_vertices: usize,
    num_graph_edges: usize,
    pool_seed: u64,
    arena: PoolArena,
}

/// Splits `0..total` into at most `workers` contiguous near-equal ranges
/// (the first `total % workers` ranges get one extra item). The pool build,
/// the pooled estimator and the engine's batch fan-out all shard through
/// this one helper, so their work distribution can never drift apart.
pub fn shard_ranges(total: usize, workers: usize) -> impl Iterator<Item = Range<usize>> {
    let workers = workers.clamp(1, total.max(1));
    let base = total / workers;
    let extra = total % workers;
    let mut start = 0usize;
    (0..workers).map(move |t| {
        let len = base + usize::from(t < extra);
        let range = start..start + len;
        start += len;
        range
    })
}

/// Draws realisation `sample_idx` of the pool `(pool_seed, θ)`: local
/// offsets into `offsets` (exactly `n + 1` entries), live targets appended
/// to `targets`. Coin semantics are identical to the rooted IC sampler:
/// deterministic edges (threshold 0 / [`THRESHOLD_ALWAYS`]) never touch the
/// RNG, every probabilistic edge costs one `u64` compare.
fn fill_sample(
    graph: &DiGraph,
    pool_seed: u64,
    sample_idx: u64,
    offsets: &mut [u32],
    targets: &mut Vec<u32>,
) {
    let mut rng = SmallRng::seed_from_u64(indexed_sample_seed(pool_seed, sample_idx));
    let base = targets.len();
    offsets[0] = 0;
    for (u, slot) in graph.vertices().zip(offsets[1..].iter_mut()) {
        let out = graph.out_neighbors(u);
        let thresholds = graph.out_coin_thresholds(u);
        for (&t, &threshold) in out.iter().zip(thresholds) {
            let live = threshold == THRESHOLD_ALWAYS
                || (threshold != 0 && (rng.next_u64() >> 11) < threshold);
            if live {
                targets.push(t);
            }
        }
        *slot = (targets.len() - base) as u32;
    }
}

/// Draws `count` consecutive realisations starting at `first_index` into
/// `offsets_region` (`count × (n + 1)` words), sharded across up to
/// `threads` workers. Returns each shard's concatenated targets in shard
/// order; each sample owns its RNG stream, so the result is bit-identical
/// for every `threads` value. Shared by the initial build and
/// [`SamplePool::extend_to`].
fn fill_raw_region(
    graph: &DiGraph,
    seed: u64,
    first_index: usize,
    offsets_region: &mut [u32],
    threads: usize,
) -> Vec<Vec<u32>> {
    let stride = graph.num_vertices() + 1;
    let count = offsets_region.len() / stride;
    let threads = threads.max(1).min(count.max(1));
    if threads <= 1 {
        let mut targets = Vec::new();
        for (i, chunk) in offsets_region.chunks_exact_mut(stride).enumerate() {
            fill_sample(graph, seed, (first_index + i) as u64, chunk, &mut targets);
        }
        return vec![targets];
    }
    let shards: Vec<Range<usize>> = shard_ranges(count, threads).collect();
    let mut parts: Vec<Vec<u32>> = Vec::new();
    parts.resize_with(shards.len(), Vec::new);
    crossbeam::scope(|scope| {
        let mut rest: &mut [u32] = offsets_region;
        for (range, part) in shards.iter().zip(parts.iter_mut()) {
            let (chunk, tail) = rest.split_at_mut(range.len() * stride);
            rest = tail;
            let chunk_start = first_index + range.start;
            scope.spawn(move |_| {
                for (i, sub) in chunk.chunks_exact_mut(stride).enumerate() {
                    fill_sample(graph, seed, (chunk_start + i) as u64, sub, part);
                }
            });
        }
    })
    .expect("sample-pool build worker panicked");
    parts
}

/// Copies the graph's out-CSR (the slot space of bitset-encoded samples).
pub(crate) fn graph_csr_copy(graph: &DiGraph) -> (Vec<u64>, Vec<u32>) {
    let mut gr_offsets = Vec::with_capacity(graph.num_vertices() + 1);
    let mut gr_targets = Vec::with_capacity(graph.num_edges());
    gr_offsets.push(0u64);
    for u in graph.vertices() {
        gr_targets.extend_from_slice(graph.out_neighbors(u));
        gr_offsets.push(gr_targets.len() as u64);
    }
    (gr_offsets, gr_targets)
}

/// One worker's output while building a compressed arena.
#[derive(Default)]
struct CompressedPart {
    blob: Vec<u8>,
    modes: Vec<u8>,
    lens: Vec<u64>,
    sizes: Vec<u64>,
    error: Option<String>,
}

/// Assembles per-shard compressed parts (in shard order) into one arena.
fn assemble_compressed(
    parts: Vec<CompressedPart>,
    gr_offsets: Vec<u64>,
    gr_targets: Vec<u32>,
) -> std::result::Result<CompressedArena, String> {
    let theta: usize = parts.iter().map(|p| p.modes.len()).sum();
    let total_bytes: usize = parts.iter().map(|p| p.blob.len()).sum();
    let mut lens = Vec::with_capacity(theta);
    let mut modes = Vec::with_capacity(theta);
    let mut starts = Vec::with_capacity(theta + 1);
    let mut data = Vec::with_capacity(total_bytes);
    starts.push(0u64);
    let mut acc = 0u64;
    for part in parts {
        if let Some(error) = part.error {
            return Err(error);
        }
        lens.extend_from_slice(&part.lens);
        modes.extend_from_slice(&part.modes);
        for &sz in &part.sizes {
            acc += sz;
            starts.push(acc);
        }
        data.extend_from_slice(&part.blob);
    }
    Ok(CompressedArena {
        lens,
        modes,
        starts,
        data: Blob::Owned(data),
        gr_offsets,
        gr_targets,
    })
}

impl SamplePool {
    /// Materialises θ live-edge realisations of `graph` using the default
    /// worker-thread count.
    ///
    /// # Errors
    /// Returns [`IminError::ZeroSamples`] if `theta` is zero.
    pub fn build(graph: &DiGraph, theta: usize, seed: u64) -> Result<Self> {
        Self::build_with_threads(
            graph,
            theta,
            seed,
            imin_diffusion::montecarlo::default_threads(),
        )
    }

    /// Materialises the pool with an explicit worker-thread count.
    ///
    /// Sample indices are sharded across threads in contiguous ranges, but
    /// every sample draws from its own [`indexed_sample_seed`] stream, so
    /// the result is bit-identical for every `threads` value.
    ///
    /// # Errors
    /// Returns [`IminError::ZeroSamples`] if `theta` is zero.
    pub fn build_with_threads(
        graph: &DiGraph,
        theta: usize,
        seed: u64,
        threads: usize,
    ) -> Result<Self> {
        if theta == 0 {
            return Err(IminError::ZeroSamples);
        }
        let n = graph.num_vertices();
        let stride = n + 1;
        let mut offsets = vec![0u32; theta * stride];
        let parts = fill_raw_region(graph, seed, 0, &mut offsets, threads);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut targets = Vec::with_capacity(total);
        for part in parts {
            targets.extend_from_slice(&part);
        }
        let mut target_start = Vec::with_capacity(theta + 1);
        target_start.push(0u64);
        let mut acc = 0u64;
        for i in 0..theta {
            acc += u64::from(offsets[(i + 1) * stride - 1]);
            target_start.push(acc);
        }
        let arena = RawArena {
            stride,
            target_start,
            offsets: Words::Owned(offsets),
            targets: Words::Owned(targets),
        };
        Ok(SamplePool {
            num_vertices: n,
            num_graph_edges: graph.num_edges(),
            pool_seed: seed,
            arena: PoolArena::raw(n, theta, arena),
        })
    }

    /// Materialises a pool directly in the compressed arena layout, without
    /// ever holding more than one worker's raw realisation at a time — the
    /// peak-memory-friendly build for graphs whose raw pool would not fit.
    ///
    /// Bit-identical in content to [`SamplePool::build_with_threads`]
    /// followed by [`SamplePool::compress`]: each worker draws a sample into
    /// private scratch and encodes it immediately.
    ///
    /// # Errors
    /// Returns [`IminError::ZeroSamples`] if `theta` is zero.
    pub fn build_compressed_with_threads(
        graph: &DiGraph,
        theta: usize,
        seed: u64,
        threads: usize,
    ) -> Result<Self> {
        if theta == 0 {
            return Err(IminError::ZeroSamples);
        }
        let n = graph.num_vertices();
        let (gr_offsets, gr_targets) = graph_csr_copy(graph);
        let threads = threads.max(1).min(theta.max(1));
        let shards: Vec<Range<usize>> = shard_ranges(theta, threads).collect();
        let mut parts: Vec<CompressedPart> = Vec::new();
        parts.resize_with(shards.len(), CompressedPart::default);
        let encode_range = |range: &Range<usize>, part: &mut CompressedPart| {
            let mut offsets = vec![0u32; n + 1];
            let mut targets: Vec<u32> = Vec::new();
            for idx in range.clone() {
                targets.clear();
                fill_sample(graph, seed, idx as u64, &mut offsets, &mut targets);
                match encode_sample(&offsets, &targets, &gr_offsets, &gr_targets, &mut part.blob) {
                    Ok((mode, sz)) => {
                        part.modes.push(mode);
                        part.lens.push(targets.len() as u64);
                        part.sizes.push(sz as u64);
                    }
                    Err(reason) => {
                        part.error = Some(format!("sample {idx}: {reason}"));
                        return;
                    }
                }
            }
        };
        if threads <= 1 {
            encode_range(&shards[0], &mut parts[0]);
        } else {
            crossbeam::scope(|scope| {
                for (range, part) in shards.iter().zip(parts.iter_mut()) {
                    scope.spawn(|_| encode_range(range, part));
                }
            })
            .expect("compressed-pool build worker panicked");
        }
        let arena = assemble_compressed(parts, gr_offsets, gr_targets)
            .map_err(|reason| IminError::Snapshot(SnapshotError::Corrupt { reason }))?;
        Ok(SamplePool {
            num_vertices: n,
            num_graph_edges: graph.num_edges(),
            pool_seed: seed,
            arena: PoolArena::compressed(n, theta, arena),
        })
    }

    /// Re-encodes this pool into the compressed arena layout (delta-varint
    /// or per-sample bitset, whichever is smaller per realisation). The
    /// result answers every query **byte-identically** — compression is
    /// lossless and preserves the stored adjacency order — so a resident
    /// engine can swap arenas without invalidating cached answers.
    ///
    /// # Errors
    /// Returns [`IminError::PoolGraphMismatch`] when `graph` is not the
    /// graph this pool was drawn from, and a snapshot-corruption error when
    /// a (restored) sample turns out not to be a sub-realisation of
    /// `graph` at all.
    pub fn compress(&self, graph: &DiGraph, threads: usize) -> Result<SamplePool> {
        self.ensure_matches(graph)?;
        let n = self.num_vertices;
        let (gr_offsets, gr_targets) = graph_csr_copy(graph);
        let theta = self.theta();
        let threads = threads.max(1).min(theta.max(1));
        let shards: Vec<Range<usize>> = shard_ranges(theta, threads).collect();
        let mut parts: Vec<CompressedPart> = Vec::new();
        parts.resize_with(shards.len(), CompressedPart::default);
        let encode_range = |range: &Range<usize>, part: &mut CompressedPart| {
            let mut scratch_offsets: Vec<u32> = Vec::new();
            let mut scratch_targets: Vec<u32> = Vec::new();
            for idx in range.clone() {
                let view = self.arena.view(idx);
                let (encoded, live) = match view {
                    SampleView::Csr { offsets, targets } => (
                        encode_sample(offsets, targets, &gr_offsets, &gr_targets, &mut part.blob),
                        targets.len() as u64,
                    ),
                    other => {
                        other.decode_into(n, &mut scratch_offsets, &mut scratch_targets);
                        (
                            encode_sample(
                                &scratch_offsets,
                                &scratch_targets,
                                &gr_offsets,
                                &gr_targets,
                                &mut part.blob,
                            ),
                            scratch_targets.len() as u64,
                        )
                    }
                };
                match encoded {
                    Ok((mode, sz)) => {
                        part.modes.push(mode);
                        part.lens.push(live);
                        part.sizes.push(sz as u64);
                    }
                    Err(reason) => {
                        part.error = Some(format!("sample {idx}: {reason}"));
                        return;
                    }
                }
            }
        };
        if threads <= 1 {
            encode_range(&shards[0], &mut parts[0]);
        } else {
            crossbeam::scope(|scope| {
                for (range, part) in shards.iter().zip(parts.iter_mut()) {
                    scope.spawn(|_| encode_range(range, part));
                }
            })
            .expect("pool-compression worker panicked");
        }
        let arena = assemble_compressed(parts, gr_offsets, gr_targets)
            .map_err(|reason| IminError::Snapshot(SnapshotError::Corrupt { reason }))?;
        Ok(SamplePool {
            num_vertices: self.num_vertices,
            num_graph_edges: self.num_graph_edges,
            pool_seed: self.pool_seed,
            arena: PoolArena::compressed(n, theta, arena),
        })
    }

    /// Grows the pool in place to `new_theta` realisations by drawing the
    /// missing samples `θ..θ'` from their own [`indexed_sample_seed`]
    /// streams. Because sample `i` never depends on any other sample, the
    /// extended pool is **bit-identical** to a pool freshly built at
    /// `new_theta` with the same `(graph, pool_seed)` — at every thread
    /// count. A `new_theta` at or below the current θ is a no-op (the pool
    /// never shrinks).
    ///
    /// Returns the number of realisations added.
    ///
    /// # Errors
    /// Returns [`IminError::PoolGraphMismatch`] when `graph` does not have
    /// the shape of the graph the pool was built from, and
    /// [`IminError::PoolArenaImmutable`] when the arena is compressed or
    /// mapped — only the heap-resident raw write path can grow in place
    /// (callers rebuild instead).
    pub fn extend_to(
        &mut self,
        graph: &DiGraph,
        new_theta: usize,
        threads: usize,
    ) -> Result<usize> {
        self.ensure_matches(graph)?;
        let old_theta = self.theta();
        if new_theta <= old_theta {
            return Ok(0);
        }
        if !self.arena.is_extendable() {
            return Err(IminError::PoolArenaImmutable {
                arena: self.arena.kind().as_str(),
            });
        }
        let stride = self.num_vertices + 1;
        let ArenaBacking::Raw(raw) = &mut self.arena.backing else {
            unreachable!("is_extendable implies a raw backing");
        };
        let (Words::Owned(offsets), Words::Owned(targets)) = (&mut raw.offsets, &mut raw.targets)
        else {
            unreachable!("is_extendable implies owned words");
        };
        offsets.resize(new_theta * stride, 0);
        let parts = fill_raw_region(
            graph,
            self.pool_seed,
            old_theta,
            &mut offsets[old_theta * stride..],
            threads,
        );
        let added: usize = parts.iter().map(|p| p.len()).sum();
        targets.reserve(added);
        for part in parts {
            targets.extend_from_slice(&part);
        }
        let mut acc = raw.target_start[old_theta];
        for i in old_theta..new_theta {
            acc += u64::from(offsets[(i + 1) * stride - 1]);
            raw.target_start.push(acc);
        }
        self.arena.theta = new_theta;
        Ok(new_theta - old_theta)
    }

    /// The live-edge storage, for the snapshot writer and readers.
    pub(crate) fn arena(&self) -> &PoolArena {
        &self.arena
    }

    /// Reassembles a pool around a deserialised arena. The caller (the
    /// snapshot reader) is responsible for the arena actually being the
    /// pool `(graph, pool_seed, θ)` — integrity is enforced by the snapshot
    /// checksum, the graph fingerprint and structural validation, not
    /// re-derived here.
    pub(crate) fn from_arena(
        num_vertices: usize,
        num_graph_edges: usize,
        pool_seed: u64,
        arena: PoolArena,
    ) -> Self {
        SamplePool {
            num_vertices,
            num_graph_edges,
            pool_seed,
            arena,
        }
    }

    /// Number of realisations θ held by the pool.
    pub fn theta(&self) -> usize {
        self.arena.theta
    }

    /// The base seed the pool was built from.
    pub fn pool_seed(&self) -> u64 {
        self.pool_seed
    }

    /// Number of vertices of the graph the pool was drawn from.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges of the graph the pool was drawn from.
    pub fn num_graph_edges(&self) -> usize {
        self.num_graph_edges
    }

    /// The storage backend currently holding the realisations.
    pub fn arena_kind(&self) -> ArenaKind {
        self.arena.kind()
    }

    /// Whether [`SamplePool::extend_to`] can grow this pool in place (true
    /// only for the heap-resident raw write path).
    pub fn is_extendable(&self) -> bool {
        self.arena.is_extendable()
    }

    /// Checks that `graph` has the shape of the graph this pool was built
    /// from. Vertex and edge counts together catch most accidental
    /// mispairings (same-shape different graphs are indistinguishable
    /// without hashing the whole edge list).
    ///
    /// # Errors
    /// Returns [`IminError::PoolGraphMismatch`] when either count differs.
    pub fn ensure_matches(&self, graph: &DiGraph) -> Result<()> {
        if graph.num_vertices() != self.num_vertices || graph.num_edges() != self.num_graph_edges {
            return Err(IminError::PoolGraphMismatch {
                graph_vertices: graph.num_vertices(),
                graph_edges: graph.num_edges(),
                pool_vertices: self.num_vertices,
                pool_edges: self.num_graph_edges,
            });
        }
        Ok(())
    }

    /// Total number of live edges stored across all realisations.
    pub fn total_live_edges(&self) -> usize {
        self.arena.total_live_edges() as usize
    }

    /// Heap bytes resident for the pool: allocated arena capacity plus the
    /// directory/table and struct footprint. Mapped arena bytes are *not*
    /// counted here — see [`SamplePool::mapped_bytes`].
    pub fn memory_bytes(&self) -> usize {
        let (owned, _mapped) = self.arena.memory_bytes();
        owned + std::mem::size_of::<Self>()
    }

    /// Bytes served directly from a mapped snapshot file (0 for
    /// heap-resident arenas). These pages live in the page cache, not the
    /// process heap, and are reclaimable under memory pressure.
    pub fn mapped_bytes(&self) -> usize {
        let (_owned, mapped) = self.arena.memory_bytes();
        mapped
    }

    /// Bytes this pool would occupy in the heap-resident raw-u32 layout —
    /// the denominator of [`SamplePool::compression_ratio`].
    pub fn raw_equivalent_bytes(&self) -> u64 {
        self.arena.raw_equivalent_bytes()
    }

    /// Stored arena bytes (heap + mapped) over the raw-equivalent bytes:
    /// ≈ 1.0 for raw arenas, < 1.0 when compression wins.
    pub fn compression_ratio(&self) -> f64 {
        let (owned, mapped) = self.arena.memory_bytes();
        (owned + mapped) as f64 / self.raw_equivalent_bytes() as f64
    }

    /// CSR view `(offsets, targets)` of realisation `idx`, for tests and
    /// parity checks against the nested-vector reference sampler. Borrowed
    /// slices for raw arenas; compressed arenas decode into owned vectors
    /// (byte-identical content — use [`SamplePool::sample_csr_into`] with
    /// reused buffers when iterating many samples).
    ///
    /// # Panics
    /// Panics if `idx >= theta`.
    pub fn sample_csr(&self, idx: usize) -> (Cow<'_, [u32]>, Cow<'_, [u32]>) {
        match self.arena.view(idx) {
            SampleView::Csr { offsets, targets } => {
                (Cow::Borrowed(offsets), Cow::Borrowed(targets))
            }
            view => {
                let mut offsets = Vec::new();
                let mut targets = Vec::new();
                view.decode_into(self.num_vertices, &mut offsets, &mut targets);
                (Cow::Owned(offsets), Cow::Owned(targets))
            }
        }
    }

    /// Decodes realisation `idx` into the caller's buffers (cleared first),
    /// byte-identical to the raw layout whatever the backend.
    ///
    /// # Panics
    /// Panics if `idx >= theta`.
    pub fn sample_csr_into(&self, idx: usize, offsets: &mut Vec<u32>, targets: &mut Vec<u32>) {
        self.arena
            .view(idx)
            .decode_into(self.num_vertices, offsets, targets);
    }
}

/// A cascade re-rooted at a query's seed set inside one stored realisation:
/// local vertex 0 is a virtual root with one edge per seed, and the reached
/// region is renumbered densely exactly like a rooted `CompactSample`.
#[derive(Clone, Debug, Default)]
struct RootedCascade {
    /// Global id per local vertex; `vertices[0]` is [`VIRTUAL_ROOT`].
    vertices: Vec<u32>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    local_of: Vec<u32>,
}

impl RootedCascade {
    fn reset(&mut self, n: usize) {
        // Skip the sentinel at local 0 — it has no global id to unmap.
        for &v in self.vertices.iter().skip(1) {
            self.local_of[v as usize] = UNMAPPED;
        }
        if self.local_of.len() < n {
            self.local_of.resize(n, UNMAPPED);
        }
        self.vertices.clear();
        self.vertices.push(VIRTUAL_ROOT);
        self.offsets.clear();
        self.offsets.push(0);
        self.targets.clear();
    }

    fn intern(&mut self, global: u32) -> u32 {
        let slot = self.local_of[global as usize];
        if slot != UNMAPPED {
            return slot;
        }
        let local = self.vertices.len() as u32;
        self.local_of[global as usize] = local;
        self.vertices.push(global);
        local
    }
}

/// Per-worker scratch for the pooled estimator: the re-rooted cascade
/// buffers, the dominator-tree workspace and the integer accumulators.
#[derive(Clone, Debug, Default)]
struct PoolWorkerScratch {
    cascade: RootedCascade,
    domtree: DomTreeWorkspace,
    sizes: Vec<u64>,
    /// Integer subtree-size sums per global vertex. `u64` addition is
    /// associative, so merging per-worker sums is order- and
    /// thread-count-independent — the determinism contract of the pool.
    delta_sum: Vec<u64>,
    reached_sum: u64,
    /// Nanoseconds spent in the decode / bfs / domtree / credit phases of
    /// the last `accumulate` call, estimated by profiling a prefix of the
    /// realisations (all zero when it ran untimed). Workers fill these
    /// plain slots; the calling thread folds them into its `imin_obs`
    /// span after the join.
    phase_ns: [u64; 4],
}

/// `phase_ns` slot indices of [`PoolWorkerScratch`].
const PN_DECODE: usize = 0;
const PN_BFS: usize = 1;
const PN_DOMTREE: usize = 2;
const PN_CREDIT: usize = 3;

/// Stride for sampled phase lapping in the runtime-branched estimator
/// loops ([`crate::decrease`]): one sample iteration in `LAP_STRIDE`
/// reads the clock at each phase boundary, the rest skip the laps, and
/// [`PhaseSplit`] spreads the loop's measured wall time across the
/// phases in the sampled proportions. The phase *total* stays exact
/// while per-phase attribution carries only the ~1/√(θ/stride) sampling
/// error. Power of two so the stride test compiles to a mask.
pub(crate) const LAP_STRIDE: usize = 16;

/// Number of leading samples a *timed* pooled accumulate routes through
/// the instrumented monomorphisation to measure the phase mix; the rest
/// run the untimed loop at full speed and [`PhaseSplit`] spreads the
/// call's total wall time by the profiled proportions. Keeping the
/// instrumented instance off the bulk of the work matters far more than
/// the clock reads themselves: the extra code in the loop body was
/// observed degrading the BFS codegen by 4–13% depending on build, while
/// a 128-sample profile prefix bounds that to ~0.2% of a θ=10⁴ query.
/// Phase totals stay exact by construction; per-phase attribution
/// carries the ~1/√PROFILE_SAMPLES sampling error per round.
const PROFILE_SAMPLES: usize = 128;

/// A cheap monotonic tick source for phase lapping. On x86-64 this is a
/// single `rdtsc` instruction — a fraction of the `clock_gettime` call
/// behind `Instant::now`. Ticks never leave the module: [`PhaseSplit`]
/// only uses their *ratios*, so the TSC frequency needs no calibration;
/// non-x86 targets fall back to `Instant`.
#[inline]
pub(crate) fn ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `rdtsc` has no preconditions — it only reads the
    // time-stamp counter.
    #[allow(unsafe_code)]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Advances `mark` to the current tick and adds the elapsed ticks to
/// `slot`. Chaining laps this way costs one tick read per phase boundary.
#[inline]
pub(crate) fn lap(mark: &mut u64, slot: &mut u64) {
    let now = ticks();
    *slot += now.wrapping_sub(*mark);
    *mark = now;
}

/// `Instant`-denominated lap for coarse, once-per-request phase boundaries
/// (the snapshot load/validate/map phases), where a full clock read per
/// lap is noise and no tick-to-nanosecond scaling pass runs afterwards.
pub(crate) fn lap_instant(mark: &mut Instant, slot: &mut u64) {
    let now = Instant::now();
    *slot += now.duration_since(*mark).as_nanos() as u64;
    *mark = now;
}

/// Spreads a lapped loop's total wall time across its phase slots in the
/// proportion of their sampled tick counts: `begin` before the loop,
/// `split` after it. The slots then sum to the loop's measured elapsed
/// time exactly — whatever fraction of iterations was sampled and
/// whatever the tick frequency.
pub(crate) struct PhaseSplit {
    start: Instant,
}

impl PhaseSplit {
    pub(crate) fn begin() -> Self {
        PhaseSplit {
            start: Instant::now(),
        }
    }

    /// Rewrites tick-denominated `slots` in place as nanoseconds summing
    /// to the elapsed time since `begin`. All-zero slots are left alone
    /// (an empty loop has nothing to attribute).
    pub(crate) fn split(&self, slots: &mut [u64]) {
        let total: u64 = slots.iter().sum();
        if total == 0 {
            return;
        }
        let elapsed = self.start.elapsed().as_nanos() as f64;
        for slot in slots.iter_mut() {
            *slot = (*slot as f64 / total as f64 * elapsed) as u64;
        }
    }
}

impl PoolWorkerScratch {
    /// Re-roots every realisation in `range` at the seed set and
    /// accumulates subtree sizes into `self.delta_sum`. Neighbour lists are
    /// decoded through the pool's arena view — raw slices, varint streams
    /// and bitset walks all feed the identical BFS, with zero steady-state
    /// allocation.
    ///
    /// When `timed` is set, per-phase wall-clock nanoseconds are estimated
    /// into `self.phase_ns` by prefix profiling: the first
    /// [`PROFILE_SAMPLES`] realisations run through the instrumented
    /// monomorphisation (which laps every phase boundary), the bulk runs
    /// the untimed loop, and the call's total wall time is spread across
    /// the phases in the profiled proportions. The untimed
    /// monomorphisation compiles every clock read out, so an
    /// uninstrumented query pays nothing. Both variants run the identical
    /// accumulation logic, so answers are byte-identical with timing on
    /// and off.
    fn accumulate(
        &mut self,
        pool: &SamplePool,
        seeds: &[u32],
        is_seed: &[bool],
        blocked: &[bool],
        range: Range<usize>,
        timed: bool,
    ) {
        self.delta_sum.clear();
        self.delta_sum.resize(pool.num_vertices, 0);
        self.reached_sum = 0;
        self.phase_ns = [0; 4];
        if timed {
            let split = PhaseSplit::begin();
            let profile_end = range.end.min(range.start + PROFILE_SAMPLES);
            self.accumulate_impl::<true>(pool, seeds, is_seed, blocked, range.start..profile_end);
            self.accumulate_impl::<false>(pool, seeds, is_seed, blocked, profile_end..range.end);
            split.split(&mut self.phase_ns);
        } else {
            self.accumulate_impl::<false>(pool, seeds, is_seed, blocked, range);
        }
    }

    fn accumulate_impl<const TIMED: bool>(
        &mut self,
        pool: &SamplePool,
        seeds: &[u32],
        is_seed: &[bool],
        blocked: &[bool],
        range: Range<usize>,
    ) {
        let n = pool.num_vertices;
        let PoolWorkerScratch {
            cascade,
            domtree,
            sizes,
            delta_sum,
            reached_sum,
            phase_ns,
        } = self;
        let only_seeds = 1 + seeds.len();
        for idx in range {
            let mut mark = if TIMED { ticks() } else { 0 };
            let view = pool.arena.view(idx);
            if TIMED {
                lap(&mut mark, &mut phase_ns[PN_DECODE]);
            }
            cascade.reset(n);
            // Virtual root → every seed (the unified-seed edges of §V, all
            // with probability 1, so no coins are involved).
            for &s in seeds {
                let local = cascade.intern(s);
                cascade.targets.push(local);
            }
            cascade.offsets.push(cascade.targets.len() as u32);
            // Multi-source BFS over the stored live edges; only blocked
            // vertices are filtered — the coins were flipped at build time.
            let mut head = 1usize;
            while head < cascade.vertices.len() {
                let u_global = cascade.vertices[head];
                head += 1;
                view.for_each_live(u_global, |t| {
                    if blocked[t as usize] {
                        return;
                    }
                    let t_local = cascade.intern(t);
                    cascade.targets.push(t_local);
                });
                cascade.offsets.push(cascade.targets.len() as u32);
            }
            if TIMED {
                lap(&mut mark, &mut phase_ns[PN_BFS]);
            }
            let reached = cascade.vertices.len();
            // The virtual root is bookkeeping, not spread.
            *reached_sum += (reached - 1) as u64;
            if reached <= only_seeds {
                // Nothing beyond the seeds was reached: no candidate can
                // earn credit from this realisation.
                continue;
            }
            let tree = domtree.compute_csr(
                reached,
                &cascade.offsets,
                &cascade.targets,
                VertexId::new(0),
            );
            if TIMED {
                lap(&mut mark, &mut phase_ns[PN_DOMTREE]);
            }
            tree.subtree_sizes_into(sizes);
            for (&global, &size) in cascade.vertices[1..reached].iter().zip(&sizes[1..reached]) {
                if is_seed[global as usize] {
                    continue;
                }
                delta_sum[global as usize] += size;
            }
            if TIMED {
                lap(&mut mark, &mut phase_ns[PN_CREDIT]);
            }
        }
    }
}

/// Reusable state for the pooled estimator and the pooled greedy loops: one
/// scratch set per worker thread plus the canonicalised-seed buffers, kept
/// alive across rounds and across queries.
#[derive(Clone, Debug, Default)]
pub struct PoolWorkspace {
    workers: Vec<PoolWorkerScratch>,
    seeds: Vec<u32>,
    is_seed: Vec<bool>,
}

thread_local! {
    /// Per-thread scratch behind [`with_pool_workspace`].
    static SOLVER_POOL_WORKSPACE: std::cell::RefCell<PoolWorkspace> =
        std::cell::RefCell::new(PoolWorkspace::new());
}

/// Runs `f` with this thread's reusable [`PoolWorkspace`].
///
/// The pooled [`crate::BlockerSolver`] arms take their workspace from here,
/// so a resident engine answering many queries on one serving thread keeps
/// the PR-3 steady-state allocation profile without threading `&mut`
/// workspaces through the solver trait. Callers that manage their own
/// workspace lifetimes (the `_in` entry points) are unaffected.
///
/// # Panics
/// Panics if `f` itself re-enters `with_pool_workspace` on the same thread
/// (the workspace is exclusively borrowed for the duration of `f`).
pub fn with_pool_workspace<R>(f: impl FnOnce(&mut PoolWorkspace) -> R) -> R {
    SOLVER_POOL_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

impl PoolWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonicalises (sorts, dedups, validates) the query seed set into the
    /// workspace buffers.
    fn stage_seeds(&mut self, n: usize, seeds: &[VertexId], blocked: &[bool]) -> Result<()> {
        if seeds.is_empty() {
            return Err(IminError::EmptySeedSet);
        }
        // A previous query may have staged seeds for a different (larger)
        // graph; clear only the slots that still exist.
        for &v in &self.seeds {
            if let Some(slot) = self.is_seed.get_mut(v as usize) {
                *slot = false;
            }
        }
        self.is_seed.resize(n, false);
        self.seeds.clear();
        for &s in seeds {
            if s.index() >= n {
                return Err(IminError::SeedOutOfRange {
                    vertex: s.index(),
                    num_vertices: n,
                });
            }
            if blocked[s.index()] {
                return Err(IminError::ForbiddenSeedOverlap { vertex: s.index() });
            }
            self.seeds.push(s.raw());
        }
        self.seeds.sort_unstable();
        self.seeds.dedup();
        for &s in &self.seeds {
            self.is_seed[s as usize] = true;
        }
        Ok(())
    }
}

/// Algorithm 2 against a resident pool: estimates the spread decrease of
/// every candidate blocker for a (multi-)seed query by re-rooting the θ
/// stored realisations, without drawing a single new sample.
///
/// `estimate.delta[u]` is 0 for seeds, blocked vertices and unreachable
/// vertices; `estimate.average_reached` counts every reached seed (it is
/// directly comparable to the original-graph spread of `ImninProblem`).
///
/// Results are bit-identical for every `threads` value — see the module
/// docs for why.
///
/// # Errors
/// Returns an error if the seed set is empty, out of range or blocked, or
/// the blocked mask has the wrong length.
pub fn pooled_decrease_in(
    pool: &SamplePool,
    seeds: &[VertexId],
    blocked: &[bool],
    threads: usize,
    workspace: &mut PoolWorkspace,
) -> Result<DecreaseEstimate> {
    let n = pool.num_vertices();
    if blocked.len() != n {
        return Err(IminError::Diffusion(
            imin_diffusion::DiffusionError::MaskLengthMismatch {
                mask_len: blocked.len(),
                num_vertices: n,
            },
        ));
    }
    workspace.stage_seeds(n, seeds, blocked)?;
    let theta = pool.theta();
    let threads = threads.max(1).min(theta);
    // Sampled on the calling thread: workers collect plain nanosecond
    // slots, and only the caller's span (if any) aggregates them.
    let timed = imin_obs::span::active();
    let PoolWorkspace {
        workers,
        seeds: staged,
        is_seed,
    } = workspace;
    if workers.len() < threads {
        workers.resize_with(threads, PoolWorkerScratch::default);
    }
    let workers = &mut workers[..threads];
    if threads <= 1 {
        workers[0].accumulate(pool, staged, is_seed, blocked, 0..theta, timed);
    } else {
        crossbeam::scope(|scope| {
            for (worker, range) in workers.iter_mut().zip(shard_ranges(theta, threads)) {
                let (staged, is_seed) = (&*staged, &*is_seed);
                scope.spawn(move |_| {
                    worker.accumulate(pool, staged, is_seed, blocked, range, timed)
                });
            }
        })
        .expect("pooled-estimator worker panicked");
    }
    let merge_start = timed.then(Instant::now);
    // Integer merge: order-independent, hence thread-count-independent.
    let (first, rest) = workers.split_at_mut(1);
    let delta_sum = &mut first[0].delta_sum;
    let mut reached_total = first[0].reached_sum;
    for worker in rest.iter() {
        reached_total += worker.reached_sum;
        for (acc, &d) in delta_sum.iter_mut().zip(&worker.delta_sum) {
            *acc += d;
        }
    }
    let inv = 1.0 / theta as f64;
    let estimate = DecreaseEstimate {
        delta: delta_sum.iter().map(|&d| d as f64 * inv).collect(),
        average_reached: reached_total as f64 * inv,
        samples: theta,
    };
    if timed {
        use imin_obs::{span, Phase};
        for worker in workers.iter() {
            span::add_ns(Phase::Decode, worker.phase_ns[PN_DECODE]);
            span::add_ns(Phase::Bfs, worker.phase_ns[PN_BFS]);
            span::add_ns(Phase::DomTree, worker.phase_ns[PN_DOMTREE]);
            span::add_ns(Phase::Credit, worker.phase_ns[PN_CREDIT]);
        }
        if let Some(start) = merge_start {
            // Merge + finalisation scale with n, like credit accumulation.
            span::add_ns(Phase::Credit, start.elapsed().as_nanos() as u64);
        }
    }
    Ok(estimate)
}

/// One-shot convenience over [`pooled_decrease_in`] with a fresh workspace.
///
/// # Errors
/// Same conditions as [`pooled_decrease_in`].
pub fn pooled_decrease(
    pool: &SamplePool,
    seeds: &[VertexId],
    blocked: &[bool],
    threads: usize,
) -> Result<DecreaseEstimate> {
    pooled_decrease_in(pool, seeds, blocked, threads, &mut PoolWorkspace::new())
}

/// `DecreaseEstimate::best_candidate` with the scan attributed to the
/// `select` phase of the caller's span when `timed` is set.
fn timed_best(
    estimate: &DecreaseEstimate,
    timed: bool,
    pred: impl Fn(VertexId) -> bool,
) -> Option<VertexId> {
    if !timed {
        return estimate.best_candidate(pred);
    }
    let start = Instant::now();
    let chosen = estimate.best_candidate(pred);
    imin_obs::span::add_ns(imin_obs::Phase::Select, start.elapsed().as_nanos() as u64);
    chosen
}

/// Validates the query-shaped inputs shared by the pooled greedy loops.
fn validate_pooled_query(pool: &SamplePool, forbidden: &[bool], budget: usize) -> Result<()> {
    if budget == 0 {
        return Err(IminError::ZeroBudget);
    }
    if forbidden.len() != pool.num_vertices() {
        return Err(IminError::Diffusion(
            imin_diffusion::DiffusionError::MaskLengthMismatch {
                mask_len: forbidden.len(),
                num_vertices: pool.num_vertices(),
            },
        ));
    }
    Ok(())
}

/// AdvancedGreedy (Algorithm 3) against a borrowed resident pool.
///
/// Identical greedy structure to the classic entry point, but every round
/// prices candidates by re-rooting the same θ realisations instead of
/// redrawing them — per-round work is BFS + dominator trees only.
/// `forbidden[v] = true` marks vertices that may never be blocked; seeds
/// are always excluded. `estimated_spread` counts every seed as active.
///
/// # Errors
/// Returns an error on a zero budget, an invalid seed set, or a
/// wrong-length forbidden mask.
pub fn pooled_advanced_greedy_in(
    pool: &SamplePool,
    seeds: &[VertexId],
    forbidden: &[bool],
    budget: usize,
    threads: usize,
    workspace: &mut PoolWorkspace,
) -> Result<BlockerSelection> {
    let start = Instant::now();
    validate_pooled_query(pool, forbidden, budget)?;
    let timed = imin_obs::span::active();
    let n = pool.num_vertices();
    let mut blocked = vec![false; n];
    let mut blockers = Vec::with_capacity(budget);
    let mut stats = SelectionStats::default();
    let mut estimated_spread = None;
    for round in 0..budget {
        let estimate = pooled_decrease_in(pool, seeds, &blocked, threads, workspace)?;
        stats.samples_drawn += estimate.samples;
        let chosen = timed_best(&estimate, timed, |v| {
            !workspace.is_seed[v.index()] && !blocked[v.index()] && !forbidden[v.index()]
        });
        let Some(chosen) = chosen else {
            estimated_spread = Some(estimate.average_reached);
            break;
        };
        estimated_spread = Some(estimate.average_reached - estimate.delta[chosen.index()]);
        blocked[chosen.index()] = true;
        blockers.push(chosen);
        stats.rounds = round + 1;
    }
    stats.elapsed = start.elapsed();
    Ok(BlockerSelection {
        blockers,
        estimated_spread,
        blocked_edges: Vec::new(),
        stats,
    })
}

/// GreedyReplace (Algorithm 4) against a borrowed resident pool: the
/// out-neighbour phase ranks the seeds' out-neighbours, a fill phase spends
/// leftover budget globally, and the replacement phase revisits blockers in
/// reverse insertion order — all priced by re-rooting the same pool.
///
/// # Errors
/// Returns an error on a zero budget, an invalid seed set, a wrong-length
/// forbidden mask, or a `graph` whose size differs from the graph the pool
/// was built from.
pub fn pooled_greedy_replace_in(
    pool: &SamplePool,
    graph: &DiGraph,
    seeds: &[VertexId],
    forbidden: &[bool],
    budget: usize,
    threads: usize,
    workspace: &mut PoolWorkspace,
) -> Result<BlockerSelection> {
    let start = Instant::now();
    validate_pooled_query(pool, forbidden, budget)?;
    pool.ensure_matches(graph)?;
    let timed = imin_obs::span::active();
    let n = pool.num_vertices();
    let mut blocked = vec![false; n];
    let mut blockers: Vec<VertexId> = Vec::with_capacity(budget);
    let mut stats = SelectionStats::default();
    let mut estimated_spread: Option<f64> = None;

    // Stage once to build the seed mask for candidate filtering; the
    // estimator re-stages per round (cheap — the buffers are reused).
    workspace.stage_seeds(n, seeds, &blocked)?;
    let eligible = |v: VertexId, blocked: &[bool], is_seed: &[bool]| {
        !is_seed[v.index()] && !blocked[v.index()] && !forbidden[v.index()]
    };

    // ---- Phase 1: blockers among the seeds' out-neighbours ----------------
    let mut candidate_pool: Vec<VertexId> = Vec::new();
    for &s in &workspace.seeds {
        for &t in graph.out_neighbors(VertexId::from_raw(s)) {
            let v = VertexId::from_raw(t);
            if eligible(v, &blocked, &workspace.is_seed) {
                candidate_pool.push(v);
            }
        }
    }
    candidate_pool.sort_unstable();
    candidate_pool.dedup();

    let out_rounds = candidate_pool.len().min(budget);
    for _ in 0..out_rounds {
        stats.rounds += 1;
        let estimate = pooled_decrease_in(pool, seeds, &blocked, threads, workspace)?;
        stats.samples_drawn += estimate.samples;
        let chosen = timed_best(&estimate, timed, |v| {
            candidate_pool.contains(&v) && eligible(v, &blocked, &workspace.is_seed)
        });
        let Some(chosen) = chosen else { break };
        estimated_spread = Some(estimate.average_reached - estimate.delta[chosen.index()]);
        blocked[chosen.index()] = true;
        blockers.push(chosen);
        candidate_pool.retain(|&v| v != chosen);
    }

    // ---- Fill: spend any remaining budget on global greedy picks ----------
    while blockers.len() < budget {
        stats.rounds += 1;
        let estimate = pooled_decrease_in(pool, seeds, &blocked, threads, workspace)?;
        stats.samples_drawn += estimate.samples;
        let chosen = timed_best(&estimate, timed, |v| {
            eligible(v, &blocked, &workspace.is_seed)
        });
        let Some(chosen) = chosen else { break };
        estimated_spread = Some(estimate.average_reached - estimate.delta[chosen.index()]);
        blocked[chosen.index()] = true;
        blockers.push(chosen);
    }

    // ---- Phase 2: replacement in reverse insertion order ------------------
    for idx in (0..blockers.len()).rev() {
        let u = blockers[idx];
        blocked[u.index()] = false;
        stats.rounds += 1;
        let estimate = pooled_decrease_in(pool, seeds, &blocked, threads, workspace)?;
        stats.samples_drawn += estimate.samples;
        let chosen = timed_best(&estimate, timed, |v| {
            eligible(v, &blocked, &workspace.is_seed)
        });
        let Some(chosen) = chosen else {
            blocked[u.index()] = true;
            break;
        };
        estimated_spread = Some(estimate.average_reached - estimate.delta[chosen.index()]);
        blocked[chosen.index()] = true;
        blockers[idx] = chosen;
        if chosen == u {
            // Early termination (Algorithm 4, lines 19–20).
            break;
        }
    }

    stats.elapsed = start.elapsed();
    Ok(BlockerSelection {
        blockers,
        estimated_spread,
        blocked_edges: Vec::new(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decrease::{decrease_es_computation, DecreaseConfig};
    use crate::snapshot::pool_digest;
    use imin_diffusion::live_edge::sample_live_edges_indexed;
    use imin_graph::generators;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// 0 -> 1 -> {2, 3}, all probability 1.
    fn deterministic_tree() -> DiGraph {
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
            ],
        )
        .unwrap()
    }

    fn wc_pa(n: usize, seed: u64) -> DiGraph {
        imin_diffusion::ProbabilityModel::WeightedCascade
            .apply(&generators::preferential_attachment(n, 3, true, 1.0, seed).unwrap())
            .unwrap()
    }

    #[test]
    fn build_rejects_zero_theta() {
        let g = deterministic_tree();
        assert!(matches!(
            SamplePool::build(&g, 0, 1),
            Err(IminError::ZeroSamples)
        ));
        assert!(matches!(
            SamplePool::build_compressed_with_threads(&g, 0, 1, 2),
            Err(IminError::ZeroSamples)
        ));
    }

    #[test]
    fn pool_is_bit_identical_across_thread_counts() {
        let g = wc_pa(120, 3);
        let reference = SamplePool::build_with_threads(&g, 33, 9, 1).unwrap();
        for threads in [2usize, 5, 8] {
            let pool = SamplePool::build_with_threads(&g, 33, 9, threads).unwrap();
            assert_eq!(pool.theta(), 33);
            for i in 0..33 {
                assert_eq!(
                    pool.sample_csr(i),
                    reference.sample_csr(i),
                    "threads={threads}: sample {i} diverged"
                );
            }
        }
    }

    #[test]
    fn pool_samples_match_the_indexed_reference_sampler() {
        let g = wc_pa(80, 5);
        let pool = SamplePool::build_with_threads(&g, 10, 41, 3).unwrap();
        for i in 0..10 {
            let nested = sample_live_edges_indexed(&g, 41, i as u64);
            let (offsets, targets) = pool.sample_csr(i);
            for u in 0..g.num_vertices() {
                let lo = offsets[u] as usize;
                let hi = offsets[u + 1] as usize;
                assert_eq!(
                    &targets[lo..hi],
                    nested[u].as_slice(),
                    "sample {i}, vertex {u}"
                );
            }
        }
    }

    #[test]
    fn compressed_pool_is_byte_identical_to_raw() {
        let g = wc_pa(150, 21);
        let raw = SamplePool::build_with_threads(&g, 40, 77, 2).unwrap();
        let compressed = raw.compress(&g, 2).unwrap();
        assert_eq!(compressed.arena_kind(), ArenaKind::Compressed);
        assert_eq!(compressed.theta(), raw.theta());
        assert_eq!(compressed.total_live_edges(), raw.total_live_edges());
        assert_eq!(pool_digest(&compressed), pool_digest(&raw));
        for i in 0..raw.theta() {
            assert_eq!(compressed.sample_csr(i), raw.sample_csr(i), "sample {i}");
        }
        // Direct compressed build matches compress-after-build bit for bit.
        for threads in [1usize, 3] {
            let direct = SamplePool::build_compressed_with_threads(&g, 40, 77, threads).unwrap();
            assert_eq!(pool_digest(&direct), pool_digest(&raw), "threads={threads}");
        }
    }

    #[test]
    fn compression_shrinks_weighted_cascade_pools() {
        let g = wc_pa(2_000, 11);
        let raw = SamplePool::build_with_threads(&g, 50, 5, 2).unwrap();
        let compressed = raw.compress(&g, 2).unwrap();
        let ratio = compressed.compression_ratio();
        assert!(
            ratio < 0.5,
            "weighted-cascade realisations must compress below 0.5×, got {ratio:.3}"
        );
        assert!(raw.compression_ratio() >= 0.9, "raw arena ratio is ≈ 1");
    }

    #[test]
    fn queries_are_byte_identical_across_arena_kinds_and_threads() {
        let g = wc_pa(200, 17);
        let n = g.num_vertices();
        let raw = SamplePool::build(&g, 300, 23).unwrap();
        let compressed = raw.compress(&g, 2).unwrap();
        let forbidden = vec![false; n];
        let seeds = [vid(0), vid(3)];
        let mut ws = PoolWorkspace::new();
        let ag_ref = pooled_advanced_greedy_in(&raw, &seeds, &forbidden, 4, 1, &mut ws).unwrap();
        let gr_ref = pooled_greedy_replace_in(&raw, &g, &seeds, &forbidden, 4, 1, &mut ws).unwrap();
        for threads in [1usize, 2, 8] {
            let ag =
                pooled_advanced_greedy_in(&compressed, &seeds, &forbidden, 4, threads, &mut ws)
                    .unwrap();
            assert_eq!(ag.blockers, ag_ref.blockers, "AG threads={threads}");
            assert_eq!(ag.estimated_spread, ag_ref.estimated_spread);
            let gr =
                pooled_greedy_replace_in(&compressed, &g, &seeds, &forbidden, 4, threads, &mut ws)
                    .unwrap();
            assert_eq!(gr.blockers, gr_ref.blockers, "GR threads={threads}");
            assert_eq!(gr.estimated_spread, gr_ref.estimated_spread);
        }
    }

    #[test]
    fn pooled_estimates_are_exact_on_deterministic_graphs() {
        let g = deterministic_tree();
        let pool = SamplePool::build(&g, 16, 7).unwrap();
        let est = pooled_decrease(&pool, &[vid(0)], &[false; 4], 1).unwrap();
        assert_eq!(est.samples, 16);
        assert!((est.average_reached - 4.0).abs() < 1e-12);
        assert!((est.delta[1] - 3.0).abs() < 1e-12);
        assert!((est.delta[2] - 1.0).abs() < 1e-12);
        assert!((est.delta[3] - 1.0).abs() < 1e-12);
        assert_eq!(est.delta[0], 0.0, "seeds earn no credit");
    }

    #[test]
    fn pooled_estimates_agree_statistically_with_the_classic_estimator() {
        let g = wc_pa(150, 11);
        let n = g.num_vertices();
        let pool = SamplePool::build(&g, 6_000, 2).unwrap();
        let pooled = pooled_decrease(&pool, &[vid(0)], &vec![false; n], 1).unwrap();
        let classic = decrease_es_computation(
            &g,
            vid(0),
            &vec![false; n],
            &DecreaseConfig {
                theta: 6_000,
                threads: 1,
                seed: 77,
            },
        )
        .unwrap();
        assert!((pooled.average_reached - classic.average_reached).abs() < 0.5);
        for v in 0..n {
            assert!(
                (pooled.delta[v] - classic.delta[v]).abs() < 0.6,
                "vertex {v}: pooled {} vs classic {}",
                pooled.delta[v],
                classic.delta[v]
            );
        }
    }

    #[test]
    fn multi_seed_queries_count_every_seed_and_respect_blocking() {
        // Two disjoint chains: 0 -> 1 -> 2 and 3 -> 4.
        let g = DiGraph::from_edges(
            5,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(3), vid(4), 1.0),
            ],
        )
        .unwrap();
        let pool = SamplePool::build(&g, 8, 1).unwrap();
        let est = pooled_decrease(&pool, &[vid(0), vid(3)], &[false; 5], 1).unwrap();
        assert!((est.average_reached - 5.0).abs() < 1e-12);
        assert!((est.delta[1] - 2.0).abs() < 1e-12);
        assert!((est.delta[4] - 1.0).abs() < 1e-12);
        let mut blocked = vec![false; 5];
        blocked[1] = true;
        let est = pooled_decrease(&pool, &[vid(0), vid(3)], &blocked, 1).unwrap();
        assert!((est.average_reached - 3.0).abs() < 1e-12);
        assert_eq!(est.delta[1], 0.0);
        assert_eq!(est.delta[2], 0.0);
    }

    #[test]
    fn pooled_estimator_is_thread_count_invariant() {
        let g = wc_pa(100, 13);
        let n = g.num_vertices();
        let pool = SamplePool::build(&g, 500, 19).unwrap();
        let blocked = vec![false; n];
        let reference = pooled_decrease(&pool, &[vid(0), vid(7)], &blocked, 1).unwrap();
        for threads in [2usize, 3, 8] {
            let est = pooled_decrease(&pool, &[vid(0), vid(7)], &blocked, threads).unwrap();
            assert_eq!(est.delta, reference.delta, "threads={threads}");
            assert_eq!(est.average_reached, reference.average_reached);
        }
    }

    #[test]
    fn pooled_advanced_greedy_picks_the_hub() {
        let g = DiGraph::from_edges(
            6,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
                (vid(1), vid(4), 1.0),
                (vid(0), vid(5), 1.0),
            ],
        )
        .unwrap();
        let pool = SamplePool::build(&g, 64, 3).unwrap();
        let mut ws = PoolWorkspace::new();
        let sel = pooled_advanced_greedy_in(&pool, &[vid(0)], &[false; 6], 2, 1, &mut ws).unwrap();
        assert_eq!(sel.blockers, vec![vid(1), vid(5)]);
        assert!((sel.estimated_spread.unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(sel.stats.rounds, 2);
        assert_eq!(sel.stats.samples_drawn, 2 * 64);
    }

    #[test]
    fn pooled_greedy_replace_recovers_the_deep_blocker() {
        // Example 3 funnel: replacement must swap an out-neighbour for the
        // hub at budget 1 and keep both out-neighbours at budget 2.
        let mut edges = vec![
            (vid(0), vid(1), 1.0),
            (vid(0), vid(2), 1.0),
            (vid(1), vid(3), 1.0),
            (vid(2), vid(3), 1.0),
        ];
        for i in 0..5 {
            edges.push((vid(3), vid(4 + i), 1.0));
        }
        let g = DiGraph::from_edges(9, edges).unwrap();
        let pool = SamplePool::build(&g, 64, 5).unwrap();
        let mut ws = PoolWorkspace::new();
        let sel =
            pooled_greedy_replace_in(&pool, &g, &[vid(0)], &[false; 9], 1, 1, &mut ws).unwrap();
        assert_eq!(sel.blockers, vec![vid(3)]);
        assert!((sel.estimated_spread.unwrap() - 3.0).abs() < 1e-9);
        let sel =
            pooled_greedy_replace_in(&pool, &g, &[vid(0)], &[false; 9], 2, 1, &mut ws).unwrap();
        let mut chosen = sel.blockers.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![vid(1), vid(2)]);
    }

    #[test]
    fn pooled_greedy_is_byte_identical_across_thread_counts() {
        let g = wc_pa(200, 17);
        let n = g.num_vertices();
        let pool = SamplePool::build(&g, 400, 23).unwrap();
        let forbidden = vec![false; n];
        let seeds = [vid(0), vid(3)];
        let mut ws = PoolWorkspace::new();
        let ag_ref = pooled_advanced_greedy_in(&pool, &seeds, &forbidden, 4, 1, &mut ws).unwrap();
        let gr_ref =
            pooled_greedy_replace_in(&pool, &g, &seeds, &forbidden, 4, 1, &mut ws).unwrap();
        for threads in [2usize, 8] {
            let ag =
                pooled_advanced_greedy_in(&pool, &seeds, &forbidden, 4, threads, &mut ws).unwrap();
            assert_eq!(ag.blockers, ag_ref.blockers, "AG threads={threads}");
            assert_eq!(ag.estimated_spread, ag_ref.estimated_spread);
            let gr = pooled_greedy_replace_in(&pool, &g, &seeds, &forbidden, 4, threads, &mut ws)
                .unwrap();
            assert_eq!(gr.blockers, gr_ref.blockers, "GR threads={threads}");
            assert_eq!(gr.estimated_spread, gr_ref.estimated_spread);
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = deterministic_tree();
        let pool = SamplePool::build(&g, 8, 1).unwrap();
        let mut ws = PoolWorkspace::new();
        assert!(matches!(
            pooled_advanced_greedy_in(&pool, &[vid(0)], &[false; 4], 0, 1, &mut ws),
            Err(IminError::ZeroBudget)
        ));
        assert!(matches!(
            pooled_decrease(&pool, &[], &[false; 4], 1),
            Err(IminError::EmptySeedSet)
        ));
        assert!(pooled_decrease(&pool, &[vid(9)], &[false; 4], 1).is_err());
        assert!(pooled_decrease(&pool, &[vid(0)], &[false; 2], 1).is_err());
        let mut blocked = vec![false; 4];
        blocked[0] = true;
        assert!(pooled_decrease(&pool, &[vid(0)], &blocked, 1).is_err());
        assert!(
            pooled_advanced_greedy_in(&pool, &[vid(0)], &[false; 3], 1, 1, &mut ws).is_err(),
            "wrong-length forbidden mask"
        );
        // A pool can only be paired with the graph it was built from.
        let other = DiGraph::from_edges(2, vec![(vid(0), vid(1), 1.0)]).unwrap();
        assert!(matches!(
            pooled_greedy_replace_in(&pool, &other, &[vid(0)], &[false; 4], 1, 1, &mut ws),
            Err(IminError::PoolGraphMismatch { .. })
        ));
        assert!(matches!(
            pool.compress(&other, 1),
            Err(IminError::PoolGraphMismatch { .. })
        ));
    }

    #[test]
    fn forbidden_vertices_are_never_selected() {
        let g = deterministic_tree();
        let pool = SamplePool::build(&g, 8, 1).unwrap();
        let mut forbidden = vec![false; 4];
        forbidden[1] = true;
        let mut ws = PoolWorkspace::new();
        let sel = pooled_advanced_greedy_in(&pool, &[vid(0)], &forbidden, 1, 1, &mut ws).unwrap();
        assert_ne!(sel.blockers.first(), Some(&vid(1)));
    }

    #[test]
    fn shard_ranges_partition_without_gaps() {
        for (total, workers) in [(10usize, 3usize), (5, 8), (7, 1), (0, 4), (16, 4)] {
            let ranges: Vec<_> = shard_ranges(total, workers).collect();
            assert!(ranges.len() <= workers.max(1));
            let mut expected = 0usize;
            for r in &ranges {
                assert_eq!(r.start, expected, "ranges must be contiguous");
                expected = r.end;
            }
            assert_eq!(expected, total, "ranges must cover 0..total");
            let (min, max) = ranges.iter().fold((usize::MAX, 0), |(lo, hi), r| {
                (lo.min(r.len()), hi.max(r.len()))
            });
            assert!(
                max - min.min(max) <= 1,
                "near-equal split for {total}/{workers}"
            );
        }
    }

    #[test]
    fn extend_to_matches_a_fresh_build_bit_for_bit() {
        let g = wc_pa(120, 3);
        let fresh = SamplePool::build_with_threads(&g, 48, 9, 1).unwrap();
        for threads in [1usize, 3, 8] {
            let mut grown = SamplePool::build_with_threads(&g, 7, 9, threads).unwrap();
            let added = grown.extend_to(&g, 48, threads).unwrap();
            assert_eq!(added, 41);
            assert_eq!(grown.theta(), 48);
            for i in 0..48 {
                assert_eq!(
                    grown.sample_csr(i),
                    fresh.sample_csr(i),
                    "threads={threads}: sample {i} diverged after extend"
                );
            }
        }
    }

    #[test]
    fn extend_to_never_shrinks_and_checks_the_graph() {
        let g = wc_pa(60, 4);
        let mut pool = SamplePool::build(&g, 10, 1).unwrap();
        assert_eq!(pool.extend_to(&g, 10, 2).unwrap(), 0, "same θ is a no-op");
        assert_eq!(pool.extend_to(&g, 3, 2).unwrap(), 0, "smaller θ is a no-op");
        assert_eq!(pool.theta(), 10);
        let other = deterministic_tree();
        assert!(matches!(
            pool.extend_to(&other, 20, 2),
            Err(IminError::PoolGraphMismatch { .. })
        ));
        assert_eq!(pool.theta(), 10, "failed extend leaves the pool untouched");
    }

    #[test]
    fn compressed_pools_cannot_extend_in_place() {
        let g = wc_pa(60, 4);
        let mut pool = SamplePool::build(&g, 10, 1)
            .unwrap()
            .compress(&g, 1)
            .unwrap();
        assert!(!pool.is_extendable());
        assert_eq!(pool.extend_to(&g, 5, 1).unwrap(), 0, "no-op stays a no-op");
        assert!(matches!(
            pool.extend_to(&g, 20, 1),
            Err(IminError::PoolArenaImmutable { .. })
        ));
        assert_eq!(pool.theta(), 10);
    }

    #[test]
    fn pool_accessors_report_sensible_numbers() {
        let g = deterministic_tree();
        let pool = SamplePool::build(&g, 4, 99).unwrap();
        assert_eq!(pool.theta(), 4);
        assert_eq!(pool.pool_seed(), 99);
        assert_eq!(pool.num_vertices(), 4);
        assert_eq!(pool.arena_kind(), ArenaKind::Raw);
        assert!(pool.is_extendable());
        assert_eq!(pool.mapped_bytes(), 0);
        // All three edges are deterministic, so every realisation keeps them.
        assert_eq!(pool.total_live_edges(), 12);
        assert!(pool.memory_bytes() > 0);
    }

    #[test]
    fn memory_bytes_covers_every_stored_word() {
        let g = wc_pa(300, 8);
        let pool = SamplePool::build_with_threads(&g, 25, 6, 2).unwrap();
        // Lower bound: the arenas alone hold θ×(n+1) offsets plus every live
        // edge as u32, and the θ+1 target-start table as u64. The historical
        // per-sample accounting missed headers and tables entirely.
        let floor = 4 * (25 * (g.num_vertices() + 1) + pool.total_live_edges()) + 8 * (25 + 1);
        assert!(
            pool.memory_bytes() >= floor,
            "memory_bytes {} below the arena floor {floor}",
            pool.memory_bytes()
        );
        // And it stays a sane estimate: within 2× of the floor.
        assert!(pool.memory_bytes() < 2 * floor);
    }
}
