//! The [`BlockerSolver`] trait and the [`AlgorithmKind`] registry — one
//! string→solver dispatch shared by the engine protocol, `imin-cli`, the
//! bench binaries and the examples.
//!
//! Every algorithm of the crate implements [`BlockerSolver`]: it consumes a
//! validated [`ContainmentRequest`] and produces a [`BlockerSelection`].
//! [`AlgorithmKind`] enumerates the implementations and is the *only* place
//! that maps names to solvers: `FromStr` accepts the canonical name, the
//! paper label and the common aliases of every algorithm, `Display` prints
//! the canonical name, and [`AlgorithmKind::solver`] returns the singleton
//! solver. Anything that dispatches on an algorithm string goes through
//! this registry instead of hand-writing a `match`.
//!
//! ```
//! use imin_core::AlgorithmKind;
//!
//! let kind: AlgorithmKind = "gr".parse().unwrap();
//! assert_eq!(kind, AlgorithmKind::GreedyReplace);
//! assert_eq!(kind.to_string(), "replace");
//! assert_eq!(kind.label(), "GR");
//! assert!("quantum".parse::<AlgorithmKind>().is_err());
//! ```

use crate::advanced_greedy::AdvancedGreedy;
use crate::baseline_greedy::BaselineGreedy;
use crate::exact_blocker::ExactBlocker;
use crate::greedy_replace::GreedyReplace;
use crate::heuristics::{Degree, OutDegree, OutNeighbors, PageRank, Rand};
use crate::request::ContainmentRequest;
use crate::ris::RisGreedy;
use crate::types::BlockerSelection;
use crate::{IminError, Result};
use imin_graph::DiGraph;
use std::fmt;
use std::str::FromStr;

/// A blocker-selection algorithm behind the unified request API.
pub trait BlockerSolver: Send + Sync {
    /// The registry entry this solver implements.
    fn kind(&self) -> AlgorithmKind;

    /// Answers a containment request on `graph`.
    ///
    /// The returned blockers always respect the request: at most `budget`
    /// of them, never a seed, never a forbidden vertex.
    ///
    /// # Errors
    /// Returns [`IminError::BackendUnsupported`] when the algorithm cannot
    /// run on the request's backend (e.g. BaselineGreedy on a pool), or the
    /// algorithm's own failure modes.
    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection>;
}

/// The blocker-selection algorithms available through the registry, in the
/// paper's presentation order (Table VII plus this crate's extensions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Algorithm 1 — greedy selection with Monte-Carlo evaluation (the
    /// state-of-the-art baseline, `BG` in the figures).
    BaselineGreedy,
    /// Algorithm 3 — greedy selection with dominator-tree estimation (`AG`).
    AdvancedGreedy,
    /// Algorithm 4 — out-neighbour initialisation plus replacement (`GR`).
    GreedyReplace,
    /// Uniform random blockers (`RA`).
    Random,
    /// Highest out-degree blockers (`OD`).
    OutDegree,
    /// Highest total-degree blockers.
    Degree,
    /// Out-neighbours of the seeds ranked by estimated decrease
    /// (the `OutNeighbors` strategy of Example 3).
    OutNeighbors,
    /// Highest-PageRank blockers (extension).
    PageRank,
    /// Exhaustive search over all blocker sets (the `Exact` oracle; only
    /// feasible on very small graphs).
    Exact,
    /// CELF lazy greedy over reverse-reachable sketches (`RIS`; extension —
    /// runs on the sketch backends only, see [`crate::ris`]).
    RisGreedy,
}

/// One registry row: kind, canonical name, paper label, accepted aliases.
struct AlgorithmEntry {
    kind: AlgorithmKind,
    name: &'static str,
    label: &'static str,
    aliases: &'static [&'static str],
}

/// The single name table behind `FromStr`, `Display` and
/// [`AlgorithmKind::known_names`].
const REGISTRY: &[AlgorithmEntry] = &[
    AlgorithmEntry {
        kind: AlgorithmKind::BaselineGreedy,
        name: "baseline",
        label: "BG",
        aliases: &["baseline-greedy", "baselinegreedy"],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::AdvancedGreedy,
        name: "advanced",
        label: "AG",
        aliases: &["advanced-greedy", "advancedgreedy"],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::GreedyReplace,
        name: "replace",
        label: "GR",
        aliases: &["greedy-replace", "greedyreplace"],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::Random,
        name: "random",
        label: "RA",
        aliases: &["rand"],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::OutDegree,
        name: "outdegree",
        label: "OD",
        aliases: &["out-degree"],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::Degree,
        name: "degree",
        label: "DEG",
        aliases: &[],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::OutNeighbors,
        name: "outneighbors",
        label: "ON",
        aliases: &["out-neighbors", "outneighbor"],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::PageRank,
        name: "pagerank",
        label: "PR",
        aliases: &["page-rank"],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::Exact,
        name: "exact",
        label: "EXACT",
        aliases: &["ex"],
    },
    AlgorithmEntry {
        kind: AlgorithmKind::RisGreedy,
        name: "ris-greedy",
        label: "RIS",
        aliases: &["ris", "risgreedy", "sketch-greedy"],
    },
];

impl AlgorithmKind {
    fn entry(self) -> &'static AlgorithmEntry {
        REGISTRY
            .iter()
            .find(|e| e.kind == self)
            .expect("every kind has a registry row")
    }

    /// Canonical lowercase name (`advanced`, `replace`, …) — what
    /// [`fmt::Display`] prints and every dispatch accepts.
    pub fn name(self) -> &'static str {
        self.entry().name
    }

    /// Short identifier used in experiment tables (`BG`, `AG`, `GR`, ...).
    pub fn label(self) -> &'static str {
        self.entry().label
    }

    /// All algorithms compared in the paper's Table VII plus this crate's
    /// extensions, in presentation order.
    pub fn all() -> &'static [AlgorithmKind] {
        &[
            AlgorithmKind::Random,
            AlgorithmKind::OutDegree,
            AlgorithmKind::Degree,
            AlgorithmKind::PageRank,
            AlgorithmKind::OutNeighbors,
            AlgorithmKind::BaselineGreedy,
            AlgorithmKind::AdvancedGreedy,
            AlgorithmKind::GreedyReplace,
            AlgorithmKind::RisGreedy,
            AlgorithmKind::Exact,
        ]
    }

    /// The singleton solver implementing this algorithm.
    pub fn solver(self) -> &'static dyn BlockerSolver {
        match self {
            AlgorithmKind::BaselineGreedy => &BaselineGreedy,
            AlgorithmKind::AdvancedGreedy => &AdvancedGreedy,
            AlgorithmKind::GreedyReplace => &GreedyReplace,
            AlgorithmKind::Random => &Rand,
            AlgorithmKind::OutDegree => &OutDegree,
            AlgorithmKind::Degree => &Degree,
            AlgorithmKind::OutNeighbors => &OutNeighbors,
            AlgorithmKind::PageRank => &PageRank,
            AlgorithmKind::Exact => &ExactBlocker,
            AlgorithmKind::RisGreedy => &RisGreedy,
        }
    }

    /// Comma-separated list of every accepted spelling, for error messages
    /// and usage strings.
    pub fn known_names() -> String {
        let mut names: Vec<String> = Vec::new();
        for entry in REGISTRY {
            for candidate in [entry.name.to_string(), entry.label.to_lowercase()] {
                if !names.contains(&candidate) {
                    names.push(candidate);
                }
            }
        }
        names.join(", ")
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AlgorithmKind {
    type Err = IminError;

    /// Case-insensitive lookup of the canonical name, the paper label, or
    /// any registered alias.
    fn from_str(s: &str) -> Result<Self> {
        let lower = s.trim().to_ascii_lowercase();
        for entry in REGISTRY {
            if lower == entry.name
                || lower == entry.label.to_ascii_lowercase()
                || entry.aliases.contains(&lower.as_str())
            {
                return Ok(entry.kind);
            }
        }
        Err(IminError::UnknownAlgorithm {
            name: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_labels_and_listing() {
        assert_eq!(AlgorithmKind::GreedyReplace.label(), "GR");
        assert_eq!(AlgorithmKind::BaselineGreedy.label(), "BG");
        assert_eq!(AlgorithmKind::GreedyReplace.name(), "replace");
        assert!(AlgorithmKind::all().contains(&AlgorithmKind::Exact));
        assert_eq!(AlgorithmKind::all().len(), 10);
        assert_eq!(AlgorithmKind::all().len(), REGISTRY.len());
        assert!(AlgorithmKind::known_names().contains("advanced"));
        assert!(AlgorithmKind::known_names().contains("gr"));
        assert!(AlgorithmKind::known_names().contains("ris"));
    }

    #[test]
    fn every_registered_spelling_round_trips_case_insensitively() {
        // Every variant, every accepted spelling, in every case mix the
        // protocol might see (`ALG=RIS-GREEDY`, `alg=Advanced`, …): all of
        // them must resolve through the single `FromStr` entry point.
        for entry in REGISTRY {
            let mut spellings: Vec<String> = vec![entry.name.into(), entry.label.into()];
            spellings.extend(entry.aliases.iter().map(|a| a.to_string()));
            for spelling in spellings {
                for cased in [
                    spelling.clone(),
                    spelling.to_ascii_uppercase(),
                    spelling.to_ascii_lowercase(),
                    // Title-case the first character.
                    {
                        let mut chars = spelling.chars();
                        match chars.next() {
                            Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
                            None => String::new(),
                        }
                    },
                ] {
                    assert_eq!(
                        cased.parse::<AlgorithmKind>().unwrap(),
                        entry.kind,
                        "spelling {cased:?} must resolve to {:?}",
                        entry.kind
                    );
                }
            }
        }
        assert_eq!(
            "RIS-GREEDY".parse::<AlgorithmKind>().unwrap(),
            AlgorithmKind::RisGreedy
        );
        assert_eq!(
            "Advanced".parse::<AlgorithmKind>().unwrap(),
            AlgorithmKind::AdvancedGreedy
        );
    }

    #[test]
    fn from_str_accepts_names_labels_and_aliases() {
        for &kind in AlgorithmKind::all() {
            assert_eq!(kind.name().parse::<AlgorithmKind>().unwrap(), kind);
            assert_eq!(kind.label().parse::<AlgorithmKind>().unwrap(), kind);
            assert_eq!(
                kind.to_string().parse::<AlgorithmKind>().unwrap(),
                kind,
                "Display round-trips through FromStr"
            );
        }
        assert_eq!(
            " AG ".parse::<AlgorithmKind>().unwrap(),
            AlgorithmKind::AdvancedGreedy
        );
        assert_eq!(
            "greedy-replace".parse::<AlgorithmKind>().unwrap(),
            AlgorithmKind::GreedyReplace
        );
        assert!(matches!(
            "quantum".parse::<AlgorithmKind>(),
            Err(IminError::UnknownAlgorithm { .. })
        ));
    }

    #[test]
    fn every_kind_has_a_solver_of_its_own_kind() {
        for &kind in AlgorithmKind::all() {
            assert_eq!(kind.solver().kind(), kind);
        }
    }
}
