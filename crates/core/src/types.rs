//! Shared configuration and result types for the IMIN algorithms.

use imin_graph::VertexId;
use std::time::Duration;

/// Tuning knobs shared by every algorithm in the crate.
///
/// The defaults follow the paper's experimental setting (§VI-A): θ = 10 000
/// sampled graphs per greedy round, r = 10 000 Monte-Carlo rounds for the
/// baseline, all available cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlgorithmConfig {
    /// Number of sampled graphs θ used per round by the dominator-tree
    /// estimator (Algorithm 2).
    pub theta: usize,
    /// Number of Monte-Carlo rounds r used by the baseline greedy algorithm
    /// and by spread evaluation.
    pub mcs_rounds: usize,
    /// Number of worker threads used by sampling and Monte-Carlo estimation.
    pub threads: usize,
    /// Base RNG seed; all randomness in an algorithm run derives from it, so
    /// a fixed configuration is fully reproducible.
    pub seed: u64,
}

impl Default for AlgorithmConfig {
    fn default() -> Self {
        AlgorithmConfig {
            theta: 10_000,
            mcs_rounds: 10_000,
            threads: imin_diffusion::montecarlo::default_threads(),
            seed: 0xD0_0D1E,
        }
    }
}

impl AlgorithmConfig {
    /// A configuration matching the paper's defaults (θ = r = 10 000).
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// A small, fast configuration used by unit/integration tests and doc
    /// examples (θ = r = 200, single-threaded for determinism).
    pub fn fast_for_tests() -> Self {
        AlgorithmConfig {
            theta: 200,
            mcs_rounds: 200,
            threads: 1,
            seed: 0xBEEF,
        }
    }

    /// Sets θ, the number of sampled graphs per round.
    pub fn with_theta(mut self, theta: usize) -> Self {
        self.theta = theta;
        self
    }

    /// Sets r, the number of Monte-Carlo rounds.
    pub fn with_mcs_rounds(mut self, rounds: usize) -> Self {
        self.mcs_rounds = rounds;
        self
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Bookkeeping collected while an algorithm runs, reported alongside the
/// blocker set (the efficiency experiments of Figures 6–11 are built from
/// these numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SelectionStats {
    /// Total number of sampled graphs drawn (dominator-tree estimator).
    pub samples_drawn: usize,
    /// Total number of Monte-Carlo cascade rounds simulated.
    pub mcs_rounds_run: usize,
    /// Number of greedy rounds / replacement rounds executed.
    pub rounds: usize,
    /// Wall-clock time of the selection.
    pub elapsed: Duration,
}

impl SelectionStats {
    /// Adds the counters of `other` into `self` (used when an algorithm is
    /// composed of phases).
    pub fn absorb(&mut self, other: &SelectionStats) {
        self.samples_drawn += other.samples_drawn;
        self.mcs_rounds_run += other.mcs_rounds_run;
        self.rounds += other.rounds;
        self.elapsed += other.elapsed;
    }
}

/// The outcome of a blocker-selection algorithm.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockerSelection {
    /// The chosen blockers, in selection order, expressed as vertices of the
    /// *original* (pre-seed-merge) graph.
    pub blockers: Vec<VertexId>,
    /// The algorithm's own estimate of the expected spread that remains
    /// after blocking (in original-graph terms, seeds included), if the
    /// algorithm produces one as a by-product.
    pub estimated_spread: Option<f64>,
    /// Edges removed by an edge-blocking request
    /// ([`crate::Intervention::BlockEdges`]), in selection order. Empty for
    /// vertex-blocking and prebunking requests, whose choices land in
    /// `blockers`.
    pub blocked_edges: Vec<(VertexId, VertexId)>,
    /// Resource counters.
    pub stats: SelectionStats,
}

impl BlockerSelection {
    /// Creates a selection with empty statistics.
    pub fn new(blockers: Vec<VertexId>) -> Self {
        BlockerSelection {
            blockers,
            estimated_spread: None,
            blocked_edges: Vec::new(),
            stats: SelectionStats::default(),
        }
    }

    /// The blockers as a boolean mask over `num_vertices` vertices, the form
    /// the spread evaluators consume.
    pub fn as_mask(&self, num_vertices: usize) -> Vec<bool> {
        let mut mask = vec![false; num_vertices];
        for &b in &self.blockers {
            if b.index() < num_vertices {
                mask[b.index()] = true;
            }
        }
        mask
    }

    /// Number of blockers selected.
    pub fn len(&self) -> usize {
        self.blockers.len()
    }

    /// Returns `true` if no blocker was selected.
    pub fn is_empty(&self) -> bool {
        self.blockers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let c = AlgorithmConfig::default()
            .with_theta(5)
            .with_mcs_rounds(7)
            .with_threads(0)
            .with_seed(9);
        assert_eq!(c.theta, 5);
        assert_eq!(c.mcs_rounds, 7);
        assert_eq!(c.threads, 1, "thread count is clamped to at least 1");
        assert_eq!(c.seed, 9);
        assert_eq!(AlgorithmConfig::paper_defaults().theta, 10_000);
        let fast = AlgorithmConfig::fast_for_tests();
        assert!(fast.theta < 1_000 && fast.threads == 1);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = SelectionStats {
            samples_drawn: 10,
            mcs_rounds_run: 20,
            rounds: 1,
            elapsed: Duration::from_millis(5),
        };
        let b = SelectionStats {
            samples_drawn: 1,
            mcs_rounds_run: 2,
            rounds: 3,
            elapsed: Duration::from_millis(10),
        };
        a.absorb(&b);
        assert_eq!(a.samples_drawn, 11);
        assert_eq!(a.mcs_rounds_run, 22);
        assert_eq!(a.rounds, 4);
        assert_eq!(a.elapsed, Duration::from_millis(15));
    }

    #[test]
    fn selection_mask_and_len() {
        let sel = BlockerSelection::new(vec![VertexId::new(1), VertexId::new(3)]);
        assert_eq!(sel.len(), 2);
        assert!(!sel.is_empty());
        assert_eq!(sel.as_mask(5), vec![false, true, false, true, false]);
        assert!(sel.estimated_spread.is_none());
        let empty = BlockerSelection::new(vec![]);
        assert!(empty.is_empty());
        // Out-of-range blockers are ignored by the mask conversion.
        let weird = BlockerSelection::new(vec![VertexId::new(10)]);
        assert_eq!(weird.as_mask(3), vec![false, false, false]);
    }
}
