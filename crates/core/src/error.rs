//! Error types for the IMIN algorithms.

use std::fmt;

/// Errors produced by problem construction and the blocking algorithms.
#[derive(Debug)]
pub enum IminError {
    /// A seed vertex does not exist in the graph.
    SeedOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// Number of vertices of the graph.
        num_vertices: usize,
    },
    /// The seed set is empty.
    EmptySeedSet,
    /// The same seed vertex appears more than once in a request.
    DuplicateSeed {
        /// The repeated vertex index.
        vertex: usize,
    },
    /// A seed vertex also appears in the forbidden/blocked set. Seeds are
    /// implicitly ineligible as blockers, so an explicit overlap is almost
    /// certainly a mis-built request.
    ForbiddenSeedOverlap {
        /// The offending vertex index.
        vertex: usize,
    },
    /// The requested algorithm cannot run on the requested evaluation
    /// backend (e.g. BaselineGreedy needs Monte-Carlo simulation, which a
    /// resident sample pool does not provide).
    BackendUnsupported {
        /// Label of the algorithm that was asked to run.
        algorithm: &'static str,
        /// Label of the backend it was asked to run on.
        backend: &'static str,
    },
    /// The requested intervention family cannot run with the requested
    /// algorithm×backend combination (e.g. edge blocking needs the pooled
    /// dominator-tree machinery; the sketch backend answers vertex
    /// requests only). `docs/protocol.md` tables the supported combos.
    InterventionUnsupported {
        /// Label of the algorithm that was asked to run.
        algorithm: &'static str,
        /// Label of the backend it was asked to run on.
        backend: &'static str,
        /// Family label of the intervention (`"vertex"`, `"edge"`,
        /// `"prebunk"`).
        intervention: &'static str,
    },
    /// An intervention specification could not be parsed or carries invalid
    /// parameters (e.g. a prebunk `alpha` outside `[0, 1]`).
    InvalidIntervention {
        /// The offending specification, as supplied.
        spec: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A string did not name any registered algorithm.
    UnknownAlgorithm {
        /// The unrecognised name.
        name: String,
    },
    /// The blocking budget is zero (nothing to do) where a positive budget
    /// is required.
    ZeroBudget,
    /// The algorithm configuration requests zero samples or zero Monte-Carlo
    /// rounds.
    ZeroSamples,
    /// A supplied candidate/blocker vertex is invalid (out of range or a
    /// seed).
    InvalidBlocker {
        /// The offending vertex index.
        vertex: usize,
        /// Explanation of why it cannot be blocked.
        reason: &'static str,
    },
    /// A resident sample pool was paired with a graph of a different shape
    /// (pools are only valid against the graph they were built from).
    PoolGraphMismatch {
        /// Vertex count of the supplied graph.
        graph_vertices: usize,
        /// Edge count of the supplied graph.
        graph_edges: usize,
        /// Vertex count of the graph the pool was built from.
        pool_vertices: usize,
        /// Edge count of the graph the pool was built from.
        pool_edges: usize,
    },
    /// A pool held in a compressed or memory-mapped arena was asked to grow
    /// in place; only the heap-resident raw write path supports
    /// [`crate::SamplePool::extend_to`] — callers rebuild (or rebuild
    /// compressed) instead.
    PoolArenaImmutable {
        /// Arena kind label (`"compressed"`, `"mmap-raw"`, …).
        arena: &'static str,
    },
    /// The exhaustive exact search was asked to enumerate more combinations
    /// than its configured limit.
    SearchSpaceTooLarge {
        /// Number of candidate blockers.
        candidates: usize,
        /// Requested budget.
        budget: usize,
        /// Maximum number of combinations the configuration allows.
        limit: u64,
    },
    /// An error bubbled up from the diffusion layer.
    Diffusion(imin_diffusion::DiffusionError),
    /// An error bubbled up from the graph layer.
    Graph(imin_graph::GraphError),
    /// A pool snapshot could not be written or read (see
    /// [`crate::snapshot`]): I/O failure, truncation, bad magic, version or
    /// checksum mismatch, or a graph fingerprint that does not match.
    Snapshot(crate::snapshot::SnapshotError),
}

impl fmt::Display for IminError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IminError::SeedOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "seed vertex {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            IminError::EmptySeedSet => write!(f, "the seed set must not be empty"),
            IminError::DuplicateSeed { vertex } => {
                write!(f, "seed vertex {vertex} appears more than once")
            }
            IminError::ForbiddenSeedOverlap { vertex } => write!(
                f,
                "seed vertex {vertex} is also marked forbidden/blocked; seeds are implicitly \
                 ineligible as blockers and must not appear in the forbidden set"
            ),
            IminError::BackendUnsupported { algorithm, backend } => write!(
                f,
                "algorithm '{algorithm}' cannot run on the {backend} backend"
            ),
            IminError::InterventionUnsupported {
                algorithm,
                backend,
                intervention,
            } => write!(
                f,
                "intervention unsupported: '{intervention}' requests cannot run with algorithm \
                 '{algorithm}' on the {backend} backend (see docs/protocol.md for the support \
                 matrix)"
            ),
            IminError::InvalidIntervention { spec, reason } => write!(
                f,
                "invalid intervention '{spec}': {reason} (expected vertex, edge, or \
                 prebunk:<alpha> with alpha in [0, 1])"
            ),
            IminError::UnknownAlgorithm { name } => write!(
                f,
                "unknown algorithm '{name}' (expected one of: {})",
                crate::solver::AlgorithmKind::known_names()
            ),
            IminError::ZeroBudget => write!(f, "the blocking budget must be positive"),
            IminError::ZeroSamples => {
                write!(f, "the number of samples/rounds must be positive")
            }
            IminError::InvalidBlocker { vertex, reason } => {
                write!(f, "vertex {vertex} cannot be blocked: {reason}")
            }
            IminError::PoolGraphMismatch {
                graph_vertices,
                graph_edges,
                pool_vertices,
                pool_edges,
            } => write!(
                f,
                "the sample pool was built from a graph with {pool_vertices} vertices / \
                 {pool_edges} edges but was queried with a graph of {graph_vertices} vertices / \
                 {graph_edges} edges"
            ),
            IminError::PoolArenaImmutable { arena } => write!(
                f,
                "a pool stored in a {arena} arena cannot grow in place; rebuild it instead"
            ),
            IminError::SearchSpaceTooLarge {
                candidates,
                budget,
                limit,
            } => write!(
                f,
                "exhaustive search over C({candidates}, {budget}) blocker sets exceeds the limit of {limit} combinations"
            ),
            IminError::Diffusion(err) => write!(f, "diffusion error: {err}"),
            IminError::Graph(err) => write!(f, "graph error: {err}"),
            IminError::Snapshot(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for IminError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IminError::Diffusion(err) => Some(err),
            IminError::Graph(err) => Some(err),
            IminError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl From<imin_diffusion::DiffusionError> for IminError {
    fn from(err: imin_diffusion::DiffusionError) -> Self {
        IminError::Diffusion(err)
    }
}

impl From<imin_graph::GraphError> for IminError {
    fn from(err: imin_graph::GraphError) -> Self {
        IminError::Graph(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(IminError::EmptySeedSet.to_string().contains("seed"));
        assert!(IminError::DuplicateSeed { vertex: 4 }
            .to_string()
            .contains("more than once"));
        assert!(IminError::ForbiddenSeedOverlap { vertex: 4 }
            .to_string()
            .contains("forbidden"));
        let e = IminError::BackendUnsupported {
            algorithm: "baseline",
            backend: "pooled",
        };
        assert!(e.to_string().contains("cannot run"));
        let e = IminError::InterventionUnsupported {
            algorithm: "ris-greedy",
            backend: "sketch",
            intervention: "edge",
        };
        assert!(e.to_string().starts_with("intervention unsupported"));
        assert!(e.to_string().contains("docs/protocol.md"));
        let e = IminError::InvalidIntervention {
            spec: "prebunk:2".into(),
            reason: "alpha must be a finite probability in [0, 1]",
        };
        assert!(e.to_string().contains("invalid intervention 'prebunk:2'"));
        let e = IminError::UnknownAlgorithm {
            name: "magic".into(),
        };
        assert!(e.to_string().contains("unknown algorithm 'magic'"));
        assert!(e.to_string().contains("advanced"));
        assert!(IminError::ZeroBudget.to_string().contains("budget"));
        assert!(IminError::ZeroSamples.to_string().contains("positive"));
        let e = IminError::SeedOutOfRange {
            vertex: 7,
            num_vertices: 3,
        };
        assert!(e.to_string().contains("out of range"));
        let e = IminError::InvalidBlocker {
            vertex: 2,
            reason: "it is a seed",
        };
        assert!(e.to_string().contains("cannot be blocked"));
        let e = IminError::SearchSpaceTooLarge {
            candidates: 100,
            budget: 10,
            limit: 1_000_000,
        };
        assert!(e.to_string().contains("exceeds"));
        let e = IminError::PoolArenaImmutable {
            arena: "compressed",
        };
        assert!(e.to_string().contains("cannot grow in place"));
        let e = IminError::PoolGraphMismatch {
            graph_vertices: 5,
            graph_edges: 7,
            pool_vertices: 9,
            pool_edges: 11,
        };
        assert!(e.to_string().contains("pool"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let d: IminError = imin_diffusion::DiffusionError::EmptySeedSet.into();
        assert!(matches!(d, IminError::Diffusion(_)));
        assert!(std::error::Error::source(&d).is_some());
        let g: IminError = imin_graph::GraphError::InvalidProbability { probability: 3.0 }.into();
        assert!(matches!(g, IminError::Graph(_)));
        assert!(std::error::Error::source(&g).is_some());
    }
}
