//! Estimation of the expected-spread decrease of every candidate blocker
//! (Algorithm 2, `DecreaseESComputation`).
//!
//! For each of θ live-edge samples rooted at the seed, the dominator tree of
//! the sample is built with Lengauer–Tarjan and the size of the subtree
//! rooted at `u` — which equals `σ→u(s, g)` by Theorem 6 — is accumulated
//! into `Δ[u]`. After θ samples, `Δ[u]/θ` is an unbiased estimate of the
//! spread decrease caused by blocking `u` (Theorem 4), with the
//! concentration guarantee of Theorem 5.
//!
//! One pass therefore prices *every* candidate blocker simultaneously,
//! instead of one Monte-Carlo evaluation per candidate as in the baseline.
//!
//! ## Allocation discipline
//!
//! The `budget × θ` inner loop — sample, dominator tree, subtree sizes,
//! accumulate — runs entirely out of a [`DecreaseWorkspace`]: one
//! [`CompactSample`] arena, one [`DomTreeWorkspace`] and one subtree-size
//! buffer per worker thread, all reused across samples *and* across greedy
//! rounds. After the first few samples have grown the buffers to the cascade
//! high-water mark, drawing a sample and pricing every candidate allocates
//! nothing.

//! ## Multi-seed requests
//!
//! [`decrease_es_multi_in`] generalises the estimator to a whole seed set
//! without materialising a merged graph: every sample is rooted at a
//! *virtual root* with one deterministic edge per seed (the same re-rooting
//! construction [`crate::pool`] applies to stored realisations), the
//! dominator tree is computed from that root, and seeds earn no credit.
//! With a single seed it takes the historical single-source path, so
//! results are bit-identical to [`decrease_es_computation_in`].

use crate::pool::{lap, ticks, PhaseSplit, LAP_STRIDE};
use crate::sampler::{CompactSample, IcLiveEdgeSampler, SpreadSampler};
use crate::{IminError, Result};
use imin_domtree::DomTreeWorkspace;
use imin_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The output of Algorithm 2.
#[derive(Clone, Debug)]
pub struct DecreaseEstimate {
    /// `delta[u]` — estimated decrease of expected spread if `u` were
    /// blocked, for every vertex of the graph (0 for blocked vertices,
    /// unreachable vertices and the source).
    pub delta: Vec<f64>,
    /// Average number of vertices reached per sample — an estimate of the
    /// current expected spread `E({s}, G[V \ B])` that falls out of the same
    /// samples for free.
    pub average_reached: f64,
    /// Number of samples drawn (θ).
    pub samples: usize,
}

impl DecreaseEstimate {
    /// The eligible candidate with the largest estimated decrease.
    ///
    /// Considers every vertex for which `eligible` returns `true` — even
    /// those whose estimate is zero, matching the paper's greedy loop, which
    /// always blocks *some* vertex while budget remains. Ties are broken
    /// towards the smaller vertex id, so the choice is deterministic.
    /// Returns `None` only when no vertex at all is eligible.
    pub fn best_candidate<F: Fn(VertexId) -> bool>(&self, eligible: F) -> Option<VertexId> {
        let mut best: Option<(f64, VertexId)> = None;
        for (i, &d) in self.delta.iter().enumerate() {
            let v = VertexId::new(i);
            if !eligible(v) {
                continue;
            }
            match best {
                None => best = Some((d, v)),
                Some((bd, _)) if d > bd => best = Some((d, v)),
                _ => {}
            }
        }
        best.map(|(_, v)| v)
    }
}

/// Configuration of the estimator: number of samples, parallelism and seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecreaseConfig {
    /// Number of sampled graphs θ.
    pub theta: usize,
    /// Worker threads (samples are split across threads; results are
    /// deterministic for a fixed configuration because every thread uses its
    /// own derived RNG stream and addition of per-thread partial sums is
    /// performed in thread order).
    pub threads: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for DecreaseConfig {
    fn default() -> Self {
        DecreaseConfig {
            theta: 10_000,
            threads: imin_diffusion::montecarlo::default_threads(),
            seed: 0xA11CE,
        }
    }
}

/// Per-worker scratch state: everything one thread needs to draw samples and
/// price candidates without touching the allocator.
#[derive(Clone, Debug, Default)]
struct WorkerScratch {
    sample: CompactSample,
    domtree: DomTreeWorkspace,
    sizes: Vec<u64>,
    delta_sum: Vec<f64>,
    /// Nanoseconds spent in the sample / domtree / credit phases of the
    /// last accumulate call, estimated by stride-sampled lapping (all
    /// zero when it ran untimed). Workers fill these plain slots; the
    /// calling thread folds them into its `imin_obs` span after the join.
    phase_ns: [u64; 3],
}

/// `phase_ns` slot indices of [`WorkerScratch`].
const DN_SAMPLE: usize = 0;
const DN_DOMTREE: usize = 1;
const DN_CREDIT: usize = 2;

impl WorkerScratch {
    /// Draws `samples` live-edge samples and accumulates raw subtree sizes
    /// into `self.delta_sum`; returns the summed cascade sizes. When
    /// `timed` is set, per-phase wall-clock nanoseconds are estimated into
    /// `self.phase_ns` by stride-sampled lapping (untimed calls never
    /// read the clock).
    #[allow(clippy::too_many_arguments)]
    fn accumulate<S: SpreadSampler + ?Sized>(
        &mut self,
        sampler: &S,
        graph: &DiGraph,
        source: VertexId,
        blocked: &[bool],
        samples: usize,
        seed: u64,
        timed: bool,
    ) -> f64 {
        let n = graph.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Split borrows so the dominator workspace can run while the sample
        // and size buffers stay borrowed.
        let WorkerScratch {
            sample,
            domtree,
            sizes,
            delta_sum,
            phase_ns,
        } = self;
        delta_sum.clear();
        delta_sum.resize(n, 0.0);
        *phase_ns = [0; 3];
        let mut reached_sum = 0.0f64;
        let split = timed.then(PhaseSplit::begin);
        for i in 0..samples {
            let sampled = timed && i & (LAP_STRIDE - 1) == 0;
            let mut mark = if sampled { ticks() } else { 0 };
            sampler.sample(graph, source, blocked, &mut rng, sample);
            if sampled {
                lap(&mut mark, &mut phase_ns[DN_SAMPLE]);
            }
            let reached = sample.num_reached();
            reached_sum += reached as f64;
            if reached <= 1 {
                continue;
            }
            // Dominator tree of the compact sample, rooted at local vertex 0,
            // straight off the CSR arena — no per-sample materialisation.
            let dt = domtree.compute_csr(
                reached,
                sample.offsets(),
                sample.targets(),
                VertexId::new(0),
            );
            if sampled {
                lap(&mut mark, &mut phase_ns[DN_DOMTREE]);
            }
            dt.subtree_sizes_into(sizes);
            let globals = sample.vertices();
            // Skip the source (local 0): blocking a seed is not allowed and
            // its subtree is the whole sample by construction.
            for local in 1..reached {
                delta_sum[globals[local] as usize] += sizes[local] as f64;
            }
            if sampled {
                lap(&mut mark, &mut phase_ns[DN_CREDIT]);
            }
        }
        if let Some(split) = split {
            split.split(phase_ns);
        }
        reached_sum
    }

    /// Multi-seed counterpart of [`WorkerScratch::accumulate`]: every sample
    /// is rooted at a virtual root above the whole seed set (see
    /// [`SpreadSampler::sample_multi`]), and seeds earn no credit.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_multi<S: SpreadSampler + ?Sized>(
        &mut self,
        sampler: &S,
        graph: &DiGraph,
        seeds: &[VertexId],
        is_seed: &[bool],
        blocked: &[bool],
        samples: usize,
        seed: u64,
        timed: bool,
    ) -> f64 {
        let n = graph.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let WorkerScratch {
            sample,
            domtree,
            sizes,
            delta_sum,
            phase_ns,
        } = self;
        delta_sum.clear();
        delta_sum.resize(n, 0.0);
        *phase_ns = [0; 3];
        let mut reached_sum = 0.0f64;
        // Local 0 is the virtual root; it is bookkeeping, not spread.
        let only_seeds = 1 + seeds.len();
        let split = timed.then(PhaseSplit::begin);
        for i in 0..samples {
            let sampled = timed && i & (LAP_STRIDE - 1) == 0;
            let mut mark = if sampled { ticks() } else { 0 };
            sampler.sample_multi(graph, seeds, blocked, &mut rng, sample);
            if sampled {
                lap(&mut mark, &mut phase_ns[DN_SAMPLE]);
            }
            let reached = sample.num_reached();
            reached_sum += (reached - 1) as f64;
            if reached <= only_seeds {
                // Nothing beyond the seeds was reached: no candidate can
                // earn credit from this sample.
                continue;
            }
            let dt = domtree.compute_csr(
                reached,
                sample.offsets(),
                sample.targets(),
                VertexId::new(0),
            );
            if sampled {
                lap(&mut mark, &mut phase_ns[DN_DOMTREE]);
            }
            dt.subtree_sizes_into(sizes);
            let globals = sample.vertices();
            for local in 1..reached {
                let g = globals[local] as usize;
                if is_seed[g] {
                    continue;
                }
                delta_sum[g] += sizes[local] as f64;
            }
            if sampled {
                lap(&mut mark, &mut phase_ns[DN_CREDIT]);
            }
        }
        if let Some(split) = split {
            split.split(phase_ns);
        }
        reached_sum
    }
}

/// Folds every worker's `phase_ns` slots into the calling thread's span.
fn merge_phase_ns(workers: &[WorkerScratch]) {
    use imin_obs::{span, Phase};
    for worker in workers {
        span::add_ns(Phase::Sample, worker.phase_ns[DN_SAMPLE]);
        span::add_ns(Phase::DomTree, worker.phase_ns[DN_DOMTREE]);
        span::add_ns(Phase::Credit, worker.phase_ns[DN_CREDIT]);
    }
}

/// Reusable state for [`decrease_es_computation_in`] and
/// [`decrease_es_multi_in`]: one scratch set per worker thread plus the
/// canonicalised-seed staging buffers, kept alive across greedy rounds so
/// that the whole `budget × θ` loop of Algorithms 3 and 4 allocates
/// nothing in steady state.
#[derive(Clone, Debug, Default)]
pub struct DecreaseWorkspace {
    workers: Vec<WorkerScratch>,
    staged_seeds: Vec<VertexId>,
    is_seed: Vec<bool>,
}

impl DecreaseWorkspace {
    /// Creates an empty workspace; per-thread scratch is added on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_workers(&mut self, threads: usize) -> &mut [WorkerScratch] {
        ensure_workers(&mut self.workers, threads)
    }

    /// Canonicalises (sorts, dedups, validates) the request seed set into
    /// the workspace buffers. Steady-state calls allocate nothing once the
    /// buffers have grown to the graph size.
    fn stage_seeds(&mut self, n: usize, seeds: &[VertexId], blocked: &[bool]) -> Result<()> {
        if seeds.is_empty() {
            return Err(IminError::EmptySeedSet);
        }
        // A previous round may have staged seeds for a different (larger)
        // graph; clear only the slots that still exist.
        for &v in &self.staged_seeds {
            if let Some(slot) = self.is_seed.get_mut(v.index()) {
                *slot = false;
            }
        }
        self.is_seed.resize(n, false);
        self.staged_seeds.clear();
        for &s in seeds {
            if s.index() >= n {
                return Err(IminError::SeedOutOfRange {
                    vertex: s.index(),
                    num_vertices: n,
                });
            }
            if blocked[s.index()] {
                return Err(IminError::ForbiddenSeedOverlap { vertex: s.index() });
            }
            self.staged_seeds.push(s);
        }
        self.staged_seeds.sort_unstable();
        self.staged_seeds.dedup();
        for &s in &self.staged_seeds {
            self.is_seed[s.index()] = true;
        }
        Ok(())
    }
}

/// Algorithm 2 with the default IC live-edge sampler.
pub fn decrease_es_computation(
    graph: &DiGraph,
    source: VertexId,
    blocked: &[bool],
    config: &DecreaseConfig,
) -> Result<DecreaseEstimate> {
    decrease_es_computation_with(&IcLiveEdgeSampler, graph, source, blocked, config)
}

/// Algorithm 2 with an arbitrary sample source (IC or triggering).
///
/// One-shot convenience over [`decrease_es_computation_in`] that allocates a
/// fresh [`DecreaseWorkspace`]; callers in a greedy loop should hold a
/// workspace and call the `_in` variant so buffers are reused across rounds.
///
/// # Errors
/// Returns an error if θ is zero, the source is out of range or blocked, or
/// the blocked mask has the wrong length.
pub fn decrease_es_computation_with<S: SpreadSampler + ?Sized>(
    sampler: &S,
    graph: &DiGraph,
    source: VertexId,
    blocked: &[bool],
    config: &DecreaseConfig,
) -> Result<DecreaseEstimate> {
    let mut workspace = DecreaseWorkspace::new();
    decrease_es_computation_in(sampler, graph, source, blocked, config, &mut workspace)
}

/// Algorithm 2, drawing every scratch buffer from `workspace`.
///
/// # Errors
/// Returns an error if θ is zero, the source is out of range or blocked, or
/// the blocked mask has the wrong length.
pub fn decrease_es_computation_in<S: SpreadSampler + ?Sized>(
    sampler: &S,
    graph: &DiGraph,
    source: VertexId,
    blocked: &[bool],
    config: &DecreaseConfig,
    workspace: &mut DecreaseWorkspace,
) -> Result<DecreaseEstimate> {
    let n = graph.num_vertices();
    if config.theta == 0 {
        return Err(IminError::ZeroSamples);
    }
    if source.index() >= n {
        return Err(IminError::SeedOutOfRange {
            vertex: source.index(),
            num_vertices: n,
        });
    }
    if blocked.len() != n {
        return Err(IminError::Diffusion(
            imin_diffusion::DiffusionError::MaskLengthMismatch {
                mask_len: blocked.len(),
                num_vertices: n,
            },
        ));
    }
    if blocked[source.index()] {
        return Err(IminError::Diffusion(
            imin_diffusion::DiffusionError::BlockedSeed {
                vertex: source.index(),
            },
        ));
    }

    let threads = config.threads.max(1).min(config.theta);
    // Sampled on the calling thread; workers only fill plain slots.
    let timed = imin_obs::span::active();
    let workers = workspace.ensure_workers(threads);
    let reached_sum = accumulate_sharded(workers, threads, config, |worker, samples, seed| {
        worker.accumulate(sampler, graph, source, blocked, samples, seed, timed)
    });
    if timed {
        merge_phase_ns(workers);
    }
    Ok(finalise(merged_delta(workers), reached_sum, config.theta))
}

/// Grows `workers` to at least `threads` scratch sets and returns the
/// active slice — the one worker-growth policy behind both estimator
/// paths (the method form exists only for the borrow-friendly call on a
/// whole workspace).
fn ensure_workers(workers: &mut Vec<WorkerScratch>, threads: usize) -> &mut [WorkerScratch] {
    if workers.len() < threads {
        workers.resize_with(threads, WorkerScratch::default);
    }
    &mut workers[..threads]
}

/// The θ-sharding scaffold shared by the single- and multi-seed
/// estimators: one `accumulate(worker, samples, seed)` call per worker
/// thread, with `base + 1`-sized shards for the first `θ % threads`
/// workers and per-thread RNG streams derived from the golden-ratio
/// constant. Handles join in spawn order, so the returned cascade-size sum
/// is deterministic for a fixed configuration. Keeping one scaffold makes
/// the documented single-/multi-seed bit-compatibility structural.
fn accumulate_sharded<F>(
    workers: &mut [WorkerScratch],
    threads: usize,
    config: &DecreaseConfig,
    accumulate: F,
) -> f64
where
    F: Fn(&mut WorkerScratch, usize, u64) -> f64 + Sync,
{
    if threads <= 1 {
        return accumulate(&mut workers[0], config.theta, config.seed);
    }
    let base = config.theta / threads;
    let extra = config.theta % threads;
    let mut reached_sum = 0.0f64;
    crossbeam::scope(|scope| {
        let accumulate = &accumulate;
        let mut handles = Vec::with_capacity(threads);
        for (t, worker) in workers.iter_mut().enumerate() {
            let samples_here = base + usize::from(t < extra);
            let seed_here = config
                .seed
                .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1));
            handles.push(scope.spawn(move |_| accumulate(worker, samples_here, seed_here)));
        }
        for h in handles {
            reached_sum += h.join().expect("decrease-estimation worker panicked");
        }
    })
    .expect("crossbeam scope failed");
    reached_sum
}

/// Merges per-thread partial sums in thread order into worker 0's buffer
/// (deterministic floating-point addition, and no per-round allocation —
/// the buffer is workspace-owned and reset at the start of each round).
/// With a single worker this is a no-op borrow.
fn merged_delta(workers: &mut [WorkerScratch]) -> &[f64] {
    let (first, rest) = workers.split_at_mut(1);
    let delta_sum = &mut first[0].delta_sum;
    for worker in rest.iter() {
        for (acc, &d) in delta_sum.iter_mut().zip(&worker.delta_sum) {
            *acc += d;
        }
    }
    delta_sum
}

/// Algorithm 2 for a whole seed set, drawing every scratch buffer from
/// `workspace`.
///
/// Seeds are canonicalised (sorted, deduplicated) and every sample is
/// rooted at a virtual root with one deterministic edge per seed — the
/// re-rooting construction of [`crate::pool`], applied at sampling time.
/// `estimate.delta[u]` is 0 for seeds, blocked vertices and unreachable
/// vertices; `estimate.average_reached` counts every seed as active.
///
/// With exactly one (deduplicated) seed this delegates to the historical
/// single-source path, so single-seed results are bit-identical to
/// [`decrease_es_computation_in`].
///
/// # Errors
/// Returns an error if θ is zero, the seed set is empty, a seed is out of
/// range or blocked, or the blocked mask has the wrong length.
pub fn decrease_es_multi_in<S: SpreadSampler + ?Sized>(
    sampler: &S,
    graph: &DiGraph,
    seeds: &[VertexId],
    blocked: &[bool],
    config: &DecreaseConfig,
    workspace: &mut DecreaseWorkspace,
) -> Result<DecreaseEstimate> {
    let n = graph.num_vertices();
    if config.theta == 0 {
        return Err(IminError::ZeroSamples);
    }
    if blocked.len() != n {
        return Err(IminError::Diffusion(
            imin_diffusion::DiffusionError::MaskLengthMismatch {
                mask_len: blocked.len(),
                num_vertices: n,
            },
        ));
    }
    workspace.stage_seeds(n, seeds, blocked)?;
    if workspace.staged_seeds.len() == 1 {
        let source = workspace.staged_seeds[0];
        return decrease_es_computation_in(sampler, graph, source, blocked, config, workspace);
    }

    let threads = config.threads.max(1).min(config.theta);
    let timed = imin_obs::span::active();
    let DecreaseWorkspace {
        workers,
        staged_seeds,
        is_seed,
    } = workspace;
    let workers = ensure_workers(workers, threads);
    let (staged_seeds, is_seed) = (&*staged_seeds, &*is_seed);
    let reached_sum = accumulate_sharded(workers, threads, config, |worker, samples, seed| {
        worker.accumulate_multi(
            sampler,
            graph,
            staged_seeds,
            is_seed,
            blocked,
            samples,
            seed,
            timed,
        )
    });
    if timed {
        merge_phase_ns(workers);
    }
    Ok(finalise(merged_delta(workers), reached_sum, config.theta))
}

fn finalise(delta_sum: &[f64], reached_sum: f64, theta: usize) -> DecreaseEstimate {
    let inv = 1.0 / theta as f64;
    DecreaseEstimate {
        delta: delta_sum.iter().map(|d| d * inv).collect(),
        average_reached: reached_sum * inv,
        samples: theta,
    }
}

/// The number of samples Theorem 5 prescribes for an `(ε, n^{-l})`
/// estimation guarantee when the true decrease is at least `opt_lower_bound`:
/// `θ ≥ l (2 + ε) n ln n / (ε² · OPT)`.
///
/// The bound is conservative (it is a worst-case Chernoff bound); the
/// empirical study of Figure 5 shows θ = 10⁴ already saturates quality on
/// all eight datasets.
pub fn sample_bound(n: usize, epsilon: f64, l: f64, opt_lower_bound: f64) -> usize {
    assert!(epsilon > 0.0 && opt_lower_bound > 0.0 && l > 0.0);
    let n_f = n as f64;
    (l * (2.0 + epsilon) * n_f * n_f.ln() / (epsilon * epsilon * opt_lower_bound)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_diffusion::montecarlo::MonteCarloEstimator;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// 0 -> 1 -> {2, 3}, all probability 1: blocking 1 removes 3 vertices.
    fn deterministic_tree() -> DiGraph {
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
            ],
        )
        .unwrap()
    }

    fn cfg(theta: usize) -> DecreaseConfig {
        DecreaseConfig {
            theta,
            threads: 1,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_graph_gives_exact_subtree_sizes() {
        let g = deterministic_tree();
        let est = decrease_es_computation(&g, vid(0), &[false; 4], &cfg(16)).unwrap();
        assert_eq!(est.samples, 16);
        assert!((est.average_reached - 4.0).abs() < 1e-12);
        assert!((est.delta[1] - 3.0).abs() < 1e-12);
        assert!((est.delta[2] - 1.0).abs() < 1e-12);
        assert!((est.delta[3] - 1.0).abs() < 1e-12);
        assert_eq!(est.delta[0], 0.0, "the source is never a candidate");
        assert_eq!(est.best_candidate(|v| v != vid(0)), Some(vid(1)));
    }

    #[test]
    fn estimates_match_monte_carlo_decrease_on_probabilistic_graph() {
        // Diamond with probabilistic edges.
        let g = DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 0.6),
                (vid(0), vid(2), 0.4),
                (vid(1), vid(3), 0.7),
                (vid(2), vid(3), 0.5),
            ],
        )
        .unwrap();
        let est = decrease_es_computation(
            &g,
            vid(0),
            &[false; 4],
            &DecreaseConfig {
                theta: 60_000,
                threads: 1,
                seed: 7,
            },
        )
        .unwrap();
        let mcs = MonteCarloEstimator::new(60_000)
            .with_seed(9)
            .with_threads(1);
        for v in 1..4 {
            let expected = mcs
                .spread_decrease(&g, &[vid(0)], &[false; 4], vid(v))
                .unwrap();
            assert!(
                (est.delta[v] - expected).abs() < 0.03,
                "vertex {v}: dominator estimate {} vs MCS {expected}",
                est.delta[v]
            );
        }
        // The free spread estimate is also accurate: E = 1 + .6 + .4 + (1-(1-.42)(1-.2)).
        let spread = mcs.expected_spread_value(&g, &[vid(0)], None).unwrap();
        assert!((est.average_reached - spread).abs() < 0.03);
    }

    #[test]
    fn parallel_execution_is_deterministic_and_close_to_sequential() {
        let g = imin_graph::generators::erdos_renyi(80, 0.05, 0.3, 3).unwrap();
        let blocked = vec![false; 80];
        let par_cfg = DecreaseConfig {
            theta: 4_000,
            threads: 4,
            seed: 11,
        };
        let a = decrease_es_computation(&g, vid(0), &blocked, &par_cfg).unwrap();
        let b = decrease_es_computation(&g, vid(0), &blocked, &par_cfg).unwrap();
        assert_eq!(a.delta, b.delta, "same config ⇒ identical output");
        let seq = decrease_es_computation(
            &g,
            vid(0),
            &blocked,
            &DecreaseConfig {
                theta: 4_000,
                threads: 1,
                seed: 11,
            },
        )
        .unwrap();
        // Different RNG stream split, but statistically the same estimates.
        for v in 0..80 {
            assert!(
                (a.delta[v] - seq.delta[v]).abs() < 0.6,
                "vertex {v}: parallel {} vs sequential {}",
                a.delta[v],
                seq.delta[v]
            );
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_workspace() {
        let g = imin_graph::generators::erdos_renyi(60, 0.08, 0.4, 9).unwrap();
        let blocked = vec![false; 60];
        let mut ws = DecreaseWorkspace::new();
        for threads in [1usize, 3] {
            for round in 0..3u64 {
                let cfg = DecreaseConfig {
                    theta: 500,
                    threads,
                    seed: 100 + round,
                };
                let reused = decrease_es_computation_in(
                    &IcLiveEdgeSampler,
                    &g,
                    vid(0),
                    &blocked,
                    &cfg,
                    &mut ws,
                )
                .unwrap();
                let fresh = decrease_es_computation(&g, vid(0), &blocked, &cfg).unwrap();
                assert_eq!(
                    reused.delta, fresh.delta,
                    "threads={threads} round={round}: reused workspace must not change results"
                );
                assert_eq!(reused.average_reached, fresh.average_reached);
            }
        }
    }

    #[test]
    fn multi_seed_estimator_counts_every_seed_and_credits_no_seed() {
        // Two disjoint chains: 0 -> 1 -> 2 and 3 -> 4, all deterministic.
        let g = DiGraph::from_edges(
            5,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(3), vid(4), 1.0),
            ],
        )
        .unwrap();
        let mut ws = DecreaseWorkspace::new();
        let est = decrease_es_multi_in(
            &IcLiveEdgeSampler,
            &g,
            &[vid(3), vid(0), vid(3)], // unsorted, duplicated: canonicalised
            &[false; 5],
            &cfg(8),
            &mut ws,
        )
        .unwrap();
        assert!((est.average_reached - 5.0).abs() < 1e-12);
        assert!((est.delta[1] - 2.0).abs() < 1e-12);
        assert!((est.delta[2] - 1.0).abs() < 1e-12);
        assert!((est.delta[4] - 1.0).abs() < 1e-12);
        assert_eq!(est.delta[0], 0.0, "seeds earn no credit");
        assert_eq!(est.delta[3], 0.0, "seeds earn no credit");
        // Parallel execution of the multi-seed path is deterministic.
        let par = DecreaseConfig {
            theta: 64,
            threads: 3,
            seed: 5,
        };
        let a = decrease_es_multi_in(
            &IcLiveEdgeSampler,
            &g,
            &[vid(0), vid(3)],
            &[false; 5],
            &par,
            &mut ws,
        )
        .unwrap();
        let b = decrease_es_multi_in(
            &IcLiveEdgeSampler,
            &g,
            &[vid(0), vid(3)],
            &[false; 5],
            &par,
            &mut DecreaseWorkspace::new(),
        )
        .unwrap();
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.average_reached, b.average_reached);
    }

    #[test]
    fn single_seed_multi_call_is_bit_identical_to_the_classic_path() {
        let g = imin_graph::generators::erdos_renyi(70, 0.06, 0.4, 21).unwrap();
        let blocked = vec![false; 70];
        for threads in [1usize, 3] {
            let cfg = DecreaseConfig {
                theta: 600,
                threads,
                seed: 17,
            };
            let multi = decrease_es_multi_in(
                &IcLiveEdgeSampler,
                &g,
                &[vid(0)],
                &blocked,
                &cfg,
                &mut DecreaseWorkspace::new(),
            )
            .unwrap();
            let single = decrease_es_computation(&g, vid(0), &blocked, &cfg).unwrap();
            assert_eq!(multi.delta, single.delta, "threads={threads}");
            assert_eq!(multi.average_reached, single.average_reached);
        }
    }

    #[test]
    fn multi_seed_estimator_rejects_bad_requests() {
        let g = deterministic_tree();
        let mut ws = DecreaseWorkspace::new();
        assert!(matches!(
            decrease_es_multi_in(&IcLiveEdgeSampler, &g, &[], &[false; 4], &cfg(4), &mut ws),
            Err(IminError::EmptySeedSet)
        ));
        assert!(matches!(
            decrease_es_multi_in(
                &IcLiveEdgeSampler,
                &g,
                &[vid(9)],
                &[false; 4],
                &cfg(4),
                &mut ws
            ),
            Err(IminError::SeedOutOfRange { .. })
        ));
        let mut blocked = vec![false; 4];
        blocked[1] = true;
        assert!(matches!(
            decrease_es_multi_in(
                &IcLiveEdgeSampler,
                &g,
                &[vid(0), vid(1)],
                &blocked,
                &cfg(4),
                &mut ws
            ),
            Err(IminError::ForbiddenSeedOverlap { vertex: 1 })
        ));
        assert!(decrease_es_multi_in(
            &IcLiveEdgeSampler,
            &g,
            &[vid(0)],
            &[false; 2],
            &cfg(4),
            &mut ws
        )
        .is_err());
        assert!(matches!(
            decrease_es_multi_in(
                &IcLiveEdgeSampler,
                &g,
                &[vid(0)],
                &[false; 4],
                &cfg(0),
                &mut ws
            ),
            Err(IminError::ZeroSamples)
        ));
    }

    #[test]
    fn blocked_vertices_have_zero_delta_and_shrink_spread() {
        let g = deterministic_tree();
        let mut blocked = vec![false; 4];
        blocked[1] = true;
        let est = decrease_es_computation(&g, vid(0), &blocked, &cfg(8)).unwrap();
        assert_eq!(est.delta[1], 0.0);
        assert_eq!(est.delta[2], 0.0);
        assert!((est.average_reached - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = deterministic_tree();
        assert!(matches!(
            decrease_es_computation(&g, vid(0), &[false; 4], &cfg(0)),
            Err(IminError::ZeroSamples)
        ));
        assert!(decrease_es_computation(&g, vid(9), &[false; 4], &cfg(4)).is_err());
        assert!(decrease_es_computation(&g, vid(0), &[false; 2], &cfg(4)).is_err());
        let mut blocked = vec![false; 4];
        blocked[0] = true;
        assert!(decrease_es_computation(&g, vid(0), &blocked, &cfg(4)).is_err());
    }

    #[test]
    fn best_candidate_respects_eligibility_and_ties() {
        let est = DecreaseEstimate {
            delta: vec![5.0, 2.0, 2.0, 0.0],
            average_reached: 1.0,
            samples: 1,
        };
        assert_eq!(est.best_candidate(|_| true), Some(vid(0)));
        assert_eq!(est.best_candidate(|v| v != vid(0)), Some(vid(1)));
        assert_eq!(
            est.best_candidate(|v| v == vid(3)),
            Some(vid(3)),
            "a zero-estimate candidate is still returned"
        );
        assert_eq!(est.best_candidate(|_| false), None);
    }

    #[test]
    fn theorem5_sample_bound_is_monotone() {
        let loose = sample_bound(1000, 0.5, 1.0, 10.0);
        let tight = sample_bound(1000, 0.1, 1.0, 10.0);
        assert!(tight > loose);
        let bigger_opt = sample_bound(1000, 0.5, 1.0, 100.0);
        assert!(bigger_opt < loose);
        let more_conf = sample_bound(1000, 0.5, 2.0, 10.0);
        assert!(more_conf > loose);
    }

    #[test]
    #[should_panic]
    fn sample_bound_rejects_nonpositive_epsilon() {
        let _ = sample_bound(10, 0.0, 1.0, 1.0);
    }
}
