//! Reverse-reachable sketch estimation — the second estimator backend.
//!
//! The forward [`crate::pool`] materialises θ *full-graph* live-edge
//! realisations, which prices every candidate blocker exactly (dominator
//! trees over every cascade) but costs O(θ·m) build time and memory. The
//! reverse-sketch backend of this module inverts the direction of work, the
//! way RIS-style influence estimators do (Wang et al., "Efficient Influence
//! Minimization via Node Blocking", arXiv 2405.12871): draw θ_r *sketches*,
//! each the set of vertices that can reach one uniformly random root over
//! one live-edge realisation — a reverse BFS over the transposed graph that
//! only ever touches the (usually tiny) in-cone of its root.
//!
//! The estimator identity is the standard RIS one: a vertex set `S` infects
//! a uniformly random vertex with probability `E[#sketches hit by S] / θ_r`,
//! so `spread(S) ≈ n · covered / θ_r` where `covered` counts sketches
//! containing at least one seed.
//!
//! ## Determinism
//!
//! Sketch `i` is drawn from its own RNG stream keyed by
//! [`imin_diffusion::live_edge::indexed_sample_seed`]`(pool_seed, i)` — the
//! exact precedent of the forward pool — so a [`SketchPool`] is
//! **bit-identical at every thread count**: builds shard sketch indices
//! across workers, but each sketch's stream is self-contained. Selection is
//! a sequential integer-scored CELF pass with a fixed tie-break (smallest
//! vertex id), so blocker selections inherit the bit-identity.
//!
//! ## Storage
//!
//! Sketches live in one consolidated CSR in the forward arena style: a
//! `u64` offset per sketch into two parallel `u32` arrays — `members` (the
//! sketch's vertices in BFS discovery order, root first) and `parents` (for
//! each member, the *position* of the member it was discovered from, i.e.
//! the next hop on a live path toward the root). On top sits an inverted
//! vertex→sketch index (`(sketch, position)` pairs per vertex), so seed
//! coverage lookups are O(1) per (seed, sketch) instead of a scan.
//!
//! ## Blocking model
//!
//! Blocking vertex `v` immunises it: a blocked vertex never becomes
//! infected, so no cascade flows through it. A sketch covered by the seed
//! set is *killed* by a blocker on the recorded live path from every
//! covering seed to the root (the BFS parent chains; their intersection is
//! the common suffix of the chains, computed per sketch). This is a
//! single-path approximation — the realisation may contain other live
//! paths — which is what buys the backend its speed; the cross-backend
//! tests and `bench_pr9` hold its end answers against the forward pool's
//! exact ground truth.

use crate::request::{ContainmentRequest, EvalBackend};
use crate::solver::{AlgorithmKind, BlockerSolver};
use crate::types::{BlockerSelection, SelectionStats};
use crate::{IminError, Result};
use imin_diffusion::live_edge::indexed_sample_seed;
use imin_graph::{coin_threshold, DiGraph, GraphError, VertexId, THRESHOLD_ALWAYS};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::collections::{BinaryHeap, HashMap};
use std::ops::Range;
use std::time::Instant;

/// A resident pool of θ_r reverse-reachable sketches of one graph.
///
/// Build once per `(graph, θ_r, seed)`; answer any number of containment
/// questions against it. The pool never changes after construction, so it
/// can be shared immutably across query workers.
#[derive(Clone, Debug)]
pub struct SketchPool {
    num_vertices: usize,
    num_graph_edges: usize,
    pool_seed: u64,
    /// Root vertex of each sketch (also `members[offsets[i]]`).
    roots: Vec<u32>,
    /// Sketch `i` occupies `members[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u64>,
    /// Sketch members in BFS discovery order, root first.
    members: Vec<u32>,
    /// Per member: the in-sketch *position* of its BFS parent (the next hop
    /// toward the root). The root's parent is its own position, 0.
    parents: Vec<u32>,
    /// Vertex `v` appears in `inv_sketches[inv_offsets[v]..inv_offsets[v+1]]`.
    inv_offsets: Vec<u64>,
    /// Sketch ids, ascending per vertex.
    inv_sketches: Vec<u32>,
    /// The vertex's position inside the corresponding sketch.
    inv_positions: Vec<u32>,
}

/// The transposed coin thresholds: per in-edge of each vertex, in the
/// graph's in-CSR order, precomputed once per build so the per-sketch BFS
/// never touches floating point.
struct InThresholds {
    offsets: Vec<usize>,
    thresholds: Vec<u64>,
}

impl InThresholds {
    fn new(graph: &DiGraph) -> Self {
        let mut offsets = Vec::with_capacity(graph.num_vertices() + 1);
        let mut thresholds = Vec::with_capacity(graph.num_edges());
        offsets.push(0usize);
        for v in graph.vertices() {
            thresholds.extend(graph.in_probabilities(v).iter().map(|&p| coin_threshold(p)));
            offsets.push(thresholds.len());
        }
        InThresholds {
            offsets,
            thresholds,
        }
    }

    #[inline]
    fn of(&self, v: usize) -> &[u64] {
        &self.thresholds[self.offsets[v]..self.offsets[v + 1]]
    }
}

/// Draws sketch `sketch_idx` of the pool `(pool_seed, θ_r)`: the root and
/// every vertex with a live reverse path to it, appended to
/// `members`/`parents`. Returns the sketch's root.
///
/// Coin semantics match the forward sampler: deterministic edges
/// (threshold 0 / [`THRESHOLD_ALWAYS`]) never touch the RNG, every
/// probabilistic coin is one `u64` compare. Edges into already-discovered
/// vertices are skipped *without* flipping — the flip could not change
/// membership, and every edge still gets at most one independent coin, so
/// the sketch distribution is the standard lazy RIS one.
#[allow(clippy::too_many_arguments)]
fn fill_sketch(
    graph: &DiGraph,
    in_thr: &InThresholds,
    pool_seed: u64,
    sketch_idx: u64,
    members: &mut Vec<u32>,
    parents: &mut Vec<u32>,
    stamp: &mut [u32],
    tick: u32,
) -> u32 {
    let n = graph.num_vertices();
    let mut rng = SmallRng::seed_from_u64(indexed_sample_seed(pool_seed, sketch_idx));
    let root = (rng.next_u64() % n as u64) as u32;
    let base = members.len();
    members.push(root);
    parents.push(0);
    stamp[root as usize] = tick;
    let mut head = base;
    while head < members.len() {
        let v = members[head];
        let vpos = (head - base) as u32;
        head += 1;
        let sources = graph.in_neighbors(VertexId::new(v as usize));
        let thresholds = in_thr.of(v as usize);
        for (&u, &threshold) in sources.iter().zip(thresholds) {
            if stamp[u as usize] == tick {
                continue;
            }
            let live = threshold == THRESHOLD_ALWAYS
                || (threshold != 0 && (rng.next_u64() >> 11) < threshold);
            if live {
                stamp[u as usize] = tick;
                members.push(u);
                parents.push(vpos);
            }
        }
    }
    root
}

/// One worker's output while building a sketch region.
#[derive(Default)]
struct SketchPart {
    members: Vec<u32>,
    parents: Vec<u32>,
    roots: Vec<u32>,
    lens: Vec<u64>,
}

/// Draws sketches `range` into one [`SketchPart`] (a worker's whole shard).
fn fill_sketch_region(
    graph: &DiGraph,
    in_thr: &InThresholds,
    pool_seed: u64,
    range: Range<usize>,
) -> SketchPart {
    let n = graph.num_vertices();
    let mut part = SketchPart::default();
    let mut stamp = vec![0u32; n];
    for (tick, idx) in range.enumerate() {
        let before = part.members.len();
        let root = fill_sketch(
            graph,
            in_thr,
            pool_seed,
            idx as u64,
            &mut part.members,
            &mut part.parents,
            &mut stamp,
            tick as u32 + 1,
        );
        part.roots.push(root);
        part.lens.push((part.members.len() - before) as u64);
    }
    part
}

impl SketchPool {
    /// Builds θ_r reverse-reachable sketches with the default worker-thread
    /// count.
    ///
    /// # Errors
    /// See [`SketchPool::build_with_threads`].
    pub fn build(graph: &DiGraph, theta_r: usize, seed: u64) -> Result<SketchPool> {
        let threads = imin_diffusion::montecarlo::default_threads();
        SketchPool::build_with_threads(graph, theta_r, seed, threads)
    }

    /// Builds θ_r reverse-reachable sketches, sharding sketch indices over
    /// up to `threads` workers. The result is bit-identical for every
    /// `threads` value (each sketch owns its indexed RNG stream). Lapped
    /// into the caller's span as [`imin_obs::Phase::RSample`] when one is
    /// active.
    ///
    /// # Errors
    /// * [`IminError::ZeroSamples`] — `theta_r` is 0.
    /// * [`IminError::Graph`] — the graph has no vertices to root a sketch
    ///   at.
    pub fn build_with_threads(
        graph: &DiGraph,
        theta_r: usize,
        seed: u64,
        threads: usize,
    ) -> Result<SketchPool> {
        if theta_r == 0 {
            return Err(IminError::ZeroSamples);
        }
        let n = graph.num_vertices();
        if n == 0 {
            return Err(IminError::Graph(GraphError::VertexOutOfRange {
                vertex: 0,
                num_vertices: 0,
            }));
        }
        let timed = imin_obs::span::active();
        let start = Instant::now();
        let in_thr = InThresholds::new(graph);
        let threads = threads.max(1).min(theta_r);
        let parts: Vec<SketchPart> = if threads <= 1 {
            vec![fill_sketch_region(graph, &in_thr, seed, 0..theta_r)]
        } else {
            let shards: Vec<Range<usize>> = crate::pool::shard_ranges(theta_r, threads).collect();
            let mut parts: Vec<SketchPart> = Vec::new();
            parts.resize_with(shards.len(), SketchPart::default);
            crossbeam::scope(|scope| {
                for (range, part) in shards.into_iter().zip(parts.iter_mut()) {
                    let in_thr = &in_thr;
                    scope.spawn(move |_| {
                        *part = fill_sketch_region(graph, in_thr, seed, range);
                    });
                }
            })
            .expect("sketch-pool build worker panicked");
            parts
        };

        let total: usize = parts.iter().map(|p| p.members.len()).sum();
        let mut members = Vec::with_capacity(total);
        let mut parents = Vec::with_capacity(total);
        let mut roots = Vec::with_capacity(theta_r);
        let mut offsets = Vec::with_capacity(theta_r + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for part in parts {
            members.extend_from_slice(&part.members);
            parents.extend_from_slice(&part.parents);
            roots.extend_from_slice(&part.roots);
            for &len in &part.lens {
                acc += len;
                offsets.push(acc);
            }
        }

        // Inverted vertex→sketch index: counting sort over the members, so
        // per-vertex entries come out sorted by sketch id.
        let mut counts = vec![0u64; n + 1];
        for &v in &members {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let inv_offsets = counts.clone();
        let mut inv_sketches = vec![0u32; members.len()];
        let mut inv_positions = vec![0u32; members.len()];
        for i in 0..theta_r {
            let span = offsets[i] as usize..offsets[i + 1] as usize;
            for (pos, &v) in members[span].iter().enumerate() {
                let slot = counts[v as usize] as usize;
                inv_sketches[slot] = i as u32;
                inv_positions[slot] = pos as u32;
                counts[v as usize] += 1;
            }
        }

        if timed {
            imin_obs::span::add_ns(imin_obs::Phase::RSample, start.elapsed().as_nanos() as u64);
        }
        Ok(SketchPool {
            num_vertices: n,
            num_graph_edges: graph.num_edges(),
            pool_seed: seed,
            roots,
            offsets,
            members,
            parents,
            inv_offsets,
            inv_sketches,
            inv_positions,
        })
    }

    /// Number of sketches θ_r.
    pub fn theta_r(&self) -> usize {
        self.roots.len()
    }

    /// The base RNG seed the indexed per-sketch streams derive from.
    pub fn pool_seed(&self) -> u64 {
        self.pool_seed
    }

    /// Number of vertices of the graph this pool was built from.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges of the graph this pool was built from.
    pub fn num_graph_edges(&self) -> usize {
        self.num_graph_edges
    }

    /// Total sketch entries across all sketches (Σ sketch sizes).
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Mean sketch size.
    pub fn avg_sketch_size(&self) -> f64 {
        if self.roots.is_empty() {
            0.0
        } else {
            self.members.len() as f64 / self.roots.len() as f64
        }
    }

    /// Resident heap bytes of the pool's arrays.
    pub fn memory_bytes(&self) -> usize {
        self.roots.len() * 4
            + self.offsets.len() * 8
            + self.members.len() * 4
            + self.parents.len() * 4
            + self.inv_offsets.len() * 8
            + self.inv_sketches.len() * 4
            + self.inv_positions.len() * 4
    }

    /// Sketch `i`'s members (root first, BFS order) and parent positions.
    pub fn sketch(&self, i: usize) -> (&[u32], &[u32]) {
        let span = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        (&self.members[span.clone()], &self.parents[span])
    }

    /// Root vertex of sketch `i`.
    pub fn root(&self, i: usize) -> u32 {
        self.roots[i]
    }

    /// The `(sketch, position)` occurrences of vertex `v`, ascending by
    /// sketch id — the O(1)-per-entry coverage lookup.
    pub fn occurrences(&self, v: VertexId) -> impl Iterator<Item = (u32, u32)> + '_ {
        let span = self.inv_offsets[v.index()] as usize..self.inv_offsets[v.index() + 1] as usize;
        self.inv_sketches[span.clone()]
            .iter()
            .copied()
            .zip(self.inv_positions[span].iter().copied())
    }

    /// Checks this pool was built from (a graph shaped like) `graph`.
    ///
    /// # Errors
    /// [`IminError::PoolGraphMismatch`] on a vertex- or edge-count mismatch.
    pub fn ensure_matches(&self, graph: &DiGraph) -> Result<()> {
        if graph.num_vertices() != self.num_vertices || graph.num_edges() != self.num_graph_edges {
            return Err(IminError::PoolGraphMismatch {
                graph_vertices: graph.num_vertices(),
                graph_edges: graph.num_edges(),
                pool_vertices: self.num_vertices,
                pool_edges: self.num_graph_edges,
            });
        }
        Ok(())
    }

    /// The RIS spread estimate of `seeds` alone: `n · covered / θ_r`, where
    /// `covered` counts sketches containing at least one seed.
    pub fn spread_estimate(&self, seeds: &[VertexId]) -> f64 {
        let mut covered = vec![false; self.theta_r()];
        for &s in seeds {
            if s.index() >= self.num_vertices {
                continue;
            }
            for (sketch, _) in self.occurrences(s) {
                covered[sketch as usize] = true;
            }
        }
        let hit = covered.iter().filter(|&&c| c).count();
        self.num_vertices as f64 * hit as f64 / self.theta_r() as f64
    }
}

/// One CELF heap entry: ordered by gain descending, then vertex ascending,
/// so ties always break toward the smallest vertex id. `round` stamps the
/// selection round the gain was computed in — an entry is *fresh* (its
/// bound exact) only in the round that stamped it, because gains are
/// monotone non-increasing as sketches die.
#[derive(PartialEq, Eq)]
struct CelfEntry {
    gain: u64,
    vertex: u32,
    round: u32,
}

impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .cmp(&other.gain)
            .then_with(|| other.vertex.cmp(&self.vertex))
            .then_with(|| self.round.cmp(&other.round))
    }
}

impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy-greedy (CELF) blocker selection against a resident [`SketchPool`].
///
/// Scores a candidate block by the number of seed-covered sketches whose
/// every recorded seed→root live path runs through it (the sketch mass the
/// block removes), then greedily takes the best `budget` candidates with
/// CELF's stale-bound re-evaluation. Selection is sequential over integer
/// scores with a smallest-vertex tie-break, so the answer is a pure
/// function of the pool — byte-identical at every engine thread count.
///
/// The coverage/critical-path pass is lapped into the caller's span as
/// [`imin_obs::Phase::Cover`], the CELF loop as
/// [`imin_obs::Phase::Select`], when a span is active.
///
/// # Errors
/// [`IminError::PoolGraphMismatch`] if the request was built for a
/// different graph shape than the pool.
pub fn sketch_greedy_in(
    pool: &SketchPool,
    request: &ContainmentRequest<'_>,
) -> Result<BlockerSelection> {
    if request.num_vertices() != pool.num_vertices() {
        return Err(IminError::PoolGraphMismatch {
            graph_vertices: request.num_vertices(),
            graph_edges: pool.num_graph_edges(),
            pool_vertices: pool.num_vertices(),
            pool_edges: pool.num_graph_edges(),
        });
    }
    let timed = imin_obs::span::active();
    let started = Instant::now();
    let theta_r = pool.theta_r();

    // ---- Cover: which sketches do the seeds hit, and through which paths?
    // (sketch, seed position) pairs, grouped by sketch. Seeds are iterated
    // in canonical order and per-seed occurrences ascend by sketch id, so
    // the grouping below is deterministic.
    let mut hits: Vec<(u32, u32)> = Vec::new();
    for &s in request.seeds() {
        hits.extend(pool.occurrences(s));
    }
    hits.sort_unstable();

    // Per covered sketch: the positions every recorded seed→root path
    // shares (the common suffix of the parent chains), mapped to candidate
    // vertices. `kills[v]` lists the covered-sketch ordinals v can kill.
    let mut kills: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut covered = 0u32;
    let mut chain: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < hits.len() {
        let sketch = hits[i].0;
        let (members, parents) = pool.sketch(sketch as usize);
        // First covering seed: its full parent chain, seed position
        // included (strictly decreasing positions, ending at the root, 0).
        chain.clear();
        let mut pos = hits[i].1;
        loop {
            chain.push(pos);
            let parent = parents[pos as usize];
            if parent == pos {
                break;
            }
            pos = parent;
        }
        i += 1;
        // Every further covering seed: walk its chain until it merges into
        // the current one, then keep only the shared suffix.
        while i < hits.len() && hits[i].0 == sketch {
            let mut pos = hits[i].1;
            i += 1;
            loop {
                // `chain` is strictly decreasing, so binary-search with the
                // reversed ordering.
                if let Ok(k) = chain.binary_search_by(|&c| pos.cmp(&c)) {
                    chain.drain(..k);
                    break;
                }
                let parent = parents[pos as usize];
                if parent == pos {
                    // Reached the root without merging: the root must be
                    // shared (it terminates every chain).
                    debug_assert_eq!(*chain.last().unwrap(), 0);
                    let last = chain.len() - 1;
                    chain.drain(..last);
                    break;
                }
                pos = parent;
            }
        }
        let ordinal = covered;
        covered += 1;
        for &p in &chain {
            let v = members[p as usize];
            if request.is_candidate(VertexId::new(v as usize)) {
                kills.entry(v).or_default().push(ordinal);
            }
        }
    }
    if timed {
        imin_obs::span::add_ns(imin_obs::Phase::Cover, started.elapsed().as_nanos() as u64);
    }

    // ---- Select: CELF over integer kill counts.
    let select_started = Instant::now();
    let mut heap: BinaryHeap<CelfEntry> = kills
        .iter()
        .map(|(&vertex, list)| CelfEntry {
            gain: list.len() as u64,
            vertex,
            round: 0,
        })
        .collect();
    let mut alive = vec![true; covered as usize];
    let mut alive_count = u64::from(covered);
    let mut blockers: Vec<VertexId> = Vec::with_capacity(request.budget());
    let mut round = 0u32;
    let mut rounds = 0usize;
    while blockers.len() < request.budget() {
        let Some(entry) = heap.pop() else { break };
        if entry.gain == 0 {
            // Stale gains only ever shrink, so a zero at the top means no
            // candidate can kill another sketch.
            break;
        }
        if entry.round < round {
            // Stale bound: re-evaluate against the surviving sketches and
            // re-queue (a selected vertex re-evaluates to 0 — its sketches
            // all died with it — so nothing is ever picked twice).
            let gain = kills[&entry.vertex]
                .iter()
                .filter(|&&s| alive[s as usize])
                .count() as u64;
            heap.push(CelfEntry {
                gain,
                vertex: entry.vertex,
                round,
            });
            continue;
        }
        round += 1;
        rounds += 1;
        blockers.push(VertexId::new(entry.vertex as usize));
        for &s in &kills[&entry.vertex] {
            if alive[s as usize] {
                alive[s as usize] = false;
                alive_count -= 1;
            }
        }
    }
    if timed {
        imin_obs::span::add_ns(
            imin_obs::Phase::Select,
            select_started.elapsed().as_nanos() as u64,
        );
    }

    let estimated = pool.num_vertices() as f64 * alive_count as f64 / theta_r as f64;
    Ok(BlockerSelection {
        blockers,
        estimated_spread: Some(estimated),
        blocked_edges: Vec::new(),
        stats: SelectionStats {
            samples_drawn: theta_r,
            mcs_rounds_run: 0,
            rounds,
            elapsed: started.elapsed(),
        },
    })
}

/// The `ris-greedy` solver: CELF blocker selection over reverse-reachable
/// sketches. Runs on the [`EvalBackend::Sketch`] (build a transient pool)
/// and [`EvalBackend::SketchPooled`] (resident pool) backends only.
pub struct RisGreedy;

impl BlockerSolver for RisGreedy {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::RisGreedy
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        // The reverse-reachable sketches answer vertex requests only: a
        // sketch records *which* vertices cover a target, not the live edges
        // a deletion or rescale would have to rewrite.
        crate::intervene::require_vertex(
            request.intervention(),
            self.kind().name(),
            request.backend().label(),
        )?;
        match *request.backend() {
            EvalBackend::Sketch {
                theta_r,
                seed,
                threads,
            } => {
                let pool = SketchPool::build_with_threads(graph, theta_r, seed, threads)?;
                sketch_greedy_in(&pool, request)
            }
            EvalBackend::SketchPooled { pool, .. } => {
                pool.ensure_matches(graph)?;
                sketch_greedy_in(pool, request)
            }
            ref other => Err(IminError::BackendUnsupported {
                algorithm: self.kind().name(),
                backend: other.label(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_graph::generators;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// s → g → {t1, t2}: every cascade from s runs through the gateway g.
    fn gateway_graph() -> DiGraph {
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
            ],
        )
        .unwrap()
    }

    fn wc(n: usize, seed: u64) -> DiGraph {
        imin_diffusion::ProbabilityModel::WeightedCascade
            .apply(&generators::preferential_attachment(n, 3, true, 1.0, seed).unwrap())
            .unwrap()
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        let g = gateway_graph();
        assert!(matches!(
            SketchPool::build(&g, 0, 1),
            Err(IminError::ZeroSamples)
        ));
        let empty = DiGraph::empty(0);
        assert!(matches!(
            SketchPool::build(&empty, 4, 1),
            Err(IminError::Graph(_))
        ));
    }

    #[test]
    fn deterministic_edges_make_exact_sketches() {
        let g = gateway_graph();
        let pool = SketchPool::build_with_threads(&g, 64, 7, 1).unwrap();
        assert_eq!(pool.theta_r(), 64);
        assert_eq!(pool.num_vertices(), 4);
        // All probabilities are 1.0: a sketch rooted at v is exactly the
        // set of vertices that reach v. Vertex 0 reaches everything, so
        // every sketch contains 0; the gateway 1 reaches 2 and 3.
        for i in 0..pool.theta_r() {
            let (members, parents) = pool.sketch(i);
            assert_eq!(members[0], pool.root(i));
            assert_eq!(parents[0], 0, "the root is its own parent");
            assert!(members.contains(&0), "vertex 0 reaches every root");
            for (pos, &parent) in parents.iter().enumerate().skip(1) {
                assert!(
                    (parent as usize) < pos,
                    "parents precede children in BFS order"
                );
            }
        }
        // Spread of {0} alone: 0 infects everything → n · θ_r/θ_r = 4.
        assert_eq!(pool.spread_estimate(&[vid(0)]), 4.0);
        // The inverted index agrees with the forward storage.
        for v in 0..4 {
            for (sketch, pos) in pool.occurrences(vid(v)) {
                let (members, _) = pool.sketch(sketch as usize);
                assert_eq!(members[pos as usize], v as u32);
            }
        }
    }

    #[test]
    fn pools_are_bit_identical_across_thread_counts() {
        let g = wc(400, 11);
        let one = SketchPool::build_with_threads(&g, 500, 42, 1).unwrap();
        for threads in [2, 8] {
            let other = SketchPool::build_with_threads(&g, 500, 42, threads).unwrap();
            assert_eq!(one.roots, other.roots, "{threads} threads: roots");
            assert_eq!(one.offsets, other.offsets, "{threads} threads: offsets");
            assert_eq!(one.members, other.members, "{threads} threads: members");
            assert_eq!(one.parents, other.parents, "{threads} threads: parents");
            assert_eq!(one.inv_offsets, other.inv_offsets);
            assert_eq!(one.inv_sketches, other.inv_sketches);
            assert_eq!(one.inv_positions, other.inv_positions);
        }
    }

    #[test]
    fn the_gateway_is_selected_on_the_planted_graph() {
        let g = gateway_graph();
        let pool = SketchPool::build(&g, 256, 3).unwrap();
        let request = ContainmentRequest::builder(&g)
            .seed(vid(0))
            .budget(1)
            .sketch_pooled(&pool, 1)
            .build()
            .unwrap();
        let selection = RisGreedy.solve(&g, &request).unwrap();
        assert_eq!(
            selection.blockers,
            vec![vid(1)],
            "blocking the gateway kills every sketch it can"
        );
        // With the gateway blocked nothing past the seed is infected: only
        // sketches rooted at the seed itself survive (blocking 1 kills even
        // the sketch rooted at 1 — a blocked vertex is never infected).
        let spread = selection.estimated_spread.unwrap();
        assert!(spread > 0.0 && spread < 4.0, "spread {spread}");
        let roots_at_seed = (0..pool.theta_r()).filter(|&i| pool.root(i) == 0).count() as f64;
        assert!((spread - 4.0 * roots_at_seed / pool.theta_r() as f64).abs() < 1e-9);
    }

    #[test]
    fn selections_respect_seeds_forbidden_and_budget() {
        let g = wc(300, 5);
        let pool = SketchPool::build(&g, 400, 9).unwrap();
        let forbidden =
            crate::request::ForbiddenSet::from_vertices(300, &[vid(2), vid(17)]).unwrap();
        let request = ContainmentRequest::builder(&g)
            .seeds([vid(0), vid(4)])
            .budget(3)
            .forbid(forbidden)
            .sketch_pooled(&pool, 4)
            .build()
            .unwrap();
        let selection = RisGreedy.solve(&g, &request).unwrap();
        assert!(selection.blockers.len() <= 3);
        for &b in &selection.blockers {
            assert!(request.is_candidate(b), "{b:?} is a seed or forbidden");
        }
        assert_eq!(selection.stats.samples_drawn, 400);
        assert!(selection.stats.rounds >= selection.blockers.len());
    }

    #[test]
    fn selections_are_identical_across_thread_counts() {
        let g = wc(500, 23);
        let mut reference: Option<(Vec<VertexId>, Option<f64>)> = None;
        for threads in [1usize, 2, 8] {
            let pool = SketchPool::build_with_threads(&g, 600, 77, threads).unwrap();
            let request = ContainmentRequest::builder(&g)
                .seeds([vid(1), vid(9)])
                .budget(4)
                .sketch_pooled(&pool, threads)
                .build()
                .unwrap();
            let selection = RisGreedy.solve(&g, &request).unwrap();
            let got = (selection.blockers, selection.estimated_spread);
            match &reference {
                None => reference = Some(got),
                Some(expect) => assert_eq!(&got, expect, "{threads} threads diverged"),
            }
        }
    }

    #[test]
    fn transient_sketch_backend_builds_and_answers() {
        let g = wc(200, 3);
        let request = ContainmentRequest::builder(&g)
            .seed(vid(0))
            .budget(2)
            .sketch(300, 5, 2)
            .build()
            .unwrap();
        let selection = AlgorithmKind::RisGreedy
            .solver()
            .solve(&g, &request)
            .unwrap();
        assert!(selection.blockers.len() <= 2);
        assert!(selection.estimated_spread.is_some());
        // The transient build equals the resident pool's answer.
        let pool = SketchPool::build_with_threads(&g, 300, 5, 2).unwrap();
        let resident = ContainmentRequest::builder(&g)
            .seed(vid(0))
            .budget(2)
            .sketch_pooled(&pool, 2)
            .build()
            .unwrap();
        let expect = RisGreedy.solve(&g, &resident).unwrap();
        assert_eq!(selection.blockers, expect.blockers);
        assert_eq!(selection.estimated_spread, expect.estimated_spread);
    }

    #[test]
    fn forward_backends_are_rejected_with_a_typed_error() {
        let g = gateway_graph();
        let fresh = ContainmentRequest::builder(&g)
            .seed(vid(0))
            .budget(1)
            .fresh(16, 1, 1)
            .build()
            .unwrap();
        match RisGreedy.solve(&g, &fresh) {
            Err(IminError::BackendUnsupported { algorithm, backend }) => {
                assert_eq!(algorithm, "ris-greedy");
                assert_eq!(backend, "fresh");
            }
            other => panic!("expected BackendUnsupported, got {other:?}"),
        }
        let pool = crate::pool::SamplePool::build(&g, 8, 1).unwrap();
        let pooled = ContainmentRequest::builder(&g)
            .seed(vid(0))
            .budget(1)
            .pooled_with_threads(&pool, 1)
            .build()
            .unwrap();
        assert!(matches!(
            RisGreedy.solve(&g, &pooled),
            Err(IminError::BackendUnsupported {
                backend: "pooled",
                ..
            })
        ));
    }

    #[test]
    fn mismatched_pool_shapes_are_rejected() {
        let g = gateway_graph();
        let other = wc(50, 1);
        let pool = SketchPool::build(&other, 32, 1).unwrap();
        assert!(matches!(
            pool.ensure_matches(&g),
            Err(IminError::PoolGraphMismatch { .. })
        ));
        // The request builder rejects the mismatch before any solver runs.
        assert!(matches!(
            ContainmentRequest::builder(&g)
                .seed(vid(0))
                .budget(1)
                .sketch_pooled(&pool, 1)
                .build(),
            Err(IminError::PoolGraphMismatch { .. })
        ));
    }
}
