//! Simple blocker-selection heuristics.
//!
//! The paper compares against two of these directly (Rand and OutDegree,
//! §VI-A / Table VII); the others are natural extensions used in the
//! ablation benchmarks:
//!
//! * [`Rand`] / [`random_blockers`] — Rand (RA): `b` uniform random
//!   non-seed vertices.
//! * [`OutDegree`] / [`out_degree_blockers`] — OutDegree (OD): the `b`
//!   non-seed vertices with the highest out-degree \[11, 12\].
//! * [`Degree`] / [`degree_blockers`] — same but ranked by total degree.
//! * [`OutNeighbors`] / [`out_neighbor_blockers`] — the OutNeighbors
//!   strategy of Example 3: block (up to) `b` out-neighbours of the seeds,
//!   ranked by the dominator-tree estimator.
//! * [`PageRank`] / [`pagerank_blockers`] — the `b` highest-PageRank
//!   non-seed vertices (extension; PageRank is a classic proxy for
//!   structural importance).
//!
//! Every heuristic implements [`BlockerSolver`] over a
//! [`crate::ContainmentRequest`], so multi-seed requests exclude **every**
//! seed from the candidate pool (not just a single source) and the
//! rank-only heuristics run unchanged on either evaluation backend.
//! OutNeighbors prices candidates with the backend it is given — fresh
//! samples or pooled re-rooting — and Rand derives its shuffle from the
//! backend's RNG seed (the pool seed under `Pooled`, so pooled answers stay
//! a pure function of the pool identity). The free functions below are
//! thin single-source shims kept for source compatibility.

use crate::decrease::{decrease_es_multi_in, DecreaseConfig, DecreaseWorkspace};
use crate::pool::{pooled_decrease_in, with_pool_workspace};
use crate::request::{shim_request, shim_request_from_config, ContainmentRequest, EvalBackend};
use crate::sampler::IcLiveEdgeSampler;
use crate::solver::{AlgorithmKind, BlockerSolver};
use crate::types::{AlgorithmConfig, BlockerSelection, SelectionStats};
use crate::Result;
use imin_graph::stats::{vertices_by_degree, vertices_by_out_degree};
use imin_graph::{DiGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Rand (RA) behind the unified request API: `b` vertices chosen uniformly
/// at random among the candidates (neither seeds nor forbidden).
#[derive(Clone, Copy, Debug, Default)]
pub struct Rand;

impl BlockerSolver for Rand {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Random
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        if matches!(request.intervention(), crate::Intervention::BlockEdges) {
            let start = Instant::now();
            let mut edges: Vec<(VertexId, VertexId)> =
                graph.edges().map(|e| (e.source, e.target)).collect();
            let mut rng = StdRng::seed_from_u64(request.backend().rng_seed());
            edges.shuffle(&mut rng);
            edges.truncate(request.budget());
            let mut sel = BlockerSelection::new(Vec::new());
            sel.blocked_edges = edges;
            sel.stats = SelectionStats {
                elapsed: start.elapsed(),
                ..Default::default()
            };
            return Ok(sel);
        }
        // Vertex blocking and prebunking share the pick: `b` uniform random
        // candidates, read as removed or prebunked respectively.
        let start = Instant::now();
        let mut pool: Vec<VertexId> = graph
            .vertices()
            .filter(|&v| request.is_candidate(v))
            .collect();
        let mut rng = StdRng::seed_from_u64(request.backend().rng_seed());
        pool.shuffle(&mut rng);
        pool.truncate(request.budget());
        let mut sel = BlockerSelection::new(pool);
        sel.stats = SelectionStats {
            elapsed: start.elapsed(),
            ..Default::default()
        };
        Ok(sel)
    }
}

/// OutDegree (OD) behind the unified request API: the `b` candidates with
/// the largest out-degree. Backend-independent.
#[derive(Clone, Copy, Debug, Default)]
pub struct OutDegree;

impl BlockerSolver for OutDegree {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::OutDegree
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        if matches!(request.intervention(), crate::Intervention::BlockEdges) {
            let start = Instant::now();
            let mut edges: Vec<(VertexId, VertexId)> =
                graph.edges().map(|e| (e.source, e.target)).collect();
            // Cutting an edge into a high-fan-out vertex removes the one hop
            // that unlocks that fan-out; rank by the target's out-degree,
            // ties towards the lexicographically smaller edge.
            edges.sort_by(|a, b| {
                graph
                    .out_degree(b.1)
                    .cmp(&graph.out_degree(a.1))
                    .then(a.cmp(b))
            });
            edges.truncate(request.budget());
            let mut sel = BlockerSelection::new(Vec::new());
            sel.blocked_edges = edges;
            sel.stats.elapsed = start.elapsed();
            return Ok(sel);
        }
        let start = Instant::now();
        let blockers: Vec<VertexId> = vertices_by_out_degree(graph)
            .into_iter()
            .filter(|&v| request.is_candidate(v))
            .take(request.budget())
            .collect();
        let mut sel = BlockerSelection::new(blockers);
        sel.stats.elapsed = start.elapsed();
        Ok(sel)
    }
}

/// Total-degree variant of the degree heuristic. Backend-independent.
#[derive(Clone, Copy, Debug, Default)]
pub struct Degree;

impl BlockerSolver for Degree {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Degree
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        if matches!(request.intervention(), crate::Intervention::BlockEdges) {
            return Err(crate::IminError::InterventionUnsupported {
                algorithm: self.kind().name(),
                backend: request.backend().label(),
                intervention: "edge",
            });
        }
        let start = Instant::now();
        let blockers: Vec<VertexId> = vertices_by_degree(graph)
            .into_iter()
            .filter(|&v| request.is_candidate(v))
            .take(request.budget())
            .collect();
        let mut sel = BlockerSelection::new(blockers);
        sel.stats.elapsed = start.elapsed();
        Ok(sel)
    }
}

/// OutNeighbors behind the unified request API: block up to `b`
/// out-neighbours of the seeds, ranked by their estimated spread decrease
/// (one Algorithm-2 pass on the request's backend).
#[derive(Clone, Copy, Debug, Default)]
pub struct OutNeighbors;

impl BlockerSolver for OutNeighbors {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::OutNeighbors
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        crate::intervene::require_vertex(
            request.intervention(),
            self.kind().name(),
            request.backend().label(),
        )?;
        let start = Instant::now();
        let blocked = vec![false; graph.num_vertices()];
        let estimate = match *request.backend() {
            EvalBackend::Fresh {
                theta,
                seed,
                threads,
            } => decrease_es_multi_in(
                &IcLiveEdgeSampler,
                graph,
                request.seeds(),
                &blocked,
                &DecreaseConfig {
                    theta,
                    threads,
                    seed,
                },
                &mut DecreaseWorkspace::new(),
            )?,
            EvalBackend::Pooled { pool, threads } => {
                // The deltas come from the pool but the neighbour list from
                // `graph` — a mispaired same-size graph must not slip
                // through and rank one graph's neighbours by another's
                // estimates.
                pool.ensure_matches(graph)?;
                with_pool_workspace(|workspace| {
                    pooled_decrease_in(pool, request.seeds(), &blocked, threads, workspace)
                })?
            }
            ref other => {
                return Err(crate::IminError::BackendUnsupported {
                    algorithm: self.kind().name(),
                    backend: other.label(),
                })
            }
        };
        let mut neighbors: Vec<VertexId> = Vec::new();
        for &s in request.seeds() {
            neighbors.extend(
                graph
                    .out_edges(s)
                    .map(|(v, _)| v)
                    .filter(|&v| request.is_candidate(v)),
            );
        }
        neighbors.sort_unstable();
        neighbors.dedup();
        rank_by_score(&mut neighbors, &estimate.delta);
        neighbors.truncate(request.budget());
        let mut sel = BlockerSelection::new(neighbors);
        sel.stats = SelectionStats {
            samples_drawn: estimate.samples,
            rounds: 1,
            elapsed: start.elapsed(),
            ..Default::default()
        };
        Ok(sel)
    }
}

/// PageRank behind the unified request API: the `b` candidates with the
/// highest PageRank. Backend-independent.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageRank;

impl BlockerSolver for PageRank {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::PageRank
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        if matches!(request.intervention(), crate::Intervention::BlockEdges) {
            return Err(crate::IminError::InterventionUnsupported {
                algorithm: self.kind().name(),
                backend: request.backend().label(),
                intervention: "edge",
            });
        }
        let start = Instant::now();
        let scores = pagerank_scores(graph, 0.85, 30);
        let mut vertices: Vec<VertexId> = graph
            .vertices()
            .filter(|&v| request.is_candidate(v))
            .collect();
        rank_by_score(&mut vertices, &scores);
        vertices.truncate(request.budget());
        let mut sel = BlockerSelection::new(vertices);
        sel.stats.elapsed = start.elapsed();
        Ok(sel)
    }
}

/// Sorts vertices by descending score, breaking ties towards the smaller
/// vertex id so every ranking heuristic is deterministic.
fn rank_by_score(vertices: &mut [VertexId], scores: &[f64]) {
    vertices.sort_by(|a, b| {
        scores[b.index()]
            .partial_cmp(&scores[a.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.raw().cmp(&b.raw()))
    });
}

/// Rand (RA): `b` vertices chosen uniformly at random among the vertices
/// that are neither forbidden nor the source — the single-source shim over
/// [`Rand`].
pub fn random_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    seed: u64,
) -> Result<BlockerSelection> {
    let request = shim_request(graph, &[source], forbidden, budget, 1, seed, 1, 1)?;
    Rand.solve(graph, &request)
}

/// OutDegree (OD): the `b` eligible vertices with the largest out-degree —
/// the single-source shim over [`OutDegree`].
pub fn out_degree_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
) -> Result<BlockerSelection> {
    let request = shim_request(graph, &[source], forbidden, budget, 1, 0, 1, 1)?;
    OutDegree.solve(graph, &request)
}

/// Total-degree variant of the degree heuristic — the single-source shim
/// over [`Degree`].
pub fn degree_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
) -> Result<BlockerSelection> {
    let request = shim_request(graph, &[source], forbidden, budget, 1, 0, 1, 1)?;
    Degree.solve(graph, &request)
}

/// OutNeighbors: block up to `b` out-neighbours of the source, ranked by
/// their estimated spread decrease (one Algorithm-2 call) — the
/// single-source shim over [`OutNeighbors`].
pub fn out_neighbor_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<BlockerSelection> {
    let request = shim_request_from_config(graph, &[source], forbidden, budget, config)?;
    OutNeighbors.solve(graph, &request)
}

/// PageRank scores computed by power iteration on the out-link structure
/// (probabilities are ignored; dangling mass is redistributed uniformly).
pub fn pagerank_scores(graph: &DiGraph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for u in graph.vertices() {
            let dout = graph.out_degree(u);
            if dout == 0 {
                dangling += rank[u.index()];
                continue;
            }
            let share = rank[u.index()] / dout as f64;
            for &t in graph.out_neighbors(u) {
                next[t as usize] += share;
            }
        }
        let dangling_share = dangling / n as f64;
        for x in next.iter_mut() {
            *x = (1.0 - damping) * uniform + damping * (*x + dangling_share);
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// PageRank heuristic: the `b` eligible vertices with the highest PageRank
/// — the single-source shim over [`PageRank`].
pub fn pagerank_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
) -> Result<BlockerSelection> {
    let request = shim_request(graph, &[source], forbidden, budget, 1, 0, 1, 1)?;
    PageRank.solve(graph, &request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::SamplePool;
    use crate::ContainmentRequest;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// Seed 0 -> {1, 2}; 1 -> {3, 4, 5}; 2 -> 6. Vertex 1 has the highest
    /// out-degree after the seed.
    fn sample_graph() -> DiGraph {
        DiGraph::from_edges(
            7,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(0), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
                (vid(1), vid(4), 1.0),
                (vid(1), vid(5), 1.0),
                (vid(2), vid(6), 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn random_is_deterministic_per_seed_and_respects_constraints() {
        let g = sample_graph();
        let forbidden = {
            let mut f = vec![false; 7];
            f[3] = true;
            f
        };
        let a = random_blockers(&g, vid(0), &forbidden, 3, 42).unwrap();
        let b = random_blockers(&g, vid(0), &forbidden, 3, 42).unwrap();
        assert_eq!(a.blockers, b.blockers);
        assert_eq!(a.len(), 3);
        assert!(!a.blockers.contains(&vid(0)));
        assert!(!a.blockers.contains(&vid(3)));
        let c = random_blockers(&g, vid(0), &forbidden, 3, 43).unwrap();
        assert_eq!(c.len(), 3);
        assert!(random_blockers(&g, vid(0), &forbidden, 0, 1).is_err());
    }

    #[test]
    fn out_degree_ranks_the_hub_first() {
        let g = sample_graph();
        let sel = out_degree_blockers(&g, vid(0), &[false; 7], 2).unwrap();
        assert_eq!(sel.blockers[0], vid(1));
        assert_eq!(sel.blockers[1], vid(2));
        // The seed is excluded even though it has the joint-highest degree.
        assert!(!sel.blockers.contains(&vid(0)));
    }

    #[test]
    fn degree_heuristic_counts_in_plus_out() {
        let g = sample_graph();
        let sel = degree_blockers(&g, vid(0), &[false; 7], 1).unwrap();
        assert_eq!(sel.blockers[0], vid(1)); // degree 4 (1 in + 3 out)
    }

    #[test]
    fn out_neighbors_are_ranked_by_estimated_decrease() {
        let g = sample_graph();
        let cfg = AlgorithmConfig::fast_for_tests().with_theta(200);
        let sel = out_neighbor_blockers(&g, vid(0), &[false; 7], 1, &cfg).unwrap();
        // Blocking 1 removes 4 vertices; blocking 2 removes 2.
        assert_eq!(sel.blockers, vec![vid(1)]);
        let both = out_neighbor_blockers(&g, vid(0), &[false; 7], 5, &cfg).unwrap();
        assert_eq!(both.len(), 2, "only two out-neighbours exist");
        assert!(out_neighbor_blockers(&g, vid(9), &[false; 7], 1, &cfg).is_err());
    }

    #[test]
    fn pagerank_scores_sum_to_one_and_favor_sinks_of_mass() {
        let g = sample_graph();
        let scores = pagerank_scores(&g, 0.85, 50);
        let total: f64 = scores.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "PageRank must be a distribution"
        );
        // Leaves fed by the hub outrank the isolated-ish vertex 6's source.
        assert!(scores[3] > scores[6] * 0.5);
        assert!(pagerank_scores(&DiGraph::empty(0), 0.85, 10).is_empty());
    }

    #[test]
    fn pagerank_blockers_respect_constraints() {
        let g = sample_graph();
        let mut forbidden = vec![false; 7];
        forbidden[1] = true;
        let sel = pagerank_blockers(&g, vid(0), &forbidden, 3).unwrap();
        assert_eq!(sel.len(), 3);
        assert!(!sel.blockers.contains(&vid(0)));
        assert!(!sel.blockers.contains(&vid(1)));
    }

    #[test]
    fn multi_seed_requests_exclude_every_seed() {
        let g = sample_graph();
        let seeds = [vid(0), vid(1)];
        let request = ContainmentRequest::builder(&g)
            .seeds(seeds)
            .budget(5)
            .fresh(100, 7, 1)
            .build()
            .unwrap();
        for kind in [
            AlgorithmKind::Random,
            AlgorithmKind::OutDegree,
            AlgorithmKind::Degree,
            AlgorithmKind::OutNeighbors,
            AlgorithmKind::PageRank,
        ] {
            let sel = kind.solver().solve(&g, &request).unwrap();
            for s in seeds {
                assert!(
                    !sel.blockers.contains(&s),
                    "{kind:?} chose seed {s} as a blocker"
                );
            }
        }
    }

    #[test]
    fn out_neighbors_covers_every_seed_on_both_backends() {
        let g = sample_graph();
        // Seeds 0 and 2: candidate out-neighbours are {1, 2, 6} minus seeds.
        let fresh = ContainmentRequest::builder(&g)
            .seeds([vid(0), vid(2)])
            .budget(5)
            .fresh(200, 3, 1)
            .build()
            .unwrap();
        let sel = OutNeighbors.solve(&g, &fresh).unwrap();
        let mut blockers = sel.blockers.clone();
        blockers.sort_unstable();
        assert_eq!(blockers, vec![vid(1), vid(6)]);
        // The deterministic graph makes pooled and fresh estimates exact,
        // so the pooled backend returns the same selection.
        let pool = SamplePool::build(&g, 16, 5).unwrap();
        let pooled = ContainmentRequest::builder(&g)
            .seeds([vid(0), vid(2)])
            .budget(5)
            .pooled_with_threads(&pool, 1)
            .build()
            .unwrap();
        let pooled_sel = OutNeighbors.solve(&g, &pooled).unwrap();
        assert_eq!(pooled_sel.blockers, sel.blockers);
    }
}
