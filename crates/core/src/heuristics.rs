//! Simple blocker-selection heuristics.
//!
//! The paper compares against two of these directly (Rand and OutDegree,
//! §VI-A / Table VII); the others are natural extensions used in the
//! ablation benchmarks:
//!
//! * [`random_blockers`] — Rand (RA): `b` uniform random non-seed vertices.
//! * [`out_degree_blockers`] — OutDegree (OD): the `b` non-seed vertices
//!   with the highest out-degree [11, 12].
//! * [`degree_blockers`] — same but ranked by total degree.
//! * [`out_neighbor_blockers`] — the OutNeighbors strategy of Example 3:
//!   block (up to) `b` out-neighbours of the seed, ranked by the
//!   dominator-tree estimator.
//! * [`pagerank_blockers`] — the `b` highest-PageRank non-seed vertices
//!   (extension; PageRank is a classic proxy for structural importance).

use crate::decrease::{decrease_es_computation, DecreaseConfig};
use crate::types::{AlgorithmConfig, BlockerSelection, SelectionStats};
use crate::{IminError, Result};
use imin_graph::stats::{vertices_by_degree, vertices_by_out_degree};
use imin_graph::{DiGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

fn check_budget(budget: usize) -> Result<()> {
    if budget == 0 {
        Err(IminError::ZeroBudget)
    } else {
        Ok(())
    }
}

/// Rand (RA): `b` vertices chosen uniformly at random among the vertices
/// that are neither forbidden nor the source.
pub fn random_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    seed: u64,
) -> Result<BlockerSelection> {
    check_budget(budget)?;
    let start = Instant::now();
    let mut pool: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| v != source && !forbidden[v.index()])
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    pool.shuffle(&mut rng);
    pool.truncate(budget);
    let mut sel = BlockerSelection::new(pool);
    sel.stats = SelectionStats {
        elapsed: start.elapsed(),
        ..Default::default()
    };
    Ok(sel)
}

/// OutDegree (OD): the `b` eligible vertices with the largest out-degree.
pub fn out_degree_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
) -> Result<BlockerSelection> {
    check_budget(budget)?;
    let start = Instant::now();
    let blockers: Vec<VertexId> = vertices_by_out_degree(graph)
        .into_iter()
        .filter(|&v| v != source && !forbidden[v.index()])
        .take(budget)
        .collect();
    let mut sel = BlockerSelection::new(blockers);
    sel.stats.elapsed = start.elapsed();
    Ok(sel)
}

/// Total-degree variant of the degree heuristic.
pub fn degree_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
) -> Result<BlockerSelection> {
    check_budget(budget)?;
    let start = Instant::now();
    let blockers: Vec<VertexId> = vertices_by_degree(graph)
        .into_iter()
        .filter(|&v| v != source && !forbidden[v.index()])
        .take(budget)
        .collect();
    let mut sel = BlockerSelection::new(blockers);
    sel.stats.elapsed = start.elapsed();
    Ok(sel)
}

/// OutNeighbors: block up to `b` out-neighbours of the source, ranked by
/// their estimated spread decrease (one Algorithm-2 call).
pub fn out_neighbor_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<BlockerSelection> {
    check_budget(budget)?;
    if source.index() >= graph.num_vertices() {
        return Err(IminError::SeedOutOfRange {
            vertex: source.index(),
            num_vertices: graph.num_vertices(),
        });
    }
    let start = Instant::now();
    let blocked = vec![false; graph.num_vertices()];
    let estimate = decrease_es_computation(
        graph,
        source,
        &blocked,
        &DecreaseConfig {
            theta: config.theta,
            threads: config.threads,
            seed: config.seed,
        },
    )?;
    let mut neighbors: Vec<VertexId> = graph
        .out_edges(source)
        .map(|(v, _)| v)
        .filter(|&v| v != source && !forbidden[v.index()])
        .collect();
    neighbors.sort_unstable();
    neighbors.dedup();
    neighbors.sort_by(|a, b| {
        estimate.delta[b.index()]
            .partial_cmp(&estimate.delta[a.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.raw().cmp(&b.raw()))
    });
    neighbors.truncate(budget);
    let mut sel = BlockerSelection::new(neighbors);
    sel.stats = SelectionStats {
        samples_drawn: estimate.samples,
        rounds: 1,
        elapsed: start.elapsed(),
        ..Default::default()
    };
    Ok(sel)
}

/// PageRank scores computed by power iteration on the out-link structure
/// (probabilities are ignored; dangling mass is redistributed uniformly).
pub fn pagerank_scores(graph: &DiGraph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for u in graph.vertices() {
            let dout = graph.out_degree(u);
            if dout == 0 {
                dangling += rank[u.index()];
                continue;
            }
            let share = rank[u.index()] / dout as f64;
            for &t in graph.out_neighbors(u) {
                next[t as usize] += share;
            }
        }
        let dangling_share = dangling / n as f64;
        for x in next.iter_mut() {
            *x = (1.0 - damping) * uniform + damping * (*x + dangling_share);
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// PageRank heuristic: the `b` eligible vertices with the highest PageRank.
pub fn pagerank_blockers(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
) -> Result<BlockerSelection> {
    check_budget(budget)?;
    let start = Instant::now();
    let scores = pagerank_scores(graph, 0.85, 30);
    let mut vertices: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| v != source && !forbidden[v.index()])
        .collect();
    vertices.sort_by(|a, b| {
        scores[b.index()]
            .partial_cmp(&scores[a.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.raw().cmp(&b.raw()))
    });
    vertices.truncate(budget);
    let mut sel = BlockerSelection::new(vertices);
    sel.stats.elapsed = start.elapsed();
    Ok(sel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// Seed 0 -> {1, 2}; 1 -> {3, 4, 5}; 2 -> 6. Vertex 1 has the highest
    /// out-degree after the seed.
    fn sample_graph() -> DiGraph {
        DiGraph::from_edges(
            7,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(0), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
                (vid(1), vid(4), 1.0),
                (vid(1), vid(5), 1.0),
                (vid(2), vid(6), 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn random_is_deterministic_per_seed_and_respects_constraints() {
        let g = sample_graph();
        let forbidden = {
            let mut f = vec![false; 7];
            f[3] = true;
            f
        };
        let a = random_blockers(&g, vid(0), &forbidden, 3, 42).unwrap();
        let b = random_blockers(&g, vid(0), &forbidden, 3, 42).unwrap();
        assert_eq!(a.blockers, b.blockers);
        assert_eq!(a.len(), 3);
        assert!(!a.blockers.contains(&vid(0)));
        assert!(!a.blockers.contains(&vid(3)));
        let c = random_blockers(&g, vid(0), &forbidden, 3, 43).unwrap();
        assert_eq!(c.len(), 3);
        assert!(random_blockers(&g, vid(0), &forbidden, 0, 1).is_err());
    }

    #[test]
    fn out_degree_ranks_the_hub_first() {
        let g = sample_graph();
        let sel = out_degree_blockers(&g, vid(0), &[false; 7], 2).unwrap();
        assert_eq!(sel.blockers[0], vid(1));
        assert_eq!(sel.blockers[1], vid(2));
        // The seed is excluded even though it has the joint-highest degree.
        assert!(!sel.blockers.contains(&vid(0)));
    }

    #[test]
    fn degree_heuristic_counts_in_plus_out() {
        let g = sample_graph();
        let sel = degree_blockers(&g, vid(0), &[false; 7], 1).unwrap();
        assert_eq!(sel.blockers[0], vid(1)); // degree 4 (1 in + 3 out)
    }

    #[test]
    fn out_neighbors_are_ranked_by_estimated_decrease() {
        let g = sample_graph();
        let cfg = AlgorithmConfig::fast_for_tests().with_theta(200);
        let sel = out_neighbor_blockers(&g, vid(0), &[false; 7], 1, &cfg).unwrap();
        // Blocking 1 removes 4 vertices; blocking 2 removes 2.
        assert_eq!(sel.blockers, vec![vid(1)]);
        let both = out_neighbor_blockers(&g, vid(0), &[false; 7], 5, &cfg).unwrap();
        assert_eq!(both.len(), 2, "only two out-neighbours exist");
        assert!(out_neighbor_blockers(&g, vid(9), &[false; 7], 1, &cfg).is_err());
    }

    #[test]
    fn pagerank_scores_sum_to_one_and_favor_sinks_of_mass() {
        let g = sample_graph();
        let scores = pagerank_scores(&g, 0.85, 50);
        let total: f64 = scores.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "PageRank must be a distribution"
        );
        // Leaves fed by the hub outrank the isolated-ish vertex 6's source.
        assert!(scores[3] > scores[6] * 0.5);
        assert!(pagerank_scores(&DiGraph::empty(0), 0.85, 10).is_empty());
    }

    #[test]
    fn pagerank_blockers_respect_constraints() {
        let g = sample_graph();
        let mut forbidden = vec![false; 7];
        forbidden[1] = true;
        let sel = pagerank_blockers(&g, vid(0), &forbidden, 3).unwrap();
        assert_eq!(sel.len(), 3);
        assert!(!sel.blockers.contains(&vid(0)));
        assert!(!sel.blockers.contains(&vid(1)));
    }
}
