//! Read-only memory mapping of snapshot files — the only `unsafe` in this
//! crate, kept behind a tiny audited surface.
//!
//! The zero-copy restore path ([`crate::snapshot::map_snapshot`]) serves
//! arena slices straight out of the page cache instead of bulk-copying a
//! multi-gigabyte pool into fresh heap. That requires two operations the
//! safe subset of `std` does not offer:
//!
//! 1. mapping a file (`mmap(2)` with `PROT_READ | MAP_PRIVATE`), and
//! 2. reinterpreting an aligned little-endian byte range of the mapping as
//!    `&[u32]`.
//!
//! Both live here. The invariants that make them sound:
//!
//! * The mapping is **private and read-only**; the kernel delivers `SIGBUS`
//!   only if the file shrinks underneath us — callers keep snapshot files
//!   immutable while mapped (the engine never rewrites a restored path).
//! * [`Mmap`] owns the region for its whole lifetime and unmaps on drop;
//!   every borrowed slice is tied to that lifetime, so no view can outlive
//!   the mapping.
//! * [`u32_slice`] refuses misaligned or out-of-range requests, and the
//!   zero-copy cast is compiled only on little-endian targets (snapshot
//!   integers are little-endian on disk); big-endian hosts take the bulk
//!   restore path instead.

// The crate-level lint is `deny`, not `forbid`, precisely so this module can
// scope its two unsafe operations; everything else in the crate stays safe.
#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    // Raw libc bindings: std already links libc on every unix target, so
    // declaring the two symbols we need avoids a vendored crate.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only, private memory mapping of an entire file.
#[derive(Debug)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// The mapping is immutable shared memory: concurrent reads from any thread
// are sound, and unmapping is gated by the single owner's drop.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole file at `path` read-only.
    ///
    /// # Errors
    /// Propagates `open`/`metadata` failures and the `mmap(2)` errno; an
    /// empty file is rejected (`mmap` of length 0 is unspecified, and no
    /// valid snapshot is empty). On non-unix targets this always fails with
    /// [`io::ErrorKind::Unsupported`].
    pub fn map_file(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "file exceeds the addressable size",
            )
        })?;
        Self::map_fd(&file, len)
    }

    #[cfg(unix)]
    fn map_fd(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a valid open file descriptor for the duration of
        // the call; len is nonzero; a NULL addr lets the kernel pick the
        // placement. The resulting region is only ever read through `&self`
        // and unmapped exactly once in drop.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(unix))]
    fn map_fd(_file: &File, _len: usize) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory-mapped snapshots require a unix target",
        ))
    }

    /// Total mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successful map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped file as a byte slice.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self;
        // the borrow ties the slice to the mapping's lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once; failure is unrecoverable in drop and ignored.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

/// Reinterprets `map.bytes()[start..start + 4 * len]` as `&[u32]`.
///
/// Returns `None` when the range is out of bounds, when `start` is not
/// 4-byte aligned relative to the mapping base (page-aligned, so absolute
/// alignment follows), or on big-endian hosts where the on-disk
/// little-endian words cannot be viewed in place.
pub fn u32_slice(map: &Mmap, start: usize, len: usize) -> Option<&[u32]> {
    let bytes = len.checked_mul(4)?;
    let end = start.checked_add(bytes)?;
    if end > map.len() || !start.is_multiple_of(4) {
        return None;
    }
    if cfg!(target_endian = "big") {
        return None;
    }
    let base = map.bytes()[start..end].as_ptr();
    // mmap returns page-aligned memory and start is a multiple of 4, so the
    // pointer satisfies u32 alignment; still assert in debug builds.
    debug_assert_eq!(base as usize % std::mem::align_of::<u32>(), 0);
    // SAFETY: the range is in bounds of a live read-only mapping, the
    // pointer is 4-aligned (checked above), u32 has no invalid bit
    // patterns, and the target is little-endian so the in-memory and
    // on-disk representations coincide.
    Some(unsafe { std::slice::from_raw_parts(base as *const u32, len) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("imin-mmap-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn maps_a_file_and_reads_it_back() {
        let path = temp_path("roundtrip");
        let words: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();
        let map = Mmap::map_file(&path).unwrap();
        assert_eq!(map.len(), bytes.len());
        assert_eq!(map.bytes(), &bytes[..]);
        if cfg!(target_endian = "little") {
            assert_eq!(u32_slice(&map, 0, words.len()).unwrap(), &words[..]);
            assert_eq!(u32_slice(&map, 8, 2).unwrap(), &words[2..4]);
        }
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_misaligned_and_out_of_range_views() {
        let path = temp_path("bounds");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[0u8; 64])
            .unwrap();
        let map = Mmap::map_file(&path).unwrap();
        assert!(u32_slice(&map, 1, 1).is_none(), "misaligned start");
        assert!(u32_slice(&map, 0, 17).is_none(), "past the end");
        assert!(u32_slice(&map, 64, 1).is_none(), "starts at the end");
        assert!(u32_slice(&map, usize::MAX - 2, 1).is_none(), "overflow");
        assert!(u32_slice(&map, 0, usize::MAX / 2).is_none(), "len overflow");
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_empty_files() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        assert!(Mmap::map_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
