//! # imin-core
//!
//! The influence-minimization (IMIN) algorithms of *"Minimizing the
//! Influence of Misinformation via Vertex Blocking"* (ICDE 2023).
//!
//! Given a directed graph `G` with independent-cascade probabilities, a seed
//! set `S` and a budget `b`, the IMIN problem asks for a blocker set
//! `B ⊆ V \ S`, `|B| ≤ b`, minimising the expected spread
//! `E(S, G[V \ B])`. The problem is NP-hard and APX-hard (Theorems 1 and 3),
//! so the crate implements the paper's heuristic algorithms together with
//! the baselines they are compared against:
//!
//! | Algorithm | Module | Paper |
//! |---|---|---|
//! | BaselineGreedy (greedy + Monte-Carlo, state of the art) | [`baseline_greedy`] | Alg. 1 |
//! | Spread-decrease estimation via sampled graphs + dominator trees | [`decrease`] | Alg. 2, Thm. 4–6 |
//! | AdvancedGreedy | [`advanced_greedy`] | Alg. 3 |
//! | GreedyReplace | [`greedy_replace`] | Alg. 4 |
//! | Rand / OutDegree / Degree / OutNeighbors / PageRank heuristics | [`heuristics`] | §VI-A |
//! | Exact blocker search (exhaustive) | [`exact_blocker`] | §VI-B "Exact" |
//! | Multi-seed → single-seed reduction | [`seed_merge`] | §V |
//! | Triggering-model extension | [`triggering`] | §V-E |
//!
//! The easiest entry point is [`ImninProblem`], which owns the unified-seed
//! reduction and exposes every algorithm behind a single [`Algorithm`] enum:
//!
//! ```
//! use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
//! use imin_graph::generators;
//! use imin_graph::VertexId;
//!
//! let graph = generators::preferential_attachment(300, 3, false, 0.1, 7).unwrap();
//! let problem = ImninProblem::new(&graph, vec![VertexId::new(0)]).unwrap();
//! let config = AlgorithmConfig::fast_for_tests();
//! let result = problem
//!     .solve(Algorithm::GreedyReplace, 5, &config)
//!     .unwrap();
//! assert!(result.blockers.len() <= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advanced_greedy;
pub mod baseline_greedy;
pub mod decrease;
pub mod error;
pub mod exact_blocker;
pub mod greedy_replace;
pub mod heuristics;
pub mod pool;
pub mod problem;
pub mod sampler;
pub mod seed_merge;
pub mod triggering;
pub mod types;

pub use error::IminError;
pub use pool::{PoolWorkspace, SamplePool};
pub use problem::{Algorithm, ImninProblem};
pub use types::{AlgorithmConfig, BlockerSelection, SelectionStats};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IminError>;
