//! # imin-core
//!
//! The influence-minimization (IMIN) algorithms of *"Minimizing the
//! Influence of Misinformation via Vertex Blocking"* (ICDE 2023).
//!
//! Given a directed graph `G` with independent-cascade probabilities, a seed
//! set `S` and a budget `b`, the IMIN problem asks for a blocker set
//! `B ⊆ V \ S`, `|B| ≤ b`, minimising the expected spread
//! `E(S, G[V \ B])`. The problem is NP-hard and APX-hard (Theorems 1 and 3),
//! so the crate implements the paper's heuristic algorithms together with
//! the baselines they are compared against:
//!
//! | Algorithm | Module | Paper |
//! |---|---|---|
//! | BaselineGreedy (greedy + Monte-Carlo, state of the art) | [`baseline_greedy`] | Alg. 1 |
//! | Spread-decrease estimation via sampled graphs + dominator trees | [`decrease`] | Alg. 2, Thm. 4–6 |
//! | AdvancedGreedy | [`advanced_greedy`] | Alg. 3 |
//! | GreedyReplace | [`greedy_replace`] | Alg. 4 |
//! | Rand / OutDegree / Degree / OutNeighbors / PageRank heuristics | [`heuristics`] | §VI-A |
//! | Exact blocker search (exhaustive) | [`exact_blocker`] | §VI-B "Exact" |
//! | Multi-seed → single-seed reduction | [`seed_merge`] | §V |
//! | Triggering-model extension | [`triggering`] | §V-E |
//!
//! ## The unified query API
//!
//! Every algorithm answers one question — *pick `b` blockers for a seed
//! set* — through one request type and one trait:
//!
//! * [`ContainmentRequest`] ([`request`]) — a validating builder holding
//!   the (multi-)seed set, the budget, a typed [`ForbiddenSet`] and an
//!   [`EvalBackend`]: `Fresh` self-sampling or `Pooled` re-rooting of a
//!   resident [`SamplePool`]. Callers choose amortisation, not function
//!   names.
//! * [`BlockerSolver`] ([`solver`]) — `solve(&graph, &request)`,
//!   implemented by every algorithm; [`AlgorithmKind`] is the registry
//!   mapping names (`"advanced"`, `"gr"`, `"outdegree"`, …) to solvers —
//!   the single string dispatch shared by the engine protocol, the CLI and
//!   the benchmarks.
//!
//! ```
//! use imin_core::{AlgorithmKind, ContainmentRequest};
//! use imin_graph::{generators, VertexId};
//!
//! let graph = generators::preferential_attachment(300, 3, false, 0.1, 7).unwrap();
//! let request = ContainmentRequest::builder(&graph)
//!     .seeds([VertexId::new(0), VertexId::new(2)]) // multi-seed everywhere
//!     .budget(5)
//!     .fresh(200, 0xBEEF, 1)
//!     .build()
//!     .unwrap();
//! let solver = "gr".parse::<AlgorithmKind>().unwrap().solver();
//! let result = solver.solve(&graph, &request).unwrap();
//! assert!(result.blockers.len() <= 5);
//! ```
//!
//! ## Intervention families
//!
//! Blocking vertices is the paper's question, but the request carries a
//! generalised [`Intervention`] ([`intervene`]): `BlockVertices` (the
//! default — requests are byte-identical to before the field existed),
//! `BlockEdges` (spend the budget deleting live edges, exact
//! single-feeder dominator credit per pooled realisation), and
//! `Prebunk { alpha }` (rescale the chosen vertices' acceptance
//! probability by `alpha ∈ [0, 1]` via deterministic coin-threshold
//! thinning — `alpha = 0.0` coincides with vertex blocking and
//! `alpha = 1.0` evaluates byte-identically to no intervention). All
//! three families are estimated exactly against the same pooled
//! realisations, so their `estimated_spread` values are directly
//! comparable. Solvers that cannot answer a family reject it with a
//! typed [`IminError::InterventionUnsupported`].
//!
//! ```
//! use imin_core::{AlgorithmKind, ContainmentRequest, Intervention, SamplePool};
//! use imin_graph::{generators, VertexId};
//!
//! let graph = generators::preferential_attachment(300, 3, false, 0.1, 7).unwrap();
//! let pool = SamplePool::build(&graph, 200, 42).unwrap();
//! let request = ContainmentRequest::builder(&graph)
//!     .seeds([VertexId::new(0)])
//!     .budget(3)
//!     .intervention(Intervention::BlockEdges) // or Prebunk { alpha: 0.25 }
//!     .pooled(&pool)
//!     .build()
//!     .unwrap();
//! let solver = AlgorithmKind::AdvancedGreedy.solver();
//! let selection = solver.solve(&graph, &request).unwrap();
//! assert!(selection.blockers.is_empty()); // edge budgets buy edges…
//! assert!(selection.blocked_edges.len() <= 3); // …reported here instead
//! ```
//!
//! [`ImninProblem`] remains the facade for the paper's unified-seed
//! reduction (§V) and Monte-Carlo evaluation; its [`Algorithm`] enum is the
//! same registry. The historical free functions (`advanced_greedy`,
//! `greedy_replace_with_pool`, `random_blockers`, …) survive as thin shims
//! over the request API, parity-tested byte-identical in
//! `tests/request_api.rs`:
//!
//! ```
//! use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
//! use imin_graph::generators;
//! use imin_graph::VertexId;
//!
//! let graph = generators::preferential_attachment(300, 3, false, 0.1, 7).unwrap();
//! let problem = ImninProblem::new(&graph, vec![VertexId::new(0)]).unwrap();
//! let config = AlgorithmConfig::fast_for_tests();
//! let result = problem
//!     .solve(Algorithm::GreedyReplace, 5, &config)
//!     .unwrap();
//! assert!(result.blockers.len() <= 5);
//! ```

// `deny` rather than `forbid`: the mmap module scopes an `allow` around the
// two audited unsafe operations of the zero-copy snapshot reader; every
// other module stays safe-only.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod advanced_greedy;
pub mod arena;
pub mod baseline_greedy;
pub mod decrease;
pub mod error;
pub mod exact_blocker;
pub mod greedy_replace;
pub mod heuristics;
pub mod intervene;
pub mod mmap;
pub mod pool;
pub mod problem;
pub mod request;
pub mod ris;
pub mod sampler;
pub mod seed_merge;
pub mod snapshot;
pub mod solver;
pub mod triggering;
pub mod types;

pub use arena::ArenaKind;
pub use error::IminError;
pub use intervene::{
    pooled_edge_greedy_in, pooled_prebunk_decrease, pooled_prebunk_greedy_in, Intervention,
};
pub use pool::{PoolWorkspace, SamplePool};
pub use problem::{Algorithm, ImninProblem};
pub use request::{ContainmentRequest, ContainmentRequestBuilder, EvalBackend, ForbiddenSet};
pub use ris::{sketch_greedy_in, RisGreedy, SketchPool};
pub use snapshot::{RestoredSnapshot, SnapshotError, SnapshotHeader, SnapshotSummary};
pub use solver::{AlgorithmKind, BlockerSolver};
pub use types::{AlgorithmConfig, BlockerSelection, SelectionStats};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IminError>;
