//! Seed-rooted live-edge sampling (Definition 4, restricted to the part of
//! the graph the seed can actually reach).
//!
//! Algorithm 2 needs, per sample, the sampled graph *and* its dominator
//! tree. Materialising every sample over the full vertex set would cost
//! `O(n)` per sample even when the cascade only reaches a handful of
//! vertices, so the sampler produces a **compact** sample: the reached
//! vertices are renumbered `0..k` (the source is local vertex 0) and the
//! adjacency is expressed in local ids. All per-sample work — sampling,
//! dominator tree, subtree sizes — is then proportional to the size of the
//! sampled cascade, which is what makes AdvancedGreedy orders of magnitude
//! faster than the Monte-Carlo baseline on large graphs (Figures 7 and 8).
//!
//! The sample adjacency is stored **flat**, CSR-style: one `targets` arena
//! holding every live edge plus an `offsets` array delimiting each local
//! vertex's slice. Because the BFS discovers edges strictly in order of the
//! expanding vertex, the arena is filled append-only and a sample never
//! allocates once the buffers have grown to the cascade high-water mark —
//! the property the whole `budget × θ` hot loop of Algorithms 3 and 4 is
//! built on.

use imin_diffusion::triggering::TriggeringModel;
use imin_graph::{DiGraph, VertexId, THRESHOLD_ALWAYS};
use rand::rngs::SmallRng;
use rand::RngCore;

// Sample-pool construction is the reusable, query-independent counterpart of
// the rooted samplers below; it lives in [`crate::pool`] and is re-exported
// here so `sampler::SamplePool::build(graph, θ, seed)` is the one-stop API
// for materialising samples.
pub use crate::pool::{PoolWorkspace, SamplePool};

const UNMAPPED: u32 = u32::MAX;
/// Sentinel stored at local id 0 of a multi-seed sample: a virtual root
/// standing in for the unified seed of §V (it has no global id).
const VIRTUAL_ROOT: u32 = u32::MAX;

/// A live-edge sample restricted to the vertices reachable from the source,
/// with vertices renumbered into dense local ids and the adjacency stored in
/// a flat CSR arena.
///
/// The buffer is designed for reuse: [`CompactSample::reset`] clears the
/// previous sample in time proportional to its size, not to the graph size,
/// and steady-state sampling performs no heap allocation at all.
#[derive(Clone, Debug)]
pub struct CompactSample {
    /// Global vertex id of each local vertex; `vertices[0]` is the source.
    vertices: Vec<u32>,
    /// CSR offsets: the live out-edges of local vertex `i` are
    /// `targets[offsets[i] .. offsets[i + 1]]`. `offsets[0]` is always 0 and
    /// one entry is appended per *sealed* vertex.
    offsets: Vec<u32>,
    /// Flat arena of live out-edges in local ids.
    targets: Vec<u32>,
    /// Global → local mapping (sentinel [`UNMAPPED`] = not reached).
    local_of: Vec<u32>,
    /// Number of local vertices whose adjacency has been sealed; during a
    /// BFS this is exactly the local id of the vertex being expanded.
    sealed: u32,
}

impl Default for CompactSample {
    fn default() -> Self {
        Self::new(0)
    }
}

impl CompactSample {
    /// Creates an empty sample buffer for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        CompactSample {
            vertices: Vec::new(),
            offsets: vec![0],
            targets: Vec::new(),
            local_of: vec![UNMAPPED; n],
            sealed: 0,
        }
    }

    /// Number of vertices reached by this sample (`σ(s, g)` of Table II).
    pub fn num_reached(&self) -> usize {
        self.vertices.len()
    }

    /// Number of live edges recorded by this sample.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Global ids of the reached vertices (local id = position; the source
    /// is first).
    pub fn vertices(&self) -> &[u32] {
        &self.vertices
    }

    /// CSR offsets of the live adjacency (`num_reached() + 1` entries once
    /// the sample is complete).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Flat live-edge arena in local ids.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Live out-edges of the local vertex `local`, in local ids.
    ///
    /// # Panics
    /// Panics if `local` is not a sealed local vertex of this sample.
    pub fn neighbors(&self, local: u32) -> &[u32] {
        let lo = self.offsets[local as usize] as usize;
        let hi = self.offsets[local as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Local id of a global vertex, if it was reached.
    pub fn local_id(&self, global: VertexId) -> Option<u32> {
        match self.local_of.get(global.index()) {
            Some(&l) if l != UNMAPPED => Some(l),
            _ => None,
        }
    }

    /// Clears the previous sample and prepares for a graph with `n`
    /// vertices. Cost is proportional to the previous sample size (plus a
    /// one-off resize if the graph grew).
    pub fn reset(&mut self, n: usize) {
        for &v in &self.vertices {
            // The virtual root of a multi-seed sample has no global slot.
            if v != VIRTUAL_ROOT {
                self.local_of[v as usize] = UNMAPPED;
            }
        }
        if self.local_of.len() < n {
            self.local_of.resize(n, UNMAPPED);
        }
        self.vertices.clear();
        self.offsets.clear();
        self.offsets.push(0);
        self.targets.clear();
        self.sealed = 0;
    }

    /// Installs a virtual root as local vertex 0 of a freshly reset sample:
    /// the stand-in for the unified seed of §V when a sample is rooted at a
    /// whole seed set. The root has no global id ([`Self::local_id`] never
    /// resolves to it) and must be given its seed edges and sealed by the
    /// caller.
    fn begin_virtual_root(&mut self) {
        debug_assert!(self.vertices.is_empty(), "virtual root must come first");
        self.vertices.push(VIRTUAL_ROOT);
    }

    /// Interns a global vertex, returning its local id (allocating one if it
    /// has not been seen in this sample yet).
    fn intern(&mut self, global: u32) -> u32 {
        let slot = self.local_of[global as usize];
        if slot != UNMAPPED {
            return slot;
        }
        let local = self.vertices.len() as u32;
        self.local_of[global as usize] = local;
        self.vertices.push(global);
        local
    }

    /// Records a live edge from the vertex currently being expanded (the
    /// next unsealed local vertex) to `to_local`.
    fn push_edge(&mut self, to_local: u32) {
        self.targets.push(to_local);
    }

    /// Seals the adjacency of the vertex currently being expanded. The BFS
    /// must seal vertices in local-id order, which it does for free because
    /// it expands the discovery queue front to back.
    fn seal_vertex(&mut self) {
        debug_assert!((self.sealed as usize) < self.vertices.len());
        self.offsets.push(self.targets.len() as u32);
        self.sealed += 1;
    }
}

/// A source of live-edge samples rooted at the seed. The IC implementation
/// is [`IcLiveEdgeSampler`]; [`TriggeringSampler`] covers the general
/// triggering model of §V-E.
pub trait SpreadSampler: Send + Sync {
    /// Short identifier used in logs and experiment output.
    fn label(&self) -> &'static str;

    /// Draws one sample rooted at `source`, skipping blocked vertices, into
    /// `out` (which is reset first).
    fn sample(
        &self,
        graph: &DiGraph,
        source: VertexId,
        blocked: &[bool],
        rng: &mut SmallRng,
        out: &mut CompactSample,
    );

    /// Draws one sample rooted at a whole seed set: local vertex 0 is a
    /// virtual root with one deterministic edge per seed (the unified seed
    /// of §V, built without materialising a merged graph), and the live-edge
    /// BFS proceeds from the seeds exactly as [`Self::sample`] does from the
    /// source. Callers must pass deduplicated, unblocked, in-range seeds.
    ///
    /// Single-seed callers should keep using [`Self::sample`], whose RNG
    /// stream and local numbering are the historical (parity-protected)
    /// ones.
    fn sample_multi(
        &self,
        graph: &DiGraph,
        seeds: &[VertexId],
        blocked: &[bool],
        rng: &mut SmallRng,
        out: &mut CompactSample,
    );
}

/// Live-edge sampler for the independent cascade model: every out-edge of a
/// reached vertex is kept independently with its propagation probability
/// (Definition 4), and only the part reachable from the source is explored.
#[derive(Clone, Copy, Debug, Default)]
pub struct IcLiveEdgeSampler;

/// The live-edge BFS shared by the single- and multi-seed IC samplers:
/// expands every unsealed vertex starting at local id `head`, flipping one
/// coin per out-edge of each reached vertex.
///
/// Each coin is decided against the graph's precomputed integer threshold:
/// `(next_u64() >> 11) < threshold` is bit-identical to `gen_bool(p)` (see
/// [`imin_graph::coin_threshold`]) but costs one u64 comparison instead of
/// float arithmetic. Deterministic edges (threshold 0 / ALWAYS) skip the RNG
/// exactly as the probability branches used to, so streams are unchanged.
fn ic_expand_from(
    graph: &DiGraph,
    blocked: &[bool],
    rng: &mut SmallRng,
    out: &mut CompactSample,
    mut head: usize,
) {
    while head < out.num_reached() {
        let u_global = out.vertices[head];
        head += 1;
        let u = VertexId::from_raw(u_global);
        let targets = graph.out_neighbors(u);
        let thresholds = graph.out_coin_thresholds(u);
        for (&t, &threshold) in targets.iter().zip(thresholds) {
            if blocked[t as usize] {
                continue;
            }
            let live = if threshold == THRESHOLD_ALWAYS {
                true
            } else if threshold == 0 {
                false
            } else {
                (rng.next_u64() >> 11) < threshold
            };
            if !live {
                continue;
            }
            let t_local = out.intern(t);
            out.push_edge(t_local);
        }
        out.seal_vertex();
    }
}

impl SpreadSampler for IcLiveEdgeSampler {
    fn label(&self) -> &'static str {
        "IC"
    }

    fn sample(
        &self,
        graph: &DiGraph,
        source: VertexId,
        blocked: &[bool],
        rng: &mut SmallRng,
        out: &mut CompactSample,
    ) {
        out.reset(graph.num_vertices());
        if blocked[source.index()] {
            return;
        }
        let source_local = out.intern(source.raw());
        debug_assert_eq!(source_local, 0);
        // BFS over live edges; coins are flipped for every out-edge of every
        // reached vertex exactly once, so the sample is a faithful draw from
        // the live-edge distribution restricted to the reachable region.
        ic_expand_from(graph, blocked, rng, out, 0);
    }

    fn sample_multi(
        &self,
        graph: &DiGraph,
        seeds: &[VertexId],
        blocked: &[bool],
        rng: &mut SmallRng,
        out: &mut CompactSample,
    ) {
        out.reset(graph.num_vertices());
        out.begin_virtual_root();
        // Virtual root → every seed: the unified-seed edges of §V, all with
        // probability 1, so no coins are consumed for them.
        for &s in seeds {
            let local = out.intern(s.raw());
            out.push_edge(local);
        }
        out.seal_vertex();
        ic_expand_from(graph, blocked, rng, out, 1);
    }
}

/// Live-edge sampler for the general triggering model (§V-E): a full
/// triggering sample of the graph is drawn (cost `O(m)` per sample) and then
/// restricted to the region reachable from the source.
///
/// This is intentionally simpler — and slower per sample — than the IC
/// sampler; the triggering extension is evaluated on moderate graph sizes.
#[derive(Clone, Copy, Debug, Default)]
pub struct TriggeringSampler<M>(pub M);

impl<M: TriggeringModel> SpreadSampler for TriggeringSampler<M> {
    fn label(&self) -> &'static str {
        "TRIGGERING"
    }

    fn sample(
        &self,
        graph: &DiGraph,
        source: VertexId,
        blocked: &[bool],
        rng: &mut SmallRng,
        out: &mut CompactSample,
    ) {
        out.reset(graph.num_vertices());
        if blocked[source.index()] {
            return;
        }
        let full = imin_diffusion::triggering::sample_triggering_live_edges(graph, &self.0, rng);
        let source_local = out.intern(source.raw());
        debug_assert_eq!(source_local, 0);
        expand_triggering_from(&full, blocked, out, 0);
    }

    fn sample_multi(
        &self,
        graph: &DiGraph,
        seeds: &[VertexId],
        blocked: &[bool],
        rng: &mut SmallRng,
        out: &mut CompactSample,
    ) {
        out.reset(graph.num_vertices());
        let full = imin_diffusion::triggering::sample_triggering_live_edges(graph, &self.0, rng);
        out.begin_virtual_root();
        for &s in seeds {
            let local = out.intern(s.raw());
            out.push_edge(local);
        }
        out.seal_vertex();
        expand_triggering_from(&full, blocked, out, 1);
    }
}

/// BFS over a pre-drawn full-graph triggering sample, starting at local id
/// `head` (0 for a plain rooted sample, 1 past a virtual root).
fn expand_triggering_from(
    full: &[Vec<u32>],
    blocked: &[bool],
    out: &mut CompactSample,
    mut head: usize,
) {
    while head < out.num_reached() {
        let u_global = out.vertices[head];
        head += 1;
        for &t in &full[u_global as usize] {
            if blocked[t as usize] {
                continue;
            }
            let t_local = out.intern(t);
            out.push_edge(t_local);
        }
        out.seal_vertex();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_diffusion::triggering::IcTriggering;
    use rand::SeedableRng;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn deterministic_graph() -> DiGraph {
        // 0 -> 1 -> 2, 0 -> 3; vertex 4 unreachable.
        DiGraph::from_edges(
            5,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(0), vid(3), 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn deterministic_sample_reaches_everything_reachable() {
        let g = deterministic_graph();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sample = CompactSample::new(g.num_vertices());
        IcLiveEdgeSampler.sample(&g, vid(0), &[false; 5], &mut rng, &mut sample);
        assert_eq!(sample.num_reached(), 4);
        assert_eq!(sample.vertices()[0], 0);
        assert!(sample.local_id(vid(4)).is_none());
        assert!(sample.local_id(vid(2)).is_some());
        // Edges are expressed in local ids and stay within bounds.
        assert_eq!(sample.offsets().len(), sample.num_reached() + 1);
        for local in 0..sample.num_reached() as u32 {
            for &t in sample.neighbors(local) {
                assert!((t as usize) < sample.num_reached());
                assert_ne!(t, local, "no self loops in samples");
            }
        }
    }

    #[test]
    fn csr_arena_is_consistent() {
        let g = deterministic_graph();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sample = CompactSample::new(g.num_vertices());
        IcLiveEdgeSampler.sample(&g, vid(0), &[false; 5], &mut rng, &mut sample);
        // Offsets are monotone, start at 0 and end at the arena length.
        let offsets = sample.offsets();
        assert_eq!(offsets[0], 0);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*offsets.last().unwrap() as usize, sample.num_edges());
        // The deterministic graph has 3 live edges in any sample.
        assert_eq!(sample.num_edges(), 3);
        // Per-vertex slices partition the arena.
        let total: usize = (0..sample.num_reached() as u32)
            .map(|l| sample.neighbors(l).len())
            .sum();
        assert_eq!(total, sample.num_edges());
    }

    #[test]
    fn blocked_vertices_are_never_reached() {
        let g = deterministic_graph();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sample = CompactSample::new(g.num_vertices());
        let mut blocked = vec![false; 5];
        blocked[1] = true;
        IcLiveEdgeSampler.sample(&g, vid(0), &blocked, &mut rng, &mut sample);
        assert_eq!(sample.num_reached(), 2); // 0 and 3
        assert!(sample.local_id(vid(1)).is_none());
        assert!(sample.local_id(vid(2)).is_none());
        // A blocked source yields an empty sample.
        let mut blocked_src = vec![false; 5];
        blocked_src[0] = true;
        IcLiveEdgeSampler.sample(&g, vid(0), &blocked_src, &mut rng, &mut sample);
        assert_eq!(sample.num_reached(), 0);
    }

    #[test]
    fn sample_buffer_is_reusable() {
        let g = deterministic_graph();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sample = CompactSample::new(g.num_vertices());
        for _ in 0..10 {
            IcLiveEdgeSampler.sample(&g, vid(0), &[false; 5], &mut rng, &mut sample);
            assert_eq!(sample.num_reached(), 4);
            assert_eq!(sample.num_edges(), 3);
        }
        // Reuse with a different source still yields a source-first sample.
        IcLiveEdgeSampler.sample(&g, vid(1), &[false; 5], &mut rng, &mut sample);
        assert_eq!(sample.num_reached(), 2);
        assert_eq!(sample.vertices()[0], 1);
        assert_eq!(sample.local_id(vid(1)), Some(0));
    }

    #[test]
    fn average_reached_matches_expected_spread() {
        // 0 -> 1 with p = 0.4: average reached over many samples ≈ 1.4.
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 0.4)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sample = CompactSample::new(2);
        let rounds = 20_000;
        let total: usize = (0..rounds)
            .map(|_| {
                IcLiveEdgeSampler.sample(&g, vid(0), &[false; 2], &mut rng, &mut sample);
                sample.num_reached()
            })
            .sum();
        let mean = total as f64 / rounds as f64;
        assert!((mean - 1.4).abs() < 0.02, "mean reached {mean}");
    }

    #[test]
    fn parallel_edges_into_same_vertex_are_both_recorded() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: vertex 3 must keep both in-edges in
        // the sample so the dominator of 3 is the source, not 1 or 2.
        let g = DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(0), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
                (vid(2), vid(3), 1.0),
            ],
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut sample = CompactSample::new(4);
        IcLiveEdgeSampler.sample(&g, vid(0), &[false; 4], &mut rng, &mut sample);
        let three_local = sample.local_id(vid(3)).unwrap();
        let in_edges_of_three = sample
            .targets()
            .iter()
            .filter(|&&t| t == three_local)
            .count();
        assert_eq!(in_edges_of_three, 2);
    }

    #[test]
    fn multi_seed_sample_uses_a_virtual_root() {
        // Two disjoint chains: 0 -> 1 and 2 -> 3.
        let g = DiGraph::from_edges(4, vec![(vid(0), vid(1), 1.0), (vid(2), vid(3), 1.0)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sample = CompactSample::new(4);
        IcLiveEdgeSampler.sample_multi(&g, &[vid(0), vid(2)], &[false; 4], &mut rng, &mut sample);
        // Virtual root + all four reachable vertices.
        assert_eq!(sample.num_reached(), 5);
        assert_eq!(sample.neighbors(0).len(), 2, "one root edge per seed");
        assert!(sample.local_id(vid(0)).is_some());
        assert!(sample.local_id(vid(3)).is_some());
        // Blocked vertices are still skipped downstream of the seeds.
        let mut blocked = vec![false; 4];
        blocked[1] = true;
        IcLiveEdgeSampler.sample_multi(&g, &[vid(0), vid(2)], &blocked, &mut rng, &mut sample);
        assert_eq!(sample.num_reached(), 4); // root, 0, 2, 3
        assert!(sample.local_id(vid(1)).is_none());
        // Buffer reuse back to a single-source sample (sentinel unmapped).
        IcLiveEdgeSampler.sample(&g, vid(0), &[false; 4], &mut rng, &mut sample);
        assert_eq!(sample.num_reached(), 2);
        assert_eq!(sample.vertices()[0], 0);
    }

    #[test]
    fn triggering_sampler_matches_ic_on_average() {
        let g = DiGraph::from_edges(3, vec![(vid(0), vid(1), 0.5), (vid(1), vid(2), 0.5)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let sampler = TriggeringSampler(IcTriggering);
        assert_eq!(sampler.label(), "TRIGGERING");
        let mut sample = CompactSample::new(3);
        let rounds = 20_000;
        let total: usize = (0..rounds)
            .map(|_| {
                sampler.sample(&g, vid(0), &[false; 3], &mut rng, &mut sample);
                sample.num_reached()
            })
            .sum();
        let mean = total as f64 / rounds as f64;
        assert!((mean - 1.75).abs() < 0.03, "triggering mean {mean}");
    }
}
