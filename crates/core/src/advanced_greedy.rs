//! The AdvancedGreedy algorithm (Algorithm 3).
//!
//! AdvancedGreedy keeps the greedy selection loop of the baseline but
//! replaces the per-candidate Monte-Carlo evaluation with one call to
//! `DecreaseESComputation` (Algorithm 2) per round: θ live-edge samples are
//! drawn, their dominator trees price every candidate simultaneously, and
//! the candidate with the largest estimated decrease is blocked. The cost
//! per round drops from `O(n · r · m)` to `O(θ · m · α(m, n))` without
//! changing the greedy choices in expectation (§V-C, "Comparison with
//! Baseline").
//!
//! The preferred entry point is the [`AdvancedGreedy`] solver behind a
//! [`crate::ContainmentRequest`]: one call shape for any seed-set size and
//! either evaluation backend (`Fresh` self-sampling per round, or `Pooled`
//! re-rooting of a resident [`SamplePool`]). The free functions below are
//! thin shims kept for source compatibility and are parity-tested
//! byte-identical to the solver.

use crate::decrease::{decrease_es_multi_in, DecreaseConfig, DecreaseWorkspace};
use crate::pool::{pooled_advanced_greedy_in, with_pool_workspace, PoolWorkspace, SamplePool};
use crate::request::{shim_request_from_config, ContainmentRequest, EvalBackend};
use crate::sampler::{IcLiveEdgeSampler, SpreadSampler};
use crate::solver::{AlgorithmKind, BlockerSolver};
use crate::types::{AlgorithmConfig, BlockerSelection, SelectionStats};
use crate::Result;
use imin_graph::{DiGraph, VertexId};
use std::time::Instant;

/// Algorithm 3 behind the unified request API (`AG` in the figures).
///
/// `Fresh` requests redraw θ samples per greedy round (the historical
/// behaviour); `Pooled` requests re-root a resident pool instead, with
/// answers bit-identical at any thread count (see [`crate::pool`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct AdvancedGreedy;

impl BlockerSolver for AdvancedGreedy {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::AdvancedGreedy
    }

    fn solve(&self, graph: &DiGraph, request: &ContainmentRequest<'_>) -> Result<BlockerSelection> {
        request.ensure_graph(graph)?;
        if !matches!(request.intervention(), crate::Intervention::BlockVertices) {
            // Edge blocking and prebunking run on the pooled dominator-tree
            // machinery; the plain-greedy flavour takes no replacement pass.
            return crate::intervene::solve_pooled_intervention(self.kind().name(), request, false);
        }
        match *request.backend() {
            EvalBackend::Fresh {
                theta,
                seed,
                threads,
            } => {
                fresh_advanced_greedy_with(&IcLiveEdgeSampler, graph, request, theta, seed, threads)
            }
            EvalBackend::Pooled { pool, threads } => with_pool_workspace(|workspace| {
                pooled_advanced_greedy_in(
                    pool,
                    request.seeds(),
                    request.forbidden().mask(),
                    request.budget(),
                    threads,
                    workspace,
                )
            }),
            ref other => Err(crate::IminError::BackendUnsupported {
                algorithm: self.kind().name(),
                backend: other.label(),
            }),
        }
    }
}

/// The `Fresh`-backend greedy loop, generic over the sample source (IC or
/// triggering, §V-E) and over the seed-set size: every round prices
/// candidates with [`decrease_es_multi_in`], which takes the historical
/// single-source path for one seed and virtual-root re-rooting for several.
pub(crate) fn fresh_advanced_greedy_with<S: SpreadSampler + ?Sized>(
    sampler: &S,
    graph: &DiGraph,
    request: &ContainmentRequest<'_>,
    theta: usize,
    seed: u64,
    threads: usize,
) -> Result<BlockerSelection> {
    let start = Instant::now();
    let n = graph.num_vertices();
    let budget = request.budget();
    let mut blocked = vec![false; n];
    let mut blockers = Vec::with_capacity(budget);
    let mut stats = SelectionStats::default();
    let mut estimated_spread = None;
    // One workspace for the whole run: every round's `budget × θ` sampling
    // loop reuses the same per-thread sample arenas and dominator-tree
    // scratch, so steady-state rounds never touch the allocator.
    let mut workspace = DecreaseWorkspace::new();

    for round in 0..budget {
        let decrease_cfg = DecreaseConfig {
            theta,
            threads,
            // A fresh sample pool per round (deterministically derived).
            seed: seed.wrapping_add(round as u64),
        };
        let estimate = decrease_es_multi_in(
            sampler,
            graph,
            request.seeds(),
            &blocked,
            &decrease_cfg,
            &mut workspace,
        )?;
        stats.samples_drawn += estimate.samples;

        let chosen = estimate.best_candidate(|v| !blocked[v.index()] && request.is_candidate(v));
        let Some(chosen) = chosen else {
            estimated_spread = Some(estimate.average_reached);
            break;
        };
        // Spread after this block ≈ spread before it minus the estimated
        // decrease of the chosen vertex (both from the same sample pool).
        estimated_spread = Some(estimate.average_reached - estimate.delta[chosen.index()]);
        blocked[chosen.index()] = true;
        blockers.push(chosen);
        stats.rounds = round + 1;
    }

    stats.elapsed = start.elapsed();
    Ok(BlockerSelection {
        blockers,
        estimated_spread,
        blocked_edges: Vec::new(),
        stats,
    })
}

/// Runs AdvancedGreedy against a **borrowed resident sample pool** instead
/// of self-sampling — the `Pooled` backend of [`AdvancedGreedy`] as a free
/// function. Results are bit-identical at any `threads` value (see
/// [`crate::pool`]).
///
/// # Errors
/// Returns an error on a zero budget, an invalid seed set, or a
/// wrong-length forbidden mask.
pub fn advanced_greedy_with_pool(
    pool: &SamplePool,
    seeds: &[VertexId],
    forbidden: &[bool],
    budget: usize,
    threads: usize,
) -> Result<BlockerSelection> {
    pooled_advanced_greedy_in(
        pool,
        seeds,
        forbidden,
        budget,
        threads,
        &mut PoolWorkspace::new(),
    )
}

/// Runs AdvancedGreedy with the standard IC live-edge sampler — the
/// single-source `Fresh` shim over [`AdvancedGreedy`].
pub fn advanced_greedy(
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<BlockerSelection> {
    advanced_greedy_with(&IcLiveEdgeSampler, graph, source, forbidden, budget, config)
}

/// Runs AdvancedGreedy with an arbitrary sample source (IC or triggering,
/// §V-E).
///
/// `forbidden[v] = true` marks vertices that may never be blocked; the
/// source is always excluded. `estimated_spread` is the sampling estimate of
/// the spread remaining after blocking, counting the source as one active
/// vertex.
///
/// # Errors
/// Returns an error on a zero budget, zero θ, an invalid source, or a
/// wrong-length forbidden mask.
pub fn advanced_greedy_with<S: SpreadSampler + ?Sized>(
    sampler: &S,
    graph: &DiGraph,
    source: VertexId,
    forbidden: &[bool],
    budget: usize,
    config: &AlgorithmConfig,
) -> Result<BlockerSelection> {
    let request = shim_request_from_config(graph, &[source], forbidden, budget, config)?;
    fresh_advanced_greedy_with(
        sampler,
        graph,
        &request,
        config.theta,
        config.seed,
        config.threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_greedy::baseline_greedy;
    use crate::IminError;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn config() -> AlgorithmConfig {
        AlgorithmConfig::fast_for_tests().with_theta(400)
    }

    fn hub_graph() -> DiGraph {
        DiGraph::from_edges(
            6,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(1), vid(3), 1.0),
                (vid(1), vid(4), 1.0),
                (vid(0), vid(5), 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn picks_the_obvious_hub_first() {
        let g = hub_graph();
        let sel = advanced_greedy(&g, vid(0), &[false; 6], 2, &config()).unwrap();
        assert_eq!(sel.blockers[0], vid(1));
        assert_eq!(sel.blockers[1], vid(5));
        assert!((sel.estimated_spread.unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(sel.stats.rounds, 2);
        assert_eq!(sel.stats.samples_drawn, 2 * 400);
    }

    #[test]
    fn pool_backed_entry_point_agrees_on_deterministic_graphs() {
        let g = hub_graph();
        let pool = SamplePool::build(&g, 64, 9).unwrap();
        let pooled = advanced_greedy_with_pool(&pool, &[vid(0)], &[false; 6], 2, 1).unwrap();
        let classic = advanced_greedy(&g, vid(0), &[false; 6], 2, &config()).unwrap();
        assert_eq!(pooled.blockers, classic.blockers);
        assert!((pooled.estimated_spread.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matches_baseline_greedy_on_deterministic_graphs() {
        let g = hub_graph();
        let ag = advanced_greedy(&g, vid(0), &[false; 6], 3, &config()).unwrap();
        let bg = baseline_greedy(
            &g,
            vid(0),
            &[false; 6],
            3,
            &AlgorithmConfig::fast_for_tests().with_mcs_rounds(300),
        )
        .unwrap();
        assert_eq!(ag.blockers[0], bg.blockers[0]);
        // Spreads after blocking agree (both exact on a deterministic graph).
        assert!((ag.estimated_spread.unwrap() - bg.estimated_spread.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn forbidden_and_exhausted_candidates() {
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 1.0)]).unwrap();
        let mut forbidden = vec![false; 2];
        forbidden[1] = true;
        let sel = advanced_greedy(&g, vid(0), &forbidden, 3, &config()).unwrap();
        assert!(sel.is_empty(), "the only candidate is forbidden");
        assert!((sel.estimated_spread.unwrap() - 2.0).abs() < 1e-9);

        let sel = advanced_greedy(&g, vid(0), &[false; 2], 5, &config()).unwrap();
        assert_eq!(sel.blockers, vec![vid(1)]);
    }

    #[test]
    fn probabilistic_graph_prefers_high_impact_blocker() {
        // 0 -> 1 (p=1) -> many, 0 -> 2 (p=0.05) -> many: blocking 1 is far
        // better even though both have the same out-degree downstream.
        let mut edges = vec![(vid(0), vid(1), 1.0), (vid(0), vid(2), 0.05)];
        for i in 0..6 {
            edges.push((vid(1), vid(3 + i), 1.0));
            edges.push((vid(2), vid(9 + i), 1.0));
        }
        let g = DiGraph::from_edges(15, edges).unwrap();
        let sel = advanced_greedy(&g, vid(0), &[false; 15], 1, &config()).unwrap();
        assert_eq!(sel.blockers, vec![vid(1)]);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = hub_graph();
        assert!(matches!(
            advanced_greedy(&g, vid(0), &[false; 6], 0, &config()),
            Err(IminError::ZeroBudget)
        ));
        assert!(advanced_greedy(&g, vid(9), &[false; 6], 1, &config()).is_err());
        let zero_theta = AlgorithmConfig::fast_for_tests().with_theta(0);
        assert!(advanced_greedy(&g, vid(0), &[false; 6], 1, &zero_theta).is_err());
    }
}
