//! Pluggable storage backends for [`crate::SamplePool`] live-edge arenas.
//!
//! A pool holds θ live-edge realisations of one graph. How those
//! realisations are laid out in memory is independent of how queries read
//! them, so this module factors the storage into a `PoolArena` with two
//! backings, each of which can live on the heap or directly inside a mapped
//! snapshot file:
//!
//! * **Raw** — one consolidated CSR: all per-sample offset arrays
//!   concatenated at a fixed `n + 1` stride, all target arrays concatenated
//!   behind a `θ + 1` entry start table. Bit-compatible with the historical
//!   per-sample `Vec` layout (each sample's offsets are local, starting at
//!   0), two allocations total instead of `2 × θ`, and page-aligned when
//!   written to a v2 snapshot so an mmap restore can serve the slices with
//!   zero copies.
//! * **Compressed** — per sample, the smaller of two encodings:
//!   *delta-varint* (per vertex: live out-degree, first target, then
//!   `gap − 1` deltas, all LEB128, with a byte-offset block index every
//!   `VARINT_BLOCK` vertices for random access) or a *dense bitset* over
//!   the graph's edge slots (one bit per graph edge, decoded by walking the
//!   graph's own CSR). Weighted-cascade realisations keep ≈ `n` of `m`
//!   edges live, which makes the bitset ≈ `m / 8` bytes — far below the
//!   `≈ 8n` bytes of the raw layout — while sparse realisations fall back
//!   to varint.
//!
//! Queries never materialise a decoded sample: `SampleView::for_each_live`
//! streams the live out-neighbours of one vertex straight into the BFS,
//! whatever the backing, with zero steady-state allocation.
//!
//! Mapped arenas defer per-sample structural validation to first touch
//! (eager validation would fault in every page and defeat the point of
//! mapping); a sample that fails validation panics with a diagnostic, which
//! the serving layer catches and surfaces as an internal error.

use crate::mmap::{u32_slice, Mmap};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Vertices per varint block-index entry. Smaller blocks cost index bytes,
/// larger blocks cost skip work per random access; 16 keeps the index below
/// 7 % of `n × 4` bytes while bounding a lookup to 15 skipped vertices.
pub(crate) const VARINT_BLOCK: usize = 16;

/// Sample encoding tags stored in compressed directories (and snapshots).
pub(crate) const MODE_VARINT: u8 = 0;
pub(crate) const MODE_BITSET: u8 = 1;

/// The storage backing of a pool, as reported by stats and benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArenaKind {
    /// Heap-resident consolidated raw-u32 CSR (the write path of sampling).
    Raw,
    /// Heap-resident delta-varint / bitset compressed arenas.
    Compressed,
    /// Raw CSR served zero-copy out of a mapped v2 snapshot.
    MappedRaw,
    /// Compressed arenas decoded directly from a mapped v2 snapshot.
    MappedCompressed,
}

impl ArenaKind {
    /// Stable lowercase token used on the wire (`STATS pool_arena=…`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ArenaKind::Raw => "raw",
            ArenaKind::Compressed => "compressed",
            ArenaKind::MappedRaw => "mmap-raw",
            ArenaKind::MappedCompressed => "mmap-compressed",
        }
    }
}

impl std::fmt::Display for ArenaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Owned or mapped `u32` words.
#[derive(Clone, Debug)]
pub(crate) enum Words {
    Owned(Vec<u32>),
    Mapped {
        map: Arc<Mmap>,
        /// Byte offset of the first word inside the mapping (4-aligned).
        start: usize,
        /// Number of `u32` words.
        len: usize,
    },
}

impl Words {
    pub(crate) fn as_slice(&self) -> &[u32] {
        match self {
            Words::Owned(v) => v,
            Words::Mapped { map, start, len } => u32_slice(map, *start, *len)
                .expect("mapped word range was validated when the snapshot was opened"),
        }
    }

    fn owned_bytes(&self) -> usize {
        match self {
            Words::Owned(v) => v.capacity() * 4,
            Words::Mapped { .. } => 0,
        }
    }

    fn mapped_bytes(&self) -> usize {
        match self {
            Words::Owned(_) => 0,
            Words::Mapped { len, .. } => len * 4,
        }
    }
}

/// Owned or mapped raw bytes (compressed sample blobs).
#[derive(Clone, Debug)]
pub(crate) enum Blob {
    Owned(Vec<u8>),
    Mapped {
        map: Arc<Mmap>,
        start: usize,
        len: usize,
    },
}

impl Blob {
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            Blob::Owned(v) => v,
            Blob::Mapped { map, start, len } => &map.bytes()[*start..*start + *len],
        }
    }

    fn owned_bytes(&self) -> usize {
        match self {
            Blob::Owned(v) => v.capacity(),
            Blob::Mapped { .. } => 0,
        }
    }

    fn mapped_bytes(&self) -> usize {
        match self {
            Blob::Owned(_) => 0,
            Blob::Mapped { len, .. } => *len,
        }
    }
}

/// Consolidated raw-u32 CSR storage for all θ samples.
#[derive(Clone, Debug)]
pub(crate) struct RawArena {
    /// Words per sample in `offsets`: `n + 1`.
    pub(crate) stride: usize,
    /// Word offset of each sample's targets inside `targets` (θ + 1 entries).
    pub(crate) target_start: Vec<u64>,
    /// θ concatenated per-sample offset arrays, each local (first entry 0).
    pub(crate) offsets: Words,
    /// All per-sample target arrays, concatenated in sample order.
    pub(crate) targets: Words,
}

impl RawArena {
    #[inline]
    pub(crate) fn sample_csr(&self, idx: usize) -> (&[u32], &[u32]) {
        let offsets = &self.offsets.as_slice()[idx * self.stride..(idx + 1) * self.stride];
        let lo = self.target_start[idx] as usize;
        let hi = self.target_start[idx + 1] as usize;
        (offsets, &self.targets.as_slice()[lo..hi])
    }
}

/// Delta-varint / bitset compressed storage plus the graph CSR copy the
/// bitset decoder walks. The copy is rebuilt from the graph at compression
/// or restore time — it is never serialised.
#[derive(Clone, Debug)]
pub(crate) struct CompressedArena {
    /// Per-sample live-edge counts (decoding is not needed to answer stats).
    pub(crate) lens: Vec<u64>,
    /// Per-sample encoding tag ([`MODE_VARINT`] / [`MODE_BITSET`]).
    pub(crate) modes: Vec<u8>,
    /// Byte offset of each sample's blob inside `data` (θ + 1 entries).
    pub(crate) starts: Vec<u64>,
    pub(crate) data: Blob,
    /// Graph out-CSR offsets (`n + 1`), for bitset decoding.
    pub(crate) gr_offsets: Vec<u64>,
    /// Graph out-CSR targets (`m`), for bitset decoding.
    pub(crate) gr_targets: Vec<u32>,
}

impl CompressedArena {
    fn sample_blob(&self, idx: usize) -> (u8, &[u8]) {
        let lo = self.starts[idx] as usize;
        let hi = self.starts[idx + 1] as usize;
        (self.modes[idx], &self.data.as_slice()[lo..hi])
    }
}

#[derive(Clone, Debug)]
pub(crate) enum ArenaBacking {
    Raw(RawArena),
    Compressed(CompressedArena),
}

/// Lazy per-sample validation state for mapped arenas: 0 = unchecked,
/// 1 = valid. Invalid samples panic immediately instead of storing a state.
#[derive(Debug)]
struct LazyChecks {
    flags: Vec<AtomicU8>,
}

/// The live-edge storage of one pool: a backing plus bookkeeping shared by
/// every backend.
#[derive(Clone, Debug)]
pub(crate) struct PoolArena {
    pub(crate) n: usize,
    pub(crate) theta: usize,
    pub(crate) backing: ArenaBacking,
    /// Present iff the backing is mapped; shared across clones so each
    /// sample is validated once per mapping, not once per clone.
    lazy: Option<Arc<LazyChecks>>,
}

/// A borrowed view of one realisation, ready for per-vertex decoding.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SampleView<'a> {
    Csr {
        offsets: &'a [u32],
        targets: &'a [u32],
    },
    Varint {
        /// Block index: byte offset of every [`VARINT_BLOCK`]-th vertex's
        /// record, relative to `data`.
        index: &'a [u8],
        data: &'a [u8],
    },
    Bitset {
        bits: &'a [u8],
        gr_offsets: &'a [u64],
        gr_targets: &'a [u32],
    },
}

impl<'a> SampleView<'a> {
    /// Calls `f` once per live out-neighbour of `u`, in the stored order
    /// (graph adjacency order for every backend — the orders coincide by
    /// construction, which is what keeps digests and query answers
    /// byte-identical across arena kinds).
    #[inline]
    pub(crate) fn for_each_live(&self, u: u32, mut f: impl FnMut(u32)) {
        match *self {
            SampleView::Csr { offsets, targets } => {
                let lo = offsets[u as usize] as usize;
                let hi = offsets[u as usize + 1] as usize;
                for &t in &targets[lo..hi] {
                    f(t);
                }
            }
            SampleView::Varint { index, data } => {
                let block = u as usize / VARINT_BLOCK;
                let at = 4 * block;
                let mut pos =
                    u32::from_le_bytes(index[at..at + 4].try_into().expect("4-byte index entry"))
                        as usize;
                // Skip the vertices in front of `u` within its block.
                for _ in 0..(u as usize % VARINT_BLOCK) {
                    let deg = read_varint(data, &mut pos).expect("validated varint record");
                    if deg > 0 {
                        skip_varints(data, &mut pos, deg as usize);
                    }
                }
                let deg = read_varint(data, &mut pos).expect("validated varint record");
                if deg == 0 {
                    return;
                }
                let mut t = read_varint(data, &mut pos).expect("validated varint record") as u32;
                f(t);
                for _ in 1..deg {
                    let gap = read_varint(data, &mut pos).expect("validated varint record");
                    t += gap as u32 + 1;
                    f(t);
                }
            }
            SampleView::Bitset {
                bits,
                gr_offsets,
                gr_targets,
            } => {
                let lo = gr_offsets[u as usize];
                let hi = gr_offsets[u as usize + 1];
                for (slot, &t) in (lo..hi).zip(&gr_targets[lo as usize..hi as usize]) {
                    if bits[(slot >> 3) as usize] & (1 << (slot & 7)) != 0 {
                        f(t);
                    }
                }
            }
        }
    }

    /// Decodes the whole realisation into a local-offset CSR pair,
    /// byte-identical to the raw layout.
    pub(crate) fn decode_into(&self, n: usize, offsets: &mut Vec<u32>, targets: &mut Vec<u32>) {
        offsets.clear();
        offsets.reserve(n + 1);
        targets.clear();
        offsets.push(0);
        for u in 0..n as u32 {
            self.for_each_live(u, |t| targets.push(t));
            offsets.push(targets.len() as u32);
        }
    }
}

impl PoolArena {
    pub(crate) fn raw(n: usize, theta: usize, arena: RawArena) -> Self {
        PoolArena {
            n,
            theta,
            backing: ArenaBacking::Raw(arena),
            lazy: None,
        }
    }

    pub(crate) fn compressed(n: usize, theta: usize, arena: CompressedArena) -> Self {
        PoolArena {
            n,
            theta,
            backing: ArenaBacking::Compressed(arena),
            lazy: None,
        }
    }

    /// Marks the arena as mapped: per-sample structural validation is
    /// deferred to the first [`PoolArena::view`] of each sample.
    pub(crate) fn with_lazy_validation(mut self) -> Self {
        let mut flags = Vec::with_capacity(self.theta);
        flags.resize_with(self.theta, || AtomicU8::new(0));
        self.lazy = Some(Arc::new(LazyChecks { flags }));
        self
    }

    pub(crate) fn kind(&self) -> ArenaKind {
        match (&self.backing, self.lazy.is_some()) {
            (ArenaBacking::Raw(_), false) => ArenaKind::Raw,
            (ArenaBacking::Raw(_), true) => ArenaKind::MappedRaw,
            (ArenaBacking::Compressed(_), false) => ArenaKind::Compressed,
            (ArenaBacking::Compressed(_), true) => ArenaKind::MappedCompressed,
        }
    }

    /// Whether the arena is the heap-resident raw write path that
    /// `extend_to` can grow in place.
    pub(crate) fn is_extendable(&self) -> bool {
        matches!(
            (&self.backing, &self.lazy),
            (
                ArenaBacking::Raw(RawArena {
                    offsets: Words::Owned(_),
                    targets: Words::Owned(_),
                    ..
                }),
                None
            )
        )
    }

    /// Live-edge count of realisation `idx`.
    pub(crate) fn sample_len(&self, idx: usize) -> u64 {
        match &self.backing {
            ArenaBacking::Raw(raw) => raw.target_start[idx + 1] - raw.target_start[idx],
            ArenaBacking::Compressed(c) => c.lens[idx],
        }
    }

    pub(crate) fn total_live_edges(&self) -> u64 {
        match &self.backing {
            ArenaBacking::Raw(raw) => *raw.target_start.last().expect("θ + 1 entries"),
            ArenaBacking::Compressed(c) => c.lens.iter().sum(),
        }
    }

    /// A per-vertex-decodable view of realisation `idx`. For mapped arenas
    /// the first view of each sample runs the structural validation the
    /// bulk loader would have run up front.
    ///
    /// # Panics
    /// Panics with a diagnostic when a mapped sample fails validation — the
    /// serving layer converts worker panics into typed internal errors.
    pub(crate) fn view(&self, idx: usize) -> SampleView<'_> {
        if let Some(lazy) = &self.lazy {
            let flag = &lazy.flags[idx];
            if flag.load(Ordering::Acquire) == 0 {
                if let Err(reason) = self.validate_sample(idx) {
                    panic!("mapped snapshot sample {idx} is corrupt: {reason}");
                }
                flag.store(1, Ordering::Release);
            }
        }
        self.view_unchecked(idx)
    }

    fn view_unchecked(&self, idx: usize) -> SampleView<'_> {
        match &self.backing {
            ArenaBacking::Raw(raw) => {
                let (offsets, targets) = raw.sample_csr(idx);
                SampleView::Csr { offsets, targets }
            }
            ArenaBacking::Compressed(c) => {
                let (mode, blob) = c.sample_blob(idx);
                match mode {
                    MODE_BITSET => SampleView::Bitset {
                        bits: blob,
                        gr_offsets: &c.gr_offsets,
                        gr_targets: &c.gr_targets,
                    },
                    _ => {
                        let index_bytes = 4 * varint_blocks(self.n);
                        let (index, data) = blob.split_at(index_bytes);
                        SampleView::Varint { index, data }
                    }
                }
            }
        }
    }

    /// Structural validation of one sample, shared by the bulk loader
    /// (eager) and mapped arenas (lazy): every invariant the estimator's
    /// BFS relies on, so corrupt arenas surface as typed errors or
    /// diagnostics, never as out-of-bounds panics mid-query.
    pub(crate) fn validate_sample(&self, idx: usize) -> Result<(), String> {
        let n = self.n;
        match &self.backing {
            ArenaBacking::Raw(raw) => {
                let (offsets, targets) = raw.sample_csr(idx);
                if offsets[0] != 0
                    || *offsets.last().expect("n + 1 offsets") as usize != targets.len()
                {
                    return Err("offset array does not span its live-edge list".into());
                }
                if !offsets.windows(2).all(|w| w[0] <= w[1]) {
                    return Err("offset array is not monotone".into());
                }
                if targets.iter().any(|&t| (t as usize) >= n) {
                    return Err("live-edge target out of vertex range".into());
                }
                Ok(())
            }
            ArenaBacking::Compressed(c) => {
                let (mode, blob) = c.sample_blob(idx);
                let len = c.lens[idx];
                match mode {
                    MODE_BITSET => {
                        let m = c.gr_targets.len();
                        if blob.len() != bitset_bytes(m) {
                            return Err(format!(
                                "bitset blob is {} bytes, expected {}",
                                blob.len(),
                                bitset_bytes(m)
                            ));
                        }
                        let live: u64 = blob.iter().map(|b| b.count_ones() as u64).sum();
                        // Trailing padding bits beyond m must be clear.
                        let tail_bits = (8 - (m % 8)) % 8;
                        if tail_bits > 0 {
                            let last = *blob.last().expect("nonempty bitset");
                            let pad = last >> (8 - tail_bits);
                            if pad != 0 {
                                return Err("bitset has padding bits set past m".into());
                            }
                        }
                        if live != len {
                            return Err(format!(
                                "bitset popcount {live} disagrees with the directory count {len}"
                            ));
                        }
                        Ok(())
                    }
                    MODE_VARINT => validate_varint_sample(blob, n, len),
                    other => Err(format!("unknown sample encoding tag {other}")),
                }
            }
        }
    }

    /// Validates every sample eagerly (bulk-loaded arenas).
    pub(crate) fn validate_all(&self) -> Result<(), (usize, String)> {
        for idx in 0..self.theta {
            self.validate_sample(idx).map_err(|r| (idx, r))?;
        }
        Ok(())
    }

    /// Heap bytes owned by the arena (allocated capacity plus the fixed
    /// struct and table footprint) and bytes served from a mapping.
    pub(crate) fn memory_bytes(&self) -> (usize, usize) {
        let mut owned = std::mem::size_of::<Self>();
        let mut mapped = 0usize;
        match &self.backing {
            ArenaBacking::Raw(raw) => {
                owned += raw.target_start.capacity() * 8;
                owned += raw.offsets.owned_bytes() + raw.targets.owned_bytes();
                mapped += raw.offsets.mapped_bytes() + raw.targets.mapped_bytes();
            }
            ArenaBacking::Compressed(c) => {
                owned += c.lens.capacity() * 8
                    + c.modes.capacity()
                    + c.starts.capacity() * 8
                    + c.gr_offsets.capacity() * 8
                    + c.gr_targets.capacity() * 4;
                owned += c.data.owned_bytes();
                mapped += c.data.mapped_bytes();
            }
        }
        if let Some(lazy) = &self.lazy {
            owned += lazy.flags.capacity();
        }
        (owned, mapped)
    }

    /// Bytes the same pool would occupy in the heap-resident raw layout —
    /// the denominator of the compression ratio.
    pub(crate) fn raw_equivalent_bytes(&self) -> u64 {
        (self.theta as u64) * ((self.n as u64 + 1) * 4)
            + self.total_live_edges() * 4
            + (self.theta as u64 + 1) * 8
    }
}

// ---------------------------------------------------------------------------
// Varint primitives (LEB128)
// ---------------------------------------------------------------------------

/// Number of block-index entries for an `n`-vertex sample.
pub(crate) fn varint_blocks(n: usize) -> usize {
    n.div_ceil(VARINT_BLOCK)
}

/// Bytes of a dense bitset over `m` edge slots.
pub(crate) fn bitset_bytes(m: usize) -> usize {
    m.div_ceil(8)
}

/// Appends `v` as LEB128 (7 bits per byte, high bit = continuation).
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded LEB128 size of `v` in bytes.
pub(crate) fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Reads one LEB128 value at `*pos`, advancing it. `None` on truncation or
/// an encoding longer than a `u64` can hold.
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return None;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Skips `count` LEB128 values without decoding them.
#[inline]
fn skip_varints(bytes: &[u8], pos: &mut usize, count: usize) {
    let mut remaining = count;
    while remaining > 0 {
        let byte = bytes[*pos];
        *pos += 1;
        if byte & 0x80 == 0 {
            remaining -= 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Per-sample encoding
// ---------------------------------------------------------------------------

/// Exact byte size of the varint encoding of one sample (block index
/// included), or `None` when the targets of some vertex are not strictly
/// increasing (then delta coding does not apply).
fn varint_sample_size(offsets: &[u32], targets: &[u32]) -> Option<usize> {
    let n = offsets.len() - 1;
    let mut size = 4 * varint_blocks(n);
    for u in 0..n {
        let list = &targets[offsets[u] as usize..offsets[u + 1] as usize];
        size += varint_len(list.len() as u64);
        if let Some((&first, rest)) = list.split_first() {
            size += varint_len(u64::from(first));
            let mut prev = first;
            for &t in rest {
                if t <= prev {
                    return None;
                }
                size += varint_len(u64::from(t - prev - 1));
                prev = t;
            }
        }
    }
    Some(size)
}

/// Encodes one sample as delta-varint records behind a block index,
/// appending to `out`.
fn encode_varint_sample(offsets: &[u32], targets: &[u32], out: &mut Vec<u8>) {
    let n = offsets.len() - 1;
    let index_at = out.len();
    out.resize(index_at + 4 * varint_blocks(n), 0);
    let data_at = out.len();
    for u in 0..n {
        if u % VARINT_BLOCK == 0 {
            let entry = ((out.len() - data_at) as u32).to_le_bytes();
            let slot = index_at + 4 * (u / VARINT_BLOCK);
            out[slot..slot + 4].copy_from_slice(&entry);
        }
        let list = &targets[offsets[u] as usize..offsets[u + 1] as usize];
        write_varint(out, list.len() as u64);
        if let Some((&first, rest)) = list.split_first() {
            write_varint(out, u64::from(first));
            let mut prev = first;
            for &t in rest {
                write_varint(out, u64::from(t - prev - 1));
                prev = t;
            }
        }
    }
}

/// Encodes one sample as a dense bitset over the graph's edge slots,
/// appending to `out`. Fails when the sample is not an in-order subsequence
/// of the graph adjacency (such a sample cannot have come from this graph).
fn encode_bitset_sample(
    offsets: &[u32],
    targets: &[u32],
    gr_offsets: &[u64],
    gr_targets: &[u32],
    out: &mut Vec<u8>,
) -> Result<(), String> {
    let n = offsets.len() - 1;
    let m = gr_targets.len();
    let base = out.len();
    out.resize(base + bitset_bytes(m), 0);
    for u in 0..n {
        let live = &targets[offsets[u] as usize..offsets[u + 1] as usize];
        let lo = gr_offsets[u] as usize;
        let hi = gr_offsets[u + 1] as usize;
        let slots = &gr_targets[lo..hi];
        let mut j = 0usize;
        for &t in live {
            while j < slots.len() && slots[j] != t {
                j += 1;
            }
            if j == slots.len() {
                return Err(format!(
                    "vertex {u}: live target {t} is not an out-edge of the graph (or out of order)"
                ));
            }
            let slot = lo as u64 + j as u64;
            out[base + (slot >> 3) as usize] |= 1 << (slot & 7);
            j += 1;
        }
    }
    Ok(())
}

/// Encodes one raw CSR sample into `out` using whichever of the two
/// encodings is smaller, returning `(mode, encoded_len)`.
pub(crate) fn encode_sample(
    offsets: &[u32],
    targets: &[u32],
    gr_offsets: &[u64],
    gr_targets: &[u32],
    out: &mut Vec<u8>,
) -> Result<(u8, usize), String> {
    let before = out.len();
    let bitset = bitset_bytes(gr_targets.len());
    match varint_sample_size(offsets, targets) {
        Some(varint) if varint <= bitset => {
            encode_varint_sample(offsets, targets, out);
            debug_assert_eq!(out.len() - before, varint);
            Ok((MODE_VARINT, out.len() - before))
        }
        _ => {
            encode_bitset_sample(offsets, targets, gr_offsets, gr_targets, out)?;
            Ok((MODE_BITSET, out.len() - before))
        }
    }
}

/// Full structural validation of a varint-encoded sample: the block index
/// must point where the records actually fall, every decoded target must be
/// strictly increasing and in range, and the decoded live-edge count must
/// match the directory.
fn validate_varint_sample(blob: &[u8], n: usize, expected_len: u64) -> Result<(), String> {
    let index_bytes = 4 * varint_blocks(n);
    if blob.len() < index_bytes {
        return Err(format!(
            "varint blob of {} bytes cannot hold its {index_bytes}-byte block index",
            blob.len()
        ));
    }
    let (index, data) = blob.split_at(index_bytes);
    let mut pos = 0usize;
    let mut live = 0u64;
    for u in 0..n {
        if u % VARINT_BLOCK == 0 {
            let at = 4 * (u / VARINT_BLOCK);
            let entry =
                u32::from_le_bytes(index[at..at + 4].try_into().expect("4-byte index entry"));
            if entry as usize != pos {
                return Err(format!(
                    "block index for vertex {u} says byte {entry}, records are at {pos}"
                ));
            }
        }
        let deg = read_varint(data, &mut pos)
            .ok_or_else(|| format!("vertex {u}: truncated degree varint"))?;
        if deg > n as u64 {
            return Err(format!("vertex {u}: live out-degree {deg} exceeds n"));
        }
        live += deg;
        if deg == 0 {
            continue;
        }
        let mut t = read_varint(data, &mut pos)
            .ok_or_else(|| format!("vertex {u}: truncated target varint"))?;
        if t >= n as u64 {
            return Err(format!("vertex {u}: live-edge target {t} out of range"));
        }
        for _ in 1..deg {
            let gap = read_varint(data, &mut pos)
                .ok_or_else(|| format!("vertex {u}: truncated delta varint"))?;
            t = t
                .checked_add(gap + 1)
                .ok_or_else(|| format!("vertex {u}: delta overflow"))?;
            if t >= n as u64 {
                return Err(format!("vertex {u}: live-edge target {t} out of range"));
            }
        }
    }
    if pos != data.len() {
        return Err(format!(
            "varint records end at byte {pos}, blob has {} data bytes",
            data.len()
        ));
    }
    if live != expected_len {
        return Err(format!(
            "decoded live-edge count {live} disagrees with the directory count {expected_len}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundary_values() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &values {
            buf.clear();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "encoded size of {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn read_varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80], &mut pos),
            None,
            "dangling continuation"
        );
        let mut pos = 0;
        assert_eq!(read_varint(&[], &mut pos), None, "empty input");
        // 11 continuation bytes cannot fit a u64.
        let over = [0xFFu8; 10];
        let mut pos = 0;
        assert_eq!(read_varint(&over, &mut pos), None, "u64 overflow");
    }

    fn sample_from_lists(lists: &[&[u32]]) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = vec![0u32];
        let mut targets = Vec::new();
        for list in lists {
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }
        (offsets, targets)
    }

    /// Graph where every vertex has out-edges to every higher vertex —
    /// gives the encoder a dense slot space to index into.
    fn complete_dag_csr(n: usize) -> (Vec<u64>, Vec<u32>) {
        let mut gr_offsets = vec![0u64];
        let mut gr_targets = Vec::new();
        for u in 0..n as u32 {
            for t in u + 1..n as u32 {
                gr_targets.push(t);
            }
            gr_offsets.push(gr_targets.len() as u64);
        }
        (gr_offsets, gr_targets)
    }

    fn roundtrip(lists: &[&[u32]], n: usize) {
        let (mut offsets, targets) = sample_from_lists(lists);
        // Vertices past the listed ones have no live edges.
        offsets.resize(n + 1, *offsets.last().expect("nonempty offsets"));
        let (gr_offsets, gr_targets) = complete_dag_csr(n);
        let mut blob = Vec::new();
        let (mode, len) =
            encode_sample(&offsets, &targets, &gr_offsets, &gr_targets, &mut blob).unwrap();
        assert_eq!(blob.len(), len);
        let arena = CompressedArena {
            lens: vec![targets.len() as u64],
            modes: vec![mode],
            starts: vec![0, len as u64],
            data: Blob::Owned(blob),
            gr_offsets,
            gr_targets,
        };
        let arena = PoolArena::compressed(n, 1, arena);
        arena.validate_all().expect("self-encoded sample validates");
        let (mut out_offsets, mut out_targets) = (Vec::new(), Vec::new());
        arena
            .view(0)
            .decode_into(n, &mut out_offsets, &mut out_targets);
        assert_eq!(out_offsets, offsets);
        assert_eq!(out_targets, targets);
    }

    #[test]
    fn encode_decode_roundtrips_both_modes() {
        // Sparse (varint wins) and dense (bitset wins) realisations of the
        // same 40-vertex complete DAG.
        roundtrip(&[&[5, 7, 39], &[], &[3]], 40);
        let dense: Vec<Vec<u32>> = (0..40u32).map(|u| (u + 1..40).collect()).collect();
        let dense_refs: Vec<&[u32]> = dense.iter().map(|v| v.as_slice()).collect();
        roundtrip(&dense_refs, 40);
        // Empty realisation.
        roundtrip(&[&[], &[], &[], &[]], 4);
    }

    #[test]
    fn mode_choice_tracks_density() {
        let n = 64;
        let (gr_offsets, gr_targets) = complete_dag_csr(n);
        let sparse = sample_from_lists(&[&[1u32][..], &[2]]);
        let mut sparse_offsets = sparse.0;
        sparse_offsets.resize(n + 1, *sparse_offsets.last().unwrap());
        let mut blob = Vec::new();
        let (mode, _) = encode_sample(
            &sparse_offsets,
            &sparse.1,
            &gr_offsets,
            &gr_targets,
            &mut blob,
        )
        .unwrap();
        assert_eq!(mode, MODE_VARINT, "2 live edges of 2016 slots");
        let dense: Vec<Vec<u32>> = (0..n as u32).map(|u| (u + 1..n as u32).collect()).collect();
        let (offsets, targets) =
            sample_from_lists(&dense.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        blob.clear();
        let (mode, _) =
            encode_sample(&offsets, &targets, &gr_offsets, &gr_targets, &mut blob).unwrap();
        assert_eq!(mode, MODE_BITSET, "every slot live");
    }

    #[test]
    fn encode_rejects_samples_foreign_to_the_graph() {
        let (gr_offsets, gr_targets) = complete_dag_csr(4);
        // Vertex 2 claims a live edge to 1 — the DAG only has forward edges.
        let (offsets, targets) = sample_from_lists(&[&[], &[], &[1u32][..], &[]]);
        let mut blob = Vec::new();
        assert!(encode_sample(&offsets, &targets, &gr_offsets, &gr_targets, &mut blob).is_err());
    }

    #[test]
    fn validation_catches_flipped_bytes() {
        let n = 64;
        // Sparse lists so the varint encoding wins: byte flips there derail
        // the record stream (block index, degrees or blob consumption).
        let lists: Vec<Vec<u32>> = (0..n as u32)
            .map(|u| {
                if u % 7 == 0 && u + 1 < n as u32 {
                    vec![u + 1]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let (offsets, targets) =
            sample_from_lists(&lists.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let (gr_offsets, gr_targets) = complete_dag_csr(n);
        let mut blob = Vec::new();
        let (mode, len) =
            encode_sample(&offsets, &targets, &gr_offsets, &gr_targets, &mut blob).unwrap();
        assert_eq!(mode, MODE_VARINT);
        let make = |data: Vec<u8>, mode: u8, live: u64| {
            PoolArena::compressed(
                n,
                1,
                CompressedArena {
                    lens: vec![live],
                    modes: vec![mode],
                    starts: vec![0, data.len() as u64],
                    data: Blob::Owned(data),
                    gr_offsets: gr_offsets.clone(),
                    gr_targets: gr_targets.clone(),
                },
            )
        };
        let live = targets.len() as u64;
        assert!(make(blob.clone(), mode, live).validate_all().is_ok());
        for at in [0usize, len / 2, len - 1] {
            let mut bad = blob.clone();
            bad[at] ^= 0x55;
            assert!(
                make(bad, mode, live).validate_all().is_err(),
                "flipped varint byte {at} must not validate"
            );
        }

        // Bitset mode: a single-bit flip changes the popcount, a set padding
        // bit past m is rejected outright, and a wrong blob size never
        // validates. (A flip that *preserves* popcount yields a different
        // but structurally valid realisation — that corruption class is the
        // payload checksum's job, not structural validation's.)
        let dense: Vec<Vec<u32>> = (0..n as u32).map(|u| (u + 1..n as u32).collect()).collect();
        let (offsets, targets) =
            sample_from_lists(&dense.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let mut blob = Vec::new();
        let (mode, _) =
            encode_sample(&offsets, &targets, &gr_offsets, &gr_targets, &mut blob).unwrap();
        assert_eq!(mode, MODE_BITSET);
        let live = targets.len() as u64;
        assert!(make(blob.clone(), mode, live).validate_all().is_ok());
        let mut bad = blob.clone();
        bad[0] ^= 0x01;
        assert!(
            make(bad, mode, live).validate_all().is_err(),
            "popcount drift must not validate"
        );
        let m = gr_targets.len();
        if m % 8 != 0 {
            let mut bad = blob.clone();
            *bad.last_mut().unwrap() |= 0x80;
            assert!(
                make(bad, mode, live).validate_all().is_err(),
                "set padding bit must not validate"
            );
        }
        let mut bad = blob.clone();
        bad.push(0);
        assert!(
            make(bad, mode, live).validate_all().is_err(),
            "oversized bitset must not validate"
        );
    }

    #[test]
    fn lazy_validation_panics_on_first_touch_of_a_corrupt_sample() {
        let n = 16;
        let (gr_offsets, gr_targets) = complete_dag_csr(n);
        let lists: Vec<Vec<u32>> = (0..n as u32).map(|u| (u + 1..n as u32).collect()).collect();
        let (offsets, targets) =
            sample_from_lists(&lists.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let mut blob = Vec::new();
        let (mode, len) =
            encode_sample(&offsets, &targets, &gr_offsets, &gr_targets, &mut blob).unwrap();
        blob[len / 2] ^= 0xFF;
        let arena = PoolArena::compressed(
            n,
            1,
            CompressedArena {
                lens: vec![targets.len() as u64],
                modes: vec![mode],
                starts: vec![0, len as u64],
                data: Blob::Owned(blob),
                gr_offsets,
                gr_targets,
            },
        )
        .with_lazy_validation();
        let err = std::panic::catch_unwind(|| arena.view(0)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("corrupt"), "diagnostic panic, got: {msg}");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Per-vertex live-target lists over an `n`-vertex complete forward
        /// DAG: sorted, deduplicated, and all strictly greater than the
        /// source (so the fixture graph contains every listed edge).
        fn arb_lists(n: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
            collection::vec(collection::vec(0..n as u32, 0..10), n..=n).prop_map(move |raw| {
                raw.into_iter()
                    .enumerate()
                    .map(|(u, mut list)| {
                        list.sort_unstable();
                        list.dedup();
                        list.retain(|&t| t > u as u32);
                        list
                    })
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Delta-varint encoding of a whole sample round-trips bit-for-bit
            /// for arbitrary sorted target lists, and the encoded blob passes
            /// full structural validation.
            #[test]
            fn varint_samples_round_trip(lists in arb_lists(37)) {
                let n = lists.len();
                let refs: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
                let (offsets, targets) = sample_from_lists(&refs);
                let mut blob = Vec::new();
                encode_varint_sample(&offsets, &targets, &mut blob);
                prop_assert!(
                    validate_varint_sample(&blob, n, targets.len() as u64).is_ok(),
                    "self-encoded sample must validate"
                );
                let index_bytes = 4 * varint_blocks(n);
                let view = SampleView::Varint {
                    index: &blob[..index_bytes],
                    data: &blob[index_bytes..],
                };
                let (mut dec_offsets, mut dec_targets) = (Vec::new(), Vec::new());
                view.decode_into(n, &mut dec_offsets, &mut dec_targets);
                prop_assert_eq!(&dec_offsets, &offsets);
                prop_assert_eq!(&dec_targets, &targets);
            }

            /// Raw LEB128 words round-trip and `varint_len` predicts the
            /// encoded width exactly, across the full `u64` range.
            #[test]
            fn raw_varints_round_trip(
                small in collection::vec(0u64..128, 0..8),
                wide in collection::vec(0u64..u64::MAX, 0..8),
                shifts in collection::vec(0u32..64, 0..8),
            ) {
                let mut values = small;
                values.extend(wide);
                values.extend(shifts.iter().map(|&s| 1u64 << s));
                values.push(u64::MAX);
                let mut buf = Vec::new();
                for &v in &values {
                    let before = buf.len();
                    write_varint(&mut buf, v);
                    prop_assert_eq!(buf.len() - before, varint_len(v));
                }
                let mut pos = 0usize;
                for &v in &values {
                    prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
                }
                prop_assert_eq!(pos, buf.len());
            }
        }
    }
}
