//! Snapshot round-trips, every documented failure path, and the
//! `extend_to` bit-identity contract: a pool grown 1k→10k must be
//! indistinguishable — arena bytes and blocker selections at any thread
//! count — from a pool freshly built at θ = 10k.

use imin_core::pool::{pooled_advanced_greedy_in, pooled_decrease, PoolWorkspace};
use imin_core::snapshot::{
    load_snapshot, map_snapshot, peek_header, pool_digest, save_snapshot, save_snapshot_v1,
    SnapshotError, FORMAT_VERSION,
};
use imin_core::{ArenaKind, IminError, SamplePool};
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, DiGraph, VertexId};
use std::path::PathBuf;

fn wc_pa(n: usize, seed: u64) -> DiGraph {
    ProbabilityModel::WeightedCascade
        .apply(&generators::preferential_attachment(n, 3, true, 1.0, seed).unwrap())
        .unwrap()
}

/// Unique temp path per test; best-effort cleanup on drop.
struct TempSnap(PathBuf);

impl TempSnap {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "imin-snapshot-test-{}-{tag}.iminsnap",
            std::process::id()
        ));
        TempSnap(path)
    }
}

impl Drop for TempSnap {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn saved_snapshot(tag: &str) -> (DiGraph, SamplePool, TempSnap) {
    let graph = wc_pa(150, 7);
    let pool = SamplePool::build_with_threads(&graph, 40, 99, 2).unwrap();
    let tmp = TempSnap::new(tag);
    save_snapshot(&tmp.0, &graph, &pool, "pa-150/wc").unwrap();
    (graph, pool, tmp)
}

#[test]
fn round_trip_restores_graph_and_pool_bit_for_bit() {
    let (graph, pool, tmp) = saved_snapshot("roundtrip");
    let restored = load_snapshot(&tmp.0).unwrap();

    assert_eq!(restored.label, "pa-150/wc");
    assert_eq!(restored.header.version, FORMAT_VERSION);
    assert_eq!(restored.header.pool_seed, 99);
    assert_eq!(restored.graph.fingerprint(), graph.fingerprint());
    assert!(restored.graph.validate().is_ok());

    assert_eq!(restored.pool.theta(), pool.theta());
    assert_eq!(restored.pool.pool_seed(), pool.pool_seed());
    for i in 0..pool.theta() {
        assert_eq!(
            restored.pool.sample_csr(i),
            pool.sample_csr(i),
            "sample {i}"
        );
    }
    assert_eq!(pool_digest(&restored.pool), pool_digest(&pool));

    // The restored pair answers queries exactly like the original.
    let seeds = [VertexId::new(0), VertexId::new(3)];
    let before = pooled_advanced_greedy_in(
        &pool,
        &seeds,
        &vec![false; graph.num_vertices()],
        4,
        1,
        &mut PoolWorkspace::new(),
    )
    .unwrap();
    let after = pooled_advanced_greedy_in(
        &restored.pool,
        &seeds,
        &vec![false; restored.graph.num_vertices()],
        4,
        1,
        &mut PoolWorkspace::new(),
    )
    .unwrap();
    assert_eq!(before.blockers, after.blockers);
    assert_eq!(before.estimated_spread, after.estimated_spread);
}

#[test]
fn peek_header_reads_provenance_without_the_arenas() {
    let (graph, pool, tmp) = saved_snapshot("peek");
    let header = peek_header(&tmp.0).unwrap();
    assert_eq!(header.theta, pool.theta() as u64);
    assert_eq!(header.pool_seed, 99);
    assert_eq!(header.num_vertices, graph.num_vertices() as u64);
    assert_eq!(header.num_edges, graph.num_edges() as u64);
    assert_eq!(header.graph_fingerprint, graph.fingerprint());
    assert_eq!(header.label, "pa-150/wc");
}

#[test]
fn save_rejects_a_pool_graph_mismatch() {
    let graph = wc_pa(150, 7);
    let pool = SamplePool::build(&graph, 8, 1).unwrap();
    let other = wc_pa(60, 7);
    let tmp = TempSnap::new("mismatch");
    assert!(matches!(
        save_snapshot(&tmp.0, &other, &pool, "x"),
        Err(IminError::PoolGraphMismatch { .. })
    ));
}

fn expect_snapshot_err(
    bytes: Vec<u8>,
    tag: &str,
    check: impl FnOnce(&SnapshotError) -> bool,
    what: &str,
) {
    let tmp = TempSnap::new(tag);
    std::fs::write(&tmp.0, bytes).unwrap();
    match load_snapshot(&tmp.0) {
        Err(IminError::Snapshot(err)) => {
            assert!(check(&err), "{what}: unexpected snapshot error {err:?}")
        }
        other => panic!("{what}: expected a snapshot error, got {other:?}"),
    }
}

#[test]
fn missing_files_surface_as_io_errors() {
    let tmp = TempSnap::new("missing");
    match load_snapshot(&tmp.0) {
        Err(IminError::Snapshot(SnapshotError::Io(err))) => {
            assert_eq!(err.kind(), std::io::ErrorKind::NotFound)
        }
        other => panic!("expected NotFound, got {other:?}"),
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let (_, _, tmp) = saved_snapshot("magic-src");
    let mut bytes = std::fs::read(&tmp.0).unwrap();
    bytes[0] ^= 0xFF;
    expect_snapshot_err(
        bytes,
        "magic",
        |e| matches!(e, SnapshotError::BadMagic),
        "flipped magic byte",
    );
    // A file that is not a snapshot at all.
    expect_snapshot_err(
        b"hello, world -- definitely not a snapshot".to_vec(),
        "not-a-snapshot",
        |e| matches!(e, SnapshotError::BadMagic),
        "arbitrary file",
    );
}

#[test]
fn version_mismatch_is_rejected() {
    let (_, _, tmp) = saved_snapshot("version-src");
    let mut bytes = std::fs::read(&tmp.0).unwrap();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    expect_snapshot_err(
        bytes,
        "version",
        |e| {
            matches!(
                e,
                SnapshotError::UnsupportedVersion { found, supported }
                    if *found == FORMAT_VERSION + 1 && *supported == FORMAT_VERSION
            )
        },
        "bumped version field",
    );
}

#[test]
fn truncation_at_every_region_is_detected() {
    let (_, _, tmp) = saved_snapshot("trunc-src");
    let bytes = std::fs::read(&tmp.0).unwrap();
    // Mid-header, mid-graph-section, mid-arena, and a chopped trailer.
    for cut in [10, 63, 200, bytes.len() / 2, bytes.len() - 3] {
        expect_snapshot_err(
            bytes[..cut].to_vec(),
            &format!("trunc-{cut}"),
            |e| matches!(e, SnapshotError::Truncated { .. }),
            &format!("truncated at {cut}"),
        );
    }
    // Trailing garbage is rejected just as loudly.
    let mut padded = bytes;
    padded.extend_from_slice(b"junk");
    expect_snapshot_err(
        padded,
        "padded",
        |e| matches!(e, SnapshotError::Truncated { .. }),
        "trailing garbage",
    );
}

#[test]
fn payload_corruption_fails_the_checksum() {
    let (_, _, tmp) = saved_snapshot("checksum-src");
    let bytes = std::fs::read(&tmp.0).unwrap();
    // Flip one bit deep inside the pool arenas (well past header + graph).
    let mut corrupt = bytes.clone();
    let at = bytes.len() - 64;
    corrupt[at] ^= 0x01;
    expect_snapshot_err(
        corrupt,
        "checksum",
        |e| matches!(e, SnapshotError::ChecksumMismatch { .. }),
        "flipped arena bit",
    );
    // Corrupting the stored trailer itself is the same defect.
    let mut corrupt = bytes;
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x80;
    expect_snapshot_err(
        corrupt,
        "trailer",
        |e| matches!(e, SnapshotError::ChecksumMismatch { .. }),
        "flipped trailer bit",
    );
}

#[test]
fn fingerprint_mismatch_is_detected() {
    let (_, _, tmp) = saved_snapshot("fingerprint-src");
    let mut bytes = std::fs::read(&tmp.0).unwrap();
    // Lie about the fingerprint in the header; the graph section itself is
    // intact, so this must surface as the dedicated mismatch error.
    bytes[16] ^= 0xFF;
    expect_snapshot_err(
        bytes,
        "fingerprint",
        |e| matches!(e, SnapshotError::FingerprintMismatch { .. }),
        "patched header fingerprint",
    );
}

/// Re-seals a patched snapshot: recomputes the payload checksum and writes
/// it into the trailer, so the corruption reaches the structural checks
/// instead of being caught by the checksum.
fn reseal(bytes: &mut [u8]) {
    let payload_end = bytes.len() - 8;
    let checksum = imin_core::snapshot::payload_checksum(&bytes[64..payload_end]);
    bytes[payload_end..].copy_from_slice(&checksum.to_le_bytes());
}

#[test]
fn checksum_valid_but_malformed_arenas_are_typed_errors_not_panics() {
    let (graph, pool, tmp) = saved_snapshot("forged");
    let bytes = std::fs::read(&tmp.0).unwrap();
    let n = graph.num_vertices();
    // Compute where the last sample's final target lives: 4 bytes before
    // the 8-byte trailer.
    let last_target_at = bytes.len() - 8 - 4;
    let mut forged = bytes.clone();
    forged[last_target_at..last_target_at + 4].copy_from_slice(&(n as u32).to_le_bytes());
    reseal(&mut forged);
    expect_snapshot_err(
        forged,
        "forged-target",
        |e| matches!(e, SnapshotError::Corrupt { .. }),
        "out-of-range live-edge target with a valid checksum",
    );

    // Break the first sample's offset array (non-monotone / wrong span):
    // it starts right after header + label + graph section + lens table.
    let label_len = 9; // "pa-150/wc"
    let graph_bytes = 16 + (n as u64 + 1) * 8 + graph.num_edges() as u64 * 12;
    let offsets_at = (64 + label_len + graph_bytes + pool.theta() as u64 * 8) as usize;
    let mut forged = bytes;
    forged[offsets_at..offsets_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut forged);
    expect_snapshot_err(
        forged,
        "forged-offsets",
        |e| matches!(e, SnapshotError::Corrupt { .. }),
        "broken offset array with a valid checksum",
    );
}

#[test]
fn zero_theta_headers_are_corrupt() {
    let (_, _, tmp) = saved_snapshot("theta-src");
    let mut bytes = std::fs::read(&tmp.0).unwrap();
    bytes[32..40].copy_from_slice(&0u64.to_le_bytes());
    expect_snapshot_err(
        bytes,
        "theta",
        |e| matches!(e, SnapshotError::Corrupt { .. }),
        "zeroed theta",
    );
}

// ---------------------------------------------------------------------------
// Format v2: compressed sections, v1 backward compatibility, mmap restore
// ---------------------------------------------------------------------------

#[test]
fn v1_snapshots_remain_readable() {
    let graph = wc_pa(150, 7);
    let pool = SamplePool::build_with_threads(&graph, 40, 99, 2).unwrap();
    let tmp = TempSnap::new("v1-compat");
    save_snapshot_v1(&tmp.0, &graph, &pool, "pa-150/wc").unwrap();
    assert_eq!(peek_header(&tmp.0).unwrap().version, 1);
    let restored = load_snapshot(&tmp.0).unwrap();
    assert_eq!(restored.header.version, 1);
    assert_eq!(restored.pool.arena_kind(), ArenaKind::Raw);
    assert_eq!(pool_digest(&restored.pool), pool_digest(&pool));
    for i in 0..pool.theta() {
        assert_eq!(
            restored.pool.sample_csr(i),
            pool.sample_csr(i),
            "sample {i}"
        );
    }
}

#[test]
fn compressed_pools_round_trip_through_v2_snapshots() {
    let graph = wc_pa(150, 7);
    let raw = SamplePool::build_with_threads(&graph, 40, 99, 2).unwrap();
    let pool = raw.compress(&graph, 2).unwrap();
    assert_eq!(pool.arena_kind(), ArenaKind::Compressed);
    let tmp = TempSnap::new("v2-compressed");
    save_snapshot(&tmp.0, &graph, &pool, "pa-150/wc").unwrap();
    let restored = load_snapshot(&tmp.0).unwrap();
    assert_eq!(restored.pool.arena_kind(), ArenaKind::Compressed);
    // The compressed round trip decodes to the same realisations as the raw
    // pool it came from.
    assert_eq!(pool_digest(&restored.pool), pool_digest(&raw));
    for i in 0..raw.theta() {
        assert_eq!(restored.pool.sample_csr(i), raw.sample_csr(i), "sample {i}");
    }
}

#[test]
fn mapped_snapshots_serve_byte_identical_queries() {
    let graph = wc_pa(150, 7);
    let raw = SamplePool::build_with_threads(&graph, 40, 99, 2).unwrap();
    let compressed = raw.compress(&graph, 1).unwrap();
    let seeds = [VertexId::new(0), VertexId::new(3)];
    let forbidden = vec![false; graph.num_vertices()];
    let mut ws = PoolWorkspace::new();
    let reference = pooled_advanced_greedy_in(&raw, &seeds, &forbidden, 4, 1, &mut ws).unwrap();
    for (tag, pool, kind) in [
        ("map-raw", &raw, ArenaKind::MappedRaw),
        ("map-compressed", &compressed, ArenaKind::MappedCompressed),
    ] {
        let tmp = TempSnap::new(tag);
        save_snapshot(&tmp.0, &graph, pool, "pa-150/wc").unwrap();
        let restored = map_snapshot(&tmp.0).unwrap();
        assert_eq!(restored.pool.arena_kind(), kind, "{tag}");
        assert_eq!(pool_digest(&restored.pool), pool_digest(&raw), "{tag}");
        for threads in [1usize, 2, 8] {
            let sel =
                pooled_advanced_greedy_in(&restored.pool, &seeds, &forbidden, 4, threads, &mut ws)
                    .unwrap();
            assert_eq!(sel.blockers, reference.blockers, "{tag} threads={threads}");
            assert_eq!(sel.estimated_spread, reference.estimated_spread);
        }
    }
}

#[test]
fn map_snapshot_rejects_truncated_and_legacy_files() {
    let (graph, pool, tmp) = saved_snapshot("map-trunc-src");
    let bytes = std::fs::read(&tmp.0).unwrap();
    for cut in [10, 70, bytes.len() / 2, bytes.len() - 3] {
        let t = TempSnap::new(&format!("map-trunc-{cut}"));
        std::fs::write(&t.0, &bytes[..cut]).unwrap();
        match map_snapshot(&t.0) {
            Err(IminError::Snapshot(SnapshotError::Truncated { .. })) => {}
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
    // Version-1 files have no page-aligned sections; mapping must refuse
    // with a pointer at the bulk loader rather than serving garbage.
    let t = TempSnap::new("map-v1");
    save_snapshot_v1(&t.0, &graph, &pool, "x").unwrap();
    match map_snapshot(&t.0) {
        Err(IminError::Snapshot(SnapshotError::Corrupt { reason })) => assert!(
            reason.contains("memory-mapped"),
            "unexpected reason: {reason}"
        ),
        other => panic!("expected Corrupt for a mapped v1 file, got {other:?}"),
    }
}

/// Byte offset of the compressed section's lens table: header + label +
/// graph section + the 8-byte pool-section header.
fn compressed_lens_at(graph: &DiGraph, label_len: u64) -> usize {
    let n = graph.num_vertices() as u64;
    let m = graph.num_edges() as u64;
    (64 + label_len + 16 + (n + 1) * 8 + m * 12 + 8) as usize
}

#[test]
fn corrupt_compressed_directories_are_typed_errors_not_panics() {
    let graph = wc_pa(150, 7);
    let pool = SamplePool::build_with_threads(&graph, 40, 99, 2)
        .unwrap()
        .compress(&graph, 1)
        .unwrap();
    let tmp = TempSnap::new("compressed-forge-src");
    save_snapshot(&tmp.0, &graph, &pool, "pa-150/wc").unwrap();
    let bytes = std::fs::read(&tmp.0).unwrap();
    let lens_at = compressed_lens_at(&graph, 9);

    // A lens entry that disagrees with its blob fails sample validation.
    let mut forged = bytes.clone();
    let lens0 = u64::from_le_bytes(forged[lens_at..lens_at + 8].try_into().unwrap());
    forged[lens_at..lens_at + 8].copy_from_slice(&(lens0 + 1).to_le_bytes());
    reseal(&mut forged);
    expect_snapshot_err(
        forged,
        "compressed-lens",
        |e| matches!(e, SnapshotError::Corrupt { .. }),
        "inflated lens entry with a valid checksum",
    );

    // An unknown mode tag dies in the directory check.
    let modes_at = lens_at + pool.theta() * 8;
    let mut forged = bytes.clone();
    forged[modes_at] = 7;
    reseal(&mut forged);
    expect_snapshot_err(
        forged,
        "compressed-mode",
        |e| matches!(e, SnapshotError::Corrupt { .. }),
        "invalid mode tag with a valid checksum",
    );

    // Truncation inside the blob region is length-checked before any decode.
    expect_snapshot_err(
        bytes[..bytes.len() - 64].to_vec(),
        "compressed-trunc",
        |e| matches!(e, SnapshotError::Truncated { .. }),
        "truncated blob region",
    );
}

#[test]
fn mapped_corruption_panics_with_a_diagnostic_on_first_touch() {
    let graph = wc_pa(150, 7);
    let pool = SamplePool::build_with_threads(&graph, 40, 99, 2)
        .unwrap()
        .compress(&graph, 1)
        .unwrap();
    let tmp = TempSnap::new("map-lazy-src");
    save_snapshot(&tmp.0, &graph, &pool, "pa-150/wc").unwrap();
    let mut forged = std::fs::read(&tmp.0).unwrap();
    // Inflate sample 0's directory count. The map path skips the payload
    // checksum (hashing would fault in the whole file), so the mapping
    // succeeds and the defect must surface on first touch of the sample.
    let lens_at = compressed_lens_at(&graph, 9);
    let lens0 = u64::from_le_bytes(forged[lens_at..lens_at + 8].try_into().unwrap());
    forged[lens_at..lens_at + 8].copy_from_slice(&(lens0 + 1).to_le_bytes());
    let t = TempSnap::new("map-lazy");
    std::fs::write(&t.0, &forged).unwrap();
    let restored = map_snapshot(&t.0).unwrap();
    let err =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| restored.pool.sample_csr(0)))
            .unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("corrupt") && msg.contains("sample 0"),
        "diagnostic panic, got: {msg}"
    );
}

// ---------------------------------------------------------------------------
// extend_to: 1k → 10k bit-identity at scale
// ---------------------------------------------------------------------------

#[test]
fn extend_1k_to_10k_is_bit_identical_to_a_fresh_build() {
    let graph = wc_pa(150, 11);
    let n = graph.num_vertices();
    let fresh = SamplePool::build_with_threads(&graph, 10_000, 42, 4).unwrap();
    let mut grown = SamplePool::build_with_threads(&graph, 1_000, 42, 2).unwrap();
    assert_eq!(grown.extend_to(&graph, 10_000, 8).unwrap(), 9_000);

    // Arena bytes: every offset and every target of every realisation.
    assert_eq!(pool_digest(&grown), pool_digest(&fresh));
    for i in (0..10_000).step_by(97) {
        assert_eq!(grown.sample_csr(i), fresh.sample_csr(i), "sample {i}");
    }

    // Identical blocker selections at 1/2/8 threads, and identical
    // candidate estimates.
    let seeds = [VertexId::new(0)];
    let forbidden = vec![false; n];
    let mut ws = PoolWorkspace::new();
    let reference = pooled_advanced_greedy_in(&fresh, &seeds, &forbidden, 3, 1, &mut ws).unwrap();
    for threads in [1usize, 2, 8] {
        let sel =
            pooled_advanced_greedy_in(&grown, &seeds, &forbidden, 3, threads, &mut ws).unwrap();
        assert_eq!(sel.blockers, reference.blockers, "threads={threads}");
        assert_eq!(sel.estimated_spread, reference.estimated_spread);
    }
    let est_fresh = pooled_decrease(&fresh, &seeds, &forbidden, 2).unwrap();
    let est_grown = pooled_decrease(&grown, &seeds, &forbidden, 8).unwrap();
    assert_eq!(est_fresh.delta, est_grown.delta);
    assert_eq!(est_fresh.average_reached, est_grown.average_reached);
}

#[test]
fn snapshots_of_extended_pools_equal_snapshots_of_fresh_pools() {
    let graph = wc_pa(80, 5);
    let fresh = SamplePool::build(&graph, 30, 3).unwrap();
    let mut grown = SamplePool::build(&graph, 10, 3).unwrap();
    grown.extend_to(&graph, 30, 2).unwrap();
    let tmp_a = TempSnap::new("fresh-pool");
    let tmp_b = TempSnap::new("grown-pool");
    save_snapshot(&tmp_a.0, &graph, &fresh, "g").unwrap();
    save_snapshot(&tmp_b.0, &graph, &grown, "g").unwrap();
    assert_eq!(
        std::fs::read(&tmp_a.0).unwrap(),
        std::fs::read(&tmp_b.0).unwrap(),
        "whole snapshot files are byte-identical"
    );
}
