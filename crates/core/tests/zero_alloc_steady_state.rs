//! Proves the allocation discipline of the sampling→dominator hot path: once
//! a `DecreaseWorkspace` has warmed up, drawing more samples performs no
//! additional heap allocation — the allocation count of a round is
//! independent of θ.
//!
//! The lib crates forbid unsafe code; this integration test is a separate
//! compilation unit, so it may install a counting global allocator.

use imin_core::decrease::{decrease_es_computation_in, DecreaseConfig, DecreaseWorkspace};
use imin_core::sampler::IcLiveEdgeSampler;
use imin_graph::{DiGraph, VertexId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A graph where every sample is the full vertex set (all probabilities 1),
/// so buffer high-water marks stabilise after the very first sample.
fn deterministic_graph(n: usize) -> DiGraph {
    let mut edges = Vec::new();
    // A binary-ish tree plus some cross edges: nontrivial dominator
    // structure, fully deterministic cascades.
    for v in 1..n {
        edges.push((VertexId::new((v - 1) / 2), VertexId::new(v), 1.0));
    }
    for v in 4..n {
        edges.push((VertexId::new(v - 3), VertexId::new(v), 1.0));
    }
    DiGraph::from_edges(n, edges).unwrap()
}

#[test]
fn steady_state_rounds_do_not_allocate_per_sample() {
    let n = 512;
    let graph = deterministic_graph(n);
    let source = VertexId::new(0);
    let blocked = vec![false; n];
    let mut workspace = DecreaseWorkspace::new();
    let cfg = |theta: usize| DecreaseConfig {
        theta,
        threads: 1,
        seed: 99,
    };

    // Warm up: grows every buffer to its high-water mark.
    decrease_es_computation_in(
        &IcLiveEdgeSampler,
        &graph,
        source,
        &blocked,
        &cfg(8),
        &mut workspace,
    )
    .unwrap();

    // The counting allocator is process-wide, so harness threads (libtest's
    // channel plumbing, stdout buffering) occasionally allocate during a
    // measured window. Such noise is additive; the minimum over a few
    // repetitions is the round's true allocation count.
    let mut count = |theta: usize| {
        (0..5)
            .map(|_| {
                let before = allocations();
                decrease_es_computation_in(
                    &IcLiveEdgeSampler,
                    &graph,
                    source,
                    &blocked,
                    &cfg(theta),
                    &mut workspace,
                )
                .unwrap();
                allocations() - before
            })
            .min()
            .unwrap()
    };

    let small = count(64);
    let large = count(1024);
    // 16× the samples, identical allocation count: all per-sample work runs
    // out of the reused arenas. (The per-round constant covers the returned
    // DecreaseEstimate, which the caller owns.)
    assert_eq!(
        small, large,
        "allocation count must be independent of θ (θ=64: {small}, θ=1024: {large})"
    );
    assert!(
        small <= 8,
        "a steady-state round should allocate only the returned estimate, got {small}"
    );
}
