//! # imin-datasets
//!
//! Dataset support for the vertex-blocking influence-minimization workspace:
//!
//! * [`toy`] — the 9-vertex toy graph of Figure 1, for which the paper gives
//!   exact spreads (E = 7.66, blocking v5 → 3, Table III); it anchors a
//!   large part of the test suite.
//! * [`catalog`] — the eight SNAP datasets of Table IV. The original files
//!   are not redistributable, so each dataset has a deterministic synthetic
//!   stand-in matching its size, direction and degree skew (see DESIGN.md,
//!   "Substitutions"). Real SNAP edge lists are loaded instead whenever a
//!   file is found under the `IMIN_DATA_DIR` directory.
//! * [`extract`] — the ~100-vertex extraction procedure used for the
//!   Exact-vs-GreedyReplace comparison (Tables V and VI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod extract;
pub mod toy;

pub use catalog::{Dataset, DatasetScale, DatasetSpec};
