//! Small-subgraph extraction for the Exact-vs-GreedyReplace comparison.
//!
//! §VI-B: "Due to the huge time cost of Exact, we extract small datasets by
//! iteratively extracting a vertex and all its neighbors, until the number
//! of extracted vertices reaches 100." This module reproduces that
//! procedure: starting from a (deterministically chosen) vertex, grow the
//! extracted set by repeatedly absorbing a frontier vertex together with all
//! of its in/out neighbours until the target size is reached, then take the
//! induced subgraph.

use imin_graph::subgraph::{induced_subgraph, InducedSubgraph};
use imin_graph::{DiGraph, GraphError, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Extracts an induced subgraph of roughly `target_vertices` vertices by the
/// paper's grow-by-neighbourhood procedure, starting from `start`.
///
/// The extraction can overshoot slightly (the last absorbed vertex brings
/// all of its neighbours along), exactly like the original description.
pub fn extract_neighborhood(
    graph: &DiGraph,
    start: VertexId,
    target_vertices: usize,
) -> Result<InducedSubgraph, GraphError> {
    let n = graph.num_vertices();
    let mut selected = vec![false; n];
    let mut count = 0usize;
    let mut frontier: VecDeque<VertexId> = VecDeque::new();
    let select = |v: VertexId,
                  selected: &mut Vec<bool>,
                  count: &mut usize,
                  frontier: &mut VecDeque<VertexId>| {
        if v.index() < n && !selected[v.index()] {
            selected[v.index()] = true;
            *count += 1;
            frontier.push_back(v);
        }
    };
    select(start, &mut selected, &mut count, &mut frontier);
    while count < target_vertices {
        let Some(v) = frontier.pop_front() else { break };
        for (u, _) in graph.out_edges(v) {
            select(u, &mut selected, &mut count, &mut frontier);
        }
        for (u, _) in graph.in_edges(v) {
            select(u, &mut selected, &mut count, &mut frontier);
        }
    }
    induced_subgraph(graph, |v| selected[v.index()])
}

/// Extracts `how_many` subgraphs of about `target_vertices` vertices each,
/// starting from deterministically drawn random vertices (the paper extracts
/// 5 such subgraphs from EmailCore).
pub fn extract_many(
    graph: &DiGraph,
    how_many: usize,
    target_vertices: usize,
    seed: u64,
) -> Result<Vec<InducedSubgraph>, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(how_many);
    for _ in 0..how_many {
        // Prefer starting vertices with at least one out-edge so the extract
        // contains something to propagate over.
        let mut start = VertexId::new(rng.gen_range(0..graph.num_vertices()));
        for _ in 0..50 {
            if graph.out_degree(start) > 0 {
                break;
            }
            start = VertexId::new(rng.gen_range(0..graph.num_vertices()));
        }
        out.push(extract_neighborhood(graph, start, target_vertices)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Dataset, DatasetScale};

    #[test]
    fn extraction_reaches_roughly_the_target_size() {
        let g = Dataset::EmailCore.generate(DatasetScale::Tiny).unwrap();
        let sub = extract_neighborhood(&g, VertexId::new(0), 100).unwrap();
        assert!(sub.graph.num_vertices() >= 50, "extraction too small");
        // Overshoot is bounded by one neighbourhood.
        assert!(sub.graph.num_vertices() <= g.num_vertices());
        assert!(sub.graph.validate().is_ok());
    }

    #[test]
    fn extraction_preserves_edges_between_kept_vertices() {
        let g = Dataset::WikiVote.generate(DatasetScale::Tiny).unwrap();
        let sub = extract_neighborhood(&g, VertexId::new(0), 60).unwrap();
        for e in sub.graph.edges() {
            let orig_src = sub.lift(e.source);
            let orig_dst = sub.lift(e.target);
            assert_eq!(g.edge_probability(orig_src, orig_dst), Some(e.probability));
        }
    }

    #[test]
    fn target_larger_than_graph_returns_everything() {
        let g = DiGraph::from_edges(3, vec![(VertexId::new(0), VertexId::new(1), 1.0)]).unwrap();
        let sub = extract_neighborhood(&g, VertexId::new(0), 100).unwrap();
        // Only the connected part around the start is reachable by the
        // frontier growth (vertex 2 has no edges to the component).
        assert_eq!(sub.graph.num_vertices(), 2);
    }

    #[test]
    fn extract_many_is_deterministic() {
        let g = Dataset::EmailCore.generate(DatasetScale::Tiny).unwrap();
        let a = extract_many(&g, 3, 80, 7).unwrap();
        let b = extract_many(&g, 3, 80, 7).unwrap();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph.num_vertices(), y.graph.num_vertices());
            assert_eq!(x.graph.num_edges(), y.graph.num_edges());
        }
    }
}
