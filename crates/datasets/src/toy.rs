//! The toy graph of Figure 1.
//!
//! The paper's running example: nine vertices `v1..v9` with seed `v1`.
//! All propagation probabilities are 1 except `p(v5, v8) = 0.5`,
//! `p(v9, v8) = 0.2` and `p(v8, v7) = 0.1`. The paper derives:
//!
//! * `E({v1}, G) = 7.66` (Example 1),
//! * blocking `v5` leaves a spread of 3; blocking `v2` or `v4` leaves 6.66,
//! * the per-vertex spread decreases of Example 2
//!   (Δ(v5) = 4.66, Δ(v9) = 1.11, Δ(v8) = 0.66, Δ(v7) = 0.06,
//!   Δ(v2) = Δ(v3) = Δ(v4) = Δ(v6) = 1),
//! * Table III: Greedy picks {v5} (spread 3) then {v5, v2 or v4} (spread 2);
//!   OutNeighbors picks {v2, v4} (spread 1 for b = 2);
//!   GreedyReplace achieves the best of both.
//!
//! Paper vertex `v_i` is vertex id `i - 1` here; [`V`] converts.

use imin_graph::{DiGraph, VertexId};

/// Maps a 1-based paper vertex label (`v1`..`v9`) to the 0-based vertex id.
#[allow(non_snake_case)]
pub fn V(paper_label: usize) -> VertexId {
    assert!((1..=9).contains(&paper_label), "the toy graph has v1..v9");
    VertexId::new(paper_label - 1)
}

/// The exact expected spread of the unblocked toy graph (Example 1).
pub const FIGURE1_EXPECTED_SPREAD: f64 = 7.66;

/// Builds the Figure-1 toy graph and returns it together with its seed
/// (`v1`).
pub fn figure1_graph() -> (DiGraph, VertexId) {
    let edges = vec![
        (V(1), V(2), 1.0),
        (V(1), V(4), 1.0),
        (V(2), V(5), 1.0),
        (V(4), V(5), 1.0),
        (V(5), V(3), 1.0),
        (V(5), V(6), 1.0),
        (V(5), V(9), 1.0),
        (V(5), V(8), 0.5),
        (V(9), V(8), 0.2),
        (V(8), V(7), 0.1),
    ];
    let graph = DiGraph::from_edges(9, edges).expect("the toy graph is well-formed");
    (graph, V(1))
}

/// The spread decrease of blocking each vertex, as derived in Example 2,
/// returned as `(vertex, decrease)` pairs for `v2..v9`.
pub fn figure1_expected_decreases() -> Vec<(VertexId, f64)> {
    vec![
        (V(2), 1.0),
        (V(3), 1.0),
        (V(4), 1.0),
        (V(5), 4.66),
        (V(6), 1.0),
        (V(7), 0.06),
        (V(8), 0.66),
        (V(9), 1.11),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_diffusion::exact::{
        exact_activation_probabilities, exact_expected_spread, ExactSpreadConfig,
    };

    #[test]
    fn structure_matches_the_paper() {
        let (g, seed) = figure1_graph();
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(seed, V(1));
        // The seed's out-neighbours are v2 and v4 (Example 3).
        assert_eq!(g.out_neighbors(V(1)), &[V(2).raw(), V(4).raw()]);
        assert_eq!(g.edge_probability(V(5), V(8)), Some(0.5));
        assert_eq!(g.edge_probability(V(9), V(8)), Some(0.2));
        assert_eq!(g.edge_probability(V(8), V(7)), Some(0.1));
    }

    #[test]
    fn activation_probabilities_match_example_1() {
        let (g, seed) = figure1_graph();
        let probs = exact_activation_probabilities(&g, &[seed], None, ExactSpreadConfig::default())
            .unwrap();
        // v2..v6 and v9 are certainly activated.
        for label in [2, 3, 4, 5, 6, 9] {
            assert!((probs[V(label).index()] - 1.0).abs() < 1e-12, "v{label}");
        }
        assert!((probs[V(8).index()] - 0.6).abs() < 1e-12);
        assert!((probs[V(7).index()] - 0.06).abs() < 1e-12);
        let spread: f64 = probs.iter().sum();
        assert!((spread - FIGURE1_EXPECTED_SPREAD).abs() < 1e-9);
    }

    #[test]
    fn blocking_spreads_match_example_1_and_table_3() {
        let (g, seed) = figure1_graph();
        let spread_with = |blocked_labels: &[usize]| {
            let mut mask = vec![false; 9];
            for &l in blocked_labels {
                mask[V(l).index()] = true;
            }
            exact_expected_spread(&g, &[seed], Some(&mask), ExactSpreadConfig::default()).unwrap()
        };
        assert!((spread_with(&[5]) - 3.0).abs() < 1e-9);
        assert!((spread_with(&[2]) - 6.66).abs() < 1e-9);
        assert!((spread_with(&[4]) - 6.66).abs() < 1e-9);
        assert!((spread_with(&[2, 4]) - 1.0).abs() < 1e-9);
        assert!((spread_with(&[5, 2]) - 2.0).abs() < 1e-9);
        assert!((spread_with(&[5, 4]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn spread_function_is_not_supermodular_theorem_2() {
        // Theorem 2's counterexample: X = {v3}, Y = {v2, v3}, x = v4.
        let (g, seed) = figure1_graph();
        let f = |labels: &[usize]| {
            let mut mask = vec![false; 9];
            for &l in labels {
                mask[V(l).index()] = true;
            }
            exact_expected_spread(&g, &[seed], Some(&mask), ExactSpreadConfig::default()).unwrap()
        };
        let fx = f(&[3]);
        let fy = f(&[2, 3]);
        let fxx = f(&[3, 4]);
        let fyx = f(&[2, 3, 4]);
        assert!((fx - 6.66).abs() < 1e-9);
        assert!((fy - 5.66).abs() < 1e-9);
        assert!((fxx - 5.66).abs() < 1e-9);
        assert!((fyx - 1.0).abs() < 1e-9);
        // Supermodularity would require fxx - fx ≤ fyx - fy; here it fails.
        assert!(fxx - fx > fyx - fy);
    }

    #[test]
    fn expected_decreases_match_example_2() {
        let (g, seed) = figure1_graph();
        let base = exact_expected_spread(&g, &[seed], None, ExactSpreadConfig::default()).unwrap();
        for (v, expected) in figure1_expected_decreases() {
            let mut mask = vec![false; 9];
            mask[v.index()] = true;
            let blocked =
                exact_expected_spread(&g, &[seed], Some(&mask), ExactSpreadConfig::default())
                    .unwrap();
            assert!(
                (base - blocked - expected).abs() < 1e-9,
                "decrease of {v}: got {} expected {expected}",
                base - blocked
            );
        }
    }

    #[test]
    #[should_panic(expected = "v1..v9")]
    fn label_range_is_checked() {
        let _ = V(10);
    }
}
