//! The eight evaluation datasets of Table IV and their synthetic stand-ins.
//!
//! | Dataset | n | m | d_avg | d_max | Type |
//! |---|---|---|---|---|---|
//! | EmailCore | 1,005 | 25,571 | 49.6 | 544 | Directed |
//! | Facebook | 4,039 | 88,234 | 43.7 | 1,045 | Undirected |
//! | Wiki-Vote | 7,115 | 103,689 | 29.1 | 1,167 | Directed |
//! | EmailAll | 265,214 | 420,045 | 3.2 | 7,636 | Directed |
//! | DBLP | 317,080 | 1,049,866 | 6.6 | 343 | Undirected |
//! | Twitter | 81,306 | 1,768,149 | 59.5 | 10,336 | Directed |
//! | Stanford | 281,903 | 2,312,497 | 16.4 | 38,626 | Directed |
//! | Youtube | 1,134,890 | 2,987,624 | 5.3 | 28,754 | Undirected |
//!
//! The SNAP files themselves cannot be redistributed, so every dataset can be
//! **synthesised**: a preferential-attachment graph with the same vertex
//! count, edge count, orientation and a matching heavy-tailed degree skew,
//! generated deterministically from the dataset name. The substitution is
//! discussed in DESIGN.md; the experiment harness records which source
//! (synthetic or real file) was used.
//!
//! Real data: place the SNAP edge list at `$IMIN_DATA_DIR/<name>.txt`
//! (e.g. `email-core.txt`) and [`Dataset::load_or_generate`] will parse it
//! instead of synthesising.

use imin_graph::builder::SelfLoopPolicy;
use imin_graph::edgelist::{load_edge_list, EdgeListOptions};
use imin_graph::{generators, DiGraph, GraphError};
use std::path::PathBuf;

/// Identifier of one of the paper's eight datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// `email-Eu-core`: EU research-institution e-mail network.
    EmailCore,
    /// `ego-Facebook`: Facebook friendship circles (undirected).
    Facebook,
    /// `wiki-Vote`: Wikipedia adminship votes.
    WikiVote,
    /// `email-EuAll`: full EU e-mail network.
    EmailAll,
    /// `com-DBLP`: DBLP co-authorship network (undirected).
    Dblp,
    /// `ego-Twitter`: Twitter follower circles.
    Twitter,
    /// `web-Stanford`: Stanford web graph.
    Stanford,
    /// `com-Youtube`: Youtube friendships (undirected).
    Youtube,
}

/// How large a stand-in to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DatasetScale {
    /// The full Table IV size (up to ~3M edges — generation takes a while
    /// but is perfectly feasible on a laptop).
    Full,
    /// A proportionally shrunk instance with the same average degree and
    /// skew; the factor multiplies the vertex count (e.g. 0.05 = 5%).
    Scaled(f64),
    /// The default benchmark size: every dataset is capped at roughly
    /// 3,000–8,000 vertices while keeping its average degree, so the whole
    /// experiment suite runs in minutes.
    Bench,
    /// A tiny instance (a few hundred vertices) for unit tests.
    Tiny,
}

/// Static description of a dataset (the Table IV row).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Canonical short name used in file names and experiment output.
    pub name: &'static str,
    /// Abbreviation used on the x-axis of the paper's figures
    /// (EC, F, W, EA, D, T, S, Y).
    pub abbrev: &'static str,
    /// Number of vertices in the original dataset.
    pub num_vertices: usize,
    /// Number of edges in the original dataset (undirected edges counted
    /// once, as in Table IV).
    pub num_edges: usize,
    /// Whether the original dataset is directed.
    pub directed: bool,
}

impl Dataset {
    /// All eight datasets in the order of Table IV (by edge count).
    pub fn all() -> &'static [Dataset] {
        &[
            Dataset::EmailCore,
            Dataset::Facebook,
            Dataset::WikiVote,
            Dataset::EmailAll,
            Dataset::Dblp,
            Dataset::Twitter,
            Dataset::Stanford,
            Dataset::Youtube,
        ]
    }

    /// The small datasets on which even the Monte-Carlo baseline finishes.
    pub fn small() -> &'static [Dataset] {
        &[Dataset::EmailCore, Dataset::Facebook, Dataset::WikiVote]
    }

    /// The Table IV row for this dataset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::EmailCore => DatasetSpec {
                name: "email-core",
                abbrev: "EC",
                num_vertices: 1_005,
                num_edges: 25_571,
                directed: true,
            },
            Dataset::Facebook => DatasetSpec {
                name: "facebook",
                abbrev: "F",
                num_vertices: 4_039,
                num_edges: 88_234,
                directed: false,
            },
            Dataset::WikiVote => DatasetSpec {
                name: "wiki-vote",
                abbrev: "W",
                num_vertices: 7_115,
                num_edges: 103_689,
                directed: true,
            },
            Dataset::EmailAll => DatasetSpec {
                name: "email-all",
                abbrev: "EA",
                num_vertices: 265_214,
                num_edges: 420_045,
                directed: true,
            },
            Dataset::Dblp => DatasetSpec {
                name: "dblp",
                abbrev: "D",
                num_vertices: 317_080,
                num_edges: 1_049_866,
                directed: false,
            },
            Dataset::Twitter => DatasetSpec {
                name: "twitter",
                abbrev: "T",
                num_vertices: 81_306,
                num_edges: 1_768_149,
                directed: true,
            },
            Dataset::Stanford => DatasetSpec {
                name: "stanford",
                abbrev: "S",
                num_vertices: 281_903,
                num_edges: 2_312_497,
                directed: true,
            },
            Dataset::Youtube => DatasetSpec {
                name: "youtube",
                abbrev: "Y",
                num_vertices: 1_134_890,
                num_edges: 2_987_624,
                directed: false,
            },
        }
    }

    /// Deterministic RNG seed derived from the dataset name.
    fn generation_seed(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.spec().name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Target (n, m) after applying a scale.
    pub fn scaled_size(&self, scale: DatasetScale) -> (usize, usize) {
        let spec = self.spec();
        let (n, m) = (spec.num_vertices as f64, spec.num_edges as f64);
        let factor = match scale {
            DatasetScale::Full => 1.0,
            DatasetScale::Scaled(f) => f.clamp(1e-4, 1.0),
            DatasetScale::Bench => {
                // Cap vertices at ~6000 but never scale *up*.
                (6_000.0 / n).min(1.0)
            }
            DatasetScale::Tiny => (400.0 / n).min(1.0),
        };
        let n_scaled = (n * factor).round().max(50.0) as usize;
        let m_scaled = (m * factor).round().max(100.0) as usize;
        (n_scaled, m_scaled)
    }

    /// Generates the synthetic stand-in at the requested scale.
    ///
    /// The generator is preferential attachment (bidirectional for the
    /// undirected datasets), which reproduces the heavy-tailed degree
    /// distribution the blocking algorithms are sensitive to. All edges get
    /// probability 1.0 — callers apply an `imin_diffusion::ProbabilityModel`
    /// (TR or WC) afterwards, exactly as the paper does.
    pub fn generate(&self, scale: DatasetScale) -> Result<DiGraph, GraphError> {
        let spec = self.spec();
        let (n, m) = self.scaled_size(scale);
        // Edges issued per arriving vertex so the total is close to m
        // (undirected stand-ins get reciprocal edges automatically, and
        // Table IV counts each undirected edge once, so no halving).
        let per_vertex = (m as f64 / n as f64).round().max(1.0) as usize;
        let per_vertex = per_vertex.min(n.saturating_sub(1).max(1));
        generators::preferential_attachment(
            n,
            per_vertex,
            !spec.directed,
            1.0,
            self.generation_seed(),
        )
    }

    /// Path under `IMIN_DATA_DIR` where a real SNAP edge list would live.
    pub fn data_file_path(&self) -> Option<PathBuf> {
        std::env::var_os("IMIN_DATA_DIR")
            .map(|dir| PathBuf::from(dir).join(format!("{}.txt", self.spec().name)))
    }

    /// Loads the real SNAP file if `IMIN_DATA_DIR` points at one, otherwise
    /// generates the synthetic stand-in. Returns the graph and whether real
    /// data was used.
    pub fn load_or_generate(&self, scale: DatasetScale) -> Result<(DiGraph, bool), GraphError> {
        if let Some(path) = self.data_file_path() {
            if path.exists() {
                let options = EdgeListOptions {
                    undirected: !self.spec().directed,
                    default_probability: 1.0,
                    self_loops: SelfLoopPolicy::Drop,
                    compact_ids: true,
                };
                let loaded = load_edge_list(&path, &options)?;
                return Ok((loaded.graph, true));
            }
        }
        Ok((self.generate(scale)?, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_graph::GraphStats;

    #[test]
    fn catalog_matches_table_iv() {
        assert_eq!(Dataset::all().len(), 8);
        let ec = Dataset::EmailCore.spec();
        assert_eq!(ec.num_vertices, 1_005);
        assert_eq!(ec.num_edges, 25_571);
        assert!(ec.directed);
        let yt = Dataset::Youtube.spec();
        assert_eq!(yt.num_vertices, 1_134_890);
        assert!(!yt.directed);
        // Abbreviations are unique.
        let mut abbrevs: Vec<_> = Dataset::all().iter().map(|d| d.spec().abbrev).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 8);
        assert_eq!(Dataset::small().len(), 3);
    }

    #[test]
    fn scaling_respects_caps_and_never_upscales() {
        let (n_full, m_full) = Dataset::EmailCore.scaled_size(DatasetScale::Full);
        assert_eq!(n_full, 1_005);
        assert_eq!(m_full, 25_571);
        let (n_bench, _) = Dataset::Youtube.scaled_size(DatasetScale::Bench);
        assert!(n_bench <= 6_000);
        let (n_bench_small, _) = Dataset::EmailCore.scaled_size(DatasetScale::Bench);
        assert_eq!(n_bench_small, 1_005, "small datasets are not shrunk");
        let (n_tiny, _) = Dataset::Twitter.scaled_size(DatasetScale::Tiny);
        assert!(n_tiny <= 400 + 1);
        let (n_half, m_half) = Dataset::Facebook.scaled_size(DatasetScale::Scaled(0.5));
        assert!((n_half as f64 - 4_039.0 * 0.5).abs() < 2.0);
        assert!((m_half as f64 - 88_234.0 * 0.5).abs() < 2.0);
    }

    #[test]
    fn tiny_stand_ins_have_plausible_structure() {
        for &d in Dataset::all() {
            let g = d.generate(DatasetScale::Tiny).unwrap();
            let stats = GraphStats::compute(&g);
            assert!(stats.num_vertices >= 50, "{d:?}");
            assert!(stats.num_edges > 0, "{d:?}");
            assert!(g.validate().is_ok(), "{d:?}");
            // Heavy-tailed: the max degree is well above the average.
            assert!(
                stats.max_degree as f64 > 2.0 * stats.average_degree,
                "{d:?}: max {} vs avg {}",
                stats.max_degree,
                stats.average_degree
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::WikiVote.generate(DatasetScale::Tiny).unwrap();
        let b = Dataset::WikiVote.generate(DatasetScale::Tiny).unwrap();
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        let edges_a: Vec<_> = a.edges().map(|e| (e.source, e.target)).collect();
        let edges_b: Vec<_> = b.edges().map(|e| (e.source, e.target)).collect();
        assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn undirected_stand_ins_are_symmetric() {
        let g = Dataset::Facebook.generate(DatasetScale::Tiny).unwrap();
        for e in g.edges() {
            assert!(g.has_edge(e.target, e.source));
        }
    }

    #[test]
    fn load_or_generate_falls_back_to_synthetic() {
        // IMIN_DATA_DIR is not set in the test environment (or points to a
        // directory without the file), so the synthetic path is exercised.
        let (g, real) = Dataset::EmailCore
            .load_or_generate(DatasetScale::Tiny)
            .unwrap();
        if !real {
            assert!(g.num_vertices() >= 50);
        }
    }
}
