//! Propagation-probability models (§VI-A of the paper).
//!
//! The paper evaluates under two standard probability assignments, both of
//! which operate on an existing topology:
//!
//! * **Trivalency (TR)** — every edge independently draws its probability
//!   uniformly from `{0.1, 0.01, 0.001}` \[9, 21, 57\].
//! * **Weighted Cascade (WC)** — every edge `(u, v)` gets `p(u,v) = 1 /
//!   d_in(v)` \[7, 40\].
//!
//! Two extra assignments, constant and uniform-range, are provided for tests
//! and examples.

use crate::Result;
use imin_graph::DiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The trivalency probability palette used by the TR model.
pub const TRIVALENCY_VALUES: [f64; 3] = [0.1, 0.01, 0.001];

/// A propagation-probability assignment strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbabilityModel {
    /// Trivalency model: each edge uniformly picks one of
    /// [`TRIVALENCY_VALUES`]. The `u64` is the RNG seed, making assignments
    /// reproducible.
    Trivalency {
        /// RNG seed for the per-edge draws.
        seed: u64,
    },
    /// Weighted-cascade model: `p(u, v) = 1 / d_in(v)`.
    WeightedCascade,
    /// Every edge gets the same probability.
    Constant(f64),
    /// Each edge draws uniformly from `[low, high]` (seeded).
    Uniform {
        /// Lower bound of the range.
        low: f64,
        /// Upper bound of the range.
        high: f64,
        /// RNG seed for the per-edge draws.
        seed: u64,
    },
    /// Keep whatever probabilities the graph already carries.
    Keep,
}

impl ProbabilityModel {
    /// Short identifier used in experiment output (`TR`, `WC`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            ProbabilityModel::Trivalency { .. } => "TR",
            ProbabilityModel::WeightedCascade => "WC",
            ProbabilityModel::Constant(_) => "CONST",
            ProbabilityModel::Uniform { .. } => "UNIF",
            ProbabilityModel::Keep => "KEEP",
        }
    }

    /// Returns a copy of `graph` with probabilities assigned by this model.
    ///
    /// # Errors
    /// Propagates invalid-probability errors (e.g. a constant outside
    /// `[0, 1]`).
    pub fn apply(&self, graph: &DiGraph) -> Result<DiGraph> {
        let out = match *self {
            ProbabilityModel::Keep => graph.clone(),
            ProbabilityModel::Constant(p) => graph.map_probabilities(|_, _, _| p)?,
            ProbabilityModel::WeightedCascade => graph.map_probabilities(|_, v, _| {
                let din = graph.in_degree(v);
                if din == 0 {
                    // Cannot happen for a real edge target, but stay total.
                    0.0
                } else {
                    1.0 / din as f64
                }
            })?,
            ProbabilityModel::Trivalency { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                graph.map_probabilities(|_, _, _| {
                    TRIVALENCY_VALUES[rng.gen_range(0..TRIVALENCY_VALUES.len())]
                })?
            }
            ProbabilityModel::Uniform { low, high, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                graph.map_probabilities(|_, _, _| rng.gen_range(low..=high))?
            }
        };
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_graph::{GraphBuilder, VertexId};

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn chain_with_fanin() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 2 (so d_in(2) = 2).
        let mut b = GraphBuilder::new(3);
        b.add_edge(vid(0), vid(1), 0.5).unwrap();
        b.add_edge(vid(0), vid(2), 0.5).unwrap();
        b.add_edge(vid(1), vid(2), 0.5).unwrap();
        b.build()
    }

    #[test]
    fn labels() {
        assert_eq!(ProbabilityModel::Trivalency { seed: 1 }.label(), "TR");
        assert_eq!(ProbabilityModel::WeightedCascade.label(), "WC");
        assert_eq!(ProbabilityModel::Constant(0.5).label(), "CONST");
        assert_eq!(
            ProbabilityModel::Uniform {
                low: 0.0,
                high: 1.0,
                seed: 0
            }
            .label(),
            "UNIF"
        );
        assert_eq!(ProbabilityModel::Keep.label(), "KEEP");
    }

    #[test]
    fn trivalency_uses_only_palette_values_and_is_deterministic() {
        let g = chain_with_fanin();
        let a = ProbabilityModel::Trivalency { seed: 42 }.apply(&g).unwrap();
        let b = ProbabilityModel::Trivalency { seed: 42 }.apply(&g).unwrap();
        for e in a.edges() {
            assert!(TRIVALENCY_VALUES.contains(&e.probability));
            assert_eq!(
                b.edge_probability(e.source, e.target),
                Some(e.probability),
                "same seed must give identical assignments"
            );
        }
        let c = ProbabilityModel::Trivalency { seed: 43 }.apply(&g).unwrap();
        // With a different seed at least the topology is unchanged.
        assert_eq!(c.num_edges(), g.num_edges());
    }

    #[test]
    fn weighted_cascade_uses_in_degree() {
        let g = chain_with_fanin();
        let wc = ProbabilityModel::WeightedCascade.apply(&g).unwrap();
        assert_eq!(wc.edge_probability(vid(0), vid(1)), Some(1.0));
        assert_eq!(wc.edge_probability(vid(0), vid(2)), Some(0.5));
        assert_eq!(wc.edge_probability(vid(1), vid(2)), Some(0.5));
        assert!(wc.validate().is_ok());
    }

    #[test]
    fn constant_and_keep_and_uniform() {
        let g = chain_with_fanin();
        let c = ProbabilityModel::Constant(0.2).apply(&g).unwrap();
        assert!(c.edges().all(|e| e.probability == 0.2));
        assert!(ProbabilityModel::Constant(1.5).apply(&g).is_err());

        let k = ProbabilityModel::Keep.apply(&g).unwrap();
        assert!(k.edges().all(|e| e.probability == 0.5));

        let u = ProbabilityModel::Uniform {
            low: 0.1,
            high: 0.3,
            seed: 7,
        }
        .apply(&g)
        .unwrap();
        assert!(u
            .edges()
            .all(|e| e.probability >= 0.1 && e.probability <= 0.3));
    }
}
