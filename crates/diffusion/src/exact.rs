//! Exact expected-spread computation by possible-world enumeration.
//!
//! Computing the expected spread under the IC model is #P-hard in general
//! \[21\]; the paper's Exact-vs-GreedyReplace comparison (Tables V and VI)
//! therefore runs on ~100-vertex extracts, where an exact method is
//! feasible. The original authors use the BDD technique of Maehara et al.
//! \[39\]; this crate substitutes straightforward **possible-world
//! enumeration**: the deterministic edges (probability 0 or 1) are fixed and
//! the `k` *uncertain* edges reachable from the seeds are enumerated
//! exhaustively (`2^k` worlds, each weighted by its probability). For the
//! graphs on which the paper runs its exact comparison this is exact — not
//! an estimate — and the enumeration limit makes the cost explicit.

use crate::error::validate_seeds_and_mask;
use crate::{DiffusionError, Result};
use imin_graph::traversal::TraversalWorkspace;
use imin_graph::{DiGraph, VertexId};

/// Configuration for the exact enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactSpreadConfig {
    /// Maximum number of uncertain edges to enumerate (the cost is
    /// `2^max_uncertain_edges` BFS runs). 22 ⇒ ~4M worlds.
    pub max_uncertain_edges: usize,
}

impl Default for ExactSpreadConfig {
    fn default() -> Self {
        ExactSpreadConfig {
            max_uncertain_edges: 22,
        }
    }
}

/// Exact per-vertex activation probabilities `P_G(v, S)` (Definition 1)
/// under an optional blocker mask.
///
/// # Errors
/// Returns [`DiffusionError::TooManyUncertainEdges`] if more uncertain edges
/// are reachable from the seeds than the configured limit, plus the usual
/// validation errors.
pub fn exact_activation_probabilities(
    graph: &DiGraph,
    seeds: &[VertexId],
    blocked: Option<&[bool]>,
    config: ExactSpreadConfig,
) -> Result<Vec<f64>> {
    validate_seeds_and_mask(graph.num_vertices(), seeds, blocked)?;
    let n = graph.num_vertices();
    let is_blocked = |v: usize| blocked.map(|m| m[v]).unwrap_or(false);

    // Restrict attention to the vertices reachable from the seeds through
    // positive-probability edges and non-blocked vertices. Edges outside
    // this region can never influence the outcome.
    let mut ws = TraversalWorkspace::new(n);
    let mut region: Vec<VertexId> = Vec::new();
    // Build a "positive-probability" view for the reachability pre-pass by
    // masking zero-probability edges during BFS: reuse the graph but treat
    // an edge as absent when p == 0. The traversal API works on vertices, so
    // the pre-pass here conservatively uses all edges; zero-probability
    // edges only make the region larger, never smaller, which is harmless.
    ws.bfs_collect(graph, seeds, |v| is_blocked(v.index()), &mut region);
    let mut in_region = vec![false; n];
    for &v in &region {
        in_region[v.index()] = true;
    }

    // Collect the uncertain edges inside the region.
    let mut uncertain: Vec<(u32, u32, f64)> = Vec::new();
    for &u in &region {
        let targets = graph.out_neighbors(u);
        let probs = graph.out_probabilities(u);
        for (&t, &p) in targets.iter().zip(probs) {
            if p > 0.0 && p < 1.0 && in_region[t as usize] && !is_blocked(t as usize) {
                uncertain.push((u.raw(), t, p));
            }
        }
    }
    if uncertain.len() > config.max_uncertain_edges {
        return Err(DiffusionError::TooManyUncertainEdges {
            uncertain: uncertain.len(),
            limit: config.max_uncertain_edges,
        });
    }

    // Deterministic adjacency (probability exactly 1) restricted to the region.
    let mut det_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &u in &region {
        let targets = graph.out_neighbors(u);
        let probs = graph.out_probabilities(u);
        for (&t, &p) in targets.iter().zip(probs) {
            if p >= 1.0 && in_region[t as usize] && !is_blocked(t as usize) {
                det_adj[u.index()].push(t);
            }
        }
    }

    let k = uncertain.len();
    let mut activation = vec![0.0f64; n];
    let mut visited = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    let mut extra_adj: Vec<Vec<u32>> = vec![Vec::new(); n];

    for world in 0u64..(1u64 << k) {
        // World probability and the live uncertain edges.
        let mut weight = 1.0f64;
        for lists in extra_adj.iter_mut() {
            lists.clear();
        }
        for (i, &(u, t, p)) in uncertain.iter().enumerate() {
            if (world >> i) & 1 == 1 {
                weight *= p;
                extra_adj[u as usize].push(t);
            } else {
                weight *= 1.0 - p;
            }
        }
        if weight == 0.0 {
            continue;
        }
        // BFS over deterministic + live uncertain edges.
        visited.iter_mut().for_each(|v| *v = false);
        queue.clear();
        for &s in seeds {
            if !visited[s.index()] && !is_blocked(s.index()) {
                visited[s.index()] = true;
                queue.push(s.raw());
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &t in det_adj[u].iter().chain(extra_adj[u].iter()) {
                let ti = t as usize;
                if !visited[ti] && !is_blocked(ti) {
                    visited[ti] = true;
                    queue.push(t);
                }
            }
        }
        for &v in &queue {
            activation[v as usize] += weight;
        }
    }
    Ok(activation)
}

/// Exact expected spread `E(S, G[V \ B])` — the sum of the exact activation
/// probabilities (Definition 3, which the paper's Example 1 evaluates as
/// 7.66 on the toy graph).
pub fn exact_expected_spread(
    graph: &DiGraph,
    seeds: &[VertexId],
    blocked: Option<&[bool]>,
    config: ExactSpreadConfig,
) -> Result<f64> {
    Ok(
        exact_activation_probabilities(graph, seeds, blocked, config)?
            .iter()
            .sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloEstimator;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn two_hop_closed_form() {
        let g = DiGraph::from_edges(3, vec![(vid(0), vid(1), 0.5), (vid(1), vid(2), 0.5)]).unwrap();
        let probs =
            exact_activation_probabilities(&g, &[vid(0)], None, ExactSpreadConfig::default())
                .unwrap();
        assert!((probs[0] - 1.0).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
        assert!((probs[2] - 0.25).abs() < 1e-12);
        let e = exact_expected_spread(&g, &[vid(0)], None, ExactSpreadConfig::default()).unwrap();
        assert!((e - 1.75).abs() < 1e-12);
    }

    #[test]
    fn correlated_paths_are_handled_exactly() {
        // Diamond with shared source randomness: 0 -> 1 (0.5), 0 -> 2 (0.5),
        // 1 -> 3 (1.0), 2 -> 3 (1.0).
        // P(3) = 1 - (1 - 0.5)(1 - 0.5) = 0.75, E = 1 + 0.5 + 0.5 + 0.75.
        let g = DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 0.5),
                (vid(0), vid(2), 0.5),
                (vid(1), vid(3), 1.0),
                (vid(2), vid(3), 1.0),
            ],
        )
        .unwrap();
        let e = exact_expected_spread(&g, &[vid(0)], None, ExactSpreadConfig::default()).unwrap();
        assert!((e - 2.75).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_monte_carlo_on_random_small_graph() {
        let g = imin_graph::generators::erdos_renyi(12, 0.2, 0.3, 5).unwrap();
        let cfg = ExactSpreadConfig {
            max_uncertain_edges: 40,
        };
        match exact_expected_spread(&g, &[vid(0)], None, cfg) {
            Ok(exact) => {
                let mcs = MonteCarloEstimator::new(60_000)
                    .with_seed(77)
                    .expected_spread(&g, &[vid(0)])
                    .unwrap();
                assert!(
                    mcs.is_consistent_with(exact, 0.05),
                    "exact {exact} vs MCS {}",
                    mcs.mean
                );
            }
            Err(DiffusionError::TooManyUncertainEdges { .. }) => {
                // The random instance had too many uncertain edges for this
                // budget — acceptable, the limit works as designed.
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn blocking_is_respected() {
        let g = DiGraph::from_edges(3, vec![(vid(0), vid(1), 0.5), (vid(1), vid(2), 1.0)]).unwrap();
        let mut blocked = vec![false; 3];
        blocked[1] = true;
        let e = exact_expected_spread(&g, &[vid(0)], Some(&blocked), ExactSpreadConfig::default())
            .unwrap();
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncertain_edge_limit_is_enforced() {
        let g = imin_graph::generators::complete(6, 0.5).unwrap();
        let cfg = ExactSpreadConfig {
            max_uncertain_edges: 3,
        };
        assert!(matches!(
            exact_expected_spread(&g, &[vid(0)], None, cfg),
            Err(DiffusionError::TooManyUncertainEdges { .. })
        ));
    }

    #[test]
    fn multiple_seeds_and_unreachable_vertices() {
        let g = DiGraph::from_edges(
            5,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(2), vid(3), 0.5),
                // vertex 4 is isolated
            ],
        )
        .unwrap();
        let e = exact_expected_spread(&g, &[vid(0), vid(2)], None, ExactSpreadConfig::default())
            .unwrap();
        assert!((e - 3.5).abs() < 1e-12);
        let probs = exact_activation_probabilities(
            &g,
            &[vid(0), vid(2)],
            None,
            ExactSpreadConfig::default(),
        )
        .unwrap();
        assert_eq!(probs[4], 0.0);
    }

    #[test]
    fn validation_errors_propagate() {
        let g = DiGraph::empty(2);
        assert!(exact_expected_spread(&g, &[], None, ExactSpreadConfig::default()).is_err());
        assert!(exact_expected_spread(&g, &[vid(5)], None, ExactSpreadConfig::default()).is_err());
    }
}
