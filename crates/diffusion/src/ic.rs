//! Single-run simulation of the independent cascade (IC) model.
//!
//! One simulation corresponds to one "round" of Monte-Carlo estimation
//! (§V-A): the seeds start active, and every newly activated vertex gets one
//! independent chance per out-edge to activate the target. Blocked vertices
//! can never be activated (Definition 2).

use crate::error::validate_seeds_and_mask;
use crate::Result;
use imin_graph::{DiGraph, VertexId};
use rand::Rng;

/// The outcome of one IC cascade.
#[derive(Clone, Debug)]
pub struct CascadeOutcome {
    /// Every vertex activated during the process, in activation order
    /// (seeds first).
    pub activated: Vec<VertexId>,
    /// Activation timestamp of each activated vertex (seeds have timestamp
    /// 0), parallel to `activated`.
    pub timestamps: Vec<u32>,
}

impl CascadeOutcome {
    /// Number of active vertices at the end of the process (the quantity
    /// averaged by Monte-Carlo spread estimation).
    pub fn spread(&self) -> usize {
        self.activated.len()
    }

    /// Returns `true` if the given vertex was activated.
    pub fn is_activated(&self, v: VertexId) -> bool {
        self.activated.contains(&v)
    }
}

/// A reusable cascade simulator.
///
/// Monte-Carlo estimation runs tens of thousands of cascades on the same
/// graph; the simulator keeps its visited-stamp array and frontier queue
/// allocated across runs.
#[derive(Clone, Debug)]
pub struct CascadeSimulator {
    stamps: Vec<u32>,
    stamp: u32,
    queue: Vec<u32>,
}

impl CascadeSimulator {
    /// Creates a simulator for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        CascadeSimulator {
            stamps: vec![0; n],
            stamp: 0,
            queue: Vec::new(),
        }
    }

    fn next_stamp(&mut self, n: usize) -> u32 {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        if self.stamp == u32::MAX {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }

    /// Runs one cascade and returns only the number of activated vertices.
    ///
    /// `blocked(v)` must return `true` for vertices that can never activate.
    /// Seeds are assumed valid (checked by the public wrappers); blocked
    /// seeds are skipped.
    pub fn run_count<R: Rng + ?Sized, F: FnMut(VertexId) -> bool>(
        &mut self,
        graph: &DiGraph,
        seeds: &[VertexId],
        mut blocked: F,
        rng: &mut R,
    ) -> usize {
        let stamp = self.next_stamp(graph.num_vertices());
        self.queue.clear();
        let mut count = 0usize;
        for &s in seeds {
            if s.index() >= graph.num_vertices() || blocked(s) {
                continue;
            }
            if self.stamps[s.index()] != stamp {
                self.stamps[s.index()] = stamp;
                self.queue.push(s.raw());
                count += 1;
            }
        }
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = VertexId::from_raw(self.queue[head]);
            head += 1;
            let targets = graph.out_neighbors(u);
            let probs = graph.out_probabilities(u);
            for (&t, &p) in targets.iter().zip(probs) {
                let ti = t as usize;
                if self.stamps[ti] == stamp {
                    continue;
                }
                // Cheap short-circuits for the deterministic edge cases keep
                // the RNG off the hot path when p is 0 or 1.
                let success = if p >= 1.0 {
                    true
                } else if p <= 0.0 {
                    false
                } else {
                    rng.gen_bool(p)
                };
                if !success {
                    continue;
                }
                let tv = VertexId::from_raw(t);
                if blocked(tv) {
                    continue;
                }
                self.stamps[ti] = stamp;
                self.queue.push(t);
                count += 1;
            }
        }
        count
    }
}

/// Runs a single IC cascade and returns the full outcome (activation order
/// and timestamps). Intended for examples, tests and visualisation; the hot
/// path used by Monte-Carlo estimation is [`CascadeSimulator::run_count`].
///
/// # Errors
/// Returns an error if the seed set is empty, a seed is out of range, the
/// mask has the wrong length or a seed is blocked.
pub fn simulate_cascade<R: Rng + ?Sized>(
    graph: &DiGraph,
    seeds: &[VertexId],
    blocked: Option<&[bool]>,
    rng: &mut R,
) -> Result<CascadeOutcome> {
    validate_seeds_and_mask(graph.num_vertices(), seeds, blocked)?;
    let n = graph.num_vertices();
    let mut active = vec![false; n];
    let mut activated = Vec::new();
    let mut timestamps = Vec::new();
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        if !active[s.index()] {
            active[s.index()] = true;
            activated.push(s);
            timestamps.push(0);
            frontier.push(s);
        }
    }
    let mut time = 0u32;
    while !frontier.is_empty() {
        time += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for (v, p) in graph.out_edges(u) {
                if active[v.index()] {
                    continue;
                }
                if blocked.map(|m| m[v.index()]).unwrap_or(false) {
                    continue;
                }
                let success = if p >= 1.0 {
                    true
                } else if p <= 0.0 {
                    false
                } else {
                    rng.gen_bool(p)
                };
                if success {
                    active[v.index()] = true;
                    activated.push(v);
                    timestamps.push(time);
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    Ok(CascadeOutcome {
        activated,
        timestamps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn deterministic_path() -> DiGraph {
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(2), vid(3), 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn deterministic_cascade_activates_everything() {
        let g = deterministic_path();
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulate_cascade(&g, &[vid(0)], None, &mut rng).unwrap();
        assert_eq!(out.spread(), 4);
        assert_eq!(out.timestamps, vec![0, 1, 2, 3]);
        assert!(out.is_activated(vid(3)));
    }

    #[test]
    fn zero_probability_edges_never_fire() {
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 0.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let out = simulate_cascade(&g, &[vid(0)], None, &mut rng).unwrap();
            assert_eq!(out.spread(), 1);
        }
    }

    #[test]
    fn blocking_stops_the_cascade() {
        let g = deterministic_path();
        let mut blocked = vec![false; 4];
        blocked[2] = true;
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulate_cascade(&g, &[vid(0)], Some(&blocked), &mut rng).unwrap();
        assert_eq!(out.spread(), 2);
        assert!(!out.is_activated(vid(2)));
        assert!(!out.is_activated(vid(3)));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = deterministic_path();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(simulate_cascade(&g, &[], None, &mut rng).is_err());
        assert!(simulate_cascade(&g, &[vid(9)], None, &mut rng).is_err());
        assert!(simulate_cascade(&g, &[vid(0)], Some(&[false; 2]), &mut rng).is_err());
        let mut mask = vec![false; 4];
        mask[0] = true;
        assert!(simulate_cascade(&g, &[vid(0)], Some(&mask), &mut rng).is_err());
    }

    #[test]
    fn duplicate_seeds_are_counted_once() {
        let g = deterministic_path();
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulate_cascade(&g, &[vid(0), vid(0)], None, &mut rng).unwrap();
        assert_eq!(out.spread(), 4);
    }

    #[test]
    fn simulator_count_matches_full_simulation_on_deterministic_graphs() {
        let g = deterministic_path();
        let mut sim = CascadeSimulator::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sim.run_count(&g, &[vid(0)], |_| false, &mut rng), 4);
        assert_eq!(sim.run_count(&g, &[vid(2)], |_| false, &mut rng), 2);
        assert_eq!(sim.run_count(&g, &[vid(0)], |v| v == vid(1), &mut rng), 1);
        // Blocked seed contributes nothing.
        assert_eq!(sim.run_count(&g, &[vid(0)], |v| v == vid(0), &mut rng), 0);
    }

    #[test]
    fn probabilistic_edge_fires_with_expected_frequency() {
        // 0 -> 1 with p = 0.3: over many runs the average spread is ~1.3.
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 0.3)]).unwrap();
        let mut sim = CascadeSimulator::new(2);
        let mut rng = StdRng::seed_from_u64(7);
        let rounds = 20_000;
        let total: usize = (0..rounds)
            .map(|_| sim.run_count(&g, &[vid(0)], |_| false, &mut rng))
            .sum();
        let mean = total as f64 / rounds as f64;
        assert!(
            (mean - 1.3).abs() < 0.02,
            "mean spread {mean} too far from 1.3"
        );
    }
}
