//! Error types for diffusion and spread computation.

use std::fmt;

/// Errors produced by spread estimators and probability models.
#[derive(Debug)]
pub enum DiffusionError {
    /// A seed vertex does not exist in the graph.
    SeedOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// Number of vertices of the graph.
        num_vertices: usize,
    },
    /// The seed set is empty where at least one seed is required.
    EmptySeedSet,
    /// A blocked-vertex mask has the wrong length for the graph.
    MaskLengthMismatch {
        /// Length of the supplied mask.
        mask_len: usize,
        /// Number of vertices of the graph.
        num_vertices: usize,
    },
    /// A seed vertex is also marked as blocked, which the problem definition
    /// forbids (`B ⊆ V \ S`).
    BlockedSeed {
        /// The seed that was blocked.
        vertex: usize,
    },
    /// The estimator was configured with zero simulation rounds / samples.
    ZeroRounds,
    /// The exact computation was asked to enumerate more uncertain edges
    /// than the configured limit allows.
    TooManyUncertainEdges {
        /// Number of uncertain (probability strictly between 0 and 1) edges
        /// reachable from the seeds.
        uncertain: usize,
        /// The configured enumeration limit.
        limit: usize,
    },
    /// An error bubbled up from the graph layer.
    Graph(imin_graph::GraphError),
}

impl fmt::Display for DiffusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffusionError::SeedOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "seed vertex {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            DiffusionError::EmptySeedSet => write!(f, "the seed set must not be empty"),
            DiffusionError::MaskLengthMismatch {
                mask_len,
                num_vertices,
            } => write!(
                f,
                "blocked mask has length {mask_len} but the graph has {num_vertices} vertices"
            ),
            DiffusionError::BlockedSeed { vertex } => {
                write!(f, "seed vertex {vertex} must not be blocked (B ⊆ V \\ S)")
            }
            DiffusionError::ZeroRounds => {
                write!(f, "the number of simulation rounds/samples must be positive")
            }
            DiffusionError::TooManyUncertainEdges { uncertain, limit } => write!(
                f,
                "exact spread enumeration needs 2^{uncertain} worlds which exceeds the limit of 2^{limit}"
            ),
            DiffusionError::Graph(err) => write!(f, "graph error: {err}"),
        }
    }
}

impl std::error::Error for DiffusionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiffusionError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<imin_graph::GraphError> for DiffusionError {
    fn from(err: imin_graph::GraphError) -> Self {
        DiffusionError::Graph(err)
    }
}

/// Validates seeds and an optional blocked mask against a graph.
pub(crate) fn validate_seeds_and_mask(
    num_vertices: usize,
    seeds: &[imin_graph::VertexId],
    blocked: Option<&[bool]>,
) -> std::result::Result<(), DiffusionError> {
    if seeds.is_empty() {
        return Err(DiffusionError::EmptySeedSet);
    }
    for &s in seeds {
        if s.index() >= num_vertices {
            return Err(DiffusionError::SeedOutOfRange {
                vertex: s.index(),
                num_vertices,
            });
        }
    }
    if let Some(mask) = blocked {
        if mask.len() != num_vertices {
            return Err(DiffusionError::MaskLengthMismatch {
                mask_len: mask.len(),
                num_vertices,
            });
        }
        for &s in seeds {
            if mask[s.index()] {
                return Err(DiffusionError::BlockedSeed { vertex: s.index() });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_graph::VertexId;

    #[test]
    fn validation_rejects_bad_inputs() {
        let v0 = VertexId::new(0);
        let v9 = VertexId::new(9);
        assert!(matches!(
            validate_seeds_and_mask(5, &[], None),
            Err(DiffusionError::EmptySeedSet)
        ));
        assert!(matches!(
            validate_seeds_and_mask(5, &[v9], None),
            Err(DiffusionError::SeedOutOfRange { .. })
        ));
        assert!(matches!(
            validate_seeds_and_mask(5, &[v0], Some(&[false; 3])),
            Err(DiffusionError::MaskLengthMismatch { .. })
        ));
        let mut mask = vec![false; 5];
        mask[0] = true;
        assert!(matches!(
            validate_seeds_and_mask(5, &[v0], Some(&mask)),
            Err(DiffusionError::BlockedSeed { vertex: 0 })
        ));
        assert!(validate_seeds_and_mask(5, &[v0], Some(&[false; 5])).is_ok());
        assert!(validate_seeds_and_mask(5, &[v0], None).is_ok());
    }

    #[test]
    fn display_messages() {
        assert!(DiffusionError::EmptySeedSet
            .to_string()
            .contains("seed set"));
        assert!(DiffusionError::ZeroRounds.to_string().contains("positive"));
        let e = DiffusionError::TooManyUncertainEdges {
            uncertain: 40,
            limit: 25,
        };
        assert!(e.to_string().contains("2^40"));
        let g: DiffusionError =
            imin_graph::GraphError::InvalidProbability { probability: 2.0 }.into();
        assert!(g.to_string().contains("graph error"));
        assert!(std::error::Error::source(&g).is_some());
    }
}
