//! The triggering model (§V-E) and its live-edge sampling.
//!
//! The triggering model generalises both IC and LT: every vertex `v` draws a
//! *triggering set* `T(v)` from a distribution over subsets of its
//! in-neighbours; `v` becomes active when any member of `T(v)` is active. A
//! live-edge sample keeps the in-edge `(u, v)` exactly when `u ∈ T(v)`, and
//! the spread equals the expected reachability from the seeds in that sample
//! — so the AdvancedGreedy/GreedyReplace machinery runs unchanged on
//! triggering-sampled graphs (the extension the paper describes in §V-E).

use crate::error::validate_seeds_and_mask;
use crate::live_edge::{reachable_in_sample, LiveEdgeSample};
use crate::{DiffusionError, Result};
use imin_graph::{DiGraph, VertexId};
use rand::{Rng, RngCore};

/// A distribution over triggering sets.
pub trait TriggeringModel: Send + Sync {
    /// Short identifier used in experiment output.
    fn label(&self) -> &'static str;

    /// Samples the triggering set of `v` and appends its members (which must
    /// be in-neighbours of `v`) to `out`.
    fn sample_triggering_set(
        &self,
        graph: &DiGraph,
        v: VertexId,
        rng: &mut dyn RngCore,
        out: &mut Vec<VertexId>,
    );
}

/// Independent-cascade triggering: each in-neighbour `u` of `v` joins `T(v)`
/// independently with probability `p(u, v)`. Sampling under this model is
/// distributionally identical to IC live-edge sampling (Definition 4).
#[derive(Clone, Copy, Debug, Default)]
pub struct IcTriggering;

impl TriggeringModel for IcTriggering {
    fn label(&self) -> &'static str {
        "IC"
    }

    fn sample_triggering_set(
        &self,
        graph: &DiGraph,
        v: VertexId,
        rng: &mut dyn RngCore,
        out: &mut Vec<VertexId>,
    ) {
        let sources = graph.in_neighbors(v);
        let probs = graph.in_probabilities(v);
        for (&s, &p) in sources.iter().zip(probs) {
            let keep = if p >= 1.0 {
                true
            } else if p <= 0.0 {
                false
            } else {
                (*rng).gen_bool(p)
            };
            if keep {
                out.push(VertexId::from_raw(s));
            }
        }
    }
}

/// Linear-threshold triggering: `v` picks **at most one** in-neighbour, with
/// `u` chosen with probability `w(u, v)` where the weights are the edge
/// probabilities rescaled to sum to at most 1 (the standard LT live-edge
/// construction of Kempe et al.).
#[derive(Clone, Copy, Debug, Default)]
pub struct LtTriggering;

impl TriggeringModel for LtTriggering {
    fn label(&self) -> &'static str {
        "LT"
    }

    fn sample_triggering_set(
        &self,
        graph: &DiGraph,
        v: VertexId,
        rng: &mut dyn RngCore,
        out: &mut Vec<VertexId>,
    ) {
        let sources = graph.in_neighbors(v);
        let probs = graph.in_probabilities(v);
        if sources.is_empty() {
            return;
        }
        let total: f64 = probs.iter().sum();
        let scale = if total > 1.0 { 1.0 / total } else { 1.0 };
        let mut draw: f64 = (*rng).gen_range(0.0..1.0);
        for (&s, &p) in sources.iter().zip(probs) {
            let w = p * scale;
            if draw < w {
                out.push(VertexId::from_raw(s));
                return;
            }
            draw -= w;
        }
        // Remaining mass: the empty triggering set.
    }
}

/// Draws one triggering-model live-edge sample as an out-adjacency list
/// (edge `u -> v` present iff `u ∈ T(v)`).
pub fn sample_triggering_live_edges<M: TriggeringModel + ?Sized, R: Rng>(
    graph: &DiGraph,
    model: &M,
    rng: &mut R,
) -> LiveEdgeSample {
    let n = graph.num_vertices();
    let mut adjacency: LiveEdgeSample = vec![Vec::new(); n];
    let mut set = Vec::new();
    for v in graph.vertices() {
        set.clear();
        model.sample_triggering_set(graph, v, rng, &mut set);
        for &u in &set {
            adjacency[u.index()].push(v.raw());
        }
    }
    adjacency
}

/// Estimates the expected spread under a triggering model by averaging
/// live-edge reachability over `samples` draws.
pub fn triggering_expected_spread<M: TriggeringModel + ?Sized, R: Rng>(
    graph: &DiGraph,
    model: &M,
    seeds: &[VertexId],
    blocked: Option<&[bool]>,
    samples: usize,
    rng: &mut R,
) -> Result<f64> {
    validate_seeds_and_mask(graph.num_vertices(), seeds, blocked)?;
    if samples == 0 {
        return Err(DiffusionError::ZeroRounds);
    }
    let mut total = 0usize;
    for _ in 0..samples {
        let sample = sample_triggering_live_edges(graph, model, rng);
        total += reachable_in_sample(&sample, seeds, blocked);
    }
    Ok(total as f64 / samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn two_hop() -> DiGraph {
        DiGraph::from_edges(3, vec![(vid(0), vid(1), 0.5), (vid(1), vid(2), 0.5)]).unwrap()
    }

    #[test]
    fn labels() {
        assert_eq!(IcTriggering.label(), "IC");
        assert_eq!(LtTriggering.label(), "LT");
    }

    #[test]
    fn ic_triggering_matches_ic_expected_spread() {
        let g = two_hop();
        let mut rng = StdRng::seed_from_u64(21);
        let spread =
            triggering_expected_spread(&g, &IcTriggering, &[vid(0)], None, 30_000, &mut rng)
                .unwrap();
        assert!(
            (spread - 1.75).abs() < 0.04,
            "IC triggering spread {spread}"
        );
    }

    #[test]
    fn lt_triggering_picks_at_most_one_in_neighbor() {
        // Vertex 2 has two in-edges with weights 0.6 and 0.6 (rescaled to 0.5
        // each): exactly one of them is ever live per sample.
        let g = DiGraph::from_edges(3, vec![(vid(0), vid(2), 0.6), (vid(1), vid(2), 0.6)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let s = sample_triggering_live_edges(&g, &LtTriggering, &mut rng);
            let live_in_edges = usize::from(s[0].contains(&2)) + usize::from(s[1].contains(&2));
            assert!(live_in_edges <= 1);
        }
    }

    #[test]
    fn lt_spread_on_simple_chain() {
        // 0 -> 1 with weight 0.4: under LT, T(1) = {0} with probability 0.4,
        // so E = 1 + 0.4.
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 0.4)]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let spread =
            triggering_expected_spread(&g, &LtTriggering, &[vid(0)], None, 40_000, &mut rng)
                .unwrap();
        assert!((spread - 1.4).abs() < 0.02, "LT spread {spread}");
    }

    #[test]
    fn blocking_under_triggering() {
        let g = two_hop();
        let mut rng = StdRng::seed_from_u64(8);
        let mut blocked = vec![false; 3];
        blocked[1] = true;
        let spread = triggering_expected_spread(
            &g,
            &IcTriggering,
            &[vid(0)],
            Some(&blocked),
            2_000,
            &mut rng,
        )
        .unwrap();
        assert_eq!(spread, 1.0);
    }

    #[test]
    fn validation_errors() {
        let g = two_hop();
        let mut rng = StdRng::seed_from_u64(8);
        assert!(triggering_expected_spread(&g, &IcTriggering, &[], None, 10, &mut rng).is_err());
        assert!(
            triggering_expected_spread(&g, &IcTriggering, &[vid(0)], None, 0, &mut rng).is_err()
        );
    }
}
