//! # imin-diffusion
//!
//! Diffusion models and expected-spread computation for the vertex-blocking
//! influence-minimization workspace.
//!
//! The reproduced paper works under the **independent cascade (IC)** model
//! (§III-A): every edge `(u, v)` carries a probability `p(u,v)`; when `u`
//! becomes active it gets a single chance to activate each inactive
//! out-neighbour `v`, succeeding independently with probability `p(u,v)`.
//! The *expected spread* `E(S, G)` is the expected number of active vertices
//! when the process stops (Definition 3). Computing it exactly is #P-hard
//! \[21\], so the paper (and this crate) provides:
//!
//! * [`montecarlo`] — Monte-Carlo simulation (MCS), the estimator used by
//!   the BaselineGreedy state of the art (§V-A); sequential and
//!   multi-threaded variants with deterministic seeding.
//! * [`exact`] — exact expected spread by enumerating the possible worlds of
//!   the *uncertain* edges, feasible on the ≤100-vertex extracts used for
//!   the Exact-vs-GreedyReplace comparison (Tables V and VI).
//! * [`models`] — the propagation-probability assignments of §VI-A:
//!   Trivalency (TR) and Weighted Cascade (WC), plus constant/uniform
//!   variants for tests.
//! * [`ic`] — a single IC cascade simulation with optional blocked-vertex
//!   masks (Definition 2).
//! * [`live_edge`] — live-edge (possible-world) graph sampling, the bridge
//!   between the IC model and the dominator-tree machinery of the core crate
//!   (Definition 4, Lemma 1).
//! * [`triggering`] — the general triggering model of §V-E (IC and LT are
//!   special cases), so the core algorithms can run unchanged on
//!   triggering-sampled graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exact;
pub mod ic;
pub mod live_edge;
pub mod models;
pub mod montecarlo;
pub mod spread;
pub mod triggering;

pub use error::DiffusionError;
pub use models::ProbabilityModel;
pub use montecarlo::MonteCarloEstimator;
pub use spread::SpreadEstimate;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DiffusionError>;
