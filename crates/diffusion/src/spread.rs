//! Spread-estimate statistics.

/// A Monte-Carlo estimate of the expected spread `E(S, G[V \ B])`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpreadEstimate {
    /// Sample mean of the spread over all simulation rounds.
    pub mean: f64,
    /// Unbiased sample variance of the per-round spread.
    pub variance: f64,
    /// Number of simulation rounds.
    pub rounds: usize,
}

impl SpreadEstimate {
    /// Builds an estimate from the sum and sum of squares of per-round
    /// spreads.
    pub fn from_sums(sum: f64, sum_sq: f64, rounds: usize) -> Self {
        assert!(rounds > 0, "at least one round is required");
        let mean = sum / rounds as f64;
        let variance = if rounds > 1 {
            ((sum_sq - sum * sum / rounds as f64) / (rounds as f64 - 1.0)).max(0.0)
        } else {
            0.0
        };
        SpreadEstimate {
            mean,
            variance,
            rounds,
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        (self.variance / self.rounds as f64).sqrt()
    }

    /// Half-width of an approximate 95% confidence interval
    /// (normal approximation).
    pub fn confidence_95(&self) -> f64 {
        1.96 * self.standard_error()
    }

    /// Returns `true` if `other` lies within this estimate's 95% interval
    /// widened by `slack` — the tolerance check used by statistical tests.
    pub fn is_consistent_with(&self, other: f64, slack: f64) -> bool {
        (self.mean - other).abs() <= self.confidence_95() + slack
    }
}

impl std::fmt::Display for SpreadEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({} rounds)",
            self.mean,
            self.confidence_95(),
            self.rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sums_computes_mean_and_variance() {
        // Samples: 1, 2, 3 → mean 2, variance 1.
        let e = SpreadEstimate::from_sums(6.0, 14.0, 3);
        assert!((e.mean - 2.0).abs() < 1e-12);
        assert!((e.variance - 1.0).abs() < 1e-12);
        assert!((e.standard_error() - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(e.confidence_95() > 0.0);
        assert!(e.is_consistent_with(2.5, 0.0));
        assert!(!e.is_consistent_with(10.0, 0.0));
        assert!(e.to_string().contains("rounds"));
    }

    #[test]
    fn single_round_has_zero_variance() {
        let e = SpreadEstimate::from_sums(5.0, 25.0, 1);
        assert_eq!(e.mean, 5.0);
        assert_eq!(e.variance, 0.0);
        assert_eq!(e.standard_error(), 0.0);
    }

    #[test]
    fn identical_samples_have_zero_variance_despite_rounding() {
        // 10 samples all equal to 3: sum 30, sum_sq 90.
        let e = SpreadEstimate::from_sums(30.0, 90.0, 10);
        assert!((e.mean - 3.0).abs() < 1e-12);
        assert_eq!(e.variance, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let _ = SpreadEstimate::from_sums(0.0, 0.0, 0);
    }
}
