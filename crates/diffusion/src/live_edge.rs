//! Live-edge (possible-world) sampling of the IC model.
//!
//! Definition 4 of the paper: a *random sampled graph* `g` keeps every edge
//! `(u, v)` of `G` independently with probability `p(u, v)`. Lemma 1 (due to
//! Kempe et al.) states that the expected number of vertices reachable from
//! the seed in `g` equals the expected spread `E({s}, G)` — this equivalence
//! is what lets the core crate replace per-candidate Monte-Carlo simulation
//! with dominator trees over sampled graphs.
//!
//! This module materialises full live-edge samples as adjacency lists. The
//! core crate has a faster sampler that only explores the part reachable
//! from the seed; the functions here are used by tests (to validate that
//! sampler), by the triggering-model extension and by small examples.

use crate::error::validate_seeds_and_mask;
use crate::Result;
use imin_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A materialised live-edge sample: `adjacency[u]` lists the targets of the
/// edges of `u` that survived the coin flips.
pub type LiveEdgeSample = Vec<Vec<u32>>;

/// Derives the RNG seed of sample number `sample_idx` within a pool whose
/// base seed is `pool_seed`.
///
/// This is the indexed-stream contract shared by every sampler that
/// materialises a pool of samples: each sample owns an independent,
/// reproducible RNG stream keyed only by `(pool_seed, sample_idx)`, so a
/// pool can be built by any number of worker threads — or rebuilt
/// incrementally — and still be **bit-identical** sample by sample. The mix
/// is a SplitMix64 finaliser over the golden-ratio-spaced index, the same
/// construction `SeedableRng::seed_from_u64` uses internally.
#[inline]
pub fn indexed_sample_seed(pool_seed: u64, sample_idx: u64) -> u64 {
    let mut z = pool_seed ^ sample_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws the `sample_idx`-th live-edge sample of the pool `(pool_seed, θ)`.
///
/// Unlike [`sample_live_edges`], which advances a caller-owned RNG, this
/// entry point is parameterised by the explicit per-sample seed of
/// [`indexed_sample_seed`]: calling it for `sample_idx ∈ 0..θ` in any order
/// (or from any sharding of indices across threads) reproduces the exact
/// same pool.
pub fn sample_live_edges_indexed(
    graph: &DiGraph,
    pool_seed: u64,
    sample_idx: u64,
) -> LiveEdgeSample {
    let mut rng = SmallRng::seed_from_u64(indexed_sample_seed(pool_seed, sample_idx));
    sample_live_edges(graph, &mut rng)
}

/// Draws one live-edge sample of the whole graph.
pub fn sample_live_edges<R: Rng + ?Sized>(graph: &DiGraph, rng: &mut R) -> LiveEdgeSample {
    let n = graph.num_vertices();
    let mut adjacency: LiveEdgeSample = vec![Vec::new(); n];
    for u in graph.vertices() {
        let targets = graph.out_neighbors(u);
        let probs = graph.out_probabilities(u);
        let out = &mut adjacency[u.index()];
        for (&t, &p) in targets.iter().zip(probs) {
            let keep = if p >= 1.0 {
                true
            } else if p <= 0.0 {
                false
            } else {
                rng.gen_bool(p)
            };
            if keep {
                out.push(t);
            }
        }
    }
    adjacency
}

/// Number of vertices reachable from `seeds` in a live-edge sample,
/// optionally skipping blocked vertices. One call corresponds to one
/// Monte-Carlo round (Lemma 1).
pub fn sample_reachable_count<R: Rng + ?Sized>(
    graph: &DiGraph,
    seeds: &[VertexId],
    blocked: Option<&[bool]>,
    rng: &mut R,
) -> Result<usize> {
    validate_seeds_and_mask(graph.num_vertices(), seeds, blocked)?;
    let sample = sample_live_edges(graph, rng);
    Ok(reachable_in_sample(&sample, seeds, blocked))
}

/// BFS reachability inside a materialised sample.
pub fn reachable_in_sample(
    sample: &LiveEdgeSample,
    seeds: &[VertexId],
    blocked: Option<&[bool]>,
) -> usize {
    let n = sample.len();
    let mut visited = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    let is_blocked = |v: usize| blocked.map(|m| m[v]).unwrap_or(false);
    let mut count = 0usize;
    for &s in seeds {
        if s.index() < n && !visited[s.index()] && !is_blocked(s.index()) {
            visited[s.index()] = true;
            queue.push(s.raw());
            count += 1;
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head] as usize;
        head += 1;
        for &t in &sample[u] {
            let ti = t as usize;
            if !visited[ti] && !is_blocked(ti) {
                visited[ti] = true;
                queue.push(t);
                count += 1;
            }
        }
    }
    count
}

/// Estimates the expected spread by averaging live-edge reachability over
/// `samples` draws — functionally identical to Monte-Carlo simulation and
/// used in tests to confirm Lemma 1 empirically.
pub fn estimate_spread_by_sampling<R: Rng + ?Sized>(
    graph: &DiGraph,
    seeds: &[VertexId],
    blocked: Option<&[bool]>,
    samples: usize,
    rng: &mut R,
) -> Result<f64> {
    validate_seeds_and_mask(graph.num_vertices(), seeds, blocked)?;
    if samples == 0 {
        return Err(crate::DiffusionError::ZeroRounds);
    }
    let mut total = 0usize;
    for _ in 0..samples {
        total += sample_reachable_count(graph, seeds, blocked, rng)?;
    }
    Ok(total as f64 / samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloEstimator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn two_hop() -> DiGraph {
        DiGraph::from_edges(3, vec![(vid(0), vid(1), 0.5), (vid(1), vid(2), 0.5)]).unwrap()
    }

    #[test]
    fn deterministic_edges_always_survive() {
        let g = DiGraph::from_edges(3, vec![(vid(0), vid(1), 1.0), (vid(1), vid(2), 0.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = sample_live_edges(&g, &mut rng);
            assert_eq!(s[0], vec![1]);
            assert!(s[1].is_empty());
        }
    }

    #[test]
    fn sampling_estimate_agrees_with_monte_carlo_lemma1() {
        let g = two_hop();
        let mut rng = StdRng::seed_from_u64(9);
        let by_sampling =
            estimate_spread_by_sampling(&g, &[vid(0)], None, 30_000, &mut rng).unwrap();
        let by_mcs = MonteCarloEstimator::new(30_000)
            .with_threads(1)
            .with_seed(10)
            .expected_spread(&g, &[vid(0)])
            .unwrap()
            .mean;
        assert!((by_sampling - 1.75).abs() < 0.04);
        assert!((by_sampling - by_mcs).abs() < 0.05);
    }

    #[test]
    fn blocking_in_samples_matches_definition() {
        let g = two_hop();
        let mut rng = StdRng::seed_from_u64(3);
        let mut blocked = vec![false; 3];
        blocked[1] = true;
        let est =
            estimate_spread_by_sampling(&g, &[vid(0)], Some(&blocked), 500, &mut rng).unwrap();
        assert_eq!(est, 1.0);
    }

    #[test]
    fn validation_errors_propagate() {
        let g = two_hop();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_reachable_count(&g, &[], None, &mut rng).is_err());
        assert!(estimate_spread_by_sampling(&g, &[vid(0)], None, 0, &mut rng).is_err());
    }

    #[test]
    fn indexed_samples_are_reproducible_and_independent_of_order() {
        let g = two_hop();
        let forward: Vec<LiveEdgeSample> = (0..8)
            .map(|i| sample_live_edges_indexed(&g, 77, i))
            .collect();
        let backward: Vec<LiveEdgeSample> = (0..8)
            .rev()
            .map(|i| sample_live_edges_indexed(&g, 77, i))
            .collect();
        for (i, s) in forward.iter().enumerate() {
            assert_eq!(s, &backward[7 - i], "sample {i} depends on draw order");
        }
        // Distinct indices and distinct pool seeds give distinct streams.
        assert_ne!(indexed_sample_seed(77, 0), indexed_sample_seed(77, 1));
        assert_ne!(indexed_sample_seed(77, 0), indexed_sample_seed(78, 0));
    }

    #[test]
    fn reachable_in_sample_handles_blocked_seed_and_duplicates() {
        let sample: LiveEdgeSample = vec![vec![1], vec![2], vec![]];
        assert_eq!(reachable_in_sample(&sample, &[vid(0), vid(0)], None), 3);
        let blocked = vec![true, false, false];
        assert_eq!(reachable_in_sample(&sample, &[vid(0)], Some(&blocked)), 0);
    }
}
