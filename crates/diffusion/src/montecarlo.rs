//! Monte-Carlo estimation of the expected spread (MCS, §V-A).
//!
//! The baseline greedy algorithm of the paper repeatedly calls an estimator
//! like this one — once per candidate blocker per round — which is exactly
//! why it is so expensive (`O(b · n · r · m)`, §V-A). The estimator is also
//! used to *evaluate* the blocker sets produced by every algorithm in the
//! experiment harness (Table VII reports spreads computed by MCS).
//!
//! Rounds are split across threads with `crossbeam::scope`; every thread
//! derives its own RNG stream from the base seed, so results are
//! reproducible for a fixed configuration regardless of thread scheduling.

use crate::error::validate_seeds_and_mask;
use crate::ic::CascadeSimulator;
use crate::spread::SpreadEstimate;
use crate::{DiffusionError, Result};
use imin_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for Monte-Carlo spread estimation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonteCarloEstimator {
    /// Number of simulation rounds `r` (the paper uses 10 000 for selection
    /// and 100 000 for final evaluation).
    pub rounds: usize,
    /// Number of worker threads (1 = fully sequential).
    pub threads: usize,
    /// Base RNG seed; per-thread streams are derived from it.
    pub seed: u64,
}

impl Default for MonteCarloEstimator {
    fn default() -> Self {
        MonteCarloEstimator {
            rounds: 10_000,
            threads: default_threads(),
            seed: 0x1C0FFEE,
        }
    }
}

/// Default parallelism: the number of available CPUs, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

impl MonteCarloEstimator {
    /// Creates an estimator with the given number of rounds and default
    /// threading/seed.
    pub fn new(rounds: usize) -> Self {
        MonteCarloEstimator {
            rounds,
            ..Default::default()
        }
    }

    /// Sets the number of threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Estimates `E(S, G)` (no blockers).
    pub fn expected_spread(&self, graph: &DiGraph, seeds: &[VertexId]) -> Result<SpreadEstimate> {
        self.expected_spread_blocked(graph, seeds, None)
    }

    /// Estimates `E(S, G[V \ B])` where `B` is given as a boolean mask.
    ///
    /// # Errors
    /// Returns an error for an empty seed set, out-of-range seeds, a mask of
    /// the wrong length, a blocked seed, or zero rounds.
    pub fn expected_spread_blocked(
        &self,
        graph: &DiGraph,
        seeds: &[VertexId],
        blocked: Option<&[bool]>,
    ) -> Result<SpreadEstimate> {
        validate_seeds_and_mask(graph.num_vertices(), seeds, blocked)?;
        if self.rounds == 0 {
            return Err(DiffusionError::ZeroRounds);
        }
        let threads = self.threads.max(1).min(self.rounds);
        if threads <= 1 {
            let (sum, sum_sq) = run_rounds(graph, seeds, blocked, self.rounds, self.seed)?;
            return Ok(SpreadEstimate::from_sums(sum, sum_sq, self.rounds));
        }

        // Split rounds as evenly as possible across threads.
        let base = self.rounds / threads;
        let extra = self.rounds % threads;
        let mut totals: Vec<std::result::Result<(f64, f64), DiffusionError>> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let rounds_here = base + usize::from(t < extra);
                let thread_seed = self
                    .seed
                    .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1));
                handles.push(
                    scope.spawn(move |_| {
                        run_rounds(graph, seeds, blocked, rounds_here, thread_seed)
                    }),
                );
            }
            for h in handles {
                totals.push(h.join().expect("Monte-Carlo worker thread panicked"));
            }
        })
        .expect("crossbeam scope failed");

        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for r in totals {
            let (s, sq) = r?;
            sum += s;
            sum_sq += sq;
        }
        Ok(SpreadEstimate::from_sums(sum, sum_sq, self.rounds))
    }

    /// Convenience wrapper returning only the estimated mean spread.
    pub fn expected_spread_value(
        &self,
        graph: &DiGraph,
        seeds: &[VertexId],
        blocked: Option<&[bool]>,
    ) -> Result<f64> {
        Ok(self.expected_spread_blocked(graph, seeds, blocked)?.mean)
    }

    /// Estimates the *decrease* of expected spread caused by additionally
    /// blocking `candidate` on top of the existing `blocked` mask — the
    /// quantity the BaselineGreedy algorithm evaluates for every candidate
    /// (Algorithm 1, line 5).
    pub fn spread_decrease(
        &self,
        graph: &DiGraph,
        seeds: &[VertexId],
        blocked: &[bool],
        candidate: VertexId,
    ) -> Result<f64> {
        let before = self.expected_spread_blocked(graph, seeds, Some(blocked))?;
        let mut with_candidate = blocked.to_vec();
        if candidate.index() < with_candidate.len() {
            with_candidate[candidate.index()] = true;
        }
        let after = self.expected_spread_blocked(graph, seeds, Some(&with_candidate))?;
        Ok(before.mean - after.mean)
    }
}

/// Runs `rounds` independent cascades and returns the sum and sum of squares
/// of the per-round spread.
fn run_rounds(
    graph: &DiGraph,
    seeds: &[VertexId],
    blocked: Option<&[bool]>,
    rounds: usize,
    seed: u64,
) -> std::result::Result<(f64, f64), DiffusionError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = CascadeSimulator::new(graph.num_vertices());
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..rounds {
        let count = match blocked {
            Some(mask) => sim.run_count(graph, seeds, |v| mask[v.index()], &mut rng),
            None => sim.run_count(graph, seeds, |_| false, &mut rng),
        };
        let c = count as f64;
        sum += c;
        sum_sq += c * c;
    }
    Ok((sum, sum_sq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn two_hop() -> DiGraph {
        // 0 -> 1 (0.5) -> 2 (0.5): E = 1 + 0.5 + 0.25 = 1.75.
        DiGraph::from_edges(3, vec![(vid(0), vid(1), 0.5), (vid(1), vid(2), 0.5)]).unwrap()
    }

    #[test]
    fn estimates_match_closed_form_sequential() {
        let g = two_hop();
        let est = MonteCarloEstimator::new(40_000)
            .with_threads(1)
            .with_seed(11);
        let e = est.expected_spread(&g, &[vid(0)]).unwrap();
        assert!(
            (e.mean - 1.75).abs() < 0.03,
            "sequential estimate {} too far from 1.75",
            e.mean
        );
        assert!(e.standard_error() > 0.0);
    }

    #[test]
    fn estimates_match_closed_form_parallel_and_are_deterministic() {
        let g = two_hop();
        let est = MonteCarloEstimator::new(40_000)
            .with_threads(4)
            .with_seed(12);
        let a = est.expected_spread(&g, &[vid(0)]).unwrap();
        let b = est.expected_spread(&g, &[vid(0)]).unwrap();
        assert!((a.mean - 1.75).abs() < 0.03);
        assert_eq!(a.mean, b.mean, "same config must give identical results");
    }

    #[test]
    fn blocking_reduces_spread() {
        let g = two_hop();
        let est = MonteCarloEstimator::new(20_000)
            .with_threads(2)
            .with_seed(5);
        let mut blocked = vec![false; 3];
        blocked[1] = true;
        let e = est
            .expected_spread_blocked(&g, &[vid(0)], Some(&blocked))
            .unwrap();
        assert!(
            (e.mean - 1.0).abs() < 1e-9,
            "blocking v1 leaves only the seed"
        );
        let dec = est
            .spread_decrease(&g, &[vid(0)], &[false; 3], vid(1))
            .unwrap();
        assert!((dec - 0.75).abs() < 0.03);
    }

    #[test]
    fn deterministic_graph_has_zero_variance() {
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 1.0)]).unwrap();
        let est = MonteCarloEstimator::new(100).with_threads(2);
        let e = est.expected_spread(&g, &[vid(0)]).unwrap();
        assert_eq!(e.mean, 2.0);
        assert_eq!(e.variance, 0.0);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let g = two_hop();
        let est = MonteCarloEstimator {
            rounds: 0,
            threads: 1,
            seed: 0,
        };
        assert!(matches!(
            est.expected_spread(&g, &[vid(0)]),
            Err(DiffusionError::ZeroRounds)
        ));
        let est = MonteCarloEstimator::new(10);
        assert!(est.expected_spread(&g, &[]).is_err());
        assert!(est.expected_spread(&g, &[vid(7)]).is_err());
        let mut mask = vec![false; 3];
        mask[0] = true;
        assert!(est
            .expected_spread_blocked(&g, &[vid(0)], Some(&mask))
            .is_err());
    }

    #[test]
    fn more_threads_than_rounds_is_fine() {
        let g = two_hop();
        let est = MonteCarloEstimator::new(3).with_threads(16);
        let e = est.expected_spread(&g, &[vid(0)]).unwrap();
        assert_eq!(e.rounds, 3);
        assert!(e.mean >= 1.0 && e.mean <= 3.0);
    }

    #[test]
    fn multiple_seeds_count_each_once() {
        let g = two_hop();
        let est = MonteCarloEstimator::new(5_000).with_seed(3);
        let e = est.expected_spread(&g, &[vid(0), vid(2)]).unwrap();
        // v2 is now a seed: E = 1 (v0) + 0.5 (v1) + 1 (v2) = 2.5.
        assert!((e.mean - 2.5).abs() < 0.05);
    }
}
