//! Snapshot protocol round-trips: a "restarted" engine (a fresh
//! `SharedEngine` behind the same `answer_line` state machine the TCP
//! server and `imin-cli local` use) must answer queries byte-identically
//! after `RESTORE`, `POOL` must be idempotent/incremental, and every
//! snapshot failure mode must come back as a one-line `ERR …`, never a
//! panic or a dropped connection.

use imin_engine::protocol::payload_field;
use imin_engine::{answer_line, SharedEngine};
use std::path::PathBuf;

fn engine() -> SharedEngine {
    SharedEngine::new().with_threads(2)
}

fn ok(line: &str, engine: &SharedEngine) -> String {
    let (reply, _) = answer_line(line, engine);
    assert!(reply.starts_with("OK"), "'{line}' failed: {reply}");
    reply
}

fn err(line: &str, engine: &SharedEngine) -> String {
    let (reply, quit) = answer_line(line, engine);
    assert!(reply.starts_with("ERR"), "'{line}' should fail: {reply}");
    assert!(!quit, "errors must not drop the connection");
    reply
}

/// The query-answer fields that must be byte-identical across a
/// save/restart/restore cycle (timings and cache flags naturally differ).
fn answer_fields(reply: &str) -> (String, String) {
    let payload = reply.strip_prefix("OK ").expect("OK reply");
    (
        payload_field(payload, "blockers").expect("blockers field"),
        payload_field(payload, "spread").expect("spread field"),
    )
}

struct TempSnap(PathBuf);

impl TempSnap {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "imin-engine-proto-{}-{tag}.iminsnap",
            std::process::id()
        ));
        TempSnap(path)
    }

    fn arg(&self) -> String {
        self.0.display().to_string()
    }
}

impl Drop for TempSnap {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn restore_after_restart_answers_byte_identically() {
    let tmp = TempSnap::new("roundtrip");
    let first = engine();
    ok("LOAD pa n=250 m0=3 seed=7 model=wc", &first);
    let pool_reply = ok("POOL 300 42", &first);
    assert!(pool_reply.contains("source=built"), "{pool_reply}");
    let before = ok("QUERY ic seeds=0,5 budget=3 alg=advanced", &first);
    let save_reply = ok(&format!("SAVE {}", tmp.arg()), &first);
    assert!(save_reply.contains("fingerprint="), "{save_reply}");

    // "Restart": a brand-new engine that has seen nothing but RESTORE.
    let second = engine();
    let restore_reply = ok(&format!("RESTORE {}", tmp.arg()), &second);
    assert!(restore_reply.contains("n=250"), "{restore_reply}");
    assert!(restore_reply.contains("theta=300"), "{restore_reply}");
    let after = ok("QUERY ic seeds=0,5 budget=3 alg=advanced", &second);
    assert!(after.contains("cached=false"), "{after}");
    assert_eq!(
        answer_fields(&before),
        answer_fields(&after),
        "restored engine must answer byte-identically"
    );

    // Provenance is visible, and the restored label survived the file.
    let stats = ok("STATS", &second);
    assert!(stats.contains("pool_source=restored:"), "{stats}");
    assert!(stats.contains("graph=pa(n=250,m0=3,seed=7)/WC"), "{stats}");

    // POOL matching the restored pool is a no-op that keeps the cache…
    let noop = ok("POOL 300 42", &second);
    assert!(noop.contains("source=resident"), "{noop}");
    let cached = ok("QUERY ic seeds=0,5 budget=3 alg=advanced", &second);
    assert!(cached.contains("cached=true"), "{cached}");

    // …and a growing POOL extends in place instead of resampling.
    let grow = ok("POOL 450 42", &second);
    assert!(grow.contains("source=extended"), "{grow}");
    let stats = ok("STATS", &second);
    assert!(stats.contains("pool_source=extended:300"), "{stats}");
    assert!(stats.contains("theta=450"), "{stats}");
}

#[test]
fn extended_pools_answer_like_fresh_pools_over_the_protocol() {
    // Engine A grows 200 → 400; engine B builds 400 directly.
    let a = engine();
    ok("LOAD pa n=200 m0=3 seed=9 model=wc", &a);
    assert!(ok("POOL 200 7", &a).contains("source=built"));
    assert!(ok("POOL 400 7", &a).contains("source=extended"));
    let grown = ok("QUERY ic seeds=1 budget=3 alg=replace", &a);

    let b = engine();
    ok("LOAD pa n=200 m0=3 seed=9 model=wc", &b);
    assert!(ok("POOL 400 7", &b).contains("source=built"));
    let fresh = ok("QUERY ic seeds=1 budget=3 alg=replace", &b);
    assert_eq!(answer_fields(&grown), answer_fields(&fresh));
}

#[test]
fn snapshot_failure_modes_are_one_line_errs() {
    let e = engine();
    // Lifecycle errors first.
    let reply = err("SAVE /tmp/unused.iminsnap", &e);
    assert!(reply.contains("no graph"), "{reply}");
    ok("LOAD pa n=60 m0=2 seed=1 model=wc", &e);
    let reply = err("SAVE /tmp/unused.iminsnap", &e);
    assert!(reply.contains("no sample pool"), "{reply}");

    // Missing file.
    let reply = err("RESTORE /nonexistent/nowhere.iminsnap", &e);
    assert!(
        reply.contains("I/O error") || reply.contains("snapshot"),
        "{reply}"
    );

    // Not a snapshot at all.
    let garbage = TempSnap::new("garbage");
    std::fs::write(&garbage.0, b"this is not a snapshot file").unwrap();
    let reply = err(&format!("RESTORE {}", garbage.arg()), &e);
    assert!(reply.contains("bad magic"), "{reply}");

    // A real snapshot, then truncated / bit-flipped on disk.
    ok("POOL 50 3", &e);
    let snap = TempSnap::new("corrupt");
    ok(&format!("SAVE {}", snap.arg()), &e);
    let bytes = std::fs::read(&snap.0).unwrap();

    std::fs::write(&snap.0, &bytes[..bytes.len() / 2]).unwrap();
    let reply = err(&format!("RESTORE {}", snap.arg()), &e);
    assert!(reply.contains("truncated"), "{reply}");

    let mut flipped = bytes.clone();
    let at = flipped.len() - 32;
    flipped[at] ^= 0x04;
    std::fs::write(&snap.0, &flipped).unwrap();
    let reply = err(&format!("RESTORE {}", snap.arg()), &e);
    assert!(reply.contains("checksum mismatch"), "{reply}");

    let mut wrong_version = bytes.clone();
    wrong_version[8] = 0xEE;
    std::fs::write(&snap.0, &wrong_version).unwrap();
    let reply = err(&format!("RESTORE {}", snap.arg()), &e);
    assert!(
        reply.contains("unsupported snapshot format version"),
        "{reply}"
    );

    let mut wrong_fingerprint = bytes;
    wrong_fingerprint[20] ^= 0xFF;
    std::fs::write(&snap.0, &wrong_fingerprint).unwrap();
    let reply = err(&format!("RESTORE {}", snap.arg()), &e);
    assert!(reply.contains("fingerprint mismatch"), "{reply}");

    // After all that abuse the engine still works and kept its state.
    let reply = ok("STATS", &e);
    assert!(reply.contains("theta=50"), "{reply}");
    assert!(ok("QUERY ic seeds=0 budget=1 alg=advanced", &e).contains("blockers="));
}
