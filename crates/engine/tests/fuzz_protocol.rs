//! Protocol fuzzing: 10 000 seeded-random hostile request lines — raw
//! bytes (including invalid UTF-8), printable garbage, truncated verbs,
//! numeric overflows, oversized fields and single-byte mutations of valid
//! lines — through the same [`answer_line`] state machine the TCP server
//! loops over. Every input must produce exactly one well-formed reply line
//! and leave the connection (and the engine) alive: no panic, no hang, no
//! dropped connection, no poisoned lock.
//!
//! The generators are seeded, so a failure reproduces identically on every
//! machine and every run.

use imin_engine::{answer_line, Client, Server, SharedEngine};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Valid lines the mutation and truncation generators start from. `QUIT`
/// is deliberately absent: it is the one verb allowed to close the
/// connection, which would make the "never quits" assertion conditional.
/// The snapshot verbs point inside `dir` so that the occasional mutant
/// whose `SAVE` actually succeeds cannot litter the filesystem.
fn templates(dir: &std::path::Path) -> Vec<String> {
    let snap = dir.join("fuzz.iminsnap").display().to_string();
    vec![
        "PING".into(),
        "STATS".into(),
        "LOAD pa n=120 m0=3 seed=7 model=wc".into(),
        "LOAD er n=90 p=0.05 seed=3 model=const:0.1".into(),
        "POOL 200 5".into(),
        "QUERY ic seeds=0,5 budget=3 alg=advanced".into(),
        "QUERY ic seeds=1 budget=2 alg=replace".into(),
        "QUERY ic seeds=0 budget=2 alg=advanced intervene=edge".into(),
        "QUERY ic seeds=0 budget=2 alg=replace intervene=prebunk:0.25".into(),
        format!("SAVE {snap}"),
        format!("RESTORE {snap}"),
    ]
}

/// A scratch directory deleted (with everything mutants wrote into it)
/// when the test ends.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("imin-fuzz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Asserts the universal contract: one reply line, `OK `/`ERR ` prefixed,
/// no embedded newline, and the connection stays open.
fn assert_well_formed(input: &str, reply: &str, quit: bool) {
    assert!(
        reply.starts_with("OK") || reply.starts_with("ERR"),
        "unprefixed reply for {input:?}: {reply:?}"
    );
    assert!(
        !reply.contains('\n'),
        "multi-line reply for {input:?}: {reply:?}"
    );
    assert!(!quit, "input {input:?} must not close the connection");
}

#[test]
fn ten_thousand_hostile_lines_never_panic_or_drop_the_connection() {
    let engine = SharedEngine::new().with_threads(1);
    let scratch = TempDir::new();
    let templates = templates(&scratch.0);
    let mut rng = SmallRng::seed_from_u64(0xF022_6D15_BEEF);
    let mut fuzzed = 0usize;

    // 4 000 raw byte strings, run through the same lossy conversion the
    // server applies to socket bytes. Random bytes essentially always
    // contain invalid UTF-8 or unparseable tokens → always ERR.
    for _ in 0..4_000 {
        let len = rng.gen_range(0usize..200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let line = String::from_utf8_lossy(&bytes);
        let line = line.trim_end_matches(['\n', '\r']);
        // A multi-line blob arrives as separate requests over TCP; fuzz the
        // first segment like the reader would.
        let line = line.split('\n').next().unwrap_or("");
        let (reply, quit) = answer_line(line, &engine);
        assert_well_formed(line, &reply, quit);
        assert!(
            reply.starts_with("ERR"),
            "garbage parsed?! {line:?} → {reply}"
        );
        fuzzed += 1;
    }

    // 2 000 printable-ASCII garbage lines.
    for _ in 0..2_000 {
        let len = rng.gen_range(1usize..120);
        let line: String = (0..len)
            .map(|_| char::from(rng.gen_range(0x20u8..0x7F)))
            .collect();
        let (reply, quit) = answer_line(&line, &engine);
        assert_well_formed(&line, &reply, quit);
        assert!(
            reply.starts_with("ERR"),
            "garbage parsed?! {line:?} → {reply}"
        );
        fuzzed += 1;
    }

    // 2 000 truncated verbs: a valid line cut strictly short.
    for _ in 0..2_000 {
        let template = templates.choose(&mut rng).expect("templates nonempty");
        let cut = rng.gen_range(0usize..template.len());
        let line = &template[..cut];
        let (reply, quit) = answer_line(line, &engine);
        assert_well_formed(line, &reply, quit);
        fuzzed += 1;
    }

    // 1 000 numeric overflows: every number swollen past u64/usize. These
    // must fail in the parser, long before any allocation could happen.
    for _ in 0..1_000 {
        let huge: String = (0..rng.gen_range(25usize..60))
            .map(|_| char::from(rng.gen_range(b'1'..=b'9')))
            .collect();
        let line = match rng.gen_range(0u8..4) {
            0 => format!("POOL {huge} 1"),
            1 => format!("POOL 100 {huge}"),
            2 => format!("LOAD pa n={huge} m0=3 seed=1 model=wc"),
            _ => format!("QUERY ic seeds={huge} budget=1"),
        };
        let (reply, quit) = answer_line(&line, &engine);
        assert_well_formed(&line, &reply, quit);
        assert!(
            reply.starts_with("ERR"),
            "overflow parsed?! {line:?} → {reply}"
        );
        fuzzed += 1;
    }

    // 500 oversized fields: kilobytes of seeds, absurd paths, giant tokens.
    for _ in 0..500 {
        let line = match rng.gen_range(0u8..3) {
            0 => {
                let seeds: Vec<String> = (0..rng.gen_range(500usize..2_000))
                    .map(|_| rng.gen_range(0u32..1_000_000).to_string())
                    .collect();
                format!("QUERY ic seeds={} budget=2", seeds.join(","))
            }
            1 => format!("SAVE /tmp/{}", "x".repeat(rng.gen_range(1_000usize..8_000))),
            _ => format!("LOAD pa n=100 m0=3 seed=1 model={}", "w".repeat(4_000)),
        };
        let (reply, quit) = answer_line(&line, &engine);
        assert_well_formed(&line, &reply, quit);
        fuzzed += 1;
    }

    // 500 single-byte mutations of valid lines. Some mutants stay valid
    // (flipping a digit of `n=120` is still a LOAD) — the contract under
    // test is only "well-formed reply, connection survives".
    for _ in 0..500 {
        let template = templates.choose(&mut rng).expect("templates nonempty");
        let mut bytes = template.as_bytes().to_vec();
        let at = rng.gen_range(0usize..bytes.len());
        bytes[at] = match rng.gen_range(0u8..3) {
            0 => rng.gen_range(0x20u8..0x7F), // random printable
            1 => bytes[at].wrapping_add(1),   // off-by-one byte
            _ => b' ',                        // token splitter
        };
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let (reply, quit) = answer_line(&line, &engine);
        assert_well_formed(&line, &reply, quit);
        fuzzed += 1;
    }

    assert_eq!(fuzzed, 10_000);

    // After all that abuse the engine still serves a clean lifecycle.
    let (reply, _) = answer_line("PING", &engine);
    assert_eq!(reply, "OK pong");
    let (reply, _) = answer_line("STATS", &engine);
    assert!(reply.starts_with("OK"), "{reply}");
}

#[test]
fn malformed_intervene_values_answer_typed_errors_and_never_panic() {
    let engine = SharedEngine::new().with_threads(1);

    // Hand-picked malformed specs: unknown families, out-of-range and
    // non-numeric alphas, missing or doubled separators, empty values.
    for bad in [
        "quantum",
        "vertexx",
        "edge:0.5",
        "prebunk",
        "prebunk:",
        "prebunk:-0.1",
        "prebunk:1.5",
        "prebunk:nan",
        "prebunk:inf",
        "prebunk:0.5:0.5",
        "prebunk:0,5",
        "PREBUNK;1",
        ":",
        "",
    ] {
        let line = format!("QUERY ic seeds=0 budget=1 intervene={bad}");
        let (reply, quit) = answer_line(&line, &engine);
        assert_well_formed(&line, &reply, quit);
        assert!(
            reply.starts_with("ERR") && reply.contains("invalid intervention"),
            "malformed intervene {bad:?} → {reply}"
        );
    }

    // 2 000 seeded-random intervene values: printable garbage and mangled
    // prebunk alphas. Anything that happens to parse must still answer one
    // well-formed line (the engine has no graph, so ERR either way).
    let mut rng = SmallRng::seed_from_u64(0x17E0_73B0_0CAF);
    for _ in 0..2_000 {
        let value: String = (0..rng.gen_range(0usize..24))
            .map(|_| char::from(rng.gen_range(0x21u8..0x7F)))
            .collect();
        let line = format!("QUERY ic seeds=0 budget=1 intervene={value}");
        let (reply, quit) = answer_line(&line, &engine);
        assert_well_formed(&line, &reply, quit);
        assert!(reply.starts_with("ERR"), "{line:?} → {reply}");
    }

    // The engine survives the abuse.
    let (reply, _) = answer_line("PING", &engine);
    assert_eq!(reply, "OK pong");
}

#[test]
fn invalid_utf8_over_tcp_gets_an_err_reply_and_keeps_the_connection() {
    let addr = Server::bind("127.0.0.1:0")
        .expect("bind")
        .spawn()
        .expect("spawn");
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Raw invalid UTF-8 (overlong/stray continuation bytes) plus a NUL.
    writer
        .write_all(b"\xFF\xFE garbage \x80\x00 verbs\n")
        .expect("write");
    writer.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert!(
        reply.starts_with("ERR"),
        "invalid UTF-8 must answer ERR, got {reply:?}"
    );

    // The connection survived: a normal request still works on it.
    writer.write_all(b"PING\n").expect("write");
    writer.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert_eq!(reply.trim_end(), "OK pong");

    // And the server as a whole is healthy for fresh connections too.
    let mut probe = Client::connect(addr).expect("second connection");
    assert_eq!(probe.send_raw("PING").expect("ping"), "OK pong");
}
