//! End-to-end observability checks:
//!
//! * **Byte identity** — blocker selections are identical with tracing on,
//!   tracing off (`--no-obs`), and on the serial single-threaded engine,
//!   over both raw and compressed arenas. Observability must never change
//!   an answer.
//! * **Trace accounting** — on a single-query-thread engine, a traced
//!   query's phase times sum to within 10% of its reported elapsed time
//!   (wall clock == CPU time only when one thread computes).
//! * **Wire format** — `QUERY … trace=1` replies carry `trace_id=`,
//!   `disposition=` and all eight query-phase keys; `METRICS` over real
//!   TCP parses as Prometheus exposition; a snapshot restore records the
//!   snapshot phases; the access log emits one well-formed line per
//!   request.

use imin_engine::{
    AccessLog, Client, Engine, LogFormat, Query, QueryAlgorithm, Server, SharedEngine,
};
use imin_graph::{generators, DiGraph, VertexId};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn wc_graph(n: usize, seed: u64) -> DiGraph {
    imin_diffusion::ProbabilityModel::WeightedCascade
        .apply(&generators::preferential_attachment(n, 3, true, 1.0, seed).unwrap())
        .unwrap()
}

fn query(seed: usize, budget: usize) -> Query {
    Query {
        seeds: vec![VertexId::new(seed)],
        budget,
        algorithm: QueryAlgorithm::AdvancedGreedy,
        intervention: imin_core::Intervention::BlockVertices,
    }
}

#[test]
fn blocker_selections_are_byte_identical_with_observability_on_and_off() {
    let graph = wc_graph(600, 13);

    let mut serial = Engine::new().with_threads(1);
    serial.load_graph(graph.clone(), "parity".into());
    serial.build_pool(400, 5).unwrap();

    let on = SharedEngine::new().with_threads(1);
    on.load_graph(graph.clone(), "parity".into());
    on.ensure_pool(400, 5).unwrap();

    let off = SharedEngine::new()
        .with_threads(1)
        .with_observability(false);
    off.load_graph(graph.clone(), "parity".into());
    off.ensure_pool(400, 5).unwrap();

    // Raw arena first, then the compressed re-encoding of the same pool.
    for arena in ["raw", "compressed"] {
        if arena == "compressed" {
            serial.compress_pool().unwrap();
            on.compress_pool().unwrap();
            off.compress_pool().unwrap();
        }
        for (seed, budget, algorithm) in [
            (0, 3, QueryAlgorithm::AdvancedGreedy),
            (7, 2, QueryAlgorithm::GreedyReplace),
            (23, 4, QueryAlgorithm::AdvancedGreedy),
        ] {
            let q = Query {
                seeds: vec![VertexId::new(seed)],
                budget,
                algorithm,
                intervention: imin_core::Intervention::BlockVertices,
            };
            let expect = serial.query(&q).unwrap();
            let traced = on.query(&q).unwrap();
            let untraced = off.query(&q).unwrap();
            assert_eq!(
                traced.blockers, expect.blockers,
                "{arena}: tracing must not change the answer"
            );
            assert_eq!(
                untraced.blockers, expect.blockers,
                "{arena}: --no-obs must not change the answer"
            );
            assert_eq!(traced.estimated_spread, expect.estimated_spread);
            assert_eq!(untraced.estimated_spread, expect.estimated_spread);
        }
    }
}

#[test]
fn traced_phase_times_sum_close_to_the_reported_elapsed_time() {
    // One query thread: the phase laps accumulate on the same wall clock
    // the elapsed time is measured on, so the sum must track it closely.
    // A heavy query keeps the fixed per-query overhead (locking, reply
    // formatting) far below the 10% band.
    let engine = SharedEngine::new().with_threads(1).with_query_threads(1);
    engine.load_graph(wc_graph(2000, 17), "sum-check".into());
    engine.ensure_pool(1500, 5).unwrap();

    let result = engine.query(&query(1, 4)).unwrap();
    let phases = result.phases.expect("observability is on by default");
    let total = phases.total_us() as f64;
    let elapsed = result.elapsed.as_micros() as f64;
    assert!(
        total >= 0.9 * elapsed && total <= 1.1 * elapsed,
        "phase sum {total}µs must be within 10% of elapsed {elapsed}µs"
    );
    assert!(result.trace_id > 0, "computed queries get a trace id");
}

#[test]
fn trace_replies_and_metrics_work_over_real_tcp() {
    let server = Server::with_shared(
        "127.0.0.1:0",
        SharedEngine::new().with_threads(1).with_query_threads(1),
    )
    .expect("bind");
    let addr = server.spawn().expect("spawn");
    let mut client = Client::connect(addr).expect("connect");

    assert!(client
        .send_raw("LOAD pa n=400 m0=3 seed=7 model=wc")
        .unwrap()
        .starts_with("OK"));
    assert!(client.send_raw("POOL 300 5").unwrap().starts_with("OK"));

    // trace=1: the reply grows trace_id / disposition / phases fields.
    let reply = client
        .send_raw("QUERY ic seeds=1 budget=2 alg=advanced trace=1")
        .unwrap();
    assert!(reply.starts_with("OK blockers="), "{reply}");
    assert!(reply.contains(" trace_id="), "{reply}");
    assert!(reply.contains(" disposition=computed"), "{reply}");
    for key in [
        "clone:", "probe:", "sample:", "decode:", "bfs:", "domtree:", "credit:", "select:",
    ] {
        assert!(reply.contains(key), "missing phase '{key}' in {reply}");
    }

    // The identical query again: a cache hit, still carrying the original
    // computation's phase breakdown.
    let reply = client
        .send_raw("QUERY ic seeds=1 budget=2 alg=advanced trace=1")
        .unwrap();
    assert!(reply.contains(" disposition=cache_hit"), "{reply}");
    assert!(reply.contains(" phases=clone:"), "{reply}");

    // An untraced query must not leak trace fields.
    let reply = client
        .send_raw("QUERY ic seeds=2 budget=2 alg=advanced")
        .unwrap();
    assert!(!reply.contains("trace_id="), "{reply}");

    // METRICS over the wire: framed as OK lines=<n>, parses as exposition.
    let body = client.metrics().expect("metrics");
    assert!(
        body.contains("# TYPE imin_request_duration_seconds histogram"),
        "{body}"
    );
    assert!(
        body.contains("imin_request_duration_seconds_count{verb=\"query\"} 3"),
        "three queries must show in the verb histogram: {body}"
    );
    assert!(body.contains("imin_queries_total 3"), "{body}");
    assert!(
        body.contains("imin_algorithm_compute_seconds_count{algorithm=\"advanced\"} 2"),
        "{body}"
    );
    // The connection still speaks the line protocol after the multi-line
    // reply — framing must not desynchronise it.
    client.ping().expect("ping after METRICS");
}

#[test]
fn sketch_queries_record_their_phases_without_a_registry_restart() {
    // One engine, no restarts: the rsample/cover histograms must appear in
    // the exposition as soon as a sketch-backend query runs, because the
    // phase registry is sized statically from the Phase enum.
    let engine = SharedEngine::new().with_threads(1).with_query_threads(1);
    engine.load_graph(wc_graph(400, 21), "sketch-obs".into());

    // Before any sketch activity the phase series exist (count 0) — the
    // family is static, not lazily registered.
    let before = engine.metrics_text();
    for phase in ["rsample", "cover"] {
        let needle = format!("imin_query_phase_seconds_count{{phase=\"{phase}\"}} 0");
        assert!(before.contains(&needle), "missing '{needle}' in exposition");
    }

    engine.ensure_sketch_pool(300, 9).unwrap();
    let result = engine
        .query(&Query {
            seeds: vec![VertexId::new(1)],
            budget: 3,
            algorithm: QueryAlgorithm::RisGreedy,
            intervention: imin_core::Intervention::BlockVertices,
        })
        .unwrap();
    let phases = result.phases.expect("observability is on by default");
    assert!(
        phases.get(imin_engine::Phase::Cover) > 0,
        "the cover phase must have been lapped: {phases:?}"
    );

    let text = engine.metrics_text();
    for phase in ["cover", "select"] {
        let needle = format!("imin_query_phase_seconds_count{{phase=\"{phase}\"}} 1");
        assert!(text.contains(&needle), "missing '{needle}' in exposition");
    }
    assert!(
        text.contains("imin_algorithm_compute_seconds_count{algorithm=\"ris-greedy\"} 1"),
        "{text}"
    );
    assert!(text.contains("imin_sketch_builds_total 1"), "{text}");
    assert!(text.contains("imin_sketch_theta 300"), "{text}");
    assert!(text.contains("imin_sketch_bytes"), "{text}");

    // The whole document stays well-formed Prometheus text format: every
    // line is a comment or `name[{labels}] value`, every sample's family
    // was announced by a preceding # TYPE, and histogram bucket counts are
    // cumulative (monotone non-decreasing, ending at +Inf == _count).
    let mut announced = std::collections::HashSet::new();
    let mut last_bucket: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(typed) = rest.strip_prefix("TYPE ") {
                let family = typed.split_whitespace().next().unwrap();
                announced.insert(family.to_string());
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .expect("sample lines are 'series value'");
        let name = series.split('{').next().unwrap();
        let family = name
            .trim_end_matches("_bucket")
            .trim_end_matches("_count")
            .trim_end_matches("_sum");
        assert!(
            announced.contains(family) || announced.contains(name),
            "sample '{name}' has no preceding # TYPE line"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable sample value in '{line}'"
        );
        if name.ends_with("_bucket") {
            let count: u64 = value.parse().expect("bucket counts are integers");
            let key = series.split("le=").next().unwrap().to_string();
            if let Some((prev_key, prev)) = &last_bucket {
                if *prev_key == key {
                    assert!(count >= *prev, "non-monotone buckets at '{line}'");
                }
            }
            last_bucket = Some((key, count));
        } else {
            last_bucket = None;
        }
    }
}

#[test]
fn snapshot_restore_records_the_snapshot_phases() {
    let engine = SharedEngine::new().with_threads(1);
    engine.load_graph(wc_graph(300, 19), "snap".into());
    engine.ensure_pool(200, 5).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("imin-obs-restore-{}.iminsnap", std::process::id()));
    engine.save_snapshot(&path).unwrap();

    let fresh = SharedEngine::new().with_threads(1);
    fresh.restore_snapshot(&path).unwrap();
    let text = fresh.metrics_text();
    let _ = std::fs::remove_file(&path);
    for phase in ["snap_read", "snap_validate"] {
        let needle = format!("imin_snapshot_phase_seconds_count{{phase=\"{phase}\"}} 1");
        assert!(text.contains(&needle), "missing '{needle}' in exposition");
    }
    assert!(text.contains("imin_snapshot_restores_total 1"), "{text}");
}

/// A `Write` sink the test can read back: the access log writes through
/// the Arc, the assertions read the captured bytes.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn the_access_log_emits_one_structured_line_per_request() {
    let sink = SharedBuf::default();
    let server = Server::with_shared(
        "127.0.0.1:0",
        SharedEngine::new().with_threads(1).with_query_threads(1),
    )
    .expect("bind")
    // slow_ms=0: every request is "slow", so query lines carry phases.
    .with_access_log(AccessLog::to_writer(
        LogFormat::Json,
        0,
        Box::new(sink.clone()),
    ));
    let addr = server.spawn().expect("spawn");
    let mut client = Client::connect(addr).expect("connect");

    assert!(client
        .send_raw("LOAD pa n=300 m0=3 seed=7 model=wc")
        .unwrap()
        .starts_with("OK"));
    assert!(client.send_raw("POOL 200 5").unwrap().starts_with("OK"));
    assert!(client
        .send_raw("QUERY ic seeds=1 budget=2 alg=advanced")
        .unwrap()
        .starts_with("OK"));
    assert!(client.send_raw("NONSENSE").unwrap().starts_with("ERR"));
    drop(client);

    // The log line is written before the reply, so four replies received
    // implies four lines captured.
    let captured = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = captured.lines().collect();
    assert_eq!(lines.len(), 4, "one line per request:\n{captured}");
    assert!(
        lines[0].contains("\"verb\":\"LOAD\"") && lines[0].contains("\"ok\":true"),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"verb\":\"POOL\""), "{}", lines[1]);
    assert!(
        lines[2].contains("\"verb\":\"QUERY\"")
            && lines[2].contains("\"disposition\":\"computed\"")
            && lines[2].contains("\"trace_id\":1")
            && lines[2].contains("\"phases\":{"),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].contains("\"verb\":\"NONSENSE\"") && lines[3].contains("\"ok\":false"),
        "{}",
        lines[3]
    );
    for line in &lines {
        assert!(
            line.starts_with("{\"ts_ms\":") && line.ends_with('}'),
            "JSON shape: {line}"
        );
    }
}
