//! Engine-level determinism: the same `(graph, θ, pool_seed, query)` must
//! produce **byte-identical** blocker sets no matter how many worker
//! threads the engine uses — 1, 2 and 8 all equal the sequential seed-path.
//!
//! This is the contract that makes the resident pool safe to scale: samples
//! are fixed per index ([`imin_diffusion::live_edge::indexed_sample_seed`])
//! and subtree credits are accumulated in integers, so thread count can
//! never leak into an answer.

use imin_engine::{Engine, Query, QueryAlgorithm};
use imin_graph::{generators, VertexId};

fn wc_graph(n: usize, seed: u64) -> imin_graph::DiGraph {
    imin_diffusion::ProbabilityModel::WeightedCascade
        .apply(&generators::preferential_attachment(n, 3, true, 1.0, seed).unwrap())
        .unwrap()
}

fn primed(threads: usize) -> Engine {
    let mut engine = Engine::new().with_threads(threads);
    engine.load_graph(wc_graph(400, 77), "pa-400/WC".into());
    engine.build_pool(600, 1234).unwrap();
    engine
}

fn queries() -> Vec<Query> {
    vec![
        Query {
            seeds: vec![VertexId::new(0)],
            budget: 5,
            algorithm: QueryAlgorithm::AdvancedGreedy,
            intervention: imin_core::Intervention::BlockVertices,
        },
        Query {
            seeds: vec![VertexId::new(3), VertexId::new(11)],
            budget: 4,
            algorithm: QueryAlgorithm::AdvancedGreedy,
            intervention: imin_core::Intervention::BlockVertices,
        },
        Query {
            seeds: vec![VertexId::new(0)],
            budget: 3,
            algorithm: QueryAlgorithm::GreedyReplace,
            intervention: imin_core::Intervention::BlockVertices,
        },
        Query {
            seeds: vec![VertexId::new(7), VertexId::new(2), VertexId::new(7)],
            budget: 4,
            algorithm: QueryAlgorithm::GreedyReplace,
            intervention: imin_core::Intervention::BlockVertices,
        },
    ]
}

#[test]
fn blocker_sets_are_byte_identical_at_1_2_and_8_threads() {
    let mut sequential = primed(1);
    let reference: Vec<_> = queries()
        .iter()
        .map(|q| sequential.query(q).unwrap())
        .collect();
    for threads in [2usize, 8] {
        let mut engine = primed(threads);
        for (query, expected) in queries().iter().zip(&reference) {
            let result = engine.query(query).unwrap();
            assert_eq!(
                result.blockers, expected.blockers,
                "threads={threads}, query {query:?}: blocker sets diverged"
            );
            // f64 spreads must also be bit-identical, not merely close:
            // integer accumulators divided by the same θ.
            assert_eq!(
                result.estimated_spread, expected.estimated_spread,
                "threads={threads}, query {query:?}: spreads diverged"
            );
        }
    }
}

#[test]
fn pool_rebuild_with_the_same_seed_reproduces_answers() {
    let mut engine = primed(4);
    let query = &queries()[0];
    let first = engine.query(query).unwrap();
    // A POOL matching the resident (θ, seed) is a no-op: the cache survives.
    engine.build_pool(600, 1234).unwrap();
    assert!(engine.query(query).unwrap().from_cache);
    // Force a genuine rebuild (different seed), then return to the original
    // (θ, seed): the from-scratch pool must reproduce the answers
    // bit-for-bit without any cache help.
    engine.build_pool(600, 9).unwrap();
    engine.build_pool(600, 1234).unwrap();
    let again = engine.query(query).unwrap();
    assert!(!again.from_cache);
    assert_eq!(first.blockers, again.blockers);
    assert_eq!(first.estimated_spread, again.estimated_spread);
}

#[test]
fn batched_queries_match_single_queries_across_thread_counts() {
    let mut reference = primed(1);
    let expected: Vec<_> = queries()
        .iter()
        .map(|q| reference.query(q).unwrap())
        .collect();
    for threads in [2usize, 8] {
        let mut engine = primed(threads);
        let batch = engine.run_queries(&queries());
        for ((result, expected), query) in batch.iter().zip(&expected).zip(queries()) {
            let result = result.as_ref().unwrap();
            assert_eq!(
                result.blockers, expected.blockers,
                "threads={threads}, query {query:?}"
            );
            assert_eq!(result.estimated_spread, expected.estimated_spread);
        }
    }
}
