//! Concurrency stress: 32 client threads hammering one TCP server with a
//! mix of identical and distinct queries, checked three ways —
//!
//! 1. **Byte parity**: every `blockers=`/`spread=` answer equals a serial
//!    replay of the same question on a fresh single-threaded [`Engine`]
//!    (the oracle). Concurrent execution must be invisible in the answers.
//! 2. **Counter consistency**: on a primed engine every valid query is
//!    exactly one of cache-hit / coalesced / computed / rejected, the
//!    in-flight gauge returns to zero, and nothing is rejected under the
//!    default admission budget.
//! 3. **Metrics coherence**: the `METRICS` exposition parses as
//!    well-formed Prometheus text (strict mini-parser below) and its
//!    histogram counts agree with the serving counters — the query-verb
//!    histogram saw every query, each query phase recorded once per
//!    computed leader, and the per-algorithm histograms partition the
//!    computed count.
//! 4. **Liveness**: after the storm the server still answers a clean
//!    lifecycle on a fresh connection — no poisoned lock anywhere.
//!
//! Plus focused tests for the two load-shedding behaviours: guaranteed
//! coalescing of a simultaneous burst, and `ERR busy retry_after_ms=…`
//! once the admission budget is exhausted.

use imin_engine::protocol::{parse_request, payload_field, Request};
use imin_engine::{Client, Engine, Server, SharedEngine};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const CLIENTS: usize = 32;
const QUERIES_PER_CLIENT: usize = 12;
const GRAPH: &str = "LOAD pa n=1500 m0=3 seed=7 model=wc";
const POOL_THETA: usize = 500;
const POOL_SEED: u64 = 5;

/// The deterministic request schedule of one client thread: a mix of one
/// hot query everybody shares, a handful of warm queries shared by a few
/// threads, and cold queries unique to this thread.
fn schedule(thread: usize) -> Vec<String> {
    (0..QUERIES_PER_CLIENT)
        .map(|i| match i % 3 {
            0 => "QUERY ic seeds=1 budget=3 alg=advanced".to_string(),
            1 => format!(
                "QUERY ic seeds={},8 budget=2 alg=advanced",
                10 + (thread % 4) // shared by ~8 threads each
            ),
            _ => format!(
                "QUERY ic seeds={} budget=2 alg=replace",
                100 + thread * QUERIES_PER_CLIENT + i // unique
            ),
        })
        .collect()
}

/// The serial oracle: answers a protocol `QUERY` line on a fresh
/// single-threaded engine primed identically to the server, formatted
/// exactly like the server's reply fields.
fn oracle_answer(engine: &mut Engine, line: &str) -> (String, String) {
    let Ok(Request::Query { query, .. }) = parse_request(line) else {
        panic!("oracle got a non-query line: {line}");
    };
    let result = engine.query(&query).expect("oracle query");
    let blockers = result
        .blockers
        .iter()
        .map(|b| b.raw().to_string())
        .collect::<Vec<_>>()
        .join(",");
    let spread = result
        .estimated_spread
        .map(|s| format!("{s:.6}"))
        .unwrap_or_else(|| "nan".into());
    (blockers, spread)
}

#[test]
fn thirty_two_clients_answer_byte_identically_to_the_serial_oracle() {
    let server = Server::with_shared(
        "127.0.0.1:0",
        SharedEngine::new().with_threads(1).with_query_threads(1),
    )
    .expect("bind");
    let shared = server.engine();
    let addr = server.spawn().expect("spawn");

    // Prime over the wire, like a real operator would.
    let mut admin = Client::connect(addr).expect("connect admin");
    assert!(admin.send_raw(GRAPH).expect("load").starts_with("OK"));
    assert!(admin
        .send_raw(&format!("POOL {POOL_THETA} {POOL_SEED}"))
        .expect("pool")
        .starts_with("OK"));
    let primed_stats = shared.stats();

    // The storm: every thread records (request, blockers, spread).
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for thread in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect worker");
            barrier.wait();
            let mut answers = Vec::new();
            for line in schedule(thread) {
                let reply = client.send_raw(&line).expect("query reply");
                assert!(reply.starts_with("OK"), "{line} → {reply}");
                let payload = reply.strip_prefix("OK ").unwrap();
                answers.push((
                    line,
                    payload_field(payload, "blockers").expect("blockers field"),
                    payload_field(payload, "spread").expect("spread field"),
                ));
            }
            answers
        }));
    }
    let all_answers: Vec<(String, String, String)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(all_answers.len(), CLIENTS * QUERIES_PER_CLIENT);

    // Serial replay on the single-threaded oracle.
    let mut oracle = Engine::new().with_threads(1);
    let Ok(Request::Load(_)) = parse_request(GRAPH) else {
        panic!("graph line must parse")
    };
    oracle.load_graph(
        imin_diffusion::ProbabilityModel::WeightedCascade
            .apply(&imin_graph::generators::preferential_attachment(1500, 3, true, 1.0, 7).unwrap())
            .unwrap(),
        "oracle".into(),
    );
    oracle.build_pool(POOL_THETA, POOL_SEED).unwrap();
    for (line, blockers, spread) in &all_answers {
        let (expect_blockers, expect_spread) = oracle_answer(&mut oracle, line);
        assert_eq!(
            (blockers, spread),
            (&expect_blockers, &expect_spread),
            "32-way answer diverged from serial oracle on {line}"
        );
    }

    // Counter identity: every query is exactly one of the four outcomes.
    let stats = shared.stats();
    let queries = stats.queries - primed_stats.queries;
    assert_eq!(queries, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert_eq!(
        stats.cache_hits + stats.coalesced + stats.computed + stats.rejected,
        queries,
        "hit/coalesced/computed/rejected must partition the queries: {stats:?}"
    );
    assert_eq!(stats.rejected, 0, "default budget must admit 32 clients");
    assert_eq!(stats.inflight, 0, "gauge returns to zero after the storm");
    assert!(
        stats.cache_hits + stats.coalesced > 0,
        "identical queries must share work: {stats:?}"
    );
    // 11 distinct questions exist (1 hot + 4 warm + unique per slot*thread);
    // the pool must have computed each at most once … per cache lifetime.
    assert!(
        stats.computed >= 1 + 4 + (CLIENTS * QUERIES_PER_CLIENT / 3) as u64,
        "every distinct question computes at least once: {stats:?}"
    );

    // Metrics coherence: the exposition is well-formed and its histogram
    // counts agree with the counters scraped above.
    let samples = parse_exposition(&shared.metrics_text());
    assert_eq!(
        metric_value(
            &samples,
            "imin_request_duration_seconds_count",
            &[("verb", "query")]
        ),
        stats.queries as f64,
        "the query-verb histogram must see every query"
    );
    for phase in [
        "clone", "probe", "sample", "decode", "bfs", "domtree", "credit", "select",
    ] {
        assert_eq!(
            metric_value(
                &samples,
                "imin_query_phase_seconds_count",
                &[("phase", phase)]
            ),
            stats.computed as f64,
            "phase '{phase}' must record exactly once per computed leader"
        );
    }
    let per_algorithm: f64 = samples
        .iter()
        .filter(|s| s.name == "imin_algorithm_compute_seconds_count")
        .map(|s| s.value)
        .sum();
    assert_eq!(
        per_algorithm, stats.computed as f64,
        "per-algorithm histograms must partition the computed count"
    );
    assert_eq!(
        metric_value(&samples, "imin_queries_total", &[]),
        stats.queries as f64
    );
    assert_eq!(
        metric_value(&samples, "imin_query_rejected_total", &[]),
        0.0
    );

    // Liveness: a fresh connection runs a clean lifecycle afterwards.
    let mut probe = Client::connect(addr).expect("post-storm connection");
    probe.ping().expect("ping after storm");
    let stats_line = probe.stats().expect("stats after storm");
    assert!(stats_line.contains("inflight=0"), "{stats_line}");
    assert!(probe
        .send_raw("QUERY ic seeds=2 budget=2 alg=advanced")
        .expect("query after storm")
        .starts_with("OK blockers="));
}

#[test]
fn a_simultaneous_burst_of_one_question_coalesces_onto_one_computation() {
    let engine = Arc::new(SharedEngine::new().with_threads(1));
    engine.load_graph(
        imin_diffusion::ProbabilityModel::WeightedCascade
            .apply(&imin_graph::generators::preferential_attachment(800, 3, true, 1.0, 9).unwrap())
            .unwrap(),
        "burst".into(),
    );
    engine.ensure_pool(400, 3).unwrap();

    // Three rounds, each over a *fresh* question (never cached), so every
    // round must coalesce: the barrier releases all threads into query()
    // together and the single-flight map lets exactly one lead.
    for round in 0..3usize {
        let threads = 8usize;
        let before = engine.stats();
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                let query = imin_engine::Query {
                    seeds: vec![imin_graph::VertexId::new(20 + round)],
                    budget: 4,
                    algorithm: imin_engine::QueryAlgorithm::AdvancedGreedy,
                    intervention: imin_core::Intervention::BlockVertices,
                };
                std::thread::spawn(move || {
                    barrier.wait();
                    engine.query(&query).expect("burst query")
                })
            })
            .collect();
        let answers: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for answer in &answers[1..] {
            assert_eq!(answer.blockers, answers[0].blockers);
            assert_eq!(answer.estimated_spread, answers[0].estimated_spread);
        }
        let after = engine.stats();
        assert_eq!(after.computed - before.computed, 1, "one leader per round");
        assert_eq!(
            (after.cache_hits + after.coalesced) - (before.cache_hits + before.coalesced),
            threads as u64 - 1,
            "everyone else rode along"
        );
    }
}

#[test]
fn exhausted_admission_budget_answers_err_busy_over_the_wire() {
    let server = Server::with_shared(
        "127.0.0.1:0",
        SharedEngine::new()
            .with_threads(1)
            .with_query_threads(1)
            .with_max_inflight(1),
    )
    .expect("bind");
    let shared = server.engine();
    let addr = server.spawn().expect("spawn");

    let mut admin = Client::connect(addr).expect("connect");
    assert!(admin
        .send_raw("LOAD pa n=3000 m0=3 seed=11 model=wc")
        .expect("load")
        .starts_with("OK"));
    assert!(admin
        .send_raw("POOL 2000 1")
        .expect("pool")
        .starts_with("OK"));

    // A deliberately heavy leader occupies the whole budget…
    let leader = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("leader connect");
        client
            .send_raw("QUERY ic seeds=0 budget=6 alg=advanced")
            .expect("leader reply")
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    while shared.stats().inflight == 0 {
        assert!(Instant::now() < deadline, "leader never started computing");
        std::thread::yield_now();
    }

    // …so a *distinct* query is rejected with the typed busy error.
    let reply = admin
        .send_raw("QUERY ic seeds=7 budget=2 alg=advanced")
        .expect("rejected reply");
    assert!(
        reply.starts_with("ERR busy retry_after_ms="),
        "expected busy rejection, got {reply}"
    );
    let hint: u64 = reply
        .rsplit('=')
        .next()
        .unwrap()
        .parse()
        .expect("numeric retry hint");
    assert!(hint >= 1, "hint must be a usable backoff: {reply}");
    assert_eq!(shared.stats().rejected, 1);

    // The leader finishes fine, the budget frees, the retry succeeds.
    assert!(leader.join().unwrap().starts_with("OK blockers="));
    let retry = admin
        .send_raw("QUERY ic seeds=7 budget=2 alg=advanced")
        .expect("retry reply");
    assert!(retry.starts_with("OK blockers="), "{retry}");
    assert_eq!(shared.stats().inflight, 0);
}

/// One parsed exposition sample: metric name, label pairs, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses one `{…}` label block, honouring quoted values (which may
/// contain commas — graph labels do) and backslash escapes.
fn parse_labels(block: &str) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    let mut chars = block.chars().peekable();
    loop {
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            name.push(c);
            chars.next();
        }
        assert_eq!(chars.next(), Some('='), "label without '=': {block}");
        assert_eq!(chars.next(), Some('"'), "unquoted label value: {block}");
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => value.push(chars.next().expect("dangling escape")),
                Some('"') => break,
                Some(c) => value.push(c),
                None => panic!("unterminated label value: {block}"),
            }
        }
        labels.push((name, value));
        match chars.next() {
            Some(',') => continue,
            None => return labels,
            Some(c) => panic!("unexpected '{c}' after a label in {block}"),
        }
    }
}

/// A label-set key that ignores `le`, for grouping histogram buckets into
/// series.
fn series_key(labels: &[(String, String)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    parts.sort();
    parts.join(",")
}

/// A deliberately strict parser for the subset of the Prometheus text
/// format the engine emits. Every line must be a `# HELP`/`# TYPE`
/// comment or a `name[{labels}] value` sample, and every family announced
/// as a histogram must have cumulative non-decreasing buckets whose
/// `+Inf` bucket equals `_count`, plus a `_sum` sample per series.
fn parse_exposition(text: &str) -> Vec<Sample> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "no blank lines in the exposition");
        if let Some(comment) = line.strip_prefix("# ") {
            let mut tokens = comment.splitn(3, ' ');
            match tokens.next().expect("comment keyword") {
                "HELP" => {
                    tokens.next().expect("HELP metric name");
                    assert!(tokens.next().is_some(), "HELP without text: '{line}'");
                }
                "TYPE" => {
                    let name = tokens.next().expect("TYPE metric name").to_string();
                    let kind = tokens.next().expect("TYPE kind").to_string();
                    assert!(
                        matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                        "unknown TYPE '{kind}' in '{line}'"
                    );
                    types.insert(name, kind);
                }
                other => panic!("unknown comment keyword '{other}' in '{line}'"),
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample without a value: '{line}'"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in '{line}'"));
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unclosed label block in '{line}'"));
                (name.to_string(), parse_labels(rest))
            }
            None => (series.to_string(), Vec::new()),
        };
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    for sample in &samples {
        let family = sample
            .name
            .strip_suffix("_bucket")
            .or_else(|| sample.name.strip_suffix("_sum"))
            .or_else(|| sample.name.strip_suffix("_count"))
            .filter(|family| types.get(*family).is_some_and(|k| k == "histogram"))
            .unwrap_or(&sample.name);
        assert!(
            types.contains_key(family),
            "sample '{}' has no # TYPE announcement",
            sample.name
        );
    }
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{family}_bucket");
        let mut series: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        for sample in samples.iter().filter(|s| s.name == bucket_name) {
            let le = sample
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .unwrap_or_else(|| panic!("{bucket_name} sample without le"));
            let le = if le.1 == "+Inf" {
                f64::INFINITY
            } else {
                le.1.parse().expect("numeric le")
            };
            series
                .entry(series_key(&sample.labels))
                .or_default()
                .push((le, sample.value));
        }
        assert!(!series.is_empty(), "histogram {family} has no buckets");
        for (key, mut buckets) in series {
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in buckets.windows(2) {
                assert!(
                    pair[1].1 >= pair[0].1,
                    "{family}{{{key}}} buckets must be cumulative"
                );
            }
            let (last_le, inf_count) = *buckets.last().unwrap();
            assert!(last_le.is_infinite(), "{family}{{{key}}} must end at +Inf");
            let count = samples
                .iter()
                .find(|s| s.name == format!("{family}_count") && series_key(&s.labels) == key)
                .unwrap_or_else(|| panic!("{family}{{{key}}} missing _count"));
            assert_eq!(
                inf_count, count.value,
                "{family}{{{key}}}: +Inf bucket must equal _count"
            );
            assert!(
                samples
                    .iter()
                    .any(|s| s.name == format!("{family}_sum") && series_key(&s.labels) == key),
                "{family}{{{key}}} missing _sum"
            );
        }
    }
    samples
}

/// Looks up one sample by name and (a subset of) its labels.
fn metric_value(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> f64 {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
        .unwrap_or_else(|| panic!("missing metric {name} {labels:?}"))
        .value
}
