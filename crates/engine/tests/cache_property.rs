//! Property tests for the LRU result cache — the one shared structure
//! every concurrent query path touches.
//!
//! Sequentially, [`LruCache`] must agree with an executable specification
//! (a naive tick-stamped map) on every observable: hit/miss answers,
//! length, and which keys survive eviction. Under concurrent access
//! (the cache lives behind a mutex in `SharedEngine`, so threads
//! interleave at operation granularity) the integrity properties must
//! hold at every instant: capacity is never exceeded and a hit never
//! returns a value written for a different key.

use imin_engine::LruCache;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// One cache operation, as generated data.
#[derive(Clone, Copy, Debug)]
enum Op {
    Get(u32),
    Insert(u32, u64),
}

/// Executable specification: exactly the documented LRU semantics, written
/// as naively as possible (linear scans, explicit ticks).
struct SpecCache {
    capacity: usize,
    tick: u64,
    entries: Vec<(u32, u64, u64)>, // (key, last-used tick, value)
}

impl SpecCache {
    fn new(capacity: usize) -> Self {
        SpecCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: u32) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|e| e.0 == key).map(|e| {
            e.1 = tick;
            e.2
        })
    }

    fn insert(&mut self, key: u32, value: u64) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.iter().any(|e| e.0 == key) {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("full cache has entries");
            self.entries.remove(oldest);
        }
        match self.entries.iter_mut().find(|e| e.0 == key) {
            Some(e) => *e = (key, self.tick, value),
            None => self.entries.push((key, self.tick, value)),
        }
    }

    fn peek(&self, key: u32) -> Option<u64> {
        self.entries.iter().find(|e| e.0 == key).map(|e| e.2)
    }
}

/// A generated workload: capacity, key universe size and an op sequence.
fn workload() -> impl Strategy<Value = (usize, Vec<(u8, u32, u64)>)> {
    (1usize..=8).prop_flat_map(|capacity| {
        (
            Just(capacity),
            // Keys drawn from ~2× capacity so evictions are frequent.
            collection::vec(
                (0u8..2, 0u32..(capacity as u32 * 2 + 2), 0u64..1_000),
                1..=120,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_matches_the_executable_specification((capacity, raw_ops) in workload()) {
        let universe = capacity as u32 * 2 + 2;
        let mut cache: LruCache<u32, u64> = LruCache::new(capacity);
        let mut spec = SpecCache::new(capacity);
        for (kind, key, value) in raw_ops {
            let op = if kind == 0 { Op::Get(key) } else { Op::Insert(key, value) };
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(cache.get(&k).copied(), spec.get(k), "get({}) diverged", k);
                }
                Op::Insert(k, v) => {
                    cache.insert(k, v);
                    spec.insert(k, v);
                }
            }
            // Observables agree after every single step: size, capacity
            // bound, and the exact surviving key set (peek does not perturb
            // recency on either side).
            prop_assert_eq!(cache.len(), spec.entries.len());
            prop_assert!(cache.len() <= capacity, "capacity exceeded");
            for k in 0..universe {
                prop_assert_eq!(
                    cache.peek(&k).copied(),
                    spec.peek(k),
                    "eviction order diverged at key {}",
                    k
                );
            }
        }
    }
}

/// The per-key value invariant the concurrent test checks: any value ever
/// stored under `k` is `stamp(k)`, so a cross-key mixup is detectable at
/// every read.
fn stamp(key: u32) -> u64 {
    key as u64 * 31 + 7
}

#[test]
fn concurrent_access_never_exceeds_capacity_or_crosses_keys() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 4_000;
    const CAPACITY: usize = 16;
    const UNIVERSE: u32 = 48;

    let cache: Arc<Mutex<LruCache<u32, u64>>> = Arc::new(Mutex::new(LruCache::new(CAPACITY)));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xCAC4E ^ (t as u64) << 17);
                let mut hits = 0usize;
                for _ in 0..OPS_PER_THREAD {
                    let key = rng.gen_range(0u32..UNIVERSE);
                    let mut guard = cache.lock().expect("cache lock");
                    if rng.gen_bool(0.5) {
                        guard.insert(key, stamp(key));
                    } else if let Some(&value) = guard.get(&key) {
                        // The integrity property: a hit never returns a
                        // value written for a different canonicalised key.
                        assert_eq!(value, stamp(key), "cross-key value leak");
                        hits += 1;
                    }
                    // The capacity property holds at every instant, not
                    // just at the end.
                    assert!(guard.len() <= CAPACITY, "capacity exceeded mid-run");
                }
                hits
            })
        })
        .collect();
    let total_hits: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        total_hits > 0,
        "the workload must actually exercise the hit path"
    );

    let final_cache = cache.lock().unwrap();
    assert!(final_cache.len() <= CAPACITY);
    for key in 0..UNIVERSE {
        if let Some(&value) = final_cache.peek(&key) {
            assert_eq!(value, stamp(key), "cross-key value leak at rest");
        }
    }
}
