//! Protocol round-trip tests: an in-process `imin-serve` on an ephemeral
//! port, driven through the `imin-cli` client library. Parse errors must
//! come back as `ERR <reason>` lines without dropping the connection.

use imin_engine::{Client, Engine, QueryAlgorithm, Server};

fn spawn_server() -> std::net::SocketAddr {
    Server::with_engine("127.0.0.1:0", Engine::new().with_threads(2))
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

#[test]
fn full_lifecycle_over_the_wire() {
    let addr = spawn_server();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();

    let (n, m) = client.load_pa_wc(300, 3, 7).unwrap();
    assert_eq!(n, 300);
    assert!(m > 0);

    let _build_ms = client.build_pool(400, 42).unwrap();

    let first = client
        .query(&[0], 3, QueryAlgorithm::AdvancedGreedy)
        .unwrap();
    assert!(first.blockers.len() <= 3);
    assert!(!first.cached);
    assert!(first.spread.is_some());

    // The identical question is a cache hit with the identical answer.
    let second = client
        .query(&[0], 3, QueryAlgorithm::AdvancedGreedy)
        .unwrap();
    assert!(second.cached);
    assert_eq!(first.blockers, second.blockers);
    assert_eq!(first.spread, second.spread);

    // GreedyReplace works over the same pool.
    let replace = client
        .query(&[0, 5], 2, QueryAlgorithm::GreedyReplace)
        .unwrap();
    assert!(replace.blockers.len() <= 2);

    let stats = client.stats().unwrap();
    for needle in ["n=300", "theta=400", "queries=3", "cache_hits=1"] {
        assert!(stats.contains(needle), "STATS missing {needle}: {stats}");
    }
}

#[test]
fn parse_errors_return_err_lines_and_keep_the_connection() {
    let addr = spawn_server();
    let mut client = Client::connect(addr).unwrap();

    for bad in [
        "",    // a blank line still gets a reply — clients must never hang
        "   ", // likewise for whitespace-only lines
        "GARBAGE",
        "LOAD moon n=10",
        "LOAD pa n=ten m0=3",
        "POOL",
        "POOL 10 x",
        "QUERY lt seeds=1 budget=1",
        "QUERY ic seeds= budget=1",
        "QUERY ic seeds=1 budget=1 alg=magic",
    ] {
        let reply = client.send_raw(bad).unwrap();
        assert!(
            reply.starts_with("ERR "),
            "'{bad}' should yield an ERR line, got '{reply}'"
        );
    }
    // The connection survived all of that.
    client.ping().unwrap();

    // Semantic errors (right syntax, wrong state) are ERR lines too.
    let err = client
        .query(&[0], 1, QueryAlgorithm::AdvancedGreedy)
        .unwrap_err();
    assert!(err.to_string().contains("LOAD"), "{err}");
    client.load_pa_wc(50, 2, 1).unwrap();
    let err = client
        .query(&[0], 1, QueryAlgorithm::AdvancedGreedy)
        .unwrap_err();
    assert!(err.to_string().contains("POOL"), "{err}");
    client.build_pool(50, 1).unwrap();
    // Out-of-range seed and zero budget surface the algorithm's errors.
    let err = client
        .query(&[9999], 1, QueryAlgorithm::AdvancedGreedy)
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
    let err = client
        .query(&[0], 0, QueryAlgorithm::AdvancedGreedy)
        .unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    // And the engine still answers proper queries afterwards.
    let reply = client
        .query(&[0], 1, QueryAlgorithm::AdvancedGreedy)
        .unwrap();
    assert!(reply.blockers.len() <= 1);
}

#[test]
fn quit_closes_only_the_issuing_connection() {
    let addr = spawn_server();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    assert_eq!(a.send_raw("QUIT").unwrap(), "OK bye");
    assert!(
        a.send_raw("PING").is_err(),
        "connection a should be closed after QUIT"
    );
    b.ping().unwrap();

    // Server state is shared across connections: a graph loaded by one
    // client is visible to the next.
    b.load_pa_wc(60, 2, 3).unwrap();
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.contains("n=60"), "{stats}");
}
