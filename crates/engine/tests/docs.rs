//! The documentation layer is part of the protocol surface: these tests
//! keep `docs/protocol.md` in lockstep with the parser's verb table and
//! keep every relative link in the markdown docs resolvable, so the docs
//! cannot silently rot as the protocol grows.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/engine → crates → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn protocol_doc_has_one_heading_per_parser_verb() {
    let doc = read(&repo_root().join("docs/protocol.md"));
    let headings: Vec<&str> = doc
        .lines()
        .filter_map(|l| l.strip_prefix("## "))
        .map(str::trim)
        .collect();
    for verb in imin_engine::protocol::VERBS {
        assert!(
            headings.iter().any(|h| h == verb),
            "docs/protocol.md is missing a `## {verb}` section for a verb the \
             parser accepts (headings found: {headings:?})"
        );
    }
}

#[test]
fn protocol_doc_covers_the_documented_reply_fields() {
    // Spot-checks for the typed reply/error fields the protocol promises;
    // renaming one on the wire must force a docs update.
    let doc = read(&repo_root().join("docs/protocol.md"));
    for needle in [
        "retry_after_ms=",
        "lines=",
        "trace=1",
        "intervene=",
        "edges=",
        "mode=map",
        "backend=sketch",
        "intervention unsupported",
        "backend unsupported",
    ] {
        assert!(
            doc.contains(needle),
            "docs/protocol.md no longer mentions `{needle}`"
        );
    }
}

/// Extracts `](target)` markdown link targets, skipping absolute URLs and
/// pure-anchor links.
fn relative_links(markdown: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut rest = markdown;
    while let Some(start) = rest.find("](") {
        rest = &rest[start + 2..];
        let Some(end) = rest.find(')') else { break };
        let target = &rest[..end];
        rest = &rest[end..];
        if target.is_empty()
            || target.starts_with('#')
            || target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        // Drop any fragment: `protocol.md#query` checks `protocol.md`.
        let path = target.split('#').next().unwrap_or(target);
        if !path.is_empty() {
            links.push(path.to_string());
        }
    }
    links
}

#[test]
fn every_relative_link_in_the_docs_resolves() {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs_dir = root.join("docs");
    for entry in std::fs::read_dir(&docs_dir).expect("read docs/") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(files.len() >= 4, "expected README + ≥3 docs, got {files:?}");

    let mut broken = Vec::new();
    for file in &files {
        let base = file.parent().expect("file has a parent");
        for link in relative_links(&read(file)) {
            if !base.join(&link).exists() {
                broken.push(format!("{} → {link}", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}
