//! # imin-engine
//!
//! A **resident containment query engine** for the IMIN problem: load a
//! graph once, materialise the θ-sized live-edge sample pool once, and then
//! answer an unbounded stream of `(seeds, budget, algorithm)` questions by
//! re-rooting the existing pool — the sample pool depends only on the graph
//! and the diffusion model, never on the query (Definition 4), so the
//! dominant cost of AdvancedGreedy/GreedyReplace is paid exactly once.
//!
//! The crate has three layers:
//!
//! * [`Engine`] — the in-process API: a loaded [`imin_graph::DiGraph`], a
//!   resident [`imin_core::SamplePool`], an LRU cache of recent query
//!   results keyed by canonicalised query, and a batched
//!   [`Engine::run_queries`] that fans a batch across the worker pool.
//!   [`SharedEngine`] is its concurrent counterpart: the same lifecycle
//!   driven through `&self` from many connection threads at once, with
//!   parallel read-side queries, single-flight coalescing of identical
//!   in-flight questions, and admission control (see [`shared`]).
//! * [`protocol`] — a newline-delimited text protocol (`LOAD`, `POOL`,
//!   `QUERY`, `SAVE`, `RESTORE`, `COMPRESS`, `STATS`, `METRICS`, `PING`,
//!   `QUIT` — the full table is [`protocol::VERBS`]) with an `OK …` /
//!   `ERR …` reply per request line, shared by the server, the client and
//!   the tests. The normative reference, including every reply shape and
//!   the intervention support matrix, is `docs/protocol.md` at the repo
//!   root — a test keeps it in lockstep with the parser.
//!
//! The engine is **restartable**: `SAVE` persists the graph and the
//! resident pool in the versioned binary snapshot format of
//! [`imin_core::snapshot`], and `RESTORE` warm-starts a fresh process from
//! that file by bulk-loading the arenas — orders of magnitude faster than
//! resampling, with byte-identical query answers. `POOL` itself is
//! idempotent and incremental: matching requests are no-ops and growing
//! requests extend the resident pool in place via
//! [`imin_core::SamplePool::extend_to`].
//! * [`server`] / [`client`] — a threaded `std::net::TcpListener` server
//!   (the `imin-serve` binary) and a small blocking client library (the
//!   `imin-cli` binary).
//!
//! ## Example
//!
//! ```
//! use imin_engine::{Engine, Query, QueryAlgorithm};
//! use imin_graph::{generators, VertexId};
//!
//! let graph = generators::preferential_attachment(300, 3, true, 0.2, 7).unwrap();
//! let mut engine = Engine::new();
//! engine.load_graph(graph, "pa-300".into());
//! engine.build_pool(500, 42).unwrap();
//! let query = Query {
//!     seeds: vec![VertexId::new(0)],
//!     budget: 3,
//!     algorithm: QueryAlgorithm::AdvancedGreedy,
//!     intervention: imin_core::Intervention::BlockVertices,
//! };
//! let first = engine.query(&query).unwrap();
//! let second = engine.query(&query).unwrap();
//! assert_eq!(first.blockers, second.blockers);
//! assert!(!first.from_cache && second.from_cache);
//!
//! // The same budget can buy edge deletions or prebunking instead —
//! // `QUERY … intervene=edge|prebunk:<alpha>` over the wire.
//! let edges = engine
//!     .query(&Query { intervention: imin_core::Intervention::BlockEdges, ..query })
//!     .unwrap();
//! assert!(edges.blockers.is_empty());
//! assert!(!edges.blocked_edges.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod error;
pub(crate) mod metrics;
pub mod protocol;
pub mod server;
pub mod shared;

pub use cache::LruCache;
pub use client::Client;
pub use engine::{
    Disposition, Engine, EngineStats, PoolAction, PoolBackend, PoolInfo, PoolProvenance, Query,
    QueryAlgorithm, QueryResult, RestoreMode, SketchPoolInfo,
};
pub use error::EngineError;
pub use imin_core::snapshot::{SnapshotError, SnapshotSummary};
pub use imin_core::AlgorithmKind;
pub use imin_obs::{AccessLog, AccessRecord, LogFormat, Phase, PhaseBreakdown};
pub use server::{answer_line, Server};
pub use shared::{ResidentView, ServingStats, SharedEngine, DEFAULT_MAX_INFLIGHT};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EngineError>;
