//! The resident query engine: one graph, one sample pool, many queries.

use crate::cache::LruCache;
use crate::{EngineError, Result};
use imin_core::pool::shard_ranges;
use imin_core::snapshot::{self, SnapshotSummary};
use imin_core::{
    AlgorithmKind, ArenaKind, ContainmentRequest, Intervention, SamplePool, SketchPool,
};
use imin_graph::{DiGraph, VertexId};
use std::collections::HashSet;
use std::path::Path;
use std::time::{Duration, Instant};

/// The algorithm selector of a [`Query`] — the crate-wide
/// [`imin_core::AlgorithmKind`] registry. Any registered algorithm may be
/// asked for; algorithms whose solver cannot run against a resident pool
/// (BaselineGreedy, Exact) answer with a typed
/// [`imin_core::IminError::BackendUnsupported`] error.
pub type QueryAlgorithm = AlgorithmKind;

/// One containment question: how should a budget of `budget` interventions
/// be spent to minimise the spread from `seeds`? The default
/// [`Intervention::BlockVertices`] asks the paper's question — which
/// vertices to block; `intervene=edge`/`intervene=prebunk:<alpha>` requests
/// ask for edge removals or prebunk targets instead.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Misinformation seed vertices (order and duplicates are irrelevant —
    /// the engine canonicalises).
    pub seeds: Vec<VertexId>,
    /// Maximum number of blocked vertices, removed edges or prebunked
    /// vertices, depending on `intervention`.
    pub budget: usize,
    /// Which algorithm to run (from the [`AlgorithmKind`] registry).
    pub algorithm: AlgorithmKind,
    /// Which intervention family the budget buys.
    pub intervention: Intervention,
}

/// Canonical cache key of a query: sorted deduplicated seeds + budget +
/// algorithm + intervention. The intervention is keyed by its canonical
/// protocol rendering (`vertex`, `edge`, `prebunk:<alpha>`) so the key
/// stays `Hash + Eq` despite the `f64` prebunk parameter.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct QueryKey {
    seeds: Vec<u32>,
    budget: usize,
    algorithm: AlgorithmKind,
    intervention: String,
}

impl Query {
    pub(crate) fn key(&self) -> QueryKey {
        let mut seeds: Vec<u32> = self.seeds.iter().map(|s| s.raw()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        QueryKey {
            seeds,
            budget: self.budget,
            algorithm: self.algorithm,
            intervention: self.intervention.to_string(),
        }
    }
}

/// How a query's answer was produced — surfaced in the trace suffix and
/// the access log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Disposition {
    /// A leader computed the answer against the resident pool.
    #[default]
    Computed,
    /// The answer was served from the LRU result cache.
    CacheHit,
    /// The request rode along on an identical in-flight computation.
    Coalesced,
}

impl Disposition {
    /// Stable lowercase name used in traces and access-log records.
    pub fn as_str(self) -> &'static str {
        match self {
            Disposition::Computed => "computed",
            Disposition::CacheHit => "cache_hit",
            Disposition::Coalesced => "coalesced",
        }
    }
}

/// The engine's answer to a [`Query`].
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Chosen blockers in selection order (prebunk targets for
    /// `intervene=prebunk:<alpha>` queries; empty for edge queries).
    pub blockers: Vec<VertexId>,
    /// Removed edges in selection order — filled by `intervene=edge`
    /// queries, empty otherwise.
    pub blocked_edges: Vec<(VertexId, VertexId)>,
    /// Estimated expected spread remaining after blocking, counting every
    /// seed as active (original-graph terms).
    pub estimated_spread: Option<f64>,
    /// Greedy/replacement rounds executed.
    pub rounds: usize,
    /// Pool consultations: θ per estimator round (no new samples are ever
    /// drawn — the pool is resident).
    pub samples_consulted: usize,
    /// Whether the answer came from the LRU cache.
    pub from_cache: bool,
    /// Wall-clock time to produce (or fetch) the answer.
    pub elapsed: Duration,
    /// How this answer was produced (computed / cache hit / coalesced).
    pub disposition: Disposition,
    /// Per-request trace id assigned by [`crate::SharedEngine`] (0 when
    /// the result came from the plain [`Engine`], which assigns none).
    pub trace_id: u64,
    /// Per-phase time breakdown of the computation that produced this
    /// answer, when observability was enabled. Cache hits and coalesced
    /// answers carry the breakdown of the original leader computation.
    pub phases: Option<imin_obs::PhaseBreakdown>,
}

/// How the resident pool came to be — surfaced by `STATS` so operators can
/// tell a warm-started engine from one that resampled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolProvenance {
    /// The pool was sampled from scratch by this process.
    Built,
    /// The pool was grown in place from a smaller resident pool with
    /// [`SamplePool::extend_to`] (bit-identical to a fresh build).
    Extended {
        /// θ the resident pool had before the extension.
        from_theta: usize,
    },
    /// The pool was bulk-loaded from a snapshot file.
    Restored {
        /// Path the snapshot was read from.
        path: String,
    },
    /// The pool's arenas are served directly out of a memory-mapped
    /// snapshot file (`RESTORE … mode=map`): no bulk copy happened, pages
    /// fault in on first touch.
    Mapped {
        /// Path of the mapped snapshot file.
        path: String,
    },
}

impl PoolProvenance {
    /// Compact `STATS`-friendly rendering (`built`, `extended:<from θ>`,
    /// `restored:<path>`).
    pub fn label(&self) -> String {
        match self {
            PoolProvenance::Built => "built".into(),
            PoolProvenance::Extended { from_theta } => format!("extended:{from_theta}"),
            PoolProvenance::Restored { path } => format!("restored:{path}"),
            PoolProvenance::Mapped { path } => format!("mapped:{path}"),
        }
    }
}

/// How `RESTORE` should bring a snapshot's arenas back into the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RestoreMode {
    /// Bulk-load the arenas onto the heap (the only mode before snapshot
    /// format v2). Works for every readable snapshot version.
    #[default]
    Copy,
    /// Memory-map the snapshot and serve arena slices straight from the
    /// page cache — first-query-ready in milliseconds regardless of pool
    /// size. Requires a v2 snapshot and a little-endian host; per-sample
    /// validation is deferred to first touch.
    Map,
}

impl RestoreMode {
    /// Protocol token (`copy` / `map`).
    pub fn label(self) -> &'static str {
        match self {
            RestoreMode::Copy => "copy",
            RestoreMode::Map => "map",
        }
    }
}

/// What [`Engine::ensure_pool`] actually did to satisfy a `POOL` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolAction {
    /// A pool with the exact `(θ, seed)` was already resident — nothing
    /// changed, the result cache survives.
    Reused,
    /// The resident pool had the right seed and a smaller θ; the missing
    /// realisations were drawn in place.
    Extended,
    /// A pool was sampled from scratch.
    Built,
}

impl PoolAction {
    /// Protocol token for the `POOL` reply (`resident`, `extended`,
    /// `built`).
    pub fn label(self) -> &'static str {
        match self {
            PoolAction::Reused => "resident",
            PoolAction::Extended => "extended",
            PoolAction::Built => "built",
        }
    }
}

/// Facts about the resident pool, recorded when it was built, extended or
/// restored.
#[derive(Clone, Debug)]
pub struct PoolInfo {
    /// Number of realisations θ.
    pub theta: usize,
    /// Base pool seed.
    pub seed: u64,
    /// Worker threads used for the build.
    pub threads: usize,
    /// Wall-clock time of the build, extension, compression or restore
    /// that produced the current pool state.
    pub build_time: Duration,
    /// True resident bytes held by the pool: every owned allocation's
    /// capacity (elements, `Vec` headers and all) plus bytes served out of
    /// a mapping, as reported by [`SamplePool::memory_bytes`] and
    /// [`SamplePool::mapped_bytes`].
    pub memory_bytes: usize,
    /// Total live edges stored across all realisations.
    pub live_edges: usize,
    /// Which arena backend holds the realisations.
    pub arena: ArenaKind,
    /// `(owned + mapped) / raw-equivalent` bytes — 1.0-ish for raw arenas,
    /// well below 1 for compressed ones.
    pub compression_ratio: f64,
    /// How the pool came to be.
    pub provenance: PoolProvenance,
}

impl PoolInfo {
    /// Records the facts of `pool` as it currently stands.
    pub(crate) fn for_pool(
        pool: &SamplePool,
        threads: usize,
        build_time: Duration,
        provenance: PoolProvenance,
    ) -> Self {
        PoolInfo {
            theta: pool.theta(),
            seed: pool.pool_seed(),
            threads,
            build_time,
            memory_bytes: pool.memory_bytes() + pool.mapped_bytes(),
            live_edges: pool.total_live_edges(),
            arena: pool.arena_kind(),
            compression_ratio: pool.compression_ratio(),
            provenance,
        }
    }
}

/// Which estimator family a `POOL` request targets — the `backend=` key of
/// the protocol's `POOL` command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolBackend {
    /// Forward live-edge realisations ([`SamplePool`]) — the default, and
    /// the backend every forward algorithm (AG, GR, heuristics) runs on.
    #[default]
    Forward,
    /// Reverse-reachable sketches ([`SketchPool`]) — the backend
    /// `ris-greedy` runs on.
    Sketch,
}

impl PoolBackend {
    /// Protocol token (`forward` / `sketch`).
    pub fn label(self) -> &'static str {
        match self {
            PoolBackend::Forward => "forward",
            PoolBackend::Sketch => "sketch",
        }
    }

    /// Parses a `backend=` value from the protocol (case-insensitive).
    pub fn parse(token: &str) -> Option<Self> {
        if token.eq_ignore_ascii_case("forward") {
            Some(PoolBackend::Forward)
        } else if token.eq_ignore_ascii_case("sketch") {
            Some(PoolBackend::Sketch)
        } else {
            None
        }
    }
}

/// Facts about the resident reverse-sketch pool, recorded when it was
/// built — the sketch-backend counterpart of [`PoolInfo`].
#[derive(Clone, Debug)]
pub struct SketchPoolInfo {
    /// Number of reverse sketches θ_r.
    pub theta_r: usize,
    /// Base pool seed.
    pub seed: u64,
    /// Worker threads used for the build.
    pub threads: usize,
    /// Wall-clock time of the build.
    pub build_time: Duration,
    /// Resident bytes held by the sketch pool (every owned allocation's
    /// capacity, as reported by [`SketchPool::memory_bytes`]).
    pub memory_bytes: usize,
    /// Total vertex memberships stored across all sketches.
    pub total_members: usize,
    /// Mean vertices per sketch.
    pub avg_sketch_size: f64,
    /// How the sketch pool came to be (always `Built` today — sketch pools
    /// have no snapshot format yet).
    pub provenance: PoolProvenance,
}

impl SketchPoolInfo {
    /// Records the facts of `pool` as it currently stands.
    pub(crate) fn for_pool(
        pool: &SketchPool,
        threads: usize,
        build_time: Duration,
        provenance: PoolProvenance,
    ) -> Self {
        SketchPoolInfo {
            theta_r: pool.theta_r(),
            seed: pool.pool_seed(),
            threads,
            build_time,
            memory_bytes: pool.memory_bytes(),
            total_members: pool.total_members(),
            avg_sketch_size: pool.avg_sketch_size(),
            provenance,
        }
    }
}

/// Monotonic counters served by `STATS`.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Queries answered (cache hits included).
    pub queries: u64,
    /// Queries answered straight from the LRU cache.
    pub cache_hits: u64,
    /// Pools built from scratch since the engine started.
    pub pool_builds: u64,
    /// Pools grown in place via `extend_to` since the engine started.
    pub pool_extends: u64,
    /// Pools re-encoded into a compressed arena via `COMPRESS`.
    pub pool_compressions: u64,
    /// `POOL` requests satisfied by the already-resident pool (no-ops).
    pub pool_reuses: u64,
    /// Sketch pools built from scratch since the engine started.
    pub sketch_builds: u64,
    /// `POOL … backend=sketch` requests satisfied by the already-resident
    /// sketch pool (no-ops).
    pub sketch_reuses: u64,
    /// Graphs loaded since the engine started.
    pub graph_loads: u64,
    /// Snapshots written via `SAVE`.
    pub snapshot_saves: u64,
    /// Snapshots restored via `RESTORE`.
    pub snapshot_restores: u64,
}

/// A resident containment query engine.
///
/// Lifecycle: [`Engine::load_graph`] → [`Engine::build_pool`] → any number
/// of [`Engine::query`] / [`Engine::run_queries`] calls. Loading a new
/// graph or rebuilding the pool invalidates the result cache.
#[derive(Debug)]
pub struct Engine {
    graph: Option<DiGraph>,
    graph_label: String,
    pool: Option<SamplePool>,
    pool_info: Option<PoolInfo>,
    sketch: Option<SketchPool>,
    sketch_info: Option<SketchPoolInfo>,
    cache: LruCache<QueryKey, QueryResult>,
    stats: EngineStats,
    threads: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an empty engine with the default worker-thread count and a
    /// 256-entry result cache.
    pub fn new() -> Self {
        Engine {
            graph: None,
            graph_label: String::new(),
            pool: None,
            pool_info: None,
            sketch: None,
            sketch_info: None,
            cache: LruCache::new(256),
            stats: EngineStats::default(),
            threads: imin_diffusion::montecarlo::default_threads(),
        }
    }

    /// Sets the worker-thread count used by pool builds and queries.
    /// Thread count never changes results — pools and pooled estimates are
    /// bit-identical at any parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the LRU result-cache capacity (`0` disables result caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = LruCache::new(capacity);
        self
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs a graph, dropping any previous pools and cached results.
    pub fn load_graph(&mut self, graph: DiGraph, label: String) {
        self.graph = Some(graph);
        self.graph_label = label;
        self.pool = None;
        self.pool_info = None;
        self.sketch = None;
        self.sketch_info = None;
        self.cache.clear();
        self.stats.graph_loads += 1;
    }

    /// The loaded graph, if any.
    pub fn graph(&self) -> Option<&DiGraph> {
        self.graph.as_ref()
    }

    /// Label given to the loaded graph (for `STATS`).
    pub fn graph_label(&self) -> &str {
        &self.graph_label
    }

    /// Makes a pool with exactly `(θ, seed)` resident, doing the least work
    /// that gets there:
    ///
    /// * the resident pool already matches → **no-op** (the result cache
    ///   survives untouched),
    /// * the resident pool has the same seed and a smaller θ → grown in
    ///   place with [`SamplePool::extend_to`] (bit-identical to a fresh
    ///   θ build; the cache is invalidated because answers may change),
    /// * anything else → sampled from scratch (cache invalidated; the
    ///   superseded pool is released *before* the new one is sampled so
    ///   peak memory stays at one pool).
    ///
    /// # Errors
    /// Returns [`EngineError::NoGraph`] before a graph is loaded, or the
    /// underlying build error (e.g. θ = 0, rejected before anything is
    /// dropped).
    pub fn ensure_pool(&mut self, theta: usize, seed: u64) -> Result<(&PoolInfo, PoolAction)> {
        let graph = self.graph.as_ref().ok_or(EngineError::NoGraph)?;
        if theta == 0 {
            return Err(imin_core::IminError::ZeroSamples.into());
        }
        if let Some(pool) = self.pool.as_mut() {
            if pool.pool_seed() == seed && pool.theta() == theta {
                self.stats.pool_reuses += 1;
                let info = self.pool_info.as_ref().expect("resident pool has info");
                return Ok((info, PoolAction::Reused));
            }
            // Compressed and mapped arenas cannot grow in place — a growing
            // request against one falls through to the rebuild path below.
            if pool.pool_seed() == seed && pool.theta() < theta && pool.is_extendable() {
                let from_theta = pool.theta();
                let start = Instant::now();
                pool.extend_to(graph, theta, self.threads)?;
                let info = PoolInfo::for_pool(
                    pool,
                    self.threads,
                    start.elapsed(),
                    PoolProvenance::Extended { from_theta },
                );
                self.pool_info = Some(info);
                self.cache.clear();
                self.stats.pool_extends += 1;
                let info = self.pool_info.as_ref().expect("pool info just set");
                return Ok((info, PoolAction::Extended));
            }
        }
        // Release the superseded pool before sampling the new one: a full
        // rebuild would otherwise hold both pools alive simultaneously,
        // doubling peak memory at exactly the moment a production host can
        // least afford it. The cache is cleared with it — those answers
        // belonged to the old pool.
        self.pool = None;
        self.pool_info = None;
        self.cache.clear();
        let start = Instant::now();
        let pool = SamplePool::build_with_threads(graph, theta, seed, self.threads)?;
        let info = PoolInfo::for_pool(&pool, self.threads, start.elapsed(), PoolProvenance::Built);
        self.pool = Some(pool);
        self.pool_info = Some(info);
        self.cache.clear();
        self.stats.pool_builds += 1;
        let info = self.pool_info.as_ref().expect("pool info just set");
        Ok((info, PoolAction::Built))
    }

    /// [`Engine::ensure_pool`] without the action report, kept for callers
    /// that only care about the resulting pool facts. Despite the name this
    /// no longer rebuilds unconditionally: matching `(θ, seed)` requests
    /// are no-ops and growing ones extend in place.
    ///
    /// # Errors
    /// Same conditions as [`Engine::ensure_pool`].
    pub fn build_pool(&mut self, theta: usize, seed: u64) -> Result<&PoolInfo> {
        self.ensure_pool(theta, seed).map(|(info, _)| info)
    }

    /// Makes a reverse-sketch pool with exactly `(θ_r, seed)` resident —
    /// the `POOL … backend=sketch` counterpart of [`Engine::ensure_pool`].
    /// A matching resident sketch pool is a **no-op** (the result cache
    /// survives); anything else rebuilds from scratch (sketch pools never
    /// extend in place — reverse BFS roots are drawn per sketch, so a
    /// different θ_r is a different pool). The forward pool, if any, stays
    /// resident untouched: both backends can serve queries side by side.
    ///
    /// # Errors
    /// Returns [`EngineError::NoGraph`] before a graph is loaded, or the
    /// underlying build error (θ_r = 0, empty graph).
    pub fn ensure_sketch_pool(
        &mut self,
        theta_r: usize,
        seed: u64,
    ) -> Result<(&SketchPoolInfo, PoolAction)> {
        let graph = self.graph.as_ref().ok_or(EngineError::NoGraph)?;
        if theta_r == 0 {
            return Err(imin_core::IminError::ZeroSamples.into());
        }
        if let Some(sketch) = self.sketch.as_ref() {
            if sketch.pool_seed() == seed && sketch.theta_r() == theta_r {
                self.stats.sketch_reuses += 1;
                let info = self
                    .sketch_info
                    .as_ref()
                    .expect("resident sketch pool has info");
                return Ok((info, PoolAction::Reused));
            }
        }
        // Release the superseded sketch pool before building the new one
        // (same single-resident-peak policy as the forward pool), and drop
        // cached answers — `ris-greedy` entries belonged to the old pool.
        self.sketch = None;
        self.sketch_info = None;
        self.cache.clear();
        let start = Instant::now();
        let sketch = SketchPool::build_with_threads(graph, theta_r, seed, self.threads)?;
        let info = SketchPoolInfo::for_pool(
            &sketch,
            self.threads,
            start.elapsed(),
            PoolProvenance::Built,
        );
        self.sketch = Some(sketch);
        self.sketch_info = Some(info);
        self.stats.sketch_builds += 1;
        let info = self.sketch_info.as_ref().expect("sketch info just set");
        Ok((info, PoolAction::Built))
    }

    /// Re-encodes the resident pool into a compressed arena (delta-varint
    /// or per-sample bitset, whichever is smaller). Queries against the
    /// compressed pool are byte-identical to the raw pool, so the result
    /// cache **survives**; an already-compressed pool is a no-op. The
    /// compressed pool can no longer [`SamplePool::extend_to`] — a growing
    /// `POOL` request afterwards rebuilds from scratch.
    ///
    /// # Errors
    /// [`EngineError::NoGraph`] / [`EngineError::NoPool`] before the engine
    /// is primed, or the encoder's error for a pool/graph mismatch.
    pub fn compress_pool(&mut self) -> Result<&PoolInfo> {
        let graph = self.graph.as_ref().ok_or(EngineError::NoGraph)?;
        let pool = self.pool.as_ref().ok_or(EngineError::NoPool)?;
        if pool.arena_kind() == ArenaKind::Compressed {
            return Ok(self.pool_info.as_ref().expect("resident pool has info"));
        }
        let start = Instant::now();
        let compressed = pool.compress(graph, self.threads)?;
        let provenance = self
            .pool_info
            .as_ref()
            .map(|info| info.provenance.clone())
            .unwrap_or(PoolProvenance::Built);
        let info = PoolInfo::for_pool(&compressed, self.threads, start.elapsed(), provenance);
        self.pool = Some(compressed);
        self.pool_info = Some(info);
        self.stats.pool_compressions += 1;
        Ok(self.pool_info.as_ref().expect("pool info just set"))
    }

    /// Writes the loaded graph and the resident pool as a snapshot file —
    /// see [`imin_core::snapshot`] for the format. The engine itself is
    /// unchanged.
    ///
    /// # Errors
    /// Returns [`EngineError::NoGraph`] / [`EngineError::NoPool`] before the
    /// engine is primed, [`EngineError::BackendUnsupported`] when only a
    /// sketch pool is resident (snapshot format v2 describes forward sample
    /// arenas only), or the snapshot writer's error.
    pub fn save_snapshot(&mut self, path: impl AsRef<Path>) -> Result<SnapshotSummary> {
        let graph = self.graph.as_ref().ok_or(EngineError::NoGraph)?;
        let pool = match self.pool.as_ref() {
            Some(pool) => pool,
            None if self.sketch.is_some() => {
                return Err(EngineError::BackendUnsupported {
                    operation: "SAVE",
                    backend: PoolBackend::Sketch.label(),
                })
            }
            None => return Err(EngineError::NoPool),
        };
        let summary = snapshot::save_snapshot(path.as_ref(), graph, pool, &self.graph_label)?;
        self.stats.snapshot_saves += 1;
        Ok(summary)
    }

    /// Warm-starts the engine from a snapshot file: installs the stored
    /// graph (with its saved label) and bulk-loads the pool arenas,
    /// replacing whatever was resident and invalidating the result cache.
    /// Restored state answers queries byte-identically to the engine that
    /// saved it.
    ///
    /// # Errors
    /// Every snapshot defect (missing file, bad magic, version mismatch,
    /// truncation, checksum or fingerprint mismatch) surfaces as the typed
    /// [`imin_core::SnapshotError`] inside [`EngineError::Core`]; the
    /// engine keeps its previous state on failure.
    pub fn restore_snapshot(&mut self, path: impl AsRef<Path>) -> Result<&PoolInfo> {
        self.restore_snapshot_with(path, RestoreMode::Copy)
    }

    /// [`Engine::restore_snapshot`] with an explicit [`RestoreMode`]:
    /// `Copy` bulk-loads the arenas onto the heap, `Map` memory-maps the
    /// file and serves the arenas zero-copy (v2 snapshots only — a mapped
    /// pool is first-query-ready without reading the bulk arrays at all).
    ///
    /// # Errors
    /// Same conditions as [`Engine::restore_snapshot`]; additionally,
    /// `Map` rejects v1 snapshots and big-endian hosts with a typed
    /// [`imin_core::SnapshotError::Corrupt`].
    pub fn restore_snapshot_with(
        &mut self,
        path: impl AsRef<Path>,
        mode: RestoreMode,
    ) -> Result<&PoolInfo> {
        let path = path.as_ref();
        let start = Instant::now();
        let (restored, provenance) = match mode {
            RestoreMode::Copy => (
                snapshot::load_snapshot(path)?,
                PoolProvenance::Restored {
                    path: path.display().to_string(),
                },
            ),
            RestoreMode::Map => (
                snapshot::map_snapshot(path)?,
                PoolProvenance::Mapped {
                    path: path.display().to_string(),
                },
            ),
        };
        let info = PoolInfo::for_pool(&restored.pool, self.threads, start.elapsed(), provenance);
        self.graph = Some(restored.graph);
        self.graph_label = if restored.label.is_empty() {
            format!("snapshot({})", path.display())
        } else {
            restored.label
        };
        self.pool = Some(restored.pool);
        self.pool_info = Some(info);
        self.sketch = None;
        self.sketch_info = None;
        self.cache.clear();
        self.stats.graph_loads += 1;
        self.stats.snapshot_restores += 1;
        Ok(self.pool_info.as_ref().expect("pool info just set"))
    }

    /// The resident pool, if one exists — read-only access for benchmarks
    /// and parity checks (e.g. [`imin_core::snapshot::pool_digest`]).
    pub fn pool(&self) -> Option<&SamplePool> {
        self.pool.as_ref()
    }

    /// The resident pool's build facts, if a pool exists.
    pub fn pool_info(&self) -> Option<&PoolInfo> {
        self.pool_info.as_ref()
    }

    /// The resident reverse-sketch pool, if one exists.
    pub fn sketch_pool(&self) -> Option<&SketchPool> {
        self.sketch.as_ref()
    }

    /// The resident sketch pool's build facts, if a sketch pool exists.
    pub fn sketch_pool_info(&self) -> Option<&SketchPoolInfo> {
        self.sketch_info.as_ref()
    }

    /// Monotonic counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of entries currently cached.
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    /// Answers one query, consulting the LRU cache first.
    ///
    /// # Errors
    /// Returns [`EngineError::NoGraph`] / [`EngineError::NoPool`] before the
    /// engine is primed, or the algorithm's validation error (empty seed
    /// set, zero budget, out-of-range seed).
    pub fn query(&mut self, query: &Query) -> Result<QueryResult> {
        let start = Instant::now();
        self.stats.queries += 1;
        let key = query.key();
        if let Some(hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            let mut result = hit.clone();
            result.from_cache = true;
            result.disposition = Disposition::CacheHit;
            result.elapsed = start.elapsed();
            return Ok(result);
        }
        let graph = self.graph.as_ref().ok_or(EngineError::NoGraph)?;
        let result = run_resident(
            self.pool.as_ref(),
            self.sketch.as_ref(),
            graph,
            query,
            self.threads,
            start,
        )?;
        self.cache.insert(key, result.clone());
        Ok(result)
    }

    /// Answers a batch of queries, fanning cache misses across the worker
    /// pool. Leftover parallelism is used *inside* queries (misses fewer
    /// than worker threads each get several threads) — results are
    /// identical to issuing the queries one by one, because pooled answers
    /// are thread-count-invariant.
    ///
    /// The returned vector is parallel to `queries`.
    pub fn run_queries(&mut self, queries: &[Query]) -> Vec<Result<QueryResult>> {
        // Canonicalise every query exactly once; resolve cache hits and
        // collect unique misses.
        let keys: Vec<QueryKey> = queries.iter().map(Query::key).collect();
        let mut outcomes: Vec<Option<Result<QueryResult>>> = Vec::with_capacity(queries.len());
        let mut seen_misses: HashSet<QueryKey> = HashSet::new();
        let mut miss_keys: Vec<QueryKey> = Vec::new();
        let mut miss_queries: Vec<Query> = Vec::new();
        for (query, key) in queries.iter().zip(&keys) {
            self.stats.queries += 1;
            let start = Instant::now();
            if let Some(hit) = self.cache.get(key) {
                self.stats.cache_hits += 1;
                let mut result = hit.clone();
                result.from_cache = true;
                result.disposition = Disposition::CacheHit;
                result.elapsed = start.elapsed();
                outcomes.push(Some(Ok(result)));
            } else {
                if seen_misses.insert(key.clone()) {
                    miss_keys.push(key.clone());
                    miss_queries.push(query.clone());
                }
                outcomes.push(None);
            }
        }
        if !miss_queries.is_empty() {
            let computed = match self.graph.as_ref() {
                Some(graph) => run_resident_batch(
                    self.pool.as_ref(),
                    self.sketch.as_ref(),
                    graph,
                    &miss_queries,
                    self.threads,
                ),
                None => miss_queries
                    .iter()
                    .map(|_| Err(EngineError::NoGraph))
                    .collect(),
            };
            for (key, outcome) in miss_keys.iter().zip(computed) {
                if let Ok(result) = &outcome {
                    self.cache.insert(key.clone(), result.clone());
                }
                // Fill every input slot that asked this question: clones
                // into the duplicates, the original (with its typed error
                // intact) into the first slot.
                let mut first_slot: Option<usize> = None;
                for (i, slot_key) in keys.iter().enumerate() {
                    if outcomes[i].is_some() || slot_key != key {
                        continue;
                    }
                    if first_slot.is_none() {
                        first_slot = Some(i);
                    } else {
                        outcomes[i] = Some(match &outcome {
                            Ok(result) => Ok(result.clone()),
                            Err(err) => Err(clone_engine_error(err)),
                        });
                    }
                }
                let slot = first_slot.expect("every computed key has an unresolved slot");
                outcomes[slot] = Some(outcome);
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every query slot resolved"))
            .collect()
    }
}

/// The moved-out fields of an [`Engine`], used by
/// [`crate::SharedEngine::from_engine`] to adopt a single-threaded engine's
/// resident state and counters without re-deriving them.
pub(crate) struct EngineParts {
    pub graph: Option<DiGraph>,
    pub graph_label: String,
    pub pool: Option<SamplePool>,
    pub pool_info: Option<PoolInfo>,
    pub sketch: Option<SketchPool>,
    pub sketch_info: Option<SketchPoolInfo>,
    pub cache_capacity: usize,
    pub stats: EngineStats,
    pub threads: usize,
}

impl Engine {
    /// Dismantles the engine into its resident state (the LRU cache's
    /// entries are dropped — only its capacity carries over).
    pub(crate) fn into_parts(self) -> EngineParts {
        EngineParts {
            graph: self.graph,
            graph_label: self.graph_label,
            pool: self.pool,
            pool_info: self.pool_info,
            sketch: self.sketch,
            sketch_info: self.sketch_info,
            cache_capacity: self.cache.capacity(),
            stats: self.stats,
            threads: self.threads,
        }
    }
}

/// Reproduces an [`EngineError`] for duplicate batch slots (the error type
/// is not `Clone`; lifecycle variants survive exactly, everything else is
/// demoted to its message).
fn clone_engine_error(err: &EngineError) -> EngineError {
    match err {
        EngineError::NoGraph => EngineError::NoGraph,
        EngineError::NoPool => EngineError::NoPool,
        EngineError::NoSketchPool => EngineError::NoSketchPool,
        other => EngineError::Protocol(other.to_string()),
    }
}

/// Routes one query to the backend its algorithm runs on: `ris-greedy`
/// needs the resident sketch pool ([`EngineError::NoSketchPool`] when
/// absent), every forward algorithm needs the resident sample pool
/// ([`EngineError::NoPool`]). Both pools may be resident at once.
pub(crate) fn run_resident(
    pool: Option<&SamplePool>,
    sketch: Option<&SketchPool>,
    graph: &DiGraph,
    query: &Query,
    threads: usize,
    start: Instant,
) -> Result<QueryResult> {
    if query.algorithm == AlgorithmKind::RisGreedy {
        let sketch = sketch.ok_or(EngineError::NoSketchPool)?;
        run_sketch(sketch, graph, query, threads, start)
    } else {
        let pool = pool.ok_or(EngineError::NoPool)?;
        run_pooled(pool, graph, query, threads, start)
    }
}

/// Runs one `ris-greedy` query against the resident sketch pool — the
/// sketch-backend counterpart of [`run_pooled`].
pub(crate) fn run_sketch(
    sketch: &SketchPool,
    graph: &DiGraph,
    query: &Query,
    threads: usize,
    start: Instant,
) -> Result<QueryResult> {
    let mut seeds = query.seeds.clone();
    seeds.sort_unstable();
    seeds.dedup();
    let request = ContainmentRequest::builder(graph)
        .seeds(seeds)
        .budget(query.budget)
        .intervention(query.intervention)
        .sketch_pooled(sketch, threads)
        .build()?;
    let selection = query.algorithm.solver().solve(graph, &request)?;
    Ok(QueryResult {
        blockers: selection.blockers,
        blocked_edges: selection.blocked_edges,
        estimated_spread: selection.estimated_spread,
        rounds: selection.stats.rounds,
        samples_consulted: selection.stats.samples_drawn,
        from_cache: false,
        elapsed: start.elapsed(),
        disposition: Disposition::Computed,
        trace_id: 0,
        phases: None,
    })
}

/// Runs one query against the pool with the given parallelism: the query
/// becomes a [`ContainmentRequest`] with a `Pooled` backend and is
/// dispatched through the [`AlgorithmKind`] registry — no per-algorithm
/// `match` lives in the engine.
pub(crate) fn run_pooled(
    pool: &SamplePool,
    graph: &DiGraph,
    query: &Query,
    threads: usize,
    start: Instant,
) -> Result<QueryResult> {
    // The request builder demands canonical seeds; the engine accepts any
    // order and duplicates (they already collapse in the cache key).
    let mut seeds = query.seeds.clone();
    seeds.sort_unstable();
    seeds.dedup();
    let request = ContainmentRequest::builder(graph)
        .seeds(seeds)
        .budget(query.budget)
        .intervention(query.intervention)
        .pooled_with_threads(pool, threads)
        .build()?;
    let selection = query.algorithm.solver().solve(graph, &request)?;
    Ok(QueryResult {
        blockers: selection.blockers,
        blocked_edges: selection.blocked_edges,
        estimated_spread: selection.estimated_spread,
        rounds: selection.stats.rounds,
        samples_consulted: selection.stats.samples_drawn,
        from_cache: false,
        elapsed: start.elapsed(),
        disposition: Disposition::Computed,
        trace_id: 0,
        phases: None,
    })
}

/// Fans a batch of distinct queries across worker threads; each worker runs
/// its queries single-threaded with its own workspace, so the batch is
/// deterministic and identical to a sequential run.
fn run_resident_batch(
    pool: Option<&SamplePool>,
    sketch: Option<&SketchPool>,
    graph: &DiGraph,
    queries: &[Query],
    threads: usize,
) -> Vec<Result<QueryResult>> {
    let workers = threads.max(1).min(queries.len());
    // Any parallelism the fan-out cannot use goes *inside* the queries —
    // safe because pooled answers are thread-count-invariant.
    let threads_per_query = (threads.max(1) / workers).max(1);
    if workers <= 1 {
        return queries
            .iter()
            .map(|q| run_resident(pool, sketch, graph, q, threads_per_query, Instant::now()))
            .collect();
    }
    let mut outcomes: Vec<Vec<Result<QueryResult>>> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for range in shard_ranges(queries.len(), workers) {
            let chunk = &queries[range];
            handles.push(scope.spawn(move |_| {
                chunk
                    .iter()
                    .map(|q| {
                        run_resident(pool, sketch, graph, q, threads_per_query, Instant::now())
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            outcomes.push(handle.join().expect("batch query worker panicked"));
        }
    })
    .expect("batch query scope failed");
    outcomes.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imin_graph::generators;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn primed_engine() -> Engine {
        let graph = generators::preferential_attachment(200, 3, true, 0.3, 11).unwrap();
        let mut engine = Engine::new().with_threads(2);
        engine.load_graph(graph, "pa-200".into());
        engine.build_pool(300, 5).unwrap();
        engine
    }

    fn query(seed: usize, budget: usize) -> Query {
        Query {
            seeds: vec![vid(seed)],
            budget,
            algorithm: QueryAlgorithm::AdvancedGreedy,
            intervention: Intervention::BlockVertices,
        }
    }

    #[test]
    fn lifecycle_errors_are_explicit() {
        let mut engine = Engine::new();
        assert!(matches!(
            engine.build_pool(10, 1),
            Err(EngineError::NoGraph)
        ));
        assert!(matches!(
            engine.query(&query(0, 1)),
            Err(EngineError::NoGraph)
        ));
        let graph = generators::preferential_attachment(50, 2, true, 0.3, 1).unwrap();
        engine.load_graph(graph, "g".into());
        assert!(matches!(
            engine.query(&query(0, 1)),
            Err(EngineError::NoPool)
        ));
        assert!(engine.build_pool(0, 1).is_err(), "zero theta is rejected");
    }

    #[test]
    fn second_identical_query_is_served_from_cache() {
        let mut engine = primed_engine();
        let q = query(0, 3);
        let first = engine.query(&q).unwrap();
        assert!(!first.from_cache);
        let second = engine.query(&q).unwrap();
        assert!(second.from_cache);
        assert_eq!(first.blockers, second.blockers);
        assert_eq!(first.estimated_spread, second.estimated_spread);
        assert_eq!(engine.stats().cache_hits, 1);
        // Canonicalisation: permuted/duplicated seeds hit the same entry.
        let permuted = Query {
            seeds: vec![vid(0), vid(0)],
            ..q
        };
        assert!(engine.query(&permuted).unwrap().from_cache);
    }

    #[test]
    fn rebuilding_the_pool_invalidates_the_cache() {
        let mut engine = primed_engine();
        let q = query(0, 2);
        let first = engine.query(&q).unwrap();
        engine.build_pool(300, 6).unwrap(); // different pool seed
        assert_eq!(engine.cache_entries(), 0);
        let second = engine.query(&q).unwrap();
        assert!(!second.from_cache);
        // Same graph, different pool: answers may or may not coincide, but
        // the engine must have recomputed them.
        assert_eq!(first.samples_consulted, second.samples_consulted);
    }

    #[test]
    fn matching_pool_requests_are_noops_that_keep_the_cache() {
        let mut engine = primed_engine();
        let q = query(0, 2);
        engine.query(&q).unwrap();
        assert_eq!(engine.cache_entries(), 1);
        let (info, action) = engine.ensure_pool(300, 5).unwrap();
        assert_eq!(action, PoolAction::Reused);
        assert_eq!(info.provenance, PoolProvenance::Built);
        assert_eq!(engine.cache_entries(), 1, "cache must survive the no-op");
        assert!(engine.query(&q).unwrap().from_cache);
        assert_eq!(engine.stats().pool_builds, 1);
        assert_eq!(engine.stats().pool_reuses, 1);
    }

    #[test]
    fn growing_pool_requests_extend_in_place_bit_identically() {
        let mut engine = primed_engine(); // θ=300, seed 5
        let q = query(0, 3);
        engine.query(&q).unwrap();
        let (info, action) = engine.ensure_pool(500, 5).unwrap();
        assert_eq!(action, PoolAction::Extended);
        assert_eq!(info.theta, 500);
        assert_eq!(
            info.provenance,
            PoolProvenance::Extended { from_theta: 300 }
        );
        assert_eq!(engine.cache_entries(), 0, "answers may change with θ");
        let grown = engine.query(&q).unwrap();
        assert!(!grown.from_cache);
        assert_eq!(engine.stats().pool_extends, 1);
        assert_eq!(engine.stats().pool_builds, 1, "no from-scratch rebuild");

        // The extended pool answers exactly like a freshly built θ=500 pool.
        let mut scratch = Engine::new().with_threads(2);
        scratch.load_graph(
            generators::preferential_attachment(200, 3, true, 0.3, 11).unwrap(),
            "pa-200".into(),
        );
        let (info, action) = scratch.ensure_pool(500, 5).unwrap();
        assert_eq!(action, PoolAction::Built);
        assert_eq!(info.provenance, PoolProvenance::Built);
        let reference = scratch.query(&q).unwrap();
        assert_eq!(grown.blockers, reference.blockers);
        assert_eq!(grown.estimated_spread, reference.estimated_spread);
        assert_eq!(
            imin_core::snapshot::pool_digest(engine.pool().unwrap()),
            imin_core::snapshot::pool_digest(scratch.pool().unwrap()),
            "arena bytes are identical after the in-place extension"
        );
    }

    #[test]
    fn shrinking_or_reseeded_pool_requests_rebuild() {
        let mut engine = primed_engine(); // θ=300, seed 5
        let (info, action) = engine.ensure_pool(100, 5).unwrap();
        assert_eq!(action, PoolAction::Built, "shrinking resamples exactly θ");
        assert_eq!(info.theta, 100);
        let (_, action) = engine.ensure_pool(100, 9).unwrap();
        assert_eq!(action, PoolAction::Built, "a new seed is a new pool");
        assert_eq!(engine.stats().pool_builds, 3);
    }

    #[test]
    fn save_and_restore_round_trip_through_the_engine_api() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "imin-engine-roundtrip-{}.iminsnap",
            std::process::id()
        ));
        let mut engine = primed_engine();
        let q = query(2, 3);
        let before = engine.query(&q).unwrap();
        let summary = engine.save_snapshot(&path).unwrap();
        assert_eq!(summary.theta, 300);
        assert!(summary.bytes_written > 0);
        assert_eq!(engine.stats().snapshot_saves, 1);

        let mut warm = Engine::new().with_threads(2);
        let info = warm.restore_snapshot(&path).unwrap();
        assert_eq!(info.theta, 300);
        assert_eq!(info.seed, 5);
        assert_eq!(
            info.provenance,
            PoolProvenance::Restored {
                path: path.display().to_string()
            }
        );
        assert_eq!(warm.graph_label(), "pa-200");
        let after = warm.query(&q).unwrap();
        assert!(!after.from_cache);
        assert_eq!(before.blockers, after.blockers);
        assert_eq!(before.estimated_spread, after.estimated_spread);
        assert_eq!(warm.stats().snapshot_restores, 1);

        // A matching POOL after the restore is a no-op on the restored pool.
        let (_, action) = warm.ensure_pool(300, 5).unwrap();
        assert_eq!(action, PoolAction::Reused);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_lifecycle_errors_are_explicit() {
        let mut engine = Engine::new();
        assert!(matches!(
            engine.save_snapshot("/tmp/never-written.iminsnap"),
            Err(EngineError::NoGraph)
        ));
        let graph = generators::preferential_attachment(50, 2, true, 0.3, 1).unwrap();
        engine.load_graph(graph, "g".into());
        assert!(matches!(
            engine.save_snapshot("/tmp/never-written.iminsnap"),
            Err(EngineError::NoPool)
        ));
        // A failed restore keeps the resident state untouched.
        engine.build_pool(50, 1).unwrap();
        let err = engine.restore_snapshot("/nonexistent/nowhere.iminsnap");
        assert!(err.is_err());
        assert_eq!(engine.pool_info().unwrap().theta, 50);
        assert_eq!(engine.graph_label(), "g");
    }

    #[test]
    fn batch_matches_sequential_and_fills_the_cache() {
        let mut sequential = primed_engine();
        let mut batched = primed_engine();
        let queries: Vec<Query> = (0..5).map(|s| query(s, 2)).collect();
        let one_by_one: Vec<QueryResult> = queries
            .iter()
            .map(|q| sequential.query(q).unwrap())
            .collect();
        let batch = batched.run_queries(&queries);
        for (a, b) in one_by_one.iter().zip(&batch) {
            let b = b.as_ref().unwrap();
            assert_eq!(a.blockers, b.blockers);
            assert_eq!(a.estimated_spread, b.estimated_spread);
        }
        // Every answer is now cached.
        for q in &queries {
            assert!(batched.query(q).unwrap().from_cache);
        }
    }

    #[test]
    fn batch_deduplicates_identical_questions() {
        let mut engine = primed_engine();
        let q = query(1, 2);
        let results = engine.run_queries(&[q.clone(), q.clone(), q]);
        let first = results[0].as_ref().unwrap();
        for r in &results {
            assert_eq!(r.as_ref().unwrap().blockers, first.blockers);
        }
        assert_eq!(engine.cache_entries(), 1);
    }

    #[test]
    fn any_pool_capable_registry_algorithm_answers_queries() {
        let mut engine = primed_engine();
        for algorithm in [
            QueryAlgorithm::AdvancedGreedy,
            QueryAlgorithm::GreedyReplace,
            QueryAlgorithm::Random,
            QueryAlgorithm::OutDegree,
            QueryAlgorithm::Degree,
            QueryAlgorithm::OutNeighbors,
            QueryAlgorithm::PageRank,
        ] {
            let q = Query {
                seeds: vec![vid(0)],
                budget: 3,
                algorithm,
                intervention: Intervention::BlockVertices,
            };
            let result = engine
                .query(&q)
                .unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
            assert!(result.blockers.len() <= 3, "{algorithm:?}");
            assert!(!result.blockers.contains(&vid(0)), "{algorithm:?}");
        }
    }

    #[test]
    fn simulation_only_algorithms_report_the_unsupported_backend() {
        let mut engine = primed_engine();
        for algorithm in [QueryAlgorithm::BaselineGreedy, QueryAlgorithm::Exact] {
            let q = Query {
                seeds: vec![vid(0)],
                budget: 2,
                algorithm,
                intervention: Intervention::BlockVertices,
            };
            let err = engine.query(&q).unwrap_err();
            assert!(
                matches!(
                    err,
                    EngineError::Core(imin_core::IminError::BackendUnsupported { .. })
                ),
                "{algorithm:?}: {err:?}"
            );
        }
    }

    #[test]
    fn compress_pool_keeps_the_cache_and_the_answers() {
        let mut engine = primed_engine();
        let q = query(0, 3);
        let raw = engine.query(&q).unwrap();
        assert_eq!(engine.pool_info().unwrap().arena, imin_core::ArenaKind::Raw);
        let info = engine.compress_pool().unwrap();
        assert_eq!(info.arena, imin_core::ArenaKind::Compressed);
        assert!(info.compression_ratio > 0.0);
        assert_eq!(
            info.provenance,
            PoolProvenance::Built,
            "provenance survives"
        );
        assert_eq!(
            engine.cache_entries(),
            1,
            "compressed answers are byte-identical, the cache must survive"
        );
        assert!(engine.query(&q).unwrap().from_cache);
        // Fresh questions against the compressed arena match the raw pool.
        let q2 = query(1, 2);
        let mut scratch = primed_engine();
        let reference = scratch.query(&q2).unwrap();
        let compressed = engine.query(&q2).unwrap();
        assert_eq!(reference.blockers, compressed.blockers);
        assert_eq!(reference.estimated_spread, compressed.estimated_spread);
        assert_eq!(reference.samples_consulted, compressed.samples_consulted);
        let _ = raw;
        assert_eq!(engine.stats().pool_compressions, 1);
        // Compressing twice is a no-op.
        engine.compress_pool().unwrap();
        assert_eq!(engine.stats().pool_compressions, 1);
    }

    #[test]
    fn ensure_pool_rebuilds_rather_than_extends_a_compressed_pool() {
        let mut engine = primed_engine(); // θ=300, seed 5
        engine.compress_pool().unwrap();
        let (info, action) = engine.ensure_pool(500, 5).unwrap();
        assert_eq!(
            action,
            PoolAction::Built,
            "compressed arenas cannot grow in place"
        );
        assert_eq!(info.theta, 500);
        assert_eq!(info.arena, imin_core::ArenaKind::Raw);
        assert_eq!(engine.stats().pool_extends, 0);
        // A matching request still reuses the compressed pool as-is.
        let mut again = primed_engine();
        again.compress_pool().unwrap();
        let (info, action) = again.ensure_pool(300, 5).unwrap();
        assert_eq!(action, PoolAction::Reused);
        assert_eq!(info.arena, imin_core::ArenaKind::Compressed);
    }

    #[test]
    fn mapped_restore_answers_byte_identically_to_a_copy_restore() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "imin-engine-maprestore-{}.iminsnap",
            std::process::id()
        ));
        let mut engine = primed_engine();
        let q = query(2, 3);
        let before = engine.query(&q).unwrap();
        engine.save_snapshot(&path).unwrap();

        let mut warm = Engine::new().with_threads(2);
        let info = warm.restore_snapshot_with(&path, RestoreMode::Map).unwrap();
        assert_eq!(info.theta, 300);
        assert_eq!(info.arena, imin_core::ArenaKind::MappedRaw);
        assert_eq!(
            info.provenance,
            PoolProvenance::Mapped {
                path: path.display().to_string()
            }
        );
        let after = warm.query(&q).unwrap();
        assert!(!after.from_cache);
        assert_eq!(before.blockers, after.blockers);
        assert_eq!(before.estimated_spread, after.estimated_spread);

        // A growing POOL on the mapped pool rebuilds instead of extending.
        let (info, action) = warm.ensure_pool(400, 5).unwrap();
        assert_eq!(action, PoolAction::Built);
        assert_eq!(info.arena, imin_core::ArenaKind::Raw);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sketch_pool_residency_reuses_and_rebuilds() {
        let mut engine = Engine::new().with_threads(2);
        let graph = generators::preferential_attachment(200, 3, true, 0.3, 11).unwrap();
        engine.load_graph(graph, "pa-200".into());
        // ris-greedy before any sketch pool → typed lifecycle error.
        let q = Query {
            seeds: vec![vid(0)],
            budget: 3,
            algorithm: QueryAlgorithm::RisGreedy,
            intervention: Intervention::BlockVertices,
        };
        assert!(matches!(engine.query(&q), Err(EngineError::NoSketchPool)));

        let (info, action) = engine.ensure_sketch_pool(400, 7).unwrap();
        assert_eq!(action, PoolAction::Built);
        assert_eq!(info.theta_r, 400);
        assert_eq!(info.seed, 7);
        assert!(info.memory_bytes > 0);
        let first = engine.query(&q).unwrap();
        assert!(first.blockers.len() <= 3);
        assert!(!first.blockers.contains(&vid(0)));
        assert_eq!(first.samples_consulted, 400);

        // Matching request is a no-op that keeps the cache.
        let (_, action) = engine.ensure_sketch_pool(400, 7).unwrap();
        assert_eq!(action, PoolAction::Reused);
        assert!(engine.query(&q).unwrap().from_cache);
        assert_eq!(engine.stats().sketch_builds, 1);
        assert_eq!(engine.stats().sketch_reuses, 1);

        // A different (θ_r, seed) rebuilds and drops cached answers.
        let (info, action) = engine.ensure_sketch_pool(600, 7).unwrap();
        assert_eq!(action, PoolAction::Built);
        assert_eq!(info.theta_r, 600);
        assert_eq!(engine.cache_entries(), 0);
        assert_eq!(engine.stats().sketch_builds, 2);
    }

    #[test]
    fn both_backends_serve_side_by_side() {
        let mut engine = primed_engine(); // forward θ=300, seed 5
        engine.ensure_sketch_pool(400, 7).unwrap();
        assert!(
            engine.pool().is_some(),
            "forward pool survives sketch build"
        );
        let forward = engine.query(&query(0, 3)).unwrap();
        let sketch = engine
            .query(&Query {
                seeds: vec![vid(0)],
                budget: 3,
                algorithm: QueryAlgorithm::RisGreedy,
                intervention: Intervention::BlockVertices,
            })
            .unwrap();
        assert!(!forward.blockers.is_empty());
        assert!(!sketch.blockers.is_empty());
        // Batch routing dispatches per algorithm too.
        let batch = engine.run_queries(&[
            query(1, 2),
            Query {
                seeds: vec![vid(1)],
                budget: 2,
                algorithm: QueryAlgorithm::RisGreedy,
                intervention: Intervention::BlockVertices,
            },
        ]);
        assert!(batch.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn save_on_a_sketch_only_engine_is_a_typed_backend_error() {
        let mut engine = Engine::new().with_threads(2);
        let graph = generators::preferential_attachment(100, 3, true, 0.3, 3).unwrap();
        engine.load_graph(graph, "pa-100".into());
        engine.ensure_sketch_pool(100, 1).unwrap();
        let err = engine
            .save_snapshot("/tmp/never-written-sketch.iminsnap")
            .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::BackendUnsupported {
                    operation: "SAVE",
                    backend: "sketch"
                }
            ),
            "got {err:?}"
        );
        assert_eq!(engine.stats().snapshot_saves, 0);
    }

    #[test]
    fn loading_a_graph_drops_the_sketch_pool() {
        let mut engine = Engine::new().with_threads(2);
        let graph = generators::preferential_attachment(100, 3, true, 0.3, 3).unwrap();
        engine.load_graph(graph, "pa-100".into());
        engine.ensure_sketch_pool(100, 1).unwrap();
        assert!(engine.sketch_pool().is_some());
        let graph = generators::preferential_attachment(80, 3, true, 0.3, 4).unwrap();
        engine.load_graph(graph, "pa-80".into());
        assert!(engine.sketch_pool().is_none());
        assert!(engine.sketch_pool_info().is_none());
    }

    #[test]
    fn batch_on_an_unprimed_engine_reports_errors() {
        let mut engine = Engine::new();
        let results = engine.run_queries(&[query(0, 1)]);
        assert!(matches!(results[0], Err(EngineError::NoGraph)));
    }

    #[test]
    fn batch_errors_keep_their_typed_variant_on_the_first_slot() {
        let mut engine = primed_engine();
        let bad = query(9_999, 1); // out-of-range seed
        let results = engine.run_queries(&[bad.clone(), bad]);
        assert!(
            matches!(results[0], Err(EngineError::Core(_))),
            "first slot must keep the typed error, got {:?}",
            results[0]
        );
        assert!(results[1].is_err(), "duplicate slot is an error too");
    }
}
