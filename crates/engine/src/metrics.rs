//! Engine-side metric registry and Prometheus exposition.
//!
//! [`EngineMetrics`] owns every latency [`Histogram`] of a
//! [`SharedEngine`](crate::SharedEngine): one per protocol verb, one per
//! algorithm kind, one per query/snapshot phase, and one for leader
//! compute time (the basis of the `retry_after_ms` busy hint). All of them
//! are wait-free to record into; [`render`] turns the registry plus the
//! engine's counters and resident-state facts into one Prometheus
//! text-format document, served over the wire by the `METRICS` verb.

use crate::shared::SharedEngine;
use imin_core::AlgorithmKind;
use imin_obs::{expo, Histogram, Phase, PHASE_COUNT, QUERY_PHASES, SNAPSHOT_PHASES};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Protocol verbs with a latency histogram of their own.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Verb {
    Load,
    Pool,
    Query,
    Save,
    Restore,
    Compress,
}

/// Number of [`Verb`] variants.
pub(crate) const VERB_COUNT: usize = 6;

/// Every verb, in exposition order.
pub(crate) const VERBS: [Verb; VERB_COUNT] = [
    Verb::Load,
    Verb::Pool,
    Verb::Query,
    Verb::Save,
    Verb::Restore,
    Verb::Compress,
];

impl Verb {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Verb::Load => "load",
            Verb::Pool => "pool",
            Verb::Query => "query",
            Verb::Save => "save",
            Verb::Restore => "restore",
            Verb::Compress => "compress",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Index of `kind` in the [`AlgorithmKind::all`] registry order.
fn algorithm_index(kind: AlgorithmKind) -> usize {
    AlgorithmKind::all()
        .iter()
        .position(|&k| k == kind)
        .expect("every AlgorithmKind is registered")
}

/// The engine's metric registry. Verb, algorithm and compute histograms
/// record unconditionally (one wait-free bucket add each — they back the
/// `STATS` latency sums and the busy hint); the per-phase histograms fill
/// only while phase spans are enabled.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    started: Instant,
    verbs: [Histogram; VERB_COUNT],
    algorithms: Vec<Histogram>,
    phases: [Histogram; PHASE_COUNT],
    /// Leader compute time only (no cache hits, no coalesced waits) — the
    /// distribution behind the p95 `retry_after_ms` hint.
    compute: Histogram,
    /// Cached busy hint in ms, recomputed only when `compute.count()`
    /// changes (bounded staleness, no quantile walk per rejection).
    hint_ms: AtomicU64,
    hint_at: AtomicU64,
    trace_ids: AtomicU64,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics {
            started: Instant::now(),
            verbs: std::array::from_fn(|_| Histogram::new()),
            algorithms: AlgorithmKind::all()
                .iter()
                .map(|_| Histogram::new())
                .collect(),
            phases: std::array::from_fn(|_| Histogram::new()),
            compute: Histogram::new(),
            hint_ms: AtomicU64::new(0),
            hint_at: AtomicU64::new(u64::MAX),
            trace_ids: AtomicU64::new(0),
        }
    }
}

impl EngineMetrics {
    /// The histogram of one protocol verb.
    pub(crate) fn verb(&self, verb: Verb) -> &Histogram {
        &self.verbs[verb.index()]
    }

    /// The histogram of one algorithm kind.
    pub(crate) fn algorithm(&self, kind: AlgorithmKind) -> &Histogram {
        &self.algorithms[algorithm_index(kind)]
    }

    /// The histogram of one query/snapshot phase.
    pub(crate) fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()]
    }

    /// The leader compute-time histogram.
    pub(crate) fn compute(&self) -> &Histogram {
        &self.compute
    }

    /// Seconds since the engine was created.
    pub(crate) fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The next per-request trace id (1, 2, 3, …; 0 means "none").
    pub(crate) fn next_trace_id(&self) -> u64 {
        self.trace_ids.fetch_add(1, Relaxed) + 1
    }

    /// The suggested client backoff for a busy rejection: the p95 of
    /// leader compute latency, clamped to `[1 ms, 10 s]` (50 ms before
    /// anything has computed). The quantile walk runs at most once per new
    /// computed query — between computes the cached hint is served, so a
    /// rejection storm costs two atomic loads per rejection.
    pub(crate) fn retry_after_ms(&self) -> u64 {
        let computed = self.compute.count();
        if computed == 0 {
            return 50;
        }
        if self.hint_at.load(Relaxed) == computed {
            return self.hint_ms.load(Relaxed);
        }
        let p95_us = self.compute.quantile_us(0.95);
        let ms = (p95_us / 1_000).clamp(1, 10_000);
        self.hint_ms.store(ms, Relaxed);
        self.hint_at.store(computed, Relaxed);
        ms
    }
}

/// Renders the complete Prometheus text-format document for `engine`.
pub(crate) fn render(engine: &SharedEngine) -> String {
    let stats = engine.stats();
    let view = engine.view();
    let metrics = engine.metrics();
    let mut out = String::with_capacity(32 * 1024);

    expo::family(
        &mut out,
        "imin_build_info",
        "Build information of the serving binary.",
        "gauge",
    );
    expo::sample_u64(
        &mut out,
        "imin_build_info",
        &[("version", env!("CARGO_PKG_VERSION"))],
        1,
    );
    expo::family(
        &mut out,
        "imin_uptime_seconds",
        "Seconds since the engine was created.",
        "gauge",
    );
    expo::sample_f64(
        &mut out,
        "imin_uptime_seconds",
        &[],
        metrics.uptime_seconds(),
    );
    expo::family(
        &mut out,
        "imin_observability_enabled",
        "Whether phase spans and traces are enabled (1) or disabled via --no-obs (0).",
        "gauge",
    );
    expo::sample_u64(
        &mut out,
        "imin_observability_enabled",
        &[],
        u64::from(engine.observability()),
    );

    // ---- Counters ---------------------------------------------------------
    let counters: [(&str, &str, u64); 14] = [
        (
            "imin_queries_total",
            "Queries received (cache hits, coalesced and rejected included).",
            stats.queries,
        ),
        (
            "imin_query_cache_hits_total",
            "Queries answered straight from the LRU result cache.",
            stats.cache_hits,
        ),
        (
            "imin_query_coalesced_total",
            "Queries answered by riding along on an identical in-flight computation.",
            stats.coalesced,
        ),
        (
            "imin_query_rejected_total",
            "Queries rejected with ERR busy by admission control.",
            stats.rejected,
        ),
        (
            "imin_query_computed_total",
            "Queries that computed against the resident pool (leaders).",
            stats.computed,
        ),
        (
            "imin_pool_builds_total",
            "Sample pools built from scratch.",
            stats.pool_builds,
        ),
        (
            "imin_pool_extends_total",
            "Sample pools grown in place via extend_to.",
            stats.pool_extends,
        ),
        (
            "imin_pool_compressions_total",
            "Pools re-encoded into a compressed arena.",
            stats.pool_compressions,
        ),
        (
            "imin_pool_reuses_total",
            "POOL requests satisfied by the already-resident pool.",
            stats.pool_reuses,
        ),
        (
            "imin_sketch_builds_total",
            "Reverse-sketch pools built from scratch (POOL backend=sketch).",
            stats.sketch_builds,
        ),
        (
            "imin_sketch_reuses_total",
            "Sketch POOL requests satisfied by the already-resident sketch pool.",
            stats.sketch_reuses,
        ),
        (
            "imin_graph_loads_total",
            "Graphs installed (LOAD and RESTORE).",
            stats.graph_loads,
        ),
        (
            "imin_snapshot_saves_total",
            "Snapshots written via SAVE.",
            stats.snapshot_saves,
        ),
        (
            "imin_snapshot_restores_total",
            "Snapshots restored via RESTORE.",
            stats.snapshot_restores,
        ),
    ];
    for (name, help, value) in counters {
        expo::family(&mut out, name, help, "counter");
        expo::sample_u64(&mut out, name, &[], value);
    }

    // ---- Gauges -----------------------------------------------------------
    let gauges: [(&str, &str, u64); 6] = [
        (
            "imin_inflight_queries",
            "Leaders computing right now.",
            stats.inflight,
        ),
        (
            "imin_cache_entries",
            "Entries currently in the LRU result cache.",
            engine.cache_entries() as u64,
        ),
        (
            "imin_max_inflight",
            "Admission budget: maximum concurrently computing leaders.",
            engine.max_inflight() as u64,
        ),
        (
            "imin_build_threads",
            "Worker threads used for pool builds.",
            engine.threads() as u64,
        ),
        (
            "imin_query_threads",
            "Worker threads used inside one query.",
            engine.query_threads() as u64,
        ),
        (
            "imin_busy_retry_hint_ms",
            "Current retry_after_ms hint handed to rejected clients (p95 compute).",
            metrics.retry_after_ms(),
        ),
    ];
    for (name, help, value) in gauges {
        expo::family(&mut out, name, help, "gauge");
        expo::sample_u64(&mut out, name, &[], value);
    }

    if let Some(graph) = view.graph.as_ref() {
        expo::family(
            &mut out,
            "imin_graph_vertices",
            "Vertices of the resident graph.",
            "gauge",
        );
        expo::sample_u64(
            &mut out,
            "imin_graph_vertices",
            &[],
            graph.num_vertices() as u64,
        );
        expo::family(
            &mut out,
            "imin_graph_edges",
            "Edges of the resident graph.",
            "gauge",
        );
        expo::sample_u64(&mut out, "imin_graph_edges", &[], graph.num_edges() as u64);
    }
    if let Some(info) = view.pool_info.as_ref() {
        expo::family(
            &mut out,
            "imin_pool_theta",
            "Realisations held by the resident sample pool.",
            "gauge",
        );
        expo::sample_u64(&mut out, "imin_pool_theta", &[], info.theta as u64);
        expo::family(
            &mut out,
            "imin_pool_bytes",
            "Resident bytes held by the pool (owned plus mapped).",
            "gauge",
        );
        expo::sample_u64(&mut out, "imin_pool_bytes", &[], info.memory_bytes as u64);
        expo::family(
            &mut out,
            "imin_pool_live_edges",
            "Live edges stored across all realisations.",
            "gauge",
        );
        expo::sample_u64(
            &mut out,
            "imin_pool_live_edges",
            &[],
            info.live_edges as u64,
        );
        expo::family(
            &mut out,
            "imin_pool_compression_ratio",
            "Pool bytes over raw-equivalent bytes.",
            "gauge",
        );
        expo::sample_f64(
            &mut out,
            "imin_pool_compression_ratio",
            &[],
            info.compression_ratio,
        );
        expo::family(
            &mut out,
            "imin_pool_info",
            "Resident pool metadata as labels.",
            "gauge",
        );
        expo::sample_u64(
            &mut out,
            "imin_pool_info",
            &[
                ("arena", info.arena.as_str()),
                ("source", &info.provenance.label()),
                ("graph", &view.graph_label),
            ],
            1,
        );
    }

    if let Some(info) = view.sketch_info.as_ref() {
        expo::family(
            &mut out,
            "imin_sketch_theta",
            "Reverse sketches held by the resident sketch pool.",
            "gauge",
        );
        expo::sample_u64(&mut out, "imin_sketch_theta", &[], info.theta_r as u64);
        expo::family(
            &mut out,
            "imin_sketch_bytes",
            "Resident bytes held by the sketch pool.",
            "gauge",
        );
        expo::sample_u64(&mut out, "imin_sketch_bytes", &[], info.memory_bytes as u64);
        expo::family(
            &mut out,
            "imin_sketch_members",
            "Vertex memberships stored across all sketches.",
            "gauge",
        );
        expo::sample_u64(
            &mut out,
            "imin_sketch_members",
            &[],
            info.total_members as u64,
        );
    }

    // ---- Histograms -------------------------------------------------------
    expo::family(
        &mut out,
        "imin_request_duration_seconds",
        "Wall-clock latency per protocol verb.",
        "histogram",
    );
    for verb in VERBS {
        expo::histogram(
            &mut out,
            "imin_request_duration_seconds",
            &[("verb", verb.as_str())],
            &metrics.verb(verb).snapshot(),
        );
    }

    // One series per algorithm that has actually answered: nine empty
    // 34-line histograms would be noise.
    let active: Vec<AlgorithmKind> = AlgorithmKind::all()
        .iter()
        .copied()
        .filter(|&kind| metrics.algorithm(kind).count() > 0)
        .collect();
    if !active.is_empty() {
        expo::family(
            &mut out,
            "imin_algorithm_compute_seconds",
            "Leader compute time per algorithm kind.",
            "histogram",
        );
        for kind in active {
            expo::histogram(
                &mut out,
                "imin_algorithm_compute_seconds",
                &[("algorithm", kind.name())],
                &metrics.algorithm(kind).snapshot(),
            );
        }
    }

    expo::family(
        &mut out,
        "imin_query_phase_seconds",
        "Time attributed to each phase of pooled query computation.",
        "histogram",
    );
    for phase in QUERY_PHASES {
        expo::histogram(
            &mut out,
            "imin_query_phase_seconds",
            &[("phase", phase.name())],
            &metrics.phase(phase).snapshot(),
        );
    }

    expo::family(
        &mut out,
        "imin_snapshot_phase_seconds",
        "Time attributed to each phase of snapshot restore.",
        "histogram",
    );
    for phase in SNAPSHOT_PHASES {
        expo::histogram(
            &mut out,
            "imin_snapshot_phase_seconds",
            &[("phase", phase.name())],
            &metrics.phase(phase).snapshot(),
        );
    }

    expo::family(
        &mut out,
        "imin_compute_seconds",
        "Leader compute time across all algorithms (basis of the busy hint).",
        "histogram",
    );
    expo::histogram(
        &mut out,
        "imin_compute_seconds",
        &[],
        &metrics.compute().snapshot(),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_tracks_the_p95_with_bounded_staleness() {
        let metrics = EngineMetrics::default();
        assert_eq!(metrics.retry_after_ms(), 50, "cold engines answer 50 ms");

        // 99 fast queries and one pathological outlier: the p95 stays in
        // the 1 ms bucket (upper bound 1023 µs → 1 ms), where the old
        // running mean would have answered ~101 ms.
        for _ in 0..99 {
            metrics.compute().record_us(1_000);
        }
        metrics.compute().record_us(10_000_000);
        assert_eq!(metrics.retry_after_ms(), 1);

        // A flood of genuinely slow queries moves the p95: rank 285 of 300
        // lands in the 2 s bucket (upper bound 2_097_151 µs → 2097 ms).
        for _ in 0..200 {
            metrics.compute().record_us(2_000_000);
        }
        assert_eq!(metrics.retry_after_ms(), 2_097);

        // Bounded staleness: the hint is cached per compute count, so
        // asking twice without new computes does no quantile walk and
        // answers identically.
        assert_eq!(metrics.retry_after_ms(), 2_097);
    }

    #[test]
    fn retry_hint_respects_the_clamp() {
        let slow = EngineMetrics::default();
        for _ in 0..100 {
            slow.compute().record_us(60_000_000); // a minute each
        }
        assert_eq!(slow.retry_after_ms(), 10_000, "clamped to 10 s");

        let fast = EngineMetrics::default();
        for _ in 0..100 {
            fast.compute().record_us(1);
        }
        assert_eq!(fast.retry_after_ms(), 1, "clamped to 1 ms");
    }

    #[test]
    fn trace_ids_start_at_one_and_increment() {
        let metrics = EngineMetrics::default();
        assert_eq!(metrics.next_trace_id(), 1);
        assert_eq!(metrics.next_trace_id(), 2);
    }
}
