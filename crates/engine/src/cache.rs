//! A small least-recently-used cache for query results.
//!
//! The engine keys this cache by canonicalised query (sorted, deduplicated
//! seeds + budget + algorithm), so two textually different requests for the
//! same question hit the same entry. Capacity is small (hundreds), so the
//! eviction scan is a linear pass instead of an intrusive list — simpler,
//! allocation-light, and invisible next to a single query's cost.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map evicting the least-recently-used entry on overflow.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. Capacity `0`
    /// disables the cache outright — every lookup misses and inserts are
    /// dropped — for callers that must measure or serve the uncached path.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.0 = tick;
            &entry.1
        })
    }

    /// Looks up `key` **without** refreshing its recency — for tests and
    /// inspectors that must not perturb the eviction order they are
    /// checking.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|entry| &entry.1)
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if the
    /// cache is full and `key` is not already present. A capacity-0 cache
    /// drops the entry.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Drops every entry (used when the graph or the pool changes, which
    /// invalidates all cached answers).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_refresh_recency_and_overflow_evicts_the_oldest() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(&1)); // refresh a
        assert_eq!(cache.peek(&"b"), Some(&2), "peek does not refresh");
        cache.insert("c", 3); // evicts b despite the peek
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"a"), Some(&10));
        assert_eq!(cache.get(&"b"), Some(&2));
    }

    #[test]
    fn capacity_zero_disables_caching_and_clear_empties() {
        let mut cache = LruCache::new(0);
        assert_eq!(cache.capacity(), 0);
        cache.insert(1u32, ());
        cache.insert(2u32, ());
        assert_eq!(cache.get(&1u32), None, "capacity 0 never stores");
        assert!(cache.is_empty());

        let mut cache = LruCache::new(1);
        cache.insert(1u32, ());
        cache.insert(2u32, ());
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
