//! Blocking client for the `imin-serve` line protocol — the library behind
//! the `imin-cli` binary and the protocol round-trip tests.

use crate::engine::QueryAlgorithm;
use crate::protocol::{parse_reply, payload_field};
use crate::{EngineError, Result};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A typed view of a `QUERY` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryReply {
    /// Chosen blockers in selection order.
    pub blockers: Vec<u32>,
    /// Estimated remaining spread (seeds counted), `None` if the engine
    /// reported none.
    pub spread: Option<f64>,
    /// Whether the server answered from its LRU cache.
    pub cached: bool,
}

/// A connected protocol client. One request line in, one reply line out.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running `imin-serve`.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Requests are single short lines awaiting a reply; letting Nagle
        // batch them just adds the delayed-ACK stall to every round trip.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line and returns the raw reply line (including
    /// its `OK `/`ERR ` marker).
    ///
    /// # Errors
    /// Returns an I/O error if the connection drops.
    pub fn send_raw(&mut self, line: &str) -> Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let read = self.reader.read_line(&mut reply)?;
        if read == 0 {
            return Err(EngineError::Protocol("server closed the connection".into()));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Sends one request line and returns the `OK` payload, mapping `ERR
    /// <reason>` replies to [`EngineError::Protocol`].
    ///
    /// # Errors
    /// Protocol errors carry the server's reason; I/O errors pass through.
    pub fn send(&mut self, line: &str) -> Result<String> {
        let reply = self.send_raw(line)?;
        parse_reply(&reply).map_err(EngineError::Protocol)
    }

    /// `LOAD pa …`: loads a preferential-attachment graph under the
    /// weighted-cascade model; returns `(n, m)`.
    ///
    /// # Errors
    /// Protocol or I/O errors as in [`Client::send`].
    pub fn load_pa_wc(&mut self, n: usize, m0: usize, seed: u64) -> Result<(usize, usize)> {
        let payload = self.send(&format!("LOAD pa n={n} m0={m0} seed={seed} model=wc"))?;
        let parse = |key: &str| {
            payload_field(&payload, key)
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| EngineError::Protocol(format!("missing {key} in '{payload}'")))
        };
        Ok((parse("n")?, parse("m")?))
    }

    /// `POOL θ seed`: builds the resident pool; returns the build
    /// milliseconds the server reported.
    ///
    /// # Errors
    /// Protocol or I/O errors as in [`Client::send`].
    pub fn build_pool(&mut self, theta: usize, seed: u64) -> Result<u64> {
        let payload = self.send(&format!("POOL {theta} {seed}"))?;
        payload_field(&payload, "build_ms")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| EngineError::Protocol(format!("missing build_ms in '{payload}'")))
    }

    /// `QUERY ic …`: asks one containment question.
    ///
    /// # Errors
    /// Protocol or I/O errors as in [`Client::send`].
    pub fn query(
        &mut self,
        seeds: &[u32],
        budget: usize,
        algorithm: QueryAlgorithm,
    ) -> Result<QueryReply> {
        let seeds = seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        // `Display` prints the registry's canonical name, which the server
        // resolves through the same `AlgorithmKind` registry.
        let payload = self.send(&format!(
            "QUERY ic seeds={seeds} budget={budget} alg={algorithm}"
        ))?;
        let blockers_field = payload_field(&payload, "blockers")
            .ok_or_else(|| EngineError::Protocol(format!("missing blockers in '{payload}'")))?;
        let blockers = if blockers_field.is_empty() {
            Vec::new()
        } else {
            blockers_field
                .split(',')
                .map(|tok| {
                    tok.parse::<u32>().map_err(|_| {
                        EngineError::Protocol(format!("bad blocker id '{tok}' in '{payload}'"))
                    })
                })
                .collect::<Result<Vec<u32>>>()?
        };
        let spread = payload_field(&payload, "spread").and_then(|v| v.parse::<f64>().ok());
        let cached = payload_field(&payload, "cached").as_deref() == Some("true");
        Ok(QueryReply {
            blockers,
            spread,
            cached,
        })
    }

    /// `STATS`: returns the raw payload (see [`payload_field`] to pick
    /// numbers out of it).
    ///
    /// # Errors
    /// Protocol or I/O errors as in [`Client::send`].
    pub fn stats(&mut self) -> Result<String> {
        self.send("STATS")
    }

    /// `METRICS`: reads the multi-line Prometheus exposition. The server
    /// answers `OK lines=<n>` followed by exactly `n` exposition lines;
    /// this reads them all and returns the exposition body (no header,
    /// trailing newline included).
    ///
    /// # Errors
    /// Protocol or I/O errors as in [`Client::send`]; a malformed header
    /// is a protocol error.
    pub fn metrics(&mut self) -> Result<String> {
        let header = self.send_raw("METRICS")?;
        let payload = parse_reply(&header).map_err(EngineError::Protocol)?;
        let lines: usize = payload_field(&payload, "lines")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| EngineError::Protocol(format!("missing lines= in '{header}'")))?;
        let mut body = String::new();
        for _ in 0..lines {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(EngineError::Protocol(
                    "server closed the connection mid-exposition".into(),
                ));
            }
            body.push_str(&line);
        }
        Ok(body)
    }

    /// `PING`: liveness probe.
    ///
    /// # Errors
    /// Protocol or I/O errors as in [`Client::send`].
    pub fn ping(&mut self) -> Result<()> {
        let payload = self.send("PING")?;
        if payload == "pong" {
            Ok(())
        } else {
            Err(EngineError::Protocol(format!(
                "unexpected PING reply '{payload}'"
            )))
        }
    }
}
