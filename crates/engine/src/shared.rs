//! The concurrent serving core: shared-pool parallel queries, request
//! coalescing and admission control.
//!
//! [`SharedEngine`] is the `&self` counterpart of the single-threaded
//! [`Engine`]: every method takes a shared reference, so one instance can
//! be driven from any number of connection threads simultaneously. It
//! splits the engine's responsibilities by mutability:
//!
//! * **State transitions** (`LOAD` / `POOL` / `RESTORE`) are exclusive.
//!   They take the write side of an `RwLock` around the resident
//!   `(graph, pool)` pair, exactly like the old whole-engine mutex — these
//!   verbs are rare and expensive, serialising them is the right shape.
//! * **Queries** are read-side. A query clones `Arc` handles to the
//!   immutable graph and pool under a brief read lock and then computes
//!   *without holding any lock at all*: a built [`SamplePool`] never
//!   changes, and pooled answers are bit-identical at any thread count, so
//!   N connections re-rooting the same realisations concurrently is safe
//!   and byte-stable by construction.
//! * The **LRU result cache** lives behind its own fine-grained mutex —
//!   a cache probe costs a hash lookup, never a pool traversal, so the
//!   lock is held for nanoseconds and is invisible under load.
//! * **Single-flight coalescing**: when N connections ask the identical
//!   (canonicalised) question while it is still being computed, one
//!   *leader* computes and N−1 *followers* block on a condvar and receive
//!   a clone of the leader's answer — the pool is consulted exactly once.
//! * **Admission control**: at most `max_inflight` *leaders* compute at
//!   once. Beyond that, new distinct queries are rejected immediately with
//!   the typed [`EngineError::Busy`] (`ERR busy retry_after_ms=…` on the
//!   wire) instead of queueing unboundedly — followers and cache hits are
//!   never rejected, they add no compute load.
//!
//! ## Consistency
//!
//! A pool swap (rebuild, extension, restore) bumps an internal *epoch*.
//! Queries remember the epoch of the snapshot they computed against and
//! only insert into the cache if the epoch still matches, so an answer
//! computed against a superseded pool can never poison the cache of its
//! successor. In-flight queries against the old pool finish normally (they
//! hold their own `Arc`); `POOL` extensions and rebuilds wait for those
//! references to drain before mutating or releasing the arenas, keeping
//! peak memory at one pool.
//!
//! ## Poison-freedom
//!
//! No lock in this module propagates poisoning: a thread that panicked
//! while holding one leaves the state as it was (mutating ops stage their
//! new state fully before installing it), and every acquisition recovers
//! the guard via [`std::sync::PoisonError::into_inner`]. One panicking
//! handler therefore cannot take the whole server down — the connection
//! answers `ERR internal …` and every other connection keeps working.

use crate::cache::LruCache;
use crate::engine::{
    run_resident, Disposition, Engine, PoolAction, PoolBackend, PoolInfo, PoolProvenance, Query,
    QueryKey, QueryResult, RestoreMode, SketchPoolInfo,
};
use crate::metrics::{self, EngineMetrics, Verb};
use crate::{EngineError, Result};
use imin_core::snapshot::{self, SnapshotSummary};
use imin_core::{AlgorithmKind, SamplePool, SketchPool};
use imin_graph::DiGraph;
use imin_obs::{span, Phase, PhaseBreakdown, QUERY_PHASES, SNAPSHOT_PHASES};
use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Acquires a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-acquires an `RwLock`, recovering from poisoning.
fn read_unpoisoned<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-acquires an `RwLock`, recovering from poisoning.
fn write_unpoisoned<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// The resident `(graph, pool)` pair plus its bookkeeping. Guarded by the
/// state `RwLock`; queries only ever clone the two `Arc`s out of it.
#[derive(Debug, Default)]
struct ResidentState {
    graph: Option<Arc<DiGraph>>,
    graph_label: String,
    pool: Option<Arc<SamplePool>>,
    pool_info: Option<PoolInfo>,
    sketch: Option<Arc<SketchPool>>,
    sketch_info: Option<SketchPoolInfo>,
    /// Bumped on every graph/pool replacement; cache inserts are fenced on
    /// it so answers from a superseded pool never land in the new cache.
    epoch: u64,
}

/// The LRU cache plus the epoch its entries belong to.
#[derive(Debug)]
struct CacheState {
    epoch: u64,
    lru: LruCache<QueryKey, QueryResult>,
}

/// What a coalesced follower receives: the leader's answer, or its error
/// demoted to a message (the typed error stays with the leader, mirroring
/// the duplicate-slot convention of [`Engine::run_queries`]).
type CoalescedOutcome = std::result::Result<QueryResult, String>;

/// One in-flight computation that identical queries rendezvous on.
#[derive(Debug, Default)]
struct InflightSlot {
    outcome: Mutex<Option<CoalescedOutcome>>,
    ready: Condvar,
}

impl InflightSlot {
    /// Blocks until the leader publishes, then returns a clone.
    fn wait(&self) -> CoalescedOutcome {
        let mut outcome = lock_unpoisoned(&self.outcome);
        loop {
            if let Some(published) = outcome.as_ref() {
                return published.clone();
            }
            outcome = self
                .ready
                .wait(outcome)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Publishes the leader's outcome and wakes every follower.
    fn publish(&self, published: CoalescedOutcome) {
        *lock_unpoisoned(&self.outcome) = Some(published);
        self.ready.notify_all();
    }
}

/// Monotonic atomic counters (plus the `inflight` gauge) behind `STATS`.
/// Latency lives in [`EngineMetrics`] histograms, not here — the `lat_*`
/// sums reported by `STATS` are read back from the per-verb histograms.
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    computed: AtomicU64,
    inflight: AtomicU64,
    pool_builds: AtomicU64,
    pool_extends: AtomicU64,
    pool_compressions: AtomicU64,
    pool_reuses: AtomicU64,
    sketch_builds: AtomicU64,
    sketch_reuses: AtomicU64,
    graph_loads: AtomicU64,
    snapshot_saves: AtomicU64,
    snapshot_restores: AtomicU64,
}

/// What the engine observed while answering the calling thread's most
/// recent request — the access log's source of truth. Stored in a
/// thread-local by the query/restore paths and drained by the server after
/// the reply is written, so the plumbing never widens a public signature.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Observation {
    /// Engine-assigned request id (0 when the verb assigns none).
    pub(crate) trace_id: u64,
    /// How the answer was produced (`computed`, `cache_hit`, `coalesced`,
    /// `rejected`, `error`, `restore`).
    pub(crate) disposition: &'static str,
    /// Per-phase breakdown, when spans were active for this request.
    pub(crate) phases: Option<PhaseBreakdown>,
}

thread_local! {
    static LAST_OBSERVATION: Cell<Option<Observation>> = const { Cell::new(None) };
}

/// Takes (and clears) the calling thread's last [`Observation`].
pub(crate) fn take_last_observation() -> Option<Observation> {
    LAST_OBSERVATION.with(|cell| cell.take())
}

fn set_observation(observation: Observation) {
    LAST_OBSERVATION.with(|cell| cell.set(Some(observation)));
}

/// A point-in-time copy of every serving counter, as reported by `STATS`.
///
/// The first eight fields carry the same meaning as [`crate::EngineStats`];
/// the rest are new with the concurrent serving core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Queries received (cache hits, coalesced, rejected all included).
    pub queries: u64,
    /// Queries answered straight from the LRU cache.
    pub cache_hits: u64,
    /// Queries answered by waiting on an identical in-flight computation
    /// (the pool was *not* consulted again).
    pub coalesced: u64,
    /// Queries rejected with `ERR busy …` by admission control.
    pub rejected: u64,
    /// Queries that actually computed against the pool (leaders).
    pub computed: u64,
    /// Leaders computing right now (a gauge, not a counter).
    pub inflight: u64,
    /// Pools built from scratch.
    pub pool_builds: u64,
    /// Pools grown in place via `extend_to`.
    pub pool_extends: u64,
    /// Pools re-encoded into a compressed arena via `COMPRESS`.
    pub pool_compressions: u64,
    /// `POOL` requests satisfied by the already-resident pool.
    pub pool_reuses: u64,
    /// Sketch pools built from scratch (`POOL … backend=sketch`).
    pub sketch_builds: u64,
    /// Sketch `POOL` requests satisfied by the resident sketch pool.
    pub sketch_reuses: u64,
    /// Graphs installed (`LOAD` and `RESTORE`).
    pub graph_loads: u64,
    /// Snapshots written via `SAVE`.
    pub snapshot_saves: u64,
    /// Snapshots restored via `RESTORE`.
    pub snapshot_restores: u64,
    /// Total µs spent inside `LOAD` handling (engine side; the sum of the
    /// `verb="load"` latency histogram).
    pub lat_load_us: u64,
    /// Total µs spent inside `POOL` handling.
    pub lat_pool_us: u64,
    /// Total µs spent inside `QUERY` handling (hits, waits and computes).
    pub lat_query_us: u64,
    /// Total µs spent inside `SAVE` handling.
    pub lat_save_us: u64,
    /// Total µs spent inside `RESTORE` handling.
    pub lat_restore_us: u64,
}

/// `Arc` handles to the resident state — what a moment-in-time reader
/// (`STATS`, benchmarks, parity checks) sees without blocking writers for
/// longer than one field copy.
#[derive(Clone, Debug)]
pub struct ResidentView {
    /// The loaded graph, if any.
    pub graph: Option<Arc<DiGraph>>,
    /// Label given to the loaded graph.
    pub graph_label: String,
    /// The resident pool, if any.
    pub pool: Option<Arc<SamplePool>>,
    /// The resident pool's build facts, if a pool exists.
    pub pool_info: Option<PoolInfo>,
    /// The resident reverse-sketch pool, if any.
    pub sketch: Option<Arc<SketchPool>>,
    /// The resident sketch pool's build facts, if a sketch pool exists.
    pub sketch_info: Option<SketchPoolInfo>,
}

/// A containment query engine that many threads drive concurrently.
///
/// See the [module docs](self) for the concurrency model. The single
/// ordering contract worth repeating: **pooled answers are byte-identical
/// no matter how many connections race** — the pool is immutable, per-query
/// credits accumulate in integers, and coalesced followers receive clones
/// of the one computed answer.
#[derive(Debug)]
pub struct SharedEngine {
    state: RwLock<ResidentState>,
    cache: Mutex<CacheState>,
    inflight: Mutex<HashMap<QueryKey, Arc<InflightSlot>>>,
    counters: Counters,
    metrics: EngineMetrics,
    threads: usize,
    query_threads: usize,
    max_inflight: usize,
    observability: AtomicBool,
}

impl Default for SharedEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Default cap on concurrently *computing* queries. Deliberately generous:
/// it exists to bound memory and latency under pathological fan-in, not to
/// pace a healthy workload.
pub const DEFAULT_MAX_INFLIGHT: usize = 256;

impl SharedEngine {
    /// Creates an empty shared engine: default worker threads, one thread
    /// per query, a 256-entry result cache and the default admission
    /// budget ([`DEFAULT_MAX_INFLIGHT`]).
    pub fn new() -> Self {
        let threads = imin_diffusion::montecarlo::default_threads();
        SharedEngine {
            state: RwLock::new(ResidentState::default()),
            cache: Mutex::new(CacheState {
                epoch: 0,
                lru: LruCache::new(256),
            }),
            inflight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            metrics: EngineMetrics::default(),
            threads,
            query_threads: threads,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            observability: AtomicBool::new(true),
        }
    }

    /// Adopts a single-threaded [`Engine`]'s resident state and counters.
    /// The LRU cache's *entries* are dropped (only the capacity carries
    /// over) — they would be valid, but the engine is typically empty or
    /// freshly primed when a server wraps it.
    pub fn from_engine(engine: Engine) -> Self {
        let parts = engine.into_parts();
        let shared = SharedEngine::new()
            .with_threads(parts.threads)
            .with_cache_capacity(parts.cache_capacity);
        {
            let mut state = write_unpoisoned(&shared.state);
            state.graph = parts.graph.map(Arc::new);
            state.graph_label = parts.graph_label;
            state.pool = parts.pool.map(Arc::new);
            state.pool_info = parts.pool_info;
            state.sketch = parts.sketch.map(Arc::new);
            state.sketch_info = parts.sketch_info;
        }
        let c = &shared.counters;
        c.queries.store(parts.stats.queries, Relaxed);
        c.cache_hits.store(parts.stats.cache_hits, Relaxed);
        c.pool_builds.store(parts.stats.pool_builds, Relaxed);
        c.pool_extends.store(parts.stats.pool_extends, Relaxed);
        c.pool_compressions
            .store(parts.stats.pool_compressions, Relaxed);
        c.pool_reuses.store(parts.stats.pool_reuses, Relaxed);
        c.sketch_builds.store(parts.stats.sketch_builds, Relaxed);
        c.sketch_reuses.store(parts.stats.sketch_reuses, Relaxed);
        c.graph_loads.store(parts.stats.graph_loads, Relaxed);
        c.snapshot_saves.store(parts.stats.snapshot_saves, Relaxed);
        c.snapshot_restores
            .store(parts.stats.snapshot_restores, Relaxed);
        shared
    }

    /// Sets the worker-thread count for pool builds **and** resets the
    /// per-query thread count to the same value (call
    /// [`SharedEngine::with_query_threads`] *after* this to split them).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.query_threads = self.threads;
        self
    }

    /// Sets the intra-query thread count independently of the build
    /// threads. Under concurrent load the right value is usually `1`:
    /// parallelism across connections beats parallelism inside one query,
    /// and answers are bit-identical either way.
    pub fn with_query_threads(mut self, query_threads: usize) -> Self {
        self.query_threads = query_threads.max(1);
        self
    }

    /// Sets the LRU result-cache capacity (entries are dropped). Capacity
    /// `0` disables result caching: every query recomputes.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        let epoch = lock_unpoisoned(&self.cache).epoch;
        self.cache = Mutex::new(CacheState {
            epoch,
            lru: LruCache::new(capacity),
        });
        self
    }

    /// Sets the admission budget: the number of queries allowed to compute
    /// concurrently before new distinct queries get [`EngineError::Busy`].
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self
    }

    /// Enables or disables phase observability (default: enabled). When
    /// disabled, per-phase spans are never armed and replies carry no
    /// trace breakdown; verb/algorithm/compute latency histograms keep
    /// recording either way (they back `STATS` and the busy hint).
    pub fn with_observability(self, enabled: bool) -> Self {
        self.observability.store(enabled, Relaxed);
        self
    }

    /// Flips phase observability on a live engine — no rebuild, no pool
    /// swap. In-flight queries keep the setting they started with (the
    /// flag is read once at query entry); the next request sees the new
    /// one. The read is a relaxed load of one byte, so leaving tracing on
    /// or off costs the serving path nothing either way.
    pub fn set_observability(&self, enabled: bool) {
        self.observability.store(enabled, Relaxed);
    }

    /// Whether phase spans and traces are enabled.
    pub fn observability(&self) -> bool {
        self.observability.load(Relaxed)
    }

    /// The metric registry (verb/algorithm/phase/compute histograms).
    pub(crate) fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Renders the complete Prometheus text-format exposition — the body
    /// of the `METRICS` protocol verb.
    pub fn metrics_text(&self) -> String {
        metrics::render(self)
    }

    /// Pool-build worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Intra-query worker threads.
    pub fn query_threads(&self) -> usize {
        self.query_threads
    }

    /// The admission budget.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Number of entries currently cached.
    pub fn cache_entries(&self) -> usize {
        lock_unpoisoned(&self.cache).lru.len()
    }

    /// A point-in-time copy of every counter.
    pub fn stats(&self) -> ServingStats {
        let c = &self.counters;
        ServingStats {
            queries: c.queries.load(Relaxed),
            cache_hits: c.cache_hits.load(Relaxed),
            coalesced: c.coalesced.load(Relaxed),
            rejected: c.rejected.load(Relaxed),
            computed: c.computed.load(Relaxed),
            inflight: c.inflight.load(Relaxed),
            pool_builds: c.pool_builds.load(Relaxed),
            pool_extends: c.pool_extends.load(Relaxed),
            pool_compressions: c.pool_compressions.load(Relaxed),
            pool_reuses: c.pool_reuses.load(Relaxed),
            sketch_builds: c.sketch_builds.load(Relaxed),
            sketch_reuses: c.sketch_reuses.load(Relaxed),
            graph_loads: c.graph_loads.load(Relaxed),
            snapshot_saves: c.snapshot_saves.load(Relaxed),
            snapshot_restores: c.snapshot_restores.load(Relaxed),
            lat_load_us: self.metrics.verb(Verb::Load).sum_us(),
            lat_pool_us: self.metrics.verb(Verb::Pool).sum_us(),
            lat_query_us: self.metrics.verb(Verb::Query).sum_us(),
            lat_save_us: self.metrics.verb(Verb::Save).sum_us(),
            lat_restore_us: self.metrics.verb(Verb::Restore).sum_us(),
        }
    }

    /// `Arc` handles to the resident graph/pool plus their facts.
    pub fn view(&self) -> ResidentView {
        let state = read_unpoisoned(&self.state);
        ResidentView {
            graph: state.graph.clone(),
            graph_label: state.graph_label.clone(),
            pool: state.pool.clone(),
            pool_info: state.pool_info.clone(),
            sketch: state.sketch.clone(),
            sketch_info: state.sketch_info.clone(),
        }
    }

    /// The suggested client backoff for a [`EngineError::Busy`] rejection:
    /// the p95 of compute latency (robust against outliers, unlike the
    /// running mean it replaced), clamped to `[1 ms, 10 s]` (50 ms before
    /// anything has computed). Recomputed at most once per new computed
    /// query — see [`EngineMetrics::retry_after_ms`].
    fn retry_after_ms(&self) -> u64 {
        self.metrics.retry_after_ms()
    }

    /// Clears the cache and re-tags it with the (already bumped) epoch.
    /// Callers hold the state write lock, which is the intended nesting
    /// order (state → cache); the query path never holds both at once.
    fn reset_cache(&self, epoch: u64) {
        let mut cache = lock_unpoisoned(&self.cache);
        cache.lru.clear();
        cache.epoch = epoch;
    }

    /// Installs a graph, dropping any previous pool and cached results.
    /// Exclusive: concurrent queries either finish against the old state
    /// or start against the new one.
    pub fn load_graph(&self, graph: DiGraph, label: String) {
        let start = Instant::now();
        {
            let mut state = write_unpoisoned(&self.state);
            state.graph = Some(Arc::new(graph));
            state.graph_label = label;
            state.pool = None;
            state.pool_info = None;
            state.sketch = None;
            state.sketch_info = None;
            state.epoch += 1;
            self.reset_cache(state.epoch);
        }
        self.counters.graph_loads.fetch_add(1, Relaxed);
        self.metrics
            .verb(Verb::Load)
            .record_us(start.elapsed().as_micros() as u64);
    }

    /// Makes a pool with exactly `(θ, seed)` resident — the same least-work
    /// contract as [`Engine::ensure_pool`] (no-op / extend in place /
    /// rebuild), executed exclusively. Queries in flight keep their own
    /// `Arc` to the old pool; the extend and rebuild paths wait for those
    /// references to drain before mutating or releasing the arenas, so
    /// peak memory stays at one pool.
    ///
    /// # Errors
    /// [`EngineError::NoGraph`] before a graph is loaded, or the underlying
    /// build error (e.g. θ = 0, rejected before anything is dropped).
    pub fn ensure_pool(&self, theta: usize, seed: u64) -> Result<(PoolInfo, PoolAction)> {
        let start = Instant::now();
        let result = self.ensure_pool_locked(theta, seed);
        self.metrics
            .verb(Verb::Pool)
            .record_us(start.elapsed().as_micros() as u64);
        result
    }

    fn ensure_pool_locked(&self, theta: usize, seed: u64) -> Result<(PoolInfo, PoolAction)> {
        let mut state = write_unpoisoned(&self.state);
        let graph = state.graph.clone().ok_or(EngineError::NoGraph)?;
        if theta == 0 {
            return Err(imin_core::IminError::ZeroSamples.into());
        }
        if let Some(pool) = state.pool.as_ref() {
            if pool.pool_seed() == seed && pool.theta() == theta {
                self.counters.pool_reuses.fetch_add(1, Relaxed);
                let info = state.pool_info.clone().expect("resident pool has info");
                return Ok((info, PoolAction::Reused));
            }
        }
        // Compressed and mapped arenas cannot grow in place — a growing
        // request against one falls through to the rebuild path below.
        let grows = state
            .pool
            .as_ref()
            .is_some_and(|p| p.pool_seed() == seed && p.theta() < theta && p.is_extendable());
        if grows {
            let pool_arc = state.pool.as_mut().expect("grows implies a pool");
            // New queries are blocked by the write lock; in-flight ones
            // still hold clones. Wait for them so the arena is exclusively
            // ours — extension mutates it in place.
            drain_to_exclusive(pool_arc);
            let from_theta = pool_arc.theta();
            let build = Instant::now();
            Arc::get_mut(pool_arc)
                .expect("drained to exclusive")
                .extend_to(&graph, theta, self.threads)?;
            let pool = state.pool.as_ref().expect("pool still resident");
            let info = PoolInfo::for_pool(
                pool,
                self.threads,
                build.elapsed(),
                PoolProvenance::Extended { from_theta },
            );
            state.pool_info = Some(info.clone());
            state.epoch += 1;
            self.reset_cache(state.epoch);
            self.counters.pool_extends.fetch_add(1, Relaxed);
            return Ok((info, PoolAction::Extended));
        }
        // Rebuild: release the superseded pool (after its readers drain)
        // *before* sampling the new one, and invalidate the cache at the
        // same moment — those answers belonged to the old pool, which is
        // about to stop existing.
        if let Some(old) = state.pool.take() {
            state.pool_info = None;
            state.epoch += 1;
            self.reset_cache(state.epoch);
            drain_to_exclusive(&old);
            drop(old);
        }
        let build = Instant::now();
        let pool = SamplePool::build_with_threads(&graph, theta, seed, self.threads)?;
        let info = PoolInfo::for_pool(&pool, self.threads, build.elapsed(), PoolProvenance::Built);
        state.pool = Some(Arc::new(pool));
        state.pool_info = Some(info.clone());
        state.epoch += 1;
        self.reset_cache(state.epoch);
        self.counters.pool_builds.fetch_add(1, Relaxed);
        Ok((info, PoolAction::Built))
    }

    /// Makes a reverse-sketch pool with exactly `(θ_r, seed)` resident —
    /// the `POOL … backend=sketch` counterpart of
    /// [`SharedEngine::ensure_pool`], executed exclusively. A matching
    /// resident sketch pool is a no-op that keeps the cache; anything else
    /// rebuilds from scratch (sketch pools never extend in place). The
    /// forward pool, if any, stays resident untouched. In-flight
    /// `ris-greedy` queries keep their own `Arc` to the old sketch pool;
    /// the rebuild waits for those references to drain before releasing the
    /// arenas, so peak memory stays at one sketch pool.
    ///
    /// # Errors
    /// [`EngineError::NoGraph`] before a graph is loaded, or the underlying
    /// build error (θ_r = 0, rejected before anything is dropped).
    pub fn ensure_sketch_pool(
        &self,
        theta_r: usize,
        seed: u64,
    ) -> Result<(SketchPoolInfo, PoolAction)> {
        let start = Instant::now();
        let result = self.ensure_sketch_pool_locked(theta_r, seed);
        self.metrics
            .verb(Verb::Pool)
            .record_us(start.elapsed().as_micros() as u64);
        result
    }

    fn ensure_sketch_pool_locked(
        &self,
        theta_r: usize,
        seed: u64,
    ) -> Result<(SketchPoolInfo, PoolAction)> {
        let mut state = write_unpoisoned(&self.state);
        let graph = state.graph.clone().ok_or(EngineError::NoGraph)?;
        if theta_r == 0 {
            return Err(imin_core::IminError::ZeroSamples.into());
        }
        if let Some(sketch) = state.sketch.as_ref() {
            if sketch.pool_seed() == seed && sketch.theta_r() == theta_r {
                self.counters.sketch_reuses.fetch_add(1, Relaxed);
                let info = state
                    .sketch_info
                    .clone()
                    .expect("resident sketch pool has info");
                return Ok((info, PoolAction::Reused));
            }
        }
        // Release the superseded sketch pool (after its readers drain)
        // before building the new one, and invalidate the cache — cached
        // `ris-greedy` answers belonged to the old sketches.
        if let Some(old) = state.sketch.take() {
            state.sketch_info = None;
            state.epoch += 1;
            self.reset_cache(state.epoch);
            drain_to_exclusive(&old);
            drop(old);
        }
        let build = Instant::now();
        let sketch = SketchPool::build_with_threads(&graph, theta_r, seed, self.threads)?;
        let info = SketchPoolInfo::for_pool(
            &sketch,
            self.threads,
            build.elapsed(),
            PoolProvenance::Built,
        );
        state.sketch = Some(Arc::new(sketch));
        state.sketch_info = Some(info.clone());
        state.epoch += 1;
        self.reset_cache(state.epoch);
        self.counters.sketch_builds.fetch_add(1, Relaxed);
        Ok((info, PoolAction::Built))
    }

    /// Writes the resident `(graph, pool)` to a snapshot file. Runs
    /// **concurrently with queries**: it serialises from `Arc` clones
    /// taken under a brief read lock, so a multi-gigabyte write never
    /// stalls the query path (a simultaneous `POOL` rebuild waits for the
    /// save's pool reference to drain, like any other reader).
    ///
    /// # Errors
    /// [`EngineError::NoGraph`] / [`EngineError::NoPool`] before the engine
    /// is primed, or the snapshot writer's error.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<SnapshotSummary> {
        let start = Instant::now();
        let result = self.save_snapshot_inner(path.as_ref());
        self.metrics
            .verb(Verb::Save)
            .record_us(start.elapsed().as_micros() as u64);
        result
    }

    fn save_snapshot_inner(&self, path: &Path) -> Result<SnapshotSummary> {
        let (graph, pool, label) = {
            let state = read_unpoisoned(&self.state);
            let graph = state.graph.clone().ok_or(EngineError::NoGraph)?;
            // Snapshot format v2 describes forward sample arenas only: a
            // sketch-only engine answers with a typed backend error rather
            // than the misleading "no pool built".
            let pool = match state.pool.clone() {
                Some(pool) => pool,
                None if state.sketch.is_some() => {
                    return Err(EngineError::BackendUnsupported {
                        operation: "SAVE",
                        backend: PoolBackend::Sketch.label(),
                    })
                }
                None => return Err(EngineError::NoPool),
            };
            (graph, pool, state.graph_label.clone())
        };
        let summary = snapshot::save_snapshot(path, &graph, &pool, &label)?;
        self.counters.snapshot_saves.fetch_add(1, Relaxed);
        Ok(summary)
    }

    /// Warm-starts from a snapshot file. The file is read and validated
    /// *before* the write lock is taken, so the engine keeps serving from
    /// its old state during the bulk load and swaps atomically at the end.
    /// A failed restore leaves the resident state untouched.
    ///
    /// # Errors
    /// Every snapshot defect surfaces as the typed
    /// [`imin_core::SnapshotError`] inside [`EngineError::Core`].
    pub fn restore_snapshot(&self, path: impl AsRef<Path>) -> Result<PoolInfo> {
        self.restore_snapshot_with(path, RestoreMode::Copy)
    }

    /// [`SharedEngine::restore_snapshot`] with an explicit [`RestoreMode`].
    /// `Map` skips the bulk copy entirely: the snapshot is memory-mapped
    /// after eager header/directory validation and arena slices are served
    /// straight from the page cache — first-query-ready in milliseconds
    /// regardless of pool size, with per-sample validation deferred to
    /// first touch (a corrupt sample answers `ERR internal …`, the engine
    /// stays healthy).
    ///
    /// # Errors
    /// Same as [`SharedEngine::restore_snapshot`]; `Map` additionally
    /// rejects v1 snapshots and big-endian hosts.
    pub fn restore_snapshot_with(
        &self,
        path: impl AsRef<Path>,
        mode: RestoreMode,
    ) -> Result<PoolInfo> {
        let start = Instant::now();
        let observability = self.observability();
        if observability {
            span::begin();
        }
        let result = self.restore_snapshot_inner(path.as_ref(), mode);
        let breakdown = span::take();
        if observability && result.is_ok() {
            for phase in SNAPSHOT_PHASES {
                self.metrics.phase(phase).record_us(breakdown.get(phase));
            }
            set_observation(Observation {
                trace_id: 0,
                disposition: "restore",
                phases: Some(breakdown),
            });
        }
        self.metrics
            .verb(Verb::Restore)
            .record_us(start.elapsed().as_micros() as u64);
        result
    }

    fn restore_snapshot_inner(&self, path: &Path, mode: RestoreMode) -> Result<PoolInfo> {
        let start = Instant::now();
        let (restored, provenance) = match mode {
            RestoreMode::Copy => (
                snapshot::load_snapshot(path)?,
                PoolProvenance::Restored {
                    path: path.display().to_string(),
                },
            ),
            RestoreMode::Map => (
                snapshot::map_snapshot(path)?,
                PoolProvenance::Mapped {
                    path: path.display().to_string(),
                },
            ),
        };
        let info = PoolInfo::for_pool(&restored.pool, self.threads, start.elapsed(), provenance);
        {
            let mut state = write_unpoisoned(&self.state);
            state.graph = Some(Arc::new(restored.graph));
            state.graph_label = if restored.label.is_empty() {
                format!("snapshot({})", path.display())
            } else {
                restored.label
            };
            state.pool = Some(Arc::new(restored.pool));
            state.pool_info = Some(info.clone());
            state.sketch = None;
            state.sketch_info = None;
            state.epoch += 1;
            self.reset_cache(state.epoch);
        }
        self.counters.graph_loads.fetch_add(1, Relaxed);
        self.counters.snapshot_restores.fetch_add(1, Relaxed);
        Ok(info)
    }

    /// Re-encodes the resident pool into a compressed arena (delta-varint
    /// or per-sample bitset per realisation, whichever is smaller).
    /// Compressed pools answer queries **byte-identically** to the raw pool
    /// they came from, so the result cache and epoch survive — in-flight
    /// queries finish against their own `Arc` of the raw pool and their
    /// answers stay valid. An already-compressed pool is a no-op.
    ///
    /// # Errors
    /// [`EngineError::NoGraph`] / [`EngineError::NoPool`] before the engine
    /// is primed, or the encoder's error.
    pub fn compress_pool(&self) -> Result<PoolInfo> {
        let verb_start = Instant::now();
        let result = self.compress_pool_inner();
        self.metrics
            .verb(Verb::Compress)
            .record_us(verb_start.elapsed().as_micros() as u64);
        result
    }

    fn compress_pool_inner(&self) -> Result<PoolInfo> {
        let mut state = write_unpoisoned(&self.state);
        let graph = state.graph.clone().ok_or(EngineError::NoGraph)?;
        let pool = state.pool.clone().ok_or(EngineError::NoPool)?;
        if pool.arena_kind() == imin_core::ArenaKind::Compressed {
            return Ok(state.pool_info.clone().expect("resident pool has info"));
        }
        let start = Instant::now();
        let compressed = pool.compress(&graph, self.threads)?;
        let provenance = state
            .pool_info
            .as_ref()
            .map(|info| info.provenance.clone())
            .unwrap_or(PoolProvenance::Built);
        let info = PoolInfo::for_pool(&compressed, self.threads, start.elapsed(), provenance);
        state.pool = Some(Arc::new(compressed));
        state.pool_info = Some(info.clone());
        // No epoch bump and no cache reset: compressed answers are
        // byte-identical, every cached and in-flight answer stays correct.
        self.counters.pool_compressions.fetch_add(1, Relaxed);
        Ok(info)
    }

    /// Answers one query. Cache hit → immediate clone. Identical question
    /// already computing → wait for it (coalesced). Otherwise compute as a
    /// leader against an `Arc` snapshot of the pool, subject to the
    /// admission budget.
    ///
    /// # Errors
    /// [`EngineError::NoGraph`] / [`EngineError::NoPool`] before the engine
    /// is primed, [`EngineError::Busy`] when the admission budget is
    /// exhausted, the algorithm's validation error, or
    /// [`EngineError::Internal`] if the computation panicked (the engine
    /// itself stays healthy).
    pub fn query(&self, query: &Query) -> Result<QueryResult> {
        let start = Instant::now();
        let trace_id = self.metrics.next_trace_id();
        let result = self.query_inner(query, start, trace_id);
        self.metrics
            .verb(Verb::Query)
            .record_us(start.elapsed().as_micros() as u64);
        set_observation(match &result {
            Ok(answer) => Observation {
                trace_id,
                disposition: answer.disposition.as_str(),
                phases: answer.phases,
            },
            Err(EngineError::Busy { .. }) => Observation {
                trace_id,
                disposition: "rejected",
                phases: None,
            },
            Err(_) => Observation {
                trace_id,
                disposition: "error",
                phases: None,
            },
        });
        result
    }

    fn query_inner(&self, query: &Query, start: Instant, trace_id: u64) -> Result<QueryResult> {
        self.counters.queries.fetch_add(1, Relaxed);
        let key = query.key();
        let probe_start = Instant::now();
        let cached = {
            let mut cache = lock_unpoisoned(&self.cache);
            cache.lru.get(&key).cloned()
        };
        let probe_us = probe_start.elapsed().as_micros() as u64;
        if let Some(mut hit) = cached {
            self.counters.cache_hits.fetch_add(1, Relaxed);
            hit.from_cache = true;
            hit.elapsed = start.elapsed();
            // The stored phase breakdown (the original leader's) rides
            // along — a trace of a cache hit shows what the answer cost
            // when it was computed.
            hit.disposition = Disposition::CacheHit;
            hit.trace_id = trace_id;
            return Ok(hit);
        }
        // Snapshot the resident pair (and its epoch) before registering in
        // the single-flight map, so rejected queries never leave a slot
        // behind. Only the backend the algorithm runs on is cloned —
        // `ris-greedy` takes the sketch pool, everything else the forward
        // pool — so the other backend can be swapped mid-compute freely.
        let clone_start = Instant::now();
        let (graph, pool, sketch, epoch) = {
            let state = read_unpoisoned(&self.state);
            let graph = state.graph.clone().ok_or(EngineError::NoGraph)?;
            if query.algorithm == AlgorithmKind::RisGreedy {
                let sketch = state.sketch.clone().ok_or(EngineError::NoSketchPool)?;
                (graph, None, Some(sketch), state.epoch)
            } else {
                let pool = state.pool.clone().ok_or(EngineError::NoPool)?;
                (graph, Some(pool), None, state.epoch)
            }
        };
        let clone_us = clone_start.elapsed().as_micros() as u64;
        enum Role {
            Leader(Arc<InflightSlot>),
            Follower(Arc<InflightSlot>),
        }
        let role = {
            let mut inflight = lock_unpoisoned(&self.inflight);
            if let Some(slot) = inflight.get(&key) {
                Role::Follower(Arc::clone(slot))
            } else {
                // The check and the gauge increment share the map mutex, so
                // the budget is exact: never more than `max_inflight`
                // leaders compute at once.
                if self.counters.inflight.load(Relaxed) >= self.max_inflight as u64 {
                    drop(inflight);
                    self.counters.rejected.fetch_add(1, Relaxed);
                    return Err(EngineError::Busy {
                        retry_after_ms: self.retry_after_ms(),
                    });
                }
                self.counters.inflight.fetch_add(1, Relaxed);
                let slot = Arc::new(InflightSlot::default());
                inflight.insert(key.clone(), Arc::clone(&slot));
                Role::Leader(slot)
            }
        };
        match role {
            Role::Follower(slot) => {
                let outcome = slot.wait();
                self.counters.coalesced.fetch_add(1, Relaxed);
                match outcome {
                    Ok(mut result) => {
                        // Computed on our behalf, not fetched from the
                        // cache: report it as a fresh answer with our own
                        // wall-clock wait. The leader's phase breakdown
                        // rides along — it describes the one computation
                        // this answer came from.
                        result.from_cache = false;
                        result.elapsed = start.elapsed();
                        result.disposition = Disposition::Coalesced;
                        result.trace_id = trace_id;
                        Ok(result)
                    }
                    Err(reason) => Err(EngineError::Protocol(reason)),
                }
            }
            Role::Leader(slot) => {
                let compute = Instant::now();
                let observability = self.observability();
                if observability {
                    // Arm the thread-local span: the pooled solver laps its
                    // decode/bfs/domtree/credit/select work into it.
                    span::begin();
                }
                let mut outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_resident(
                        pool.as_deref(),
                        sketch.as_deref(),
                        &graph,
                        query,
                        self.query_threads,
                        start,
                    )
                }))
                .unwrap_or_else(|panic| Err(EngineError::Internal(panic_message(&panic))));
                // Always drain the span, even on error or panic — a stale
                // active span would pollute the next query on this thread.
                let mut breakdown = span::take();
                let compute_us = compute.elapsed().as_micros() as u64;
                if let Ok(result) = &mut outcome {
                    result.trace_id = trace_id;
                    if observability {
                        breakdown.add_us(Phase::Probe, probe_us);
                        breakdown.add_us(Phase::Clone, clone_us);
                        result.phases = Some(breakdown);
                        for phase in QUERY_PHASES {
                            self.metrics.phase(phase).record_us(breakdown.get(phase));
                        }
                    }
                }
                self.metrics.compute().record_us(compute_us);
                self.metrics
                    .algorithm(query.algorithm)
                    .record_us(compute_us);
                if let Ok(result) = &outcome {
                    let mut cache = lock_unpoisoned(&self.cache);
                    // Only cache answers for the pool that is *still*
                    // resident: a swap mid-compute bumped the epoch.
                    if cache.epoch == epoch {
                        cache.lru.insert(key.clone(), result.clone());
                    }
                }
                slot.publish(match &outcome {
                    Ok(result) => Ok(result.clone()),
                    Err(err) => Err(err.to_string()),
                });
                lock_unpoisoned(&self.inflight).remove(&key);
                self.counters.inflight.fetch_sub(1, Relaxed);
                self.counters.computed.fetch_add(1, Relaxed);
                outcome
            }
        }
    }
}

/// Busy-waits (1 ms naps) until `arc` is the only strong reference. Callers
/// hold the state write lock, so no new references can appear — existing
/// readers (queries, saves) finish and drop theirs.
fn drain_to_exclusive<T>(arc: &Arc<T>) {
    while Arc::strong_count(arc) > 1 {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = panic.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message.clone()
    } else {
        "query handler panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryAlgorithm;
    use imin_graph::{generators, VertexId};
    use std::sync::Barrier;

    fn wc_graph(n: usize, seed: u64) -> DiGraph {
        imin_diffusion::ProbabilityModel::WeightedCascade
            .apply(&generators::preferential_attachment(n, 3, true, 1.0, seed).unwrap())
            .unwrap()
    }

    fn primed(theta: usize) -> SharedEngine {
        let engine = SharedEngine::new().with_threads(1);
        engine.load_graph(wc_graph(300, 11), "pa-300/WC".into());
        engine.ensure_pool(theta, 5).unwrap();
        engine
    }

    fn query(seed: usize, budget: usize) -> Query {
        Query {
            seeds: vec![VertexId::new(seed)],
            budget,
            algorithm: QueryAlgorithm::AdvancedGreedy,
            intervention: imin_core::Intervention::BlockVertices,
        }
    }

    #[test]
    fn lifecycle_errors_match_the_single_threaded_engine() {
        let engine = SharedEngine::new();
        assert!(matches!(
            engine.query(&query(0, 1)),
            Err(EngineError::NoGraph)
        ));
        assert!(matches!(
            engine.ensure_pool(10, 1),
            Err(EngineError::NoGraph)
        ));
        assert!(matches!(
            engine.save_snapshot("/tmp/never.iminsnap"),
            Err(EngineError::NoGraph)
        ));
        engine.load_graph(wc_graph(60, 1), "g".into());
        assert!(matches!(
            engine.query(&query(0, 1)),
            Err(EngineError::NoPool)
        ));
        assert!(engine.ensure_pool(0, 1).is_err(), "zero theta rejected");
    }

    #[test]
    fn answers_match_the_single_threaded_engine_bit_for_bit() {
        let shared = primed(200);
        let mut classic = Engine::new().with_threads(1);
        classic.load_graph(wc_graph(300, 11), "pa-300/WC".into());
        classic.build_pool(200, 5).unwrap();
        for q in [query(0, 3), query(7, 2), query(12, 4)] {
            let a = shared.query(&q).unwrap();
            let b = classic.query(&q).unwrap();
            assert_eq!(a.blockers, b.blockers);
            assert_eq!(a.estimated_spread, b.estimated_spread);
        }
    }

    #[test]
    fn identical_concurrent_queries_compute_once() {
        let engine = Arc::new(primed(400));
        let clients = 8usize;
        let barrier = Arc::new(Barrier::new(clients));
        let mut handles = Vec::new();
        for _ in 0..clients {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                engine.query(&query(1, 4)).unwrap()
            }));
        }
        let answers: Vec<QueryResult> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for answer in &answers[1..] {
            assert_eq!(answer.blockers, answers[0].blockers);
            assert_eq!(answer.estimated_spread, answers[0].estimated_spread);
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, clients as u64);
        assert_eq!(stats.computed, 1, "exactly one pool consultation");
        assert_eq!(
            stats.cache_hits + stats.coalesced,
            clients as u64 - 1,
            "everyone else coalesced or hit the cache: {stats:?}"
        );
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.inflight, 0, "gauge returns to zero");
    }

    #[test]
    fn admission_control_rejects_distinct_queries_over_budget() {
        // Budget 1 and a deliberately heavy query: the leader computes
        // while we try to slip a distinct query past it.
        let engine = Arc::new(SharedEngine::new().with_threads(1).with_max_inflight(1));
        engine.load_graph(wc_graph(2_000, 3), "pa-2000/WC".into());
        engine.ensure_pool(2_000, 9).unwrap();
        let leader = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || engine.query(&query(0, 6)).unwrap())
        };
        // Wait until the leader is definitely computing.
        let deadline = Instant::now() + Duration::from_secs(60);
        while engine.stats().inflight == 0 {
            assert!(Instant::now() < deadline, "leader never started computing");
            std::thread::yield_now();
        }
        let err = engine.query(&query(1, 2)).unwrap_err();
        match err {
            EngineError::Busy { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(engine.stats().rejected, 1);
        leader.join().unwrap();
        // The budget frees up and the same query now succeeds.
        assert!(engine.query(&query(1, 2)).is_ok());
    }

    #[test]
    fn pool_swaps_invalidate_and_fence_the_cache() {
        let engine = primed(200);
        let q = query(2, 3);
        let first = engine.query(&q).unwrap();
        assert_eq!(engine.cache_entries(), 1);
        // Matching POOL keeps the cache; a reseeded POOL clears it.
        let (_, action) = engine.ensure_pool(200, 5).unwrap();
        assert_eq!(action, PoolAction::Reused);
        assert!(engine.query(&q).unwrap().from_cache);
        let (_, action) = engine.ensure_pool(200, 6).unwrap();
        assert_eq!(action, PoolAction::Built);
        assert_eq!(engine.cache_entries(), 0);
        let second = engine.query(&q).unwrap();
        assert!(!second.from_cache);
        // Growing extends in place, bit-identical to a fresh build.
        let (info, action) = engine.ensure_pool(350, 6).unwrap();
        assert_eq!(action, PoolAction::Extended);
        assert_eq!(info.theta, 350);
        let _ = first;
    }

    #[test]
    fn save_and_restore_round_trip_concurrently_safe() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "imin-shared-roundtrip-{}.iminsnap",
            std::process::id()
        ));
        let engine = primed(150);
        let q = query(4, 2);
        let before = engine.query(&q).unwrap();
        engine.save_snapshot(&path).unwrap();
        let warm = SharedEngine::new().with_threads(1);
        let info = warm.restore_snapshot(&path).unwrap();
        assert_eq!(info.theta, 150);
        let after = warm.query(&q).unwrap();
        assert!(!after.from_cache);
        assert_eq!(before.blockers, after.blockers);
        assert_eq!(before.estimated_spread, after.estimated_spread);
        assert_eq!(warm.stats().snapshot_restores, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compress_pool_swaps_arenas_without_disturbing_answers() {
        let engine = primed(200);
        let q = query(2, 3);
        let raw = engine.query(&q).unwrap();
        assert_eq!(engine.cache_entries(), 1);
        let info = engine.compress_pool().unwrap();
        assert_eq!(info.arena, imin_core::ArenaKind::Compressed);
        assert_eq!(
            engine.cache_entries(),
            1,
            "byte-identical answers: the cache survives the swap"
        );
        assert!(engine.query(&q).unwrap().from_cache);
        let fresh = engine.query(&query(7, 2)).unwrap();
        let reference = primed(200).query(&query(7, 2)).unwrap();
        assert_eq!(fresh.blockers, reference.blockers);
        assert_eq!(fresh.estimated_spread, reference.estimated_spread);
        let _ = raw;
        let stats = engine.stats();
        assert_eq!(stats.pool_compressions, 1);
        // Idempotent; a growing POOL afterwards rebuilds instead of extending.
        engine.compress_pool().unwrap();
        assert_eq!(engine.stats().pool_compressions, 1);
        let (_, action) = engine.ensure_pool(300, 5).unwrap();
        assert_eq!(action, PoolAction::Built);
        assert_eq!(engine.stats().pool_extends, 0);
    }

    #[test]
    fn mapped_restore_serves_queries_from_the_snapshot_file() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "imin-shared-maprestore-{}.iminsnap",
            std::process::id()
        ));
        let engine = primed(150);
        let q = query(4, 2);
        let before = engine.query(&q).unwrap();
        engine.save_snapshot(&path).unwrap();
        let warm = SharedEngine::new().with_threads(1);
        let info = warm
            .restore_snapshot_with(&path, crate::engine::RestoreMode::Map)
            .unwrap();
        assert_eq!(info.theta, 150);
        assert_eq!(info.arena, imin_core::ArenaKind::MappedRaw);
        assert_eq!(
            info.provenance.label(),
            format!("mapped:{}", path.display())
        );
        let after = warm.query(&q).unwrap();
        assert_eq!(before.blockers, after.blockers);
        assert_eq!(before.estimated_spread, after.estimated_spread);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_engine_adopts_state_and_counters() {
        let mut engine = Engine::new().with_threads(1).with_cache_capacity(17);
        engine.load_graph(wc_graph(120, 2), "pa-120/WC".into());
        engine.build_pool(80, 3).unwrap();
        let q = query(0, 2);
        engine.query(&q).unwrap();
        engine.query(&q).unwrap(); // cache hit
        let shared = SharedEngine::from_engine(engine);
        let stats = shared.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.pool_builds, 1);
        let view = shared.view();
        assert_eq!(view.graph_label, "pa-120/WC");
        assert_eq!(view.pool_info.unwrap().theta, 80);
        // Entries were dropped but capacity carried over; answers still work.
        assert_eq!(shared.cache_entries(), 0);
        let again = shared.query(&q).unwrap();
        assert!(!again.from_cache);
    }

    #[test]
    fn sketch_queries_serve_concurrently_and_deterministically() {
        let engine = Arc::new(primed(150));
        engine.ensure_sketch_pool(400, 7).unwrap();
        let sketch_query = Query {
            seeds: vec![VertexId::new(1)],
            budget: 4,
            algorithm: QueryAlgorithm::RisGreedy,
            intervention: imin_core::Intervention::BlockVertices,
        };
        let clients = 6usize;
        let barrier = Arc::new(Barrier::new(clients));
        let mut handles = Vec::new();
        for _ in 0..clients {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            let q = sketch_query.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                engine.query(&q).unwrap()
            }));
        }
        let answers: Vec<QueryResult> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for answer in &answers[1..] {
            assert_eq!(answer.blockers, answers[0].blockers);
            assert_eq!(answer.estimated_spread, answers[0].estimated_spread);
        }
        // The shared answer matches the single-threaded engine bit for bit.
        let mut classic = Engine::new().with_threads(1);
        classic.load_graph(wc_graph(300, 11), "pa-300/WC".into());
        classic.ensure_sketch_pool(400, 7).unwrap();
        let reference = classic.query(&sketch_query).unwrap();
        assert_eq!(answers[0].blockers, reference.blockers);
        assert_eq!(answers[0].estimated_spread, reference.estimated_spread);
        // Forward queries still work next to the sketch pool.
        assert!(engine.query(&query(0, 2)).is_ok());
        let stats = engine.stats();
        assert_eq!(stats.sketch_builds, 1);
        // Matching sketch POOL is a reuse.
        let (_, action) = engine.ensure_sketch_pool(400, 7).unwrap();
        assert_eq!(action, PoolAction::Reused);
        assert_eq!(engine.stats().sketch_reuses, 1);
    }

    #[test]
    fn ris_greedy_without_a_sketch_pool_is_a_typed_error() {
        let engine = primed(100);
        let err = engine
            .query(&Query {
                seeds: vec![VertexId::new(0)],
                budget: 2,
                algorithm: QueryAlgorithm::RisGreedy,
                intervention: imin_core::Intervention::BlockVertices,
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::NoSketchPool), "got {err:?}");
    }

    #[test]
    fn save_on_a_sketch_only_shared_engine_is_a_typed_backend_error() {
        let engine = SharedEngine::new().with_threads(1);
        engine.load_graph(wc_graph(100, 3), "pa-100/WC".into());
        engine.ensure_sketch_pool(100, 1).unwrap();
        let err = engine
            .save_snapshot("/tmp/never-written-shared-sketch.iminsnap")
            .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::BackendUnsupported {
                    operation: "SAVE",
                    backend: "sketch"
                }
            ),
            "got {err:?}"
        );
        assert_eq!(engine.stats().snapshot_saves, 0);
        // With a forward pool also resident, SAVE works again.
        engine.ensure_pool(50, 2).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!(
            "imin-shared-sketchsave-{}.iminsnap",
            std::process::id()
        ));
        engine.save_snapshot(&path).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poisoned_internal_locks_recover() {
        let engine = Arc::new(primed(100));
        let q = query(3, 2);
        engine.query(&q).unwrap();
        // Poison the cache mutex: panic while holding its guard.
        {
            let engine = Arc::clone(&engine);
            let _ = std::thread::spawn(move || {
                let _guard = engine.cache.lock().unwrap();
                panic!("poison the cache lock");
            })
            .join();
        }
        assert!(engine.cache.is_poisoned());
        // Queries keep working: hits, misses, and new inserts.
        assert!(engine.query(&q).unwrap().from_cache);
        assert!(!engine.query(&query(9, 2)).unwrap().from_cache);
        // State transitions recover the RwLock the same way.
        {
            let engine = Arc::clone(&engine);
            let _ = std::thread::spawn(move || {
                let _guard = engine.state.write().unwrap();
                panic!("poison the state lock");
            })
            .join();
        }
        engine.load_graph(wc_graph(80, 9), "recovered".into());
        assert_eq!(engine.view().graph_label, "recovered");
    }
}
