//! Threaded TCP server speaking the line protocol of [`crate::protocol`].
//!
//! One OS thread per connection, all connections sharing one
//! [`SharedEngine`]: queries execute **in parallel** against `Arc`
//! snapshots of the immutable (graph, pool) pair, identical in-flight
//! queries coalesce onto one computation, and the state-transition verbs
//! (`LOAD` / `POOL` / `RESTORE`) remain exclusive — see [`crate::shared`]
//! for the concurrency contract. Every request line gets exactly one reply
//! line; malformed input (including invalid UTF-8) produces `ERR <reason>`
//! and keeps the connection open, and a panicking handler answers
//! `ERR internal: …` on its own connection without disturbing any other.
//!
//! Under overload the server sheds load instead of queueing unboundedly:
//! once `max_inflight` distinct queries are computing, further distinct
//! queries get `ERR busy retry_after_ms=<hint>` (cache hits and coalesced
//! followers are always admitted — they cost no pool work).
//!
//! With [`Server::with_access_log`] every request additionally produces one
//! structured access-log line (text or JSON): verb, outcome, wall-clock
//! latency, disposition and trace id, plus the per-phase breakdown for
//! requests at or above the log's slow-query threshold.

use crate::engine::{Engine, PoolBackend, Query};
use crate::protocol::{parse_request, LoadSpec, ModelSpec, Request};
use crate::shared::{panic_message, take_last_observation, SharedEngine};
use imin_diffusion::ProbabilityModel;
use imin_graph::edgelist::{load_edge_list, EdgeListOptions};
use imin_graph::{generators, DiGraph};
use imin_obs::{AccessLog, AccessRecord};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// A bound (but not yet accepting) protocol server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<SharedEngine>,
    access_log: Option<Arc<AccessLog>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with a fresh
    /// engine.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::with_shared(addr, SharedEngine::new())
    }

    /// Binds to `addr`, adopting a caller-configured single-threaded
    /// [`Engine`] (thread count, cache capacity, or even a pre-loaded
    /// graph) into a [`SharedEngine`].
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn with_engine(addr: impl ToSocketAddrs, engine: Engine) -> std::io::Result<Self> {
        Self::with_shared(addr, SharedEngine::from_engine(engine))
    }

    /// Binds to `addr` with a caller-configured concurrent engine.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn with_shared(addr: impl ToSocketAddrs, engine: SharedEngine) -> std::io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine: Arc::new(engine),
            access_log: None,
        })
    }

    /// Attaches a structured access log: one line per request on every
    /// connection (see [`AccessLog`] for the text/JSON schema).
    #[must_use]
    pub fn with_access_log(mut self, log: AccessLog) -> Self {
        self.access_log = Some(Arc::new(log));
        self
    }

    /// The shared engine every connection answers from — benchmarks and
    /// tests use this to read counters or prime state in-process.
    pub fn engine(&self) -> Arc<SharedEngine> {
        Arc::clone(&self.engine)
    }

    /// The address the server is listening on (useful with port 0).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one thread per connection.
    ///
    /// # Errors
    /// Returns only if the listener itself fails.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            // One short reply line per request: Nagle only buys each round
            // trip a delayed-ACK stall (~40ms on Linux loopback).
            let _ = stream.set_nodelay(true);
            let engine = Arc::clone(&self.engine);
            let access_log = self.access_log.clone();
            std::thread::spawn(move || {
                // A vanished client is not a server error.
                let _ = serve_connection(stream, &engine, access_log.as_deref());
            });
        }
        Ok(())
    }

    /// Starts the accept loop on a background thread and returns the bound
    /// address — the in-process form the protocol tests use.
    ///
    /// # Errors
    /// Propagates socket errors from address resolution.
    pub fn spawn(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok(addr)
    }
}

/// Serves one connection: read a line, answer a line, until `QUIT` or EOF.
///
/// Lines are read as **bytes** and converted lossily: a client that sends
/// invalid UTF-8 gets a normal `ERR` reply (the replacement characters
/// never parse as a verb) instead of having its connection dropped
/// mid-session.
fn serve_connection(
    stream: TcpStream,
    engine: &SharedEngine,
    access_log: Option<&AccessLog>,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            break; // EOF
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim_end_matches(['\n', '\r']);
        // Blank lines still get a reply (`ERR empty request`) — a client
        // that sends one must not be left waiting forever.
        let start = Instant::now();
        let (reply, quit) = answer_line(line, engine);
        if let Some(log) = access_log {
            log_request(log, line, &reply, start.elapsed().as_micros() as u64);
        }
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if quit {
            break;
        }
    }
    Ok(())
}

/// Emits one access-log line for a served request. The verb is the first
/// whitespace token of the request line (uppercased, `-` when blank); the
/// engine's thread-local observation supplies disposition, trace id and
/// phase breakdown when the verb produced one.
fn log_request(log: &AccessLog, line: &str, reply: &str, latency_us: u64) {
    let verb = line
        .split_whitespace()
        .next()
        .map(|tok| tok.to_ascii_uppercase())
        .unwrap_or_else(|| "-".into());
    let observation = take_last_observation();
    log.record(&AccessRecord {
        verb: &verb,
        ok: reply.starts_with("OK"),
        latency_us,
        disposition: observation.as_ref().map_or("-", |o| o.disposition),
        trace_id: observation.as_ref().map_or(0, |o| o.trace_id),
        phases: observation.as_ref().and_then(|o| o.phases.as_ref()),
    });
}

/// Produces the reply line for one request line, plus whether the
/// connection should close. This is the whole protocol state machine: the
/// TCP server loops over it from any number of connection threads at once,
/// and `imin-cli local` drives it against an in-process engine without any
/// socket.
///
/// A handler that panics is caught here and answered as
/// `ERR internal: <panic message>`; no engine lock stays poisoned (they
/// all recover via [`std::sync::PoisonError::into_inner`]), so the
/// connection — and every other connection — keeps working.
pub fn answer_line(line: &str, engine: &SharedEngine) -> (String, bool) {
    match parse_request(line) {
        Err(reason) => (format!("ERR {reason}"), false),
        Ok(Request::Quit) => ("OK bye".into(), true),
        Ok(Request::Ping) => ("OK pong".into(), false),
        Ok(request) => {
            let reply = catch_unwind(AssertUnwindSafe(|| execute(request, engine)))
                .unwrap_or_else(|panic| format!("ERR internal: {}", panic_message(&*panic)));
            (reply, false)
        }
    }
}

/// Builds the graph described by a `LOAD` spec.
fn build_graph(spec: &LoadSpec) -> Result<(DiGraph, String), String> {
    let (topology, label, default_p) = match spec {
        LoadSpec::PreferentialAttachment {
            n,
            m0,
            bidirectional,
            seed,
            ..
        } => (
            generators::preferential_attachment(*n, *m0, *bidirectional, 1.0, *seed)
                .map_err(|e| e.to_string())?,
            format!("pa(n={n},m0={m0},seed={seed})"),
            true,
        ),
        LoadSpec::ErdosRenyi { n, p, seed, .. } => (
            generators::erdos_renyi(*n, *p, 1.0, *seed).map_err(|e| e.to_string())?,
            format!("er(n={n},p={p},seed={seed})"),
            true,
        ),
        LoadSpec::File { path, .. } => {
            let loaded =
                load_edge_list(path, &EdgeListOptions::default()).map_err(|e| e.to_string())?;
            (loaded.graph, format!("file({path})"), false)
        }
    };
    let model = match spec {
        LoadSpec::PreferentialAttachment { model, .. }
        | LoadSpec::ErdosRenyi { model, .. }
        | LoadSpec::File { model, .. } => *model,
    };
    let model = match model {
        ModelSpec::WeightedCascade => ProbabilityModel::WeightedCascade,
        ModelSpec::Trivalency { seed } => ProbabilityModel::Trivalency { seed },
        ModelSpec::Constant(p) => ProbabilityModel::Constant(p),
        ModelSpec::Keep => ProbabilityModel::Keep,
    };
    // Generator topologies carry a placeholder probability of 1.0; refuse to
    // silently treat that as a real IC assignment.
    if default_p && model == ProbabilityModel::Keep {
        return Err("generator graphs need an explicit model (wc, tri or const:<p>)".into());
    }
    let graph = model.apply(&topology).map_err(|e| e.to_string())?;
    Ok((graph, format!("{label}/{}", model.label())))
}

/// Executes a state-touching request against the engine.
fn execute(request: Request, engine: &SharedEngine) -> String {
    #[cfg(test)]
    if panic_injected() {
        panic!("injected handler panic");
    }
    match request {
        Request::Load(spec) => match build_graph(&spec) {
            Err(reason) => format!("ERR {reason}"),
            Ok((graph, label)) => {
                let (n, m) = (graph.num_vertices(), graph.num_edges());
                engine.load_graph(graph, label);
                format!("OK n={n} m={m}")
            }
        },
        Request::Pool {
            theta,
            seed,
            backend: PoolBackend::Forward,
        } => match engine.ensure_pool(theta, seed) {
            Err(err) => format!("ERR {err}"),
            Ok((info, action)) => format!(
                "OK theta={} seed={} build_ms={} bytes={} live_edges={} source={} backend=forward",
                info.theta,
                info.seed,
                info.build_time.as_millis(),
                info.memory_bytes,
                info.live_edges,
                action.label()
            ),
        },
        Request::Pool {
            theta,
            seed,
            backend: PoolBackend::Sketch,
        } => match engine.ensure_sketch_pool(theta, seed) {
            Err(err) => format!("ERR {err}"),
            Ok((info, action)) => format!(
                "OK theta={} seed={} build_ms={} bytes={} members={} avg_size={:.2} source={} \
                 backend=sketch",
                info.theta_r,
                info.seed,
                info.build_time.as_millis(),
                info.memory_bytes,
                info.total_members,
                info.avg_sketch_size,
                action.label()
            ),
        },
        Request::Save { path } => match engine.save_snapshot(&path) {
            Err(err) => format!("ERR {err}"),
            Ok(summary) => format!(
                "OK path={path} bytes={} theta={} fingerprint={:016x}",
                summary.bytes_written, summary.theta, summary.graph_fingerprint
            ),
        },
        Request::Restore { path, mode } => match engine.restore_snapshot_with(&path, mode) {
            Err(err) => format!("ERR {err}"),
            Ok(info) => {
                let (theta, seed, bytes, ms) = (
                    info.theta,
                    info.seed,
                    info.memory_bytes,
                    info.build_time.as_millis(),
                );
                let (n, m) = engine
                    .view()
                    .graph
                    .map(|g| (g.num_vertices(), g.num_edges()))
                    .unwrap_or((0, 0));
                format!(
                    "OK n={n} m={m} theta={theta} seed={seed} bytes={bytes} restore_ms={ms} \
                     mode={} arena={}",
                    mode.label(),
                    info.arena.as_str()
                )
            }
        },
        Request::Compress => match engine.compress_pool() {
            Err(err) => format!("ERR {err}"),
            Ok(info) => format!(
                "OK theta={} bytes={} ratio={:.4} arena={} compress_ms={}",
                info.theta,
                info.memory_bytes,
                info.compression_ratio,
                info.arena.as_str(),
                info.build_time.as_millis()
            ),
        },
        Request::Query { query, trace } => run_query(&query, trace, engine),
        Request::Stats => stats_line(engine),
        Request::Metrics => {
            let text = engine.metrics_text();
            let body = text.trim_end_matches('\n');
            format!("OK lines={}\n{body}", body.lines().count())
        }
        // Ping/Quit are handled before the engine is consulted.
        Request::Ping => "OK pong".into(),
        Request::Quit => "OK bye".into(),
    }
}

fn run_query(query: &Query, trace: bool, engine: &SharedEngine) -> String {
    match engine.query(query) {
        Err(err) => format!("ERR {err}"),
        Ok(result) => {
            let blockers = result
                .blockers
                .iter()
                .map(|b| b.raw().to_string())
                .collect::<Vec<_>>()
                .join(",");
            // Edge-mode selections carry their edges in a dedicated field;
            // vertex and prebunk replies stay byte-identical to before the
            // intervention families existed (the field is simply absent).
            let edges = if result.blocked_edges.is_empty() {
                String::new()
            } else {
                let list = result
                    .blocked_edges
                    .iter()
                    .map(|(u, v)| format!("{}-{}", u.raw(), v.raw()))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(" edges={list}")
            };
            let mut reply = format!(
                "OK blockers={blockers}{edges} spread={} cached={} rounds={} samples={} \
                 elapsed_us={}",
                result
                    .estimated_spread
                    .map(|s| format!("{s:.6}"))
                    .unwrap_or_else(|| "nan".into()),
                result.from_cache,
                result.rounds,
                result.samples_consulted,
                result.elapsed.as_micros()
            );
            if trace {
                let phases = result
                    .phases
                    .as_ref()
                    .map(|p| p.render(&imin_obs::QUERY_PHASES))
                    .unwrap_or_else(|| "none".into());
                reply.push_str(&format!(
                    " trace_id={} disposition={} phases={phases}",
                    result.trace_id,
                    result.disposition.as_str()
                ));
            }
            reply
        }
    }
}

fn stats_line(engine: &SharedEngine) -> String {
    let stats = engine.stats();
    let view = engine.view();
    let (n, m) = view
        .graph
        .as_ref()
        .map(|g| (g.num_vertices(), g.num_edges()))
        .unwrap_or((0, 0));
    let label = if view.graph_label.is_empty() {
        "none".to_string()
    } else {
        view.graph_label.clone()
    };
    let (theta, pool_seed, pool_bytes, pool_source, pool_arena, pool_ratio) = view
        .pool_info
        .as_ref()
        .map(|p| {
            (
                p.theta,
                p.seed,
                p.memory_bytes,
                p.provenance.label(),
                p.arena.as_str(),
                p.compression_ratio,
            )
        })
        .unwrap_or((0, 0, 0, "none".into(), "none", 0.0));
    let (sketch_theta, sketch_seed, sketch_bytes, sketch_members, sketch_source) = view
        .sketch_info
        .as_ref()
        .map(|s| {
            (
                s.theta_r,
                s.seed,
                s.memory_bytes,
                s.total_members,
                s.provenance.label(),
            )
        })
        .unwrap_or((0, 0, 0, 0, "none".into()));
    format!(
        "OK graph={label} n={n} m={m} theta={theta} pool_seed={pool_seed} pool_bytes={pool_bytes} \
         pool_source={pool_source} pool_arena={pool_arena} pool_ratio={pool_ratio:.4} \
         queries={} cache_hits={} cache_entries={} threads={} \
         query_threads={} max_inflight={} inflight={} coalesced={} rejected={} computed={} \
         lat_load_us={} lat_pool_us={} lat_query_us={} lat_save_us={} lat_restore_us={} \
         sketch_theta={sketch_theta} sketch_seed={sketch_seed} sketch_bytes={sketch_bytes} \
         sketch_members={sketch_members} sketch_source={sketch_source} \
         sketch_builds={} sketch_reuses={}",
        stats.queries,
        stats.cache_hits,
        engine.cache_entries(),
        engine.threads(),
        engine.query_threads(),
        engine.max_inflight(),
        stats.inflight,
        stats.coalesced,
        stats.rejected,
        stats.computed,
        stats.lat_load_us,
        stats.lat_pool_us,
        stats.lat_query_us,
        stats.lat_save_us,
        stats.lat_restore_us,
        stats.sketch_builds,
        stats.sketch_reuses,
    )
}

#[cfg(test)]
thread_local! {
    static INJECT_PANIC: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Test hook: makes the next [`execute`] calls on this thread panic, to
/// prove the `ERR internal` recovery path.
#[cfg(test)]
fn panic_injected() -> bool {
    INJECT_PANIC.with(|f| f.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SharedEngine {
        SharedEngine::new().with_threads(1)
    }

    #[test]
    fn answer_line_walks_the_whole_lifecycle() {
        let engine = engine();
        let (reply, _) = answer_line("PING", &engine);
        assert_eq!(reply, "OK pong");
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=1", &engine);
        assert!(reply.starts_with("ERR"), "query before LOAD: {reply}");
        let (reply, _) = answer_line("LOAD pa n=120 m0=3 seed=7 model=wc", &engine);
        assert!(reply.starts_with("OK n=120"), "{reply}");
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=1", &engine);
        assert!(reply.starts_with("ERR"), "query before POOL: {reply}");
        let (reply, _) = answer_line("POOL 200 5", &engine);
        assert!(reply.starts_with("OK theta=200 seed=5"), "{reply}");
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ag", &engine);
        assert!(reply.starts_with("OK blockers="), "{reply}");
        assert!(reply.contains("cached=false"), "{reply}");
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ag", &engine);
        assert!(reply.contains("cached=true"), "{reply}");
        let (reply, _) = answer_line("STATS", &engine);
        assert!(
            reply.contains("queries=4") && reply.contains("cache_hits=1"),
            "{reply}"
        );
        assert!(
            reply.contains("computed=1")
                && reply.contains("coalesced=0")
                && reply.contains("rejected=0")
                && reply.contains("inflight=0"),
            "{reply}"
        );
        let (reply, quit) = answer_line("QUIT", &engine);
        assert_eq!(reply, "OK bye");
        assert!(quit);
    }

    #[test]
    fn compress_and_mapped_restore_over_the_protocol_surface() {
        let engine = engine();
        let (reply, _) = answer_line("COMPRESS", &engine);
        assert!(reply.starts_with("ERR"), "COMPRESS before LOAD: {reply}");
        let (reply, _) = answer_line("LOAD pa n=150 m0=3 seed=7 model=wc", &engine);
        assert!(reply.starts_with("OK"), "{reply}");
        let (reply, _) = answer_line("POOL 120 5", &engine);
        assert!(reply.starts_with("OK"), "{reply}");
        let (raw_answer, _) = answer_line("QUERY ic seeds=0 budget=2", &engine);
        assert!(raw_answer.starts_with("OK blockers="), "{raw_answer}");
        let (reply, _) = answer_line("STATS", &engine);
        assert!(
            reply.contains("pool_arena=raw") && reply.contains(" pool_ratio="),
            "{reply}"
        );

        let (reply, _) = answer_line("COMPRESS", &engine);
        assert!(
            reply.starts_with("OK theta=120") && reply.contains("arena=compressed"),
            "{reply}"
        );
        let (compressed_answer, _) = answer_line("QUERY ic seeds=0 budget=2", &engine);
        assert!(
            compressed_answer.contains("cached=true"),
            "{compressed_answer}"
        );
        let (reply, _) = answer_line("STATS", &engine);
        assert!(reply.contains("pool_arena=compressed"), "{reply}");

        let mut path = std::env::temp_dir();
        path.push(format!(
            "imin-server-maprestore-{}.iminsnap",
            std::process::id()
        ));
        let (reply, _) = answer_line(&format!("SAVE {}", path.display()), &engine);
        assert!(reply.starts_with("OK path="), "{reply}");
        let fresh = SharedEngine::new().with_threads(1);
        let (reply, _) = answer_line(&format!("RESTORE {} mode=map", path.display()), &fresh);
        assert!(
            reply.contains("mode=map") && reply.contains("arena=mmap-compressed"),
            "{reply}"
        );
        let (mapped_answer, _) = answer_line("QUERY ic seeds=0 budget=2", &fresh);
        // Same blockers/spread as the raw pool; only the cached= flag differs.
        let strip = |s: &str| {
            s.split_whitespace()
                .filter(|tok| !tok.starts_with("cached=") && !tok.starts_with("elapsed_us="))
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(strip(&raw_answer), strip(&mapped_answer));
        let (reply, _) = answer_line("STATS", &fresh);
        assert!(reply.contains("pool_arena=mmap-compressed"), "{reply}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sketch_backend_walks_the_whole_lifecycle_over_the_protocol() {
        let engine = engine();
        let (reply, _) = answer_line("LOAD pa n=150 m0=3 seed=7 model=wc", &engine);
        assert!(reply.starts_with("OK"), "{reply}");
        // ris-greedy before the sketch pool: typed lifecycle error.
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ris-greedy", &engine);
        assert!(reply.starts_with("ERR no sketch pool"), "{reply}");
        let (reply, _) = answer_line("POOL 400 9 backend=sketch", &engine);
        assert!(reply.starts_with("OK theta=400 seed=9"), "{reply}");
        assert!(
            reply.contains("source=built") && reply.ends_with("backend=sketch"),
            "{reply}"
        );
        assert!(
            reply.contains(" members=") && reply.contains(" avg_size="),
            "{reply}"
        );
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ris-greedy", &engine);
        assert!(reply.starts_with("OK blockers="), "{reply}");
        assert!(reply.contains("samples=400"), "{reply}");
        // Case-insensitive registry spelling resolves over the wire too.
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=RIS-GREEDY", &engine);
        assert!(reply.contains("cached=true"), "{reply}");
        // A matching sketch POOL is a reuse that keeps the cache.
        let (reply, _) = answer_line("POOL 400 9 backend=sketch", &engine);
        assert!(reply.contains("source=resident"), "{reply}");
        // SAVE with only a sketch pool resident: typed backend error.
        let (reply, _) = answer_line("SAVE /tmp/never-sketch.iminsnap", &engine);
        assert!(reply.starts_with("ERR backend unsupported"), "{reply}");
        assert!(
            reply.contains("SAVE") && reply.contains("sketch"),
            "{reply}"
        );
        // STATS carries the sketch-pool facts next to the forward fields.
        let (reply, _) = answer_line("STATS", &engine);
        assert!(
            reply.contains("sketch_theta=400")
                && reply.contains("sketch_seed=9")
                && reply.contains("sketch_source=built")
                && reply.contains("sketch_builds=1")
                && reply.contains("sketch_reuses=1"),
            "{reply}"
        );
        // The forward pool builds alongside; forward queries and SAVE work.
        let (reply, _) = answer_line("POOL 200 5", &engine);
        assert!(
            reply.starts_with("OK theta=200 seed=5") && reply.ends_with("backend=forward"),
            "{reply}"
        );
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ag", &engine);
        assert!(reply.starts_with("OK blockers="), "{reply}");
        let (reply, _) = answer_line("STATS", &engine);
        assert!(
            reply.contains("theta=200") && reply.contains("sketch_theta=400"),
            "both backends resident: {reply}"
        );
    }

    #[test]
    fn intervention_families_work_end_to_end_over_the_protocol() {
        let engine = engine();
        let (reply, _) = answer_line("LOAD pa n=150 m0=3 seed=7 model=wc", &engine);
        assert!(reply.starts_with("OK"), "{reply}");
        let (reply, _) = answer_line("POOL 200 5", &engine);
        assert!(reply.starts_with("OK"), "{reply}");

        // Vertex mode stays byte-identical whether implied or spelled out.
        let (implicit, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ag", &engine);
        assert!(implicit.starts_with("OK blockers="), "{implicit}");
        assert!(!implicit.contains(" edges="), "{implicit}");
        let (explicit, _) =
            answer_line("QUERY ic seeds=0 budget=2 alg=ag intervene=vertex", &engine);
        let strip = |s: &str| {
            s.split_whitespace()
                .filter(|tok| !tok.starts_with("cached=") && !tok.starts_with("elapsed_us="))
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(strip(&implicit), strip(&explicit));

        // Edge blocking: no blockers, an edges= list of u-v pairs instead.
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ag intervene=edge", &engine);
        assert!(reply.starts_with("OK blockers= edges="), "{reply}");
        let edges = reply
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("edges="))
            .unwrap()
            .to_string();
        let pairs: Vec<&str> = edges.split(',').collect();
        assert!(!pairs.is_empty() && pairs.len() <= 2, "{reply}");
        for pair in &pairs {
            let (u, v) = pair.split_once('-').expect("edges are u-v pairs");
            u.parse::<usize>().unwrap();
            v.parse::<usize>().unwrap();
        }

        // Prebunking: targets come back in blockers=, no edges= field.
        let (reply, _) = answer_line(
            "QUERY ic seeds=0 budget=2 alg=ag intervene=prebunk:0.25",
            &engine,
        );
        assert!(reply.starts_with("OK blockers="), "{reply}");
        assert!(!reply.contains(" edges="), "{reply}");

        // prebunk:1.0 is a no-op rescale, so its residual spread can never
        // beat actually blocking the same budget of vertices.
        let (noop, _) = answer_line(
            "QUERY ic seeds=0 budget=2 alg=ag intervene=prebunk:1.0",
            &engine,
        );
        assert!(noop.starts_with("OK blockers="), "{noop}");
        let spread_of = |s: &str| {
            s.split_whitespace()
                .find_map(|tok| tok.strip_prefix("spread="))
                .unwrap()
                .parse::<f64>()
                .unwrap()
        };
        assert!(
            spread_of(&noop) >= spread_of(&implicit) - 1e-9,
            "{noop} vs {implicit}"
        );

        // Unsupported combos answer a typed error naming the family.
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=deg intervene=edge", &engine);
        assert!(reply.starts_with("ERR intervention unsupported"), "{reply}");
        let (reply, _) = answer_line(
            "QUERY ic seeds=0 budget=2 alg=ris-greedy intervene=prebunk:0.5",
            &engine,
        );
        assert!(reply.starts_with("ERR"), "{reply}");
    }

    #[test]
    fn parse_errors_do_not_quit() {
        let engine = engine();
        let (reply, quit) = answer_line("FLY ME TO THE MOON", &engine);
        assert!(reply.starts_with("ERR"));
        assert!(!quit);
    }

    #[test]
    fn generator_load_requires_an_explicit_model() {
        let engine = engine();
        let (reply, _) = answer_line("LOAD pa n=50 m0=2 seed=1 model=keep", &engine);
        assert!(reply.starts_with("ERR"), "{reply}");
        assert!(reply.contains("explicit model"), "{reply}");
    }

    #[test]
    fn a_panicking_handler_answers_err_internal_and_the_engine_survives() {
        let engine = engine();
        let (reply, _) = answer_line("LOAD pa n=80 m0=2 seed=1 model=wc", &engine);
        assert!(reply.starts_with("OK"), "{reply}");
        INJECT_PANIC.with(|f| f.set(true));
        let (reply, quit) = answer_line("STATS", &engine);
        INJECT_PANIC.with(|f| f.set(false));
        assert_eq!(reply, "ERR internal: injected handler panic");
        assert!(!quit, "an internal error must not close the connection");
        // The engine is intact: no poisoned lock, resident state unchanged.
        let (reply, _) = answer_line("STATS", &engine);
        assert!(reply.starts_with("OK graph=pa("), "{reply}");
        let (reply, _) = answer_line("POOL 100 3", &engine);
        assert!(reply.starts_with("OK theta=100"), "{reply}");
    }

    #[test]
    fn busy_rejections_render_the_typed_error() {
        // No TCP needed: exhaust the admission budget directly.
        let err = crate::EngineError::Busy { retry_after_ms: 7 };
        assert_eq!(format!("ERR {err}"), "ERR busy retry_after_ms=7");
    }
}
