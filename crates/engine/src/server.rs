//! Threaded TCP server speaking the line protocol of [`crate::protocol`].
//!
//! One OS thread per connection, all connections sharing one
//! [`Engine`] behind a mutex: queries are answered strictly one at a time,
//! which keeps the engine's workspace reuse trivially sound (intra-query
//! parallelism still uses the engine's worker threads). Every request line
//! gets exactly one reply line; malformed input produces `ERR <reason>`
//! and keeps the connection open.

use crate::engine::{Engine, Query};
use crate::protocol::{parse_request, LoadSpec, ModelSpec, Request};
use imin_diffusion::ProbabilityModel;
use imin_graph::edgelist::{load_edge_list, EdgeListOptions};
use imin_graph::{generators, DiGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};

/// A bound (but not yet accepting) protocol server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<Mutex<Engine>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with a fresh
    /// engine.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::with_engine(addr, Engine::new())
    }

    /// Binds to `addr` with a caller-configured engine (thread count, cache
    /// capacity, or even a pre-loaded graph).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn with_engine(addr: impl ToSocketAddrs, engine: Engine) -> std::io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine: Arc::new(Mutex::new(engine)),
        })
    }

    /// The address the server is listening on (useful with port 0).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one thread per connection.
    ///
    /// # Errors
    /// Returns only if the listener itself fails.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let engine = Arc::clone(&self.engine);
            std::thread::spawn(move || {
                // A vanished client is not a server error.
                let _ = serve_connection(stream, &engine);
            });
        }
        Ok(())
    }

    /// Starts the accept loop on a background thread and returns the bound
    /// address — the in-process form the protocol tests use.
    ///
    /// # Errors
    /// Propagates socket errors from address resolution.
    pub fn spawn(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok(addr)
    }
}

/// Serves one connection: read a line, answer a line, until `QUIT` or EOF.
fn serve_connection(stream: TcpStream, engine: &Mutex<Engine>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        // Blank lines still get a reply (`ERR empty request`) — a client
        // that sends one must not be left waiting forever.
        let (reply, quit) = answer_line(&line, engine);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if quit {
            break;
        }
    }
    Ok(())
}

/// Produces the reply line for one request line, plus whether the
/// connection should close. This is the whole protocol state machine: the
/// TCP server loops over it, and `imin-cli local` drives it against an
/// in-process engine without any socket.
pub fn answer_line(line: &str, engine: &Mutex<Engine>) -> (String, bool) {
    match parse_request(line) {
        Err(reason) => (format!("ERR {reason}"), false),
        Ok(Request::Quit) => ("OK bye".into(), true),
        Ok(Request::Ping) => ("OK pong".into(), false),
        Ok(request) => {
            let mut engine = engine.lock().expect("engine mutex poisoned");
            (execute(request, &mut engine), false)
        }
    }
}

/// Builds the graph described by a `LOAD` spec.
fn build_graph(spec: &LoadSpec) -> Result<(DiGraph, String), String> {
    let (topology, label, default_p) = match spec {
        LoadSpec::PreferentialAttachment {
            n,
            m0,
            bidirectional,
            seed,
            ..
        } => (
            generators::preferential_attachment(*n, *m0, *bidirectional, 1.0, *seed)
                .map_err(|e| e.to_string())?,
            format!("pa(n={n},m0={m0},seed={seed})"),
            true,
        ),
        LoadSpec::ErdosRenyi { n, p, seed, .. } => (
            generators::erdos_renyi(*n, *p, 1.0, *seed).map_err(|e| e.to_string())?,
            format!("er(n={n},p={p},seed={seed})"),
            true,
        ),
        LoadSpec::File { path, .. } => {
            let loaded =
                load_edge_list(path, &EdgeListOptions::default()).map_err(|e| e.to_string())?;
            (loaded.graph, format!("file({path})"), false)
        }
    };
    let model = match spec {
        LoadSpec::PreferentialAttachment { model, .. }
        | LoadSpec::ErdosRenyi { model, .. }
        | LoadSpec::File { model, .. } => *model,
    };
    let model = match model {
        ModelSpec::WeightedCascade => ProbabilityModel::WeightedCascade,
        ModelSpec::Trivalency { seed } => ProbabilityModel::Trivalency { seed },
        ModelSpec::Constant(p) => ProbabilityModel::Constant(p),
        ModelSpec::Keep => ProbabilityModel::Keep,
    };
    // Generator topologies carry a placeholder probability of 1.0; refuse to
    // silently treat that as a real IC assignment.
    if default_p && model == ProbabilityModel::Keep {
        return Err("generator graphs need an explicit model (wc, tri or const:<p>)".into());
    }
    let graph = model.apply(&topology).map_err(|e| e.to_string())?;
    Ok((graph, format!("{label}/{}", model.label())))
}

/// Executes a state-touching request against the engine.
fn execute(request: Request, engine: &mut Engine) -> String {
    match request {
        Request::Load(spec) => match build_graph(&spec) {
            Err(reason) => format!("ERR {reason}"),
            Ok((graph, label)) => {
                let (n, m) = (graph.num_vertices(), graph.num_edges());
                engine.load_graph(graph, label);
                format!("OK n={n} m={m}")
            }
        },
        Request::Pool { theta, seed } => match engine.ensure_pool(theta, seed) {
            Err(err) => format!("ERR {err}"),
            Ok((info, action)) => format!(
                "OK theta={} seed={} build_ms={} bytes={} live_edges={} source={}",
                info.theta,
                info.seed,
                info.build_time.as_millis(),
                info.memory_bytes,
                info.live_edges,
                action.label()
            ),
        },
        Request::Save { path } => match engine.save_snapshot(&path) {
            Err(err) => format!("ERR {err}"),
            Ok(summary) => format!(
                "OK path={path} bytes={} theta={} fingerprint={:016x}",
                summary.bytes_written, summary.theta, summary.graph_fingerprint
            ),
        },
        Request::Restore { path } => match engine.restore_snapshot(&path) {
            Err(err) => format!("ERR {err}"),
            Ok(info) => {
                let (theta, seed, bytes, ms) = (
                    info.theta,
                    info.seed,
                    info.memory_bytes,
                    info.build_time.as_millis(),
                );
                let (n, m) = engine
                    .graph()
                    .map(|g| (g.num_vertices(), g.num_edges()))
                    .unwrap_or((0, 0));
                format!("OK n={n} m={m} theta={theta} seed={seed} bytes={bytes} restore_ms={ms}")
            }
        },
        Request::Query(query) => run_query(&query, engine),
        Request::Stats => stats_line(engine),
        // Ping/Quit are handled before the engine lock is taken.
        Request::Ping => "OK pong".into(),
        Request::Quit => "OK bye".into(),
    }
}

fn run_query(query: &Query, engine: &mut Engine) -> String {
    match engine.query(query) {
        Err(err) => format!("ERR {err}"),
        Ok(result) => {
            let blockers = result
                .blockers
                .iter()
                .map(|b| b.raw().to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "OK blockers={blockers} spread={} cached={} rounds={} samples={} elapsed_us={}",
                result
                    .estimated_spread
                    .map(|s| format!("{s:.6}"))
                    .unwrap_or_else(|| "nan".into()),
                result.from_cache,
                result.rounds,
                result.samples_consulted,
                result.elapsed.as_micros()
            )
        }
    }
}

fn stats_line(engine: &Engine) -> String {
    let stats = engine.stats();
    let (n, m) = engine
        .graph()
        .map(|g| (g.num_vertices(), g.num_edges()))
        .unwrap_or((0, 0));
    let label = if engine.graph_label().is_empty() {
        "none".to_string()
    } else {
        engine.graph_label().to_string()
    };
    let (theta, pool_seed, pool_bytes, pool_source) = engine
        .pool_info()
        .map(|p| (p.theta, p.seed, p.memory_bytes, p.provenance.label()))
        .unwrap_or((0, 0, 0, "none".into()));
    format!(
        "OK graph={label} n={n} m={m} theta={theta} pool_seed={pool_seed} pool_bytes={pool_bytes} \
         pool_source={pool_source} queries={} cache_hits={} cache_entries={} threads={}",
        stats.queries,
        stats.cache_hits,
        engine.cache_entries(),
        engine.threads()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Mutex<Engine> {
        Mutex::new(Engine::new().with_threads(1))
    }

    #[test]
    fn answer_line_walks_the_whole_lifecycle() {
        let engine = engine();
        let (reply, _) = answer_line("PING", &engine);
        assert_eq!(reply, "OK pong");
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=1", &engine);
        assert!(reply.starts_with("ERR"), "query before LOAD: {reply}");
        let (reply, _) = answer_line("LOAD pa n=120 m0=3 seed=7 model=wc", &engine);
        assert!(reply.starts_with("OK n=120"), "{reply}");
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=1", &engine);
        assert!(reply.starts_with("ERR"), "query before POOL: {reply}");
        let (reply, _) = answer_line("POOL 200 5", &engine);
        assert!(reply.starts_with("OK theta=200 seed=5"), "{reply}");
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ag", &engine);
        assert!(reply.starts_with("OK blockers="), "{reply}");
        assert!(reply.contains("cached=false"), "{reply}");
        let (reply, _) = answer_line("QUERY ic seeds=0 budget=2 alg=ag", &engine);
        assert!(reply.contains("cached=true"), "{reply}");
        let (reply, _) = answer_line("STATS", &engine);
        assert!(
            reply.contains("queries=4") && reply.contains("cache_hits=1"),
            "{reply}"
        );
        let (reply, quit) = answer_line("QUIT", &engine);
        assert_eq!(reply, "OK bye");
        assert!(quit);
    }

    #[test]
    fn parse_errors_do_not_quit() {
        let engine = engine();
        let (reply, quit) = answer_line("FLY ME TO THE MOON", &engine);
        assert!(reply.starts_with("ERR"));
        assert!(!quit);
    }

    #[test]
    fn generator_load_requires_an_explicit_model() {
        let engine = engine();
        let (reply, _) = answer_line("LOAD pa n=50 m0=2 seed=1 model=keep", &engine);
        assert!(reply.starts_with("ERR"), "{reply}");
        assert!(reply.contains("explicit model"), "{reply}");
    }
}
