//! `imin-cli` — line-protocol client for `imin-serve`, with a serverless
//! local mode.
//!
//! ```text
//! imin-cli HOST:PORT "COMMAND ..." ["COMMAND ..." ...]
//! imin-cli HOST:PORT            # interactive: reads commands from stdin
//! imin-cli local "COMMAND ..."  # same protocol against an in-process engine
//! ```
//!
//! Each command argument is sent as one request line and the raw reply line
//! is printed to stdout. Exits non-zero if the connection fails or any
//! reply is an `ERR` line, so it doubles as a CI smoke probe. `METRICS` is
//! the one multi-line reply (`OK lines=<n>` plus `n` lines of Prometheus
//! exposition) — `imin-cli HOST:PORT METRICS` prints it whole, byte-for-byte
//! identical to local mode, so it works as a scrape shim.
//!
//! `local` skips TCP entirely: the lines run through the same
//! [`imin_engine::answer_line`] state machine the server uses, against an
//! [`imin_engine::SharedEngine`] living in this process — handy for one-off
//! experiments and air-gapped smoke tests. Algorithm names in `QUERY …
//! alg=…` resolve through the [`imin_engine::AlgorithmKind`] registry in
//! both modes, as do the intervention families — `QUERY … intervene=edge`
//! and `QUERY … intervene=prebunk:<alpha>` spend the budget on edge
//! removals or acceptance-rescaling instead of vertex blocking (see
//! `docs/protocol.md` for the support matrix) —
//! and the snapshot verbs work identically too: `SAVE <path>`
//! writes the graph + resident pool from the in-process engine, and a later
//! `imin-cli local "RESTORE <path>" "QUERY …"` warm-starts without
//! resampling — the serverless way to prepare or consume pool snapshots
//! (CI caches them as build artifacts).

use imin_engine::{answer_line, Client, SharedEngine};
use std::io::BufRead;
use std::process::ExitCode;

/// One request line → one reply line, over TCP or in process.
enum Session {
    Remote(Box<Client>),
    Local(Box<SharedEngine>),
}

impl Session {
    /// Sends one request line; returns the reply plus whether the session
    /// is over. A remote server closes the connection after any `QUIT`
    /// request (however it is spelled), so the local engine's own close
    /// flag keeps both modes byte-for-byte in step.
    fn send(&mut self, line: &str) -> imin_engine::Result<(String, bool)> {
        match self {
            Session::Remote(client) => {
                // METRICS is the protocol's one multi-line reply: read the
                // whole exposition and reassemble the exact bytes local
                // mode prints, so both modes stay interchangeable.
                if line.trim().eq_ignore_ascii_case("METRICS") {
                    let body = client.metrics()?;
                    let body = body.trim_end_matches('\n');
                    return Ok((format!("OK lines={}\n{body}", body.lines().count()), false));
                }
                let reply = client.send_raw(line)?;
                let closed = reply == "OK bye";
                Ok((reply, closed))
            }
            Session::Local(engine) => Ok(answer_line(line, engine)),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!("usage: imin-cli HOST:PORT|local [\"COMMAND ...\" ...]");
        return ExitCode::FAILURE;
    };
    let mut session = if addr.eq_ignore_ascii_case("local") {
        Session::Local(Box::new(SharedEngine::new()))
    } else {
        match Client::connect(addr) {
            Ok(client) => Session::Remote(Box::new(client)),
            Err(err) => {
                eprintln!("imin-cli: cannot connect to {addr}: {err}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut failures = 0usize;
    let mut run = |session: &mut Session, line: &str| -> bool {
        match session.send(line) {
            Ok((reply, closed)) => {
                println!("{reply}");
                if reply.starts_with("ERR") {
                    failures += 1;
                }
                !closed
            }
            Err(err) => {
                eprintln!("imin-cli: {err}");
                failures += 1;
                false
            }
        }
    };

    if args.len() > 1 {
        for line in &args[1..] {
            if !run(&mut session, line) {
                break;
            }
        }
    } else {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if !run(&mut session, &line) {
                break;
            }
        }
    }

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
