//! `imin-cli` — line-protocol client for `imin-serve`.
//!
//! ```text
//! imin-cli HOST:PORT "COMMAND ..." ["COMMAND ..." ...]
//! imin-cli HOST:PORT            # interactive: reads commands from stdin
//! ```
//!
//! Each command argument is sent as one request line and the raw reply line
//! is printed to stdout. Exits non-zero if the connection fails or any
//! reply is an `ERR` line, so it doubles as a CI smoke probe.

use imin_engine::Client;
use std::io::BufRead;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!("usage: imin-cli HOST:PORT [\"COMMAND ...\" ...]");
        return ExitCode::FAILURE;
    };
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("imin-cli: cannot connect to {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0usize;
    let mut run = |client: &mut Client, line: &str| -> bool {
        match client.send_raw(line) {
            Ok(reply) => {
                println!("{reply}");
                if reply.starts_with("ERR") {
                    failures += 1;
                }
                !line.trim().eq_ignore_ascii_case("QUIT")
            }
            Err(err) => {
                eprintln!("imin-cli: {err}");
                failures += 1;
                false
            }
        }
    };

    if args.len() > 1 {
        for line in &args[1..] {
            if !run(&mut client, line) {
                break;
            }
        }
    } else {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if !run(&mut client, &line) {
                break;
            }
        }
    }

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
