//! `imin-serve` — the resident containment query server.
//!
//! ```text
//! imin-serve [--addr HOST:PORT] [--threads N] [--cache N]
//! ```
//!
//! Binds (default `127.0.0.1:7470`, port 0 for ephemeral), prints one
//! `LISTENING <addr>` line to stdout so scripts can discover the port, then
//! serves the line protocol forever. Drive it with `imin-cli` or any
//! line-oriented TCP client (`nc`, telnet).

use imin_engine::{Engine, Server};
use std::process::ExitCode;

const USAGE: &str = "usage: imin-serve [--addr HOST:PORT] [--threads N] [--cache N]";

/// Invalid arguments: usage on stderr, non-zero exit.
fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7470".to_string();
    let mut threads: Option<usize> = None;
    let mut cache: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = match arg.as_str() {
            // Requested help is not an error: stdout, exit 0.
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" | "--threads" | "--cache" => match args.next() {
                Some(v) => v,
                None => return usage(),
            },
            _ => return usage(),
        };
        match arg.as_str() {
            "--addr" => addr = value,
            "--threads" => match value.parse() {
                Ok(n) => threads = Some(n),
                Err(_) => return usage(),
            },
            "--cache" => match value.parse() {
                Ok(n) => cache = Some(n),
                Err(_) => return usage(),
            },
            _ => unreachable!(),
        }
    }

    let mut engine = Engine::new();
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }
    if let Some(cache) = cache {
        engine = engine.with_cache_capacity(cache);
    }
    let server = match Server::with_engine(&addr, engine) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("imin-serve: cannot bind {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(local) => println!("LISTENING {local}"),
        Err(err) => {
            eprintln!("imin-serve: {err}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(err) = server.run() {
        eprintln!("imin-serve: accept loop failed: {err}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
