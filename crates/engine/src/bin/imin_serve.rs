//! `imin-serve` — the resident containment query server.
//!
//! ```text
//! imin-serve [--addr HOST:PORT] [--threads N] [--query-threads N]
//!            [--cache N] [--max-inflight N]
//!            [--log text|json] [--slow-query-ms N] [--no-obs]
//! ```
//!
//! Binds (default `127.0.0.1:7470`, port 0 for ephemeral), prints one
//! `LISTENING <addr>` line to stdout so scripts can discover the port, then
//! serves the line protocol forever. Drive it with `imin-cli` or any
//! line-oriented TCP client (`nc`, telnet).
//!
//! Queries from different connections execute **concurrently** against the
//! shared resident pool; identical in-flight queries compute once.
//! `--threads` sets the pool-build worker count, `--query-threads` the
//! parallelism *inside* one query (default: same as `--threads`; under
//! many-client load `--query-threads 1` is usually right — cross-connection
//! parallelism already saturates the cores and answers are bit-identical
//! either way). `--max-inflight` bounds concurrently computing queries;
//! beyond it the server answers `ERR busy retry_after_ms=…` instead of
//! queueing unboundedly.
//!
//! Observability: `--log text|json` writes one structured access-log line
//! per request to stderr; requests at or above `--slow-query-ms`
//! (default 1000) additionally log their per-phase breakdown. `--no-obs`
//! disables phase spans and traces entirely (verb latency histograms and
//! the `METRICS` exposition stay on — they are effectively free).

use imin_engine::{AccessLog, LogFormat, Server, SharedEngine};
use std::process::ExitCode;

const USAGE: &str = "usage: imin-serve [--addr HOST:PORT] [--threads N] [--query-threads N] \
                     [--cache N] [--max-inflight N] [--log text|json] [--slow-query-ms N] \
                     [--no-obs]";

/// Invalid arguments: usage on stderr, non-zero exit.
fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7470".to_string();
    let mut threads: Option<usize> = None;
    let mut query_threads: Option<usize> = None;
    let mut cache: Option<usize> = None;
    let mut max_inflight: Option<usize> = None;
    let mut log_format: Option<LogFormat> = None;
    let mut slow_query_ms: u64 = 1_000;
    let mut observability = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = match arg.as_str() {
            // Requested help is not an error: stdout, exit 0.
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            // Valueless flags settle before the value pull below.
            "--no-obs" => {
                observability = false;
                continue;
            }
            "--addr" | "--threads" | "--query-threads" | "--cache" | "--max-inflight" | "--log"
            | "--slow-query-ms" => match args.next() {
                Some(v) => v,
                None => return usage(),
            },
            _ => return usage(),
        };
        let parse_into = |slot: &mut Option<usize>| match value.parse() {
            Ok(n) => {
                *slot = Some(n);
                true
            }
            Err(_) => false,
        };
        let ok = match arg.as_str() {
            "--addr" => {
                addr = value;
                true
            }
            "--threads" => parse_into(&mut threads),
            "--query-threads" => parse_into(&mut query_threads),
            "--cache" => parse_into(&mut cache),
            "--max-inflight" => parse_into(&mut max_inflight),
            "--log" => match value.parse::<LogFormat>() {
                Ok(format) => {
                    log_format = Some(format);
                    true
                }
                Err(_) => false,
            },
            "--slow-query-ms" => match value.parse() {
                Ok(ms) => {
                    slow_query_ms = ms;
                    true
                }
                Err(_) => false,
            },
            _ => unreachable!(),
        };
        if !ok {
            return usage();
        }
    }

    let mut engine = SharedEngine::new().with_observability(observability);
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }
    if let Some(query_threads) = query_threads {
        engine = engine.with_query_threads(query_threads);
    }
    if let Some(cache) = cache {
        engine = engine.with_cache_capacity(cache);
    }
    if let Some(max_inflight) = max_inflight {
        engine = engine.with_max_inflight(max_inflight);
    }
    let mut server = match Server::with_shared(&addr, engine) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("imin-serve: cannot bind {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(format) = log_format {
        server = server.with_access_log(AccessLog::to_stderr(format, slow_query_ms));
    }
    match server.local_addr() {
        Ok(local) => println!("LISTENING {local}"),
        Err(err) => {
            eprintln!("imin-serve: {err}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(err) = server.run() {
        eprintln!("imin-serve: accept loop failed: {err}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
