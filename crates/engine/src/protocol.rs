//! The newline-delimited text protocol spoken by `imin-serve`.
//!
//! Every request is one line; every reply is one line starting with `OK `
//! or `ERR `. Parse errors never drop the connection — the server answers
//! `ERR <reason>` and keeps reading. Verbs are case-insensitive. The one
//! multi-line exception is `METRICS`: its `OK lines=<n>` header announces
//! exactly `n` further lines of Prometheus text-format exposition, so
//! line-oriented clients know precisely how much to read.
//!
//! ```text
//! LOAD pa n=5000 m0=4 seed=7 model=wc        load a preferential-attachment graph
//! LOAD er n=500 p=0.01 seed=3 model=const:0.1  load an Erdős–Rényi graph
//! LOAD file /path/to/edges.txt model=wc      load an edge list from disk
//! POOL 10000 42                              make θ=10000 realisations (seed 42) resident
//! POOL 20000 42 backend=sketch               make θ_r=20000 reverse sketches resident
//! QUERY ic seeds=1,2,3 budget=10 alg=advanced  answer one containment question
//! QUERY ic seeds=1,2 budget=5 trace=1        same, with a per-phase trace in the reply
//! QUERY ic seeds=1 budget=5 intervene=edge   spend the budget on edge removals
//! QUERY ic seeds=1 budget=5 intervene=prebunk:0.25  prebunk vertices to accept with p*0.25
//! SAVE /var/lib/imin/wc50k.iminsnap          snapshot the graph + resident pool to disk
//! RESTORE /var/lib/imin/wc50k.iminsnap       warm-start from a snapshot file (bulk copy)
//! RESTORE /var/lib/imin/wc50k.iminsnap mode=map  warm-start zero-copy via mmap
//! COMPRESS                                   re-encode the resident pool in place
//! STATS                                      engine counters, pool facts and provenance
//! METRICS                                    Prometheus text exposition (multi-line reply)
//! PING                                       liveness probe
//! QUIT                                       close this connection
//! ```
//!
//! `POOL` is idempotent and incremental: when the resident pool already has
//! the requested `(θ, seed)` the request is a no-op (`source=resident`, the
//! result cache survives), and when it has the same seed but a smaller θ
//! the pool is grown in place (`source=extended`) — bit-identical to a
//! fresh θ build — so only genuinely different pools are resampled
//! (`source=built`). `POOL` additionally accepts `backend=forward|sketch`
//! (default `forward`): `backend=sketch` makes a pool of θ_r
//! reverse-reachable sketches resident instead, the estimator `ris-greedy`
//! queries run on. The two backends are independently resident — building
//! one never evicts the other — and the sketch reply carries `backend=sketch`
//! plus sketch facts (`members=`, `avg_size=`) so clients can tell them
//! apart. Sketch pools never extend in place: a changed `(θ_r, seed)`
//! always rebuilds (`source=built`). `SAVE`/`RESTORE` persist the *forward*
//! pool in the versioned
//! binary snapshot format of [`imin_core::snapshot`]; a restored engine
//! answers queries byte-identically to the engine that saved it. Both take
//! exactly one whitespace-free path argument; `RESTORE` additionally
//! accepts `mode=copy` (default: bulk-read the file into owned arenas) or
//! `mode=map` (serve sample data zero-copy out of a memory-mapped v2
//! snapshot — pages fault in lazily, so the first query is ready long
//! before a bulk read would finish). `COMPRESS` re-encodes the resident
//! pool into the delta-varint/bitset arena without touching the result
//! cache — compressed pools answer byte-identically. Sketch pools have no
//! snapshot format: `SAVE` while only a sketch pool is resident answers
//! `ERR backend unsupported: …`.
//!
//! `model=` accepts `wc` (weighted cascade), `tri` / `tri:<seed>`
//! (trivalency), `const:<p>`, and `keep` (use probabilities as loaded;
//! generator graphs carry the generator's uniform probability). The
//! `QUERY` model token must be `ic` — the resident pool stores IC
//! live-edge realisations. `alg=` accepts any name, label or alias of the
//! [`imin_core::AlgorithmKind`] registry (`advanced`/`ag`, `replace`/`gr`,
//! `outdegree`/`od`, `random`/`ra`, …); algorithms that cannot run against
//! a resident pool (`baseline`, `exact`) parse fine and answer with an
//! `ERR` explaining the unsupported backend.
//!
//! `intervene=` selects the intervention family the budget buys:
//! `vertex` (the default — block vertices, the paper's question), `edge`
//! (remove edges), or `prebunk:<alpha>` (prebunked vertices accept
//! incoming activations with probability scaled by `alpha ∈ [0, 1]`).
//! Edge replies carry `edges=u-v,…` instead of `blockers=`. Not every
//! algorithm×backend combination supports every family — `ris-greedy`
//! (and the sketch backend generally) answers vertex requests only — and
//! unsupported combinations answer a typed
//! `ERR intervention unsupported: …` naming the algorithm, backend and
//! family. `docs/protocol.md` tables the full support matrix.
//!
//! ## Serving under load
//!
//! Queries from different connections execute concurrently against the
//! shared pool (see [`crate::shared`]); the protocol surface grows two
//! things with that:
//!
//! * **`ERR busy retry_after_ms=<hint>`** — the admission budget
//!   (`max_inflight` concurrently *computing* queries) is exhausted. The
//!   request itself is fine; back off roughly `<hint>` milliseconds (the
//!   p95 of the server's compute-latency histogram — robust against a
//!   single pathological query, unlike a running mean) and resend. Cache
//!   hits and coalesced duplicates are never rejected.
//! * **`STATS` serving counters** — beyond the original fields, the reply
//!   carries `query_threads=` and `max_inflight=` (configuration),
//!   `inflight=` (gauge: queries computing right now), `coalesced=`
//!   (queries answered by waiting on an identical in-flight computation),
//!   `rejected=` (busy rejections), `computed=` (queries that actually
//!   consulted the pool; `queries = cache_hits + coalesced + rejected +
//!   computed + failed`), and per-verb latency sums `lat_load_us=`,
//!   `lat_pool_us=`, `lat_query_us=`, `lat_save_us=`, `lat_restore_us=`
//!   (each the sum of the corresponding `METRICS` latency histogram).
//!
//! ## Observability
//!
//! * **`QUERY … trace=1`** — the `OK` reply additionally carries
//!   `trace_id=<id>` (the engine-assigned request id, also written to the
//!   access log), `disposition=<computed|cache_hit|coalesced>`, and
//!   `phases=<name>:<µs>,…` — the per-phase wall-clock breakdown of the
//!   computation that produced the answer (`phases=none` when the server
//!   runs with `--no-obs`). Cache hits and coalesced answers report the
//!   breakdown of the original computation.
//! * **`METRICS`** — the full Prometheus text-format exposition: serving
//!   counters, resident graph/pool gauges, and latency histograms per
//!   verb, per algorithm and per query/snapshot phase. The reply is
//!   `OK lines=<n>` followed by exactly `n` exposition lines.
//!
//! `ERR internal: <reason>` reports a panicking request handler: the
//! engine recovers (no lock stays poisoned) and the connection stays open.

use crate::engine::{PoolBackend, Query, RestoreMode};
use imin_core::{AlgorithmKind, Intervention};
use imin_graph::VertexId;

/// Every verb the parser accepts, in documentation order. The normative
/// protocol reference (`docs/protocol.md`) must carry one section heading
/// per entry — a test enumerates this table against the doc.
pub const VERBS: &[&str] = &[
    "LOAD", "POOL", "QUERY", "SAVE", "RESTORE", "COMPRESS", "STATS", "METRICS", "PING", "QUIT",
];

/// Probability model applied to a freshly loaded topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ModelSpec {
    /// Weighted cascade: `p(u, v) = 1 / d_in(v)`.
    WeightedCascade,
    /// Trivalency: each edge uniformly picks 0.1 / 0.01 / 0.001.
    Trivalency {
        /// RNG seed for the per-edge draws.
        seed: u64,
    },
    /// Every edge gets the same probability.
    Constant(f64),
    /// Keep the probabilities the graph already carries.
    Keep,
}

/// What graph to load.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadSpec {
    /// `LOAD pa n=.. m0=.. [bidir=true|false] seed=.. model=..`
    PreferentialAttachment {
        /// Number of vertices.
        n: usize,
        /// Edges attached per arriving vertex.
        m0: usize,
        /// Whether each attachment adds both directions.
        bidirectional: bool,
        /// Generator seed.
        seed: u64,
        /// Probability model applied after generation.
        model: ModelSpec,
    },
    /// `LOAD er n=.. p=.. seed=.. model=..`
    ErdosRenyi {
        /// Number of vertices.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Generator seed.
        seed: u64,
        /// Probability model applied after generation.
        model: ModelSpec,
    },
    /// `LOAD file <path> model=..`
    File {
        /// Path to a whitespace-separated edge list.
        path: String,
        /// Probability model applied after loading.
        model: ModelSpec,
    },
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Load a graph, dropping any pool and cached results.
    Load(LoadSpec),
    /// Build the resident sample pool (forward realisations or reverse
    /// sketches, per `backend=`).
    Pool {
        /// Number of realisations θ (forward) or sketches θ_r (sketch).
        theta: usize,
        /// Base pool seed.
        seed: u64,
        /// Which estimator family to make resident (`backend=forward`,
        /// the default, or `backend=sketch`).
        backend: PoolBackend,
    },
    /// Answer one containment question.
    Query {
        /// The parsed question.
        query: Query,
        /// Whether the reply should carry a per-phase trace (`trace=1`).
        trace: bool,
    },
    /// Snapshot the loaded graph and resident pool to a file.
    Save {
        /// Destination path (single whitespace-free token).
        path: String,
    },
    /// Warm-start the engine from a snapshot file.
    Restore {
        /// Source path (single whitespace-free token).
        path: String,
        /// Bulk copy (default) or zero-copy mmap.
        mode: RestoreMode,
    },
    /// Re-encode the resident pool into the compressed arena.
    Compress,
    /// Report engine counters and pool facts.
    Stats,
    /// Emit the Prometheus text-format exposition (multi-line reply).
    Metrics,
    /// Liveness probe.
    Ping,
    /// Close the connection.
    Quit,
}

fn parse_kv(token: &str) -> Result<(&str, &str), String> {
    token
        .split_once('=')
        .ok_or_else(|| format!("expected key=value, got '{token}'"))
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value '{value}' for {key}"))
}

fn parse_model(value: &str) -> Result<ModelSpec, String> {
    let lower = value.to_ascii_lowercase();
    if lower == "wc" {
        return Ok(ModelSpec::WeightedCascade);
    }
    if lower == "keep" {
        return Ok(ModelSpec::Keep);
    }
    if lower == "tri" {
        return Ok(ModelSpec::Trivalency { seed: 0 });
    }
    if let Some(seed) = lower.strip_prefix("tri:") {
        return Ok(ModelSpec::Trivalency {
            seed: parse_num("tri seed", seed)?,
        });
    }
    if let Some(p) = lower.strip_prefix("const:") {
        return Ok(ModelSpec::Constant(parse_num("const probability", p)?));
    }
    Err(format!(
        "unknown model '{value}' (expected wc, tri[:seed], const:<p> or keep)"
    ))
}

fn parse_seeds(value: &str) -> Result<Vec<VertexId>, String> {
    if value.is_empty() {
        return Err("seeds= must list at least one vertex".into());
    }
    value
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .map(VertexId::from_raw)
                .map_err(|_| format!("invalid seed vertex '{tok}'"))
        })
        .collect()
}

/// Algorithm names resolve through the one [`AlgorithmKind`] registry —
/// the protocol has no name table of its own.
fn parse_algorithm(value: &str) -> Result<AlgorithmKind, String> {
    value
        .parse()
        .map_err(|err: imin_core::IminError| err.to_string())
}

fn parse_load(tokens: &[&str]) -> Result<LoadSpec, String> {
    let kind = tokens
        .first()
        .ok_or("LOAD requires a graph kind (pa, er or file)")?
        .to_ascii_lowercase();
    match kind.as_str() {
        "pa" | "er" => {
            let mut n: Option<usize> = None;
            let mut m0: Option<usize> = None;
            let mut p: Option<f64> = None;
            let mut bidirectional = true;
            let mut seed: u64 = 0;
            let mut model = ModelSpec::WeightedCascade;
            for token in &tokens[1..] {
                let (key, value) = parse_kv(token)?;
                match key.to_ascii_lowercase().as_str() {
                    "n" => n = Some(parse_num("n", value)?),
                    "m0" => m0 = Some(parse_num("m0", value)?),
                    "p" => p = Some(parse_num("p", value)?),
                    "bidir" => bidirectional = parse_num("bidir", value)?,
                    "seed" => seed = parse_num("seed", value)?,
                    "model" => model = parse_model(value)?,
                    other => return Err(format!("unknown LOAD argument '{other}'")),
                }
            }
            let n = n.ok_or("LOAD requires n=<vertices>")?;
            if kind == "pa" {
                Ok(LoadSpec::PreferentialAttachment {
                    n,
                    m0: m0.ok_or("LOAD pa requires m0=<edges per vertex>")?,
                    bidirectional,
                    seed,
                    model,
                })
            } else {
                Ok(LoadSpec::ErdosRenyi {
                    n,
                    p: p.ok_or("LOAD er requires p=<edge probability>")?,
                    seed,
                    model,
                })
            }
        }
        "file" => {
            let path = tokens
                .get(1)
                .ok_or("LOAD file requires a path")?
                .to_string();
            let mut model = ModelSpec::Keep;
            for token in &tokens[2..] {
                let (key, value) = parse_kv(token)?;
                match key.to_ascii_lowercase().as_str() {
                    "model" => model = parse_model(value)?,
                    other => return Err(format!("unknown LOAD argument '{other}'")),
                }
            }
            Ok(LoadSpec::File { path, model })
        }
        other => Err(format!(
            "unknown graph kind '{other}' (expected pa, er or file)"
        )),
    }
}

fn parse_query(tokens: &[&str]) -> Result<(Query, bool), String> {
    let model = tokens
        .first()
        .ok_or("QUERY requires a diffusion model token (ic)")?;
    if !model.eq_ignore_ascii_case("ic") {
        return Err(format!(
            "unsupported diffusion model '{model}': the resident pool stores IC live-edge samples"
        ));
    }
    let mut seeds: Option<Vec<VertexId>> = None;
    let mut budget: Option<usize> = None;
    let mut algorithm = AlgorithmKind::AdvancedGreedy;
    let mut intervention = Intervention::BlockVertices;
    let mut trace = false;
    for token in &tokens[1..] {
        let (key, value) = parse_kv(token)?;
        match key.to_ascii_lowercase().as_str() {
            "seeds" => seeds = Some(parse_seeds(value)?),
            "budget" => budget = Some(parse_num("budget", value)?),
            "alg" => algorithm = parse_algorithm(value)?,
            "intervene" => {
                intervention = value
                    .parse::<Intervention>()
                    .map_err(|err: imin_core::IminError| err.to_string())?
            }
            "trace" => {
                trace = match value.to_ascii_lowercase().as_str() {
                    "1" | "true" => true,
                    "0" | "false" => false,
                    other => {
                        return Err(format!(
                            "invalid trace value '{other}' (expected 0, 1, true or false)"
                        ))
                    }
                }
            }
            other => return Err(format!("unknown QUERY argument '{other}'")),
        }
    }
    let query = Query {
        seeds: seeds.ok_or("QUERY requires seeds=<v1,v2,...>")?,
        budget: budget.ok_or("QUERY requires budget=<b>")?,
        algorithm,
        intervention,
    };
    Ok((query, trace))
}

/// Parses one request line.
///
/// # Errors
/// Returns the human-readable reason to send back as `ERR <reason>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let verb = tokens.first().ok_or("empty request")?.to_ascii_uppercase();
    match verb.as_str() {
        "LOAD" => Ok(Request::Load(parse_load(&tokens[1..])?)),
        "POOL" => {
            let theta = tokens.get(1).ok_or("POOL requires <theta> <seed>")?;
            let seed = tokens.get(2).ok_or("POOL requires <theta> <seed>")?;
            let mut backend = PoolBackend::Forward;
            for token in &tokens[3..] {
                let (key, value) = parse_kv(token).map_err(|_| {
                    "POOL takes <theta> <seed> plus an optional backend=forward|sketch".to_string()
                })?;
                match key.to_ascii_lowercase().as_str() {
                    "backend" => {
                        backend = PoolBackend::parse(value).ok_or_else(|| {
                            format!("unknown POOL backend '{value}' (expected forward or sketch)")
                        })?
                    }
                    other => return Err(format!("unknown POOL argument '{other}'")),
                }
            }
            Ok(Request::Pool {
                theta: parse_num("theta", theta)?,
                seed: parse_num("seed", seed)?,
                backend,
            })
        }
        "QUERY" => {
            let (query, trace) = parse_query(&tokens[1..])?;
            Ok(Request::Query { query, trace })
        }
        "SAVE" | "RESTORE" => {
            let path = tokens
                .get(1)
                .ok_or_else(|| format!("{verb} requires a snapshot path"))?;
            let path = path.to_string();
            if verb == "SAVE" {
                if tokens.len() > 2 {
                    return Err(
                        "SAVE takes exactly one path (whitespace in paths is not supported)".into(),
                    );
                }
                return Ok(Request::Save { path });
            }
            let mut mode = RestoreMode::Copy;
            for token in &tokens[2..] {
                let (key, value) = parse_kv(token).map_err(|_| {
                    "RESTORE takes exactly one path (whitespace in paths is not supported) \
                     plus an optional mode=copy|map"
                        .to_string()
                })?;
                match key.to_ascii_lowercase().as_str() {
                    "mode" => {
                        mode = match value.to_ascii_lowercase().as_str() {
                            "copy" => RestoreMode::Copy,
                            "map" => RestoreMode::Map,
                            other => {
                                return Err(format!(
                                    "unknown RESTORE mode '{other}' (expected copy or map)"
                                ))
                            }
                        }
                    }
                    other => return Err(format!("unknown RESTORE argument '{other}'")),
                }
            }
            Ok(Request::Restore { path, mode })
        }
        "COMPRESS" => {
            if tokens.len() > 1 {
                return Err("COMPRESS takes no arguments".into());
            }
            Ok(Request::Compress)
        }
        "STATS" => Ok(Request::Stats),
        "METRICS" => {
            if tokens.len() > 1 {
                return Err("METRICS takes no arguments".into());
            }
            Ok(Request::Metrics)
        }
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Splits a reply line into `Ok(payload)` for `OK …` or `Err(reason)` for
/// `ERR …`; anything else is an error about the malformed reply itself.
pub fn parse_reply(line: &str) -> Result<String, String> {
    if let Some(payload) = line.strip_prefix("OK") {
        return Ok(payload.trim_start().to_string());
    }
    if let Some(reason) = line.strip_prefix("ERR") {
        return Err(reason.trim_start().to_string());
    }
    Err(format!("malformed reply line: '{line}'"))
}

/// Extracts `key=value` fields of an `OK` payload into pairs, in order.
pub fn payload_fields(payload: &str) -> Vec<(String, String)> {
    payload
        .split_whitespace()
        .filter_map(|tok| {
            tok.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

/// Looks up one field of an `OK` payload.
pub fn payload_field(payload: &str, key: &str) -> Option<String> {
    payload_fields(payload)
        .into_iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_forms() {
        let req = parse_request("LOAD pa n=5000 m0=4 seed=7 model=wc").unwrap();
        assert_eq!(
            req,
            Request::Load(LoadSpec::PreferentialAttachment {
                n: 5000,
                m0: 4,
                bidirectional: true,
                seed: 7,
                model: ModelSpec::WeightedCascade,
            })
        );
        let req = parse_request("load er n=500 p=0.01 seed=3 model=const:0.1").unwrap();
        assert_eq!(
            req,
            Request::Load(LoadSpec::ErdosRenyi {
                n: 500,
                p: 0.01,
                seed: 3,
                model: ModelSpec::Constant(0.1),
            })
        );
        let req = parse_request("LOAD file /tmp/x.txt model=tri:9").unwrap();
        assert_eq!(
            req,
            Request::Load(LoadSpec::File {
                path: "/tmp/x.txt".into(),
                model: ModelSpec::Trivalency { seed: 9 },
            })
        );
        assert_eq!(
            parse_request("POOL 10000 42").unwrap(),
            Request::Pool {
                theta: 10000,
                seed: 42,
                backend: PoolBackend::Forward,
            }
        );
        assert_eq!(
            parse_request("POOL 20000 42 backend=sketch").unwrap(),
            Request::Pool {
                theta: 20000,
                seed: 42,
                backend: PoolBackend::Sketch,
            }
        );
        assert_eq!(
            parse_request("pool 100 1 BACKEND=Forward").unwrap(),
            Request::Pool {
                theta: 100,
                seed: 1,
                backend: PoolBackend::Forward,
            }
        );
        let req = parse_request("QUERY ic seeds=1,2,3 budget=10 alg=replace").unwrap();
        let Request::Query { query: q, trace } = req else {
            panic!("expected a query")
        };
        assert_eq!(q.seeds.len(), 3);
        assert_eq!(q.budget, 10);
        assert_eq!(q.algorithm, AlgorithmKind::GreedyReplace);
        assert!(!trace, "trace defaults to off");
        // Any registry spelling is accepted — one dispatch table for all.
        let req = parse_request("QUERY ic seeds=4 budget=2 alg=od trace=1").unwrap();
        let Request::Query { query: q, trace } = req else {
            panic!("expected a query")
        };
        assert_eq!(q.algorithm, AlgorithmKind::OutDegree);
        assert!(trace);
        let req = parse_request("QUERY ic seeds=4 budget=2 trace=false").unwrap();
        assert!(matches!(req, Request::Query { trace: false, .. }));
        // The intervention family defaults to vertex blocking and accepts
        // the three documented spellings.
        let Request::Query { query: q, .. } = parse_request("QUERY ic seeds=4 budget=2").unwrap()
        else {
            panic!("expected a query")
        };
        assert_eq!(q.intervention, imin_core::Intervention::BlockVertices);
        let Request::Query { query: q, .. } =
            parse_request("QUERY ic seeds=4 budget=2 intervene=edge").unwrap()
        else {
            panic!("expected a query")
        };
        assert_eq!(q.intervention, imin_core::Intervention::BlockEdges);
        let Request::Query { query: q, .. } =
            parse_request("QUERY ic seeds=4 budget=2 INTERVENE=prebunk:0.25").unwrap()
        else {
            panic!("expected a query")
        };
        assert_eq!(
            q.intervention,
            imin_core::Intervention::Prebunk { alpha: 0.25 }
        );
        assert_eq!(
            parse_request("SAVE /tmp/pool.iminsnap").unwrap(),
            Request::Save {
                path: "/tmp/pool.iminsnap".into()
            }
        );
        assert_eq!(
            parse_request("restore /tmp/pool.iminsnap").unwrap(),
            Request::Restore {
                path: "/tmp/pool.iminsnap".into(),
                mode: RestoreMode::Copy,
            }
        );
        assert_eq!(
            parse_request("RESTORE /tmp/pool.iminsnap mode=map").unwrap(),
            Request::Restore {
                path: "/tmp/pool.iminsnap".into(),
                mode: RestoreMode::Map,
            }
        );
        assert_eq!(
            parse_request("restore /tmp/pool.iminsnap MODE=COPY").unwrap(),
            Request::Restore {
                path: "/tmp/pool.iminsnap".into(),
                mode: RestoreMode::Copy,
            }
        );
        assert_eq!(parse_request("compress").unwrap(), Request::Compress);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("metrics").unwrap(), Request::Metrics);
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("", "empty"),
            ("FROB", "unknown command"),
            ("LOAD", "graph kind"),
            ("LOAD pa m0=4", "requires n="),
            ("LOAD pa n=10", "m0="),
            ("LOAD er n=10", "p="),
            ("LOAD pa n=ten m0=4", "invalid value"),
            ("LOAD pa n=10 m0=4 model=quantum", "unknown model"),
            ("LOAD pa n=10 m0=4 frob=1", "unknown LOAD argument"),
            ("POOL", "requires"),
            ("POOL 10", "requires"),
            ("POOL 10 1 2", "backend=forward|sketch"),
            ("POOL 10 1 backend=quantum", "unknown POOL backend"),
            ("POOL 10 1 frob=2", "unknown POOL argument"),
            ("QUERY", "model token"),
            ("QUERY lt seeds=1 budget=1", "unsupported diffusion model"),
            ("QUERY ic budget=1", "seeds="),
            ("QUERY ic seeds=1", "budget="),
            ("QUERY ic seeds= budget=1", "at least one"),
            ("QUERY ic seeds=1,x budget=1", "invalid seed"),
            ("QUERY ic seeds=1 budget=1 alg=magic", "unknown algorithm"),
            ("QUERY ic seeds=1 budget=1 frob=2", "unknown QUERY argument"),
            (
                "QUERY ic seeds=1 budget=1 trace=maybe",
                "invalid trace value",
            ),
            (
                "QUERY ic seeds=1 budget=1 intervene=quantum",
                "invalid intervention",
            ),
            (
                "QUERY ic seeds=1 budget=1 intervene=prebunk:1.5",
                "invalid intervention",
            ),
            (
                "QUERY ic seeds=1 budget=1 intervene=prebunk:",
                "invalid intervention",
            ),
            ("METRICS now", "no arguments"),
            ("SAVE", "requires a snapshot path"),
            ("RESTORE", "requires a snapshot path"),
            ("SAVE /a/b /c/d", "exactly one path"),
            ("RESTORE a b", "exactly one path"),
            ("RESTORE a mode=zerocopy", "unknown RESTORE mode"),
            ("RESTORE a frob=1", "unknown RESTORE argument"),
            ("COMPRESS now", "no arguments"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(
                err.contains(needle),
                "'{line}' should mention '{needle}', got '{err}'"
            );
        }
    }

    #[test]
    fn reply_parsing_and_payload_fields() {
        assert_eq!(parse_reply("OK pong").unwrap(), "pong");
        assert_eq!(parse_reply("OK").unwrap(), "");
        assert_eq!(parse_reply("ERR nope").unwrap_err(), "nope");
        assert!(parse_reply("banana").unwrap_err().contains("malformed"));
        let payload = "blockers=1,2 spread=3.5 cached=false";
        assert_eq!(payload_field(payload, "spread").as_deref(), Some("3.5"));
        assert_eq!(payload_field(payload, "missing"), None);
        assert_eq!(payload_fields(payload).len(), 3);
    }
}
