//! Error type for the resident engine.

use std::fmt;

/// Errors produced by the engine, the protocol layer and the server.
#[derive(Debug)]
pub enum EngineError {
    /// A query or pool build was issued before a graph was loaded.
    NoGraph,
    /// A query was issued before a sample pool was built.
    NoPool,
    /// A `ris-greedy` query was issued before a sketch pool was built.
    NoSketchPool,
    /// The requested operation is not defined for the resident pool's
    /// backend — e.g. `SAVE` while a sketch pool is resident (snapshot
    /// format v2 only describes forward sample arenas). The payload says
    /// which operation and which backend.
    BackendUnsupported {
        /// The protocol operation that was refused.
        operation: &'static str,
        /// The resident backend it cannot run on.
        backend: &'static str,
    },
    /// A protocol line could not be parsed; the payload is the reason sent
    /// back on the `ERR` line.
    Protocol(String),
    /// The concurrent-query admission budget is exhausted: the server is
    /// already computing its maximum number of in-flight queries. The
    /// client should back off for roughly `retry_after_ms` milliseconds
    /// (the server's running average compute latency) and retry — nothing
    /// about the request itself is wrong.
    Busy {
        /// Suggested client backoff in milliseconds before retrying.
        retry_after_ms: u64,
    },
    /// A request handler panicked; the engine recovered (no lock stays
    /// poisoned, resident state is unchanged) and the connection survives.
    /// The payload is the panic message.
    Internal(String),
    /// An error bubbled up from the algorithm layer.
    Core(imin_core::IminError),
    /// An error bubbled up from the graph layer (generators, edge lists).
    Graph(imin_graph::GraphError),
    /// An error bubbled up from the diffusion layer (probability models).
    Diffusion(imin_diffusion::DiffusionError),
    /// A socket or file I/O error.
    Io(std::io::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoGraph => write!(f, "no graph loaded (send LOAD first)"),
            EngineError::NoPool => write!(f, "no sample pool built (send POOL first)"),
            EngineError::NoSketchPool => write!(
                f,
                "no sketch pool built (send POOL <theta_r> <seed> backend=sketch first)"
            ),
            EngineError::BackendUnsupported { operation, backend } => write!(
                f,
                "backend unsupported: {operation} is not defined for the {backend} backend \
                 (see docs/protocol.md for the per-backend operation matrix)"
            ),
            EngineError::Protocol(reason) => write!(f, "{reason}"),
            EngineError::Busy { retry_after_ms } => {
                write!(f, "busy retry_after_ms={retry_after_ms}")
            }
            EngineError::Internal(reason) => write!(f, "internal: {reason}"),
            EngineError::Core(err) => write!(f, "{err}"),
            EngineError::Graph(err) => write!(f, "{err}"),
            EngineError::Diffusion(err) => write!(f, "{err}"),
            EngineError::Io(err) => write!(f, "io error: {err}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(err) => Some(err),
            EngineError::Graph(err) => Some(err),
            EngineError::Diffusion(err) => Some(err),
            EngineError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<imin_core::IminError> for EngineError {
    fn from(err: imin_core::IminError) -> Self {
        EngineError::Core(err)
    }
}

impl From<imin_graph::GraphError> for EngineError {
    fn from(err: imin_graph::GraphError) -> Self {
        EngineError::Graph(err)
    }
}

impl From<imin_diffusion::DiffusionError> for EngineError {
    fn from(err: imin_diffusion::DiffusionError) -> Self {
        EngineError::Diffusion(err)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(err: std::io::Error) -> Self {
        EngineError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(EngineError::NoGraph.to_string().contains("LOAD"));
        assert!(EngineError::NoPool.to_string().contains("POOL"));
        assert!(EngineError::NoSketchPool
            .to_string()
            .contains("backend=sketch"));
        let unsupported = EngineError::BackendUnsupported {
            operation: "SAVE",
            backend: "sketch",
        };
        assert!(
            unsupported.to_string().starts_with("backend unsupported"),
            "the wire reply must start with 'ERR backend unsupported': {unsupported}"
        );
        assert!(
            unsupported.to_string().contains("docs/protocol.md"),
            "the refusal must point operators at the protocol reference: {unsupported}"
        );
        let p = EngineError::Protocol("bad token".into());
        assert_eq!(p.to_string(), "bad token");
        let busy = EngineError::Busy { retry_after_ms: 42 };
        assert_eq!(busy.to_string(), "busy retry_after_ms=42");
        let internal = EngineError::Internal("handler panicked".into());
        assert!(internal.to_string().starts_with("internal:"));
        let c: EngineError = imin_core::IminError::ZeroBudget.into();
        assert!(std::error::Error::source(&c).is_some());
        let io: EngineError = std::io::Error::other("x").into();
        assert!(io.to_string().contains("io error"));
    }
}
