//! Error type for the resident engine.

use std::fmt;

/// Errors produced by the engine, the protocol layer and the server.
#[derive(Debug)]
pub enum EngineError {
    /// A query or pool build was issued before a graph was loaded.
    NoGraph,
    /// A query was issued before a sample pool was built.
    NoPool,
    /// A protocol line could not be parsed; the payload is the reason sent
    /// back on the `ERR` line.
    Protocol(String),
    /// An error bubbled up from the algorithm layer.
    Core(imin_core::IminError),
    /// An error bubbled up from the graph layer (generators, edge lists).
    Graph(imin_graph::GraphError),
    /// An error bubbled up from the diffusion layer (probability models).
    Diffusion(imin_diffusion::DiffusionError),
    /// A socket or file I/O error.
    Io(std::io::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoGraph => write!(f, "no graph loaded (send LOAD first)"),
            EngineError::NoPool => write!(f, "no sample pool built (send POOL first)"),
            EngineError::Protocol(reason) => write!(f, "{reason}"),
            EngineError::Core(err) => write!(f, "{err}"),
            EngineError::Graph(err) => write!(f, "{err}"),
            EngineError::Diffusion(err) => write!(f, "{err}"),
            EngineError::Io(err) => write!(f, "io error: {err}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(err) => Some(err),
            EngineError::Graph(err) => Some(err),
            EngineError::Diffusion(err) => Some(err),
            EngineError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<imin_core::IminError> for EngineError {
    fn from(err: imin_core::IminError) -> Self {
        EngineError::Core(err)
    }
}

impl From<imin_graph::GraphError> for EngineError {
    fn from(err: imin_graph::GraphError) -> Self {
        EngineError::Graph(err)
    }
}

impl From<imin_diffusion::DiffusionError> for EngineError {
    fn from(err: imin_diffusion::DiffusionError) -> Self {
        EngineError::Diffusion(err)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(err: std::io::Error) -> Self {
        EngineError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(EngineError::NoGraph.to_string().contains("LOAD"));
        assert!(EngineError::NoPool.to_string().contains("POOL"));
        let p = EngineError::Protocol("bad token".into());
        assert_eq!(p.to_string(), "bad token");
        let c: EngineError = imin_core::IminError::ZeroBudget.into();
        assert!(std::error::Error::source(&c).is_some());
        let io: EngineError = std::io::Error::other("x").into();
        assert!(io.to_string().contains("io error"));
    }
}
