//! # imin-graph
//!
//! Directed-graph substrate for the vertex-blocking influence-minimization
//! workspace, a from-scratch Rust reproduction of *"Minimizing the Influence
//! of Misinformation via Vertex Blocking"* (ICDE 2023).
//!
//! The crate provides:
//!
//! * [`DiGraph`] — a compressed-sparse-row (CSR) directed graph with a
//!   propagation probability attached to every edge, the representation used
//!   by every algorithm in the paper (§III, Table I).
//! * [`GraphBuilder`] — an edge-list accumulator that merges parallel edges
//!   with the noisy-or rule used by the paper's multi-seed reduction
//!   (`1 - Π(1 - p_i)`), removes self loops on request and produces a
//!   [`DiGraph`].
//! * [`generators`] — random and structured graph generators (Erdős–Rényi,
//!   preferential attachment, power-law configuration model, small world,
//!   stars/paths/trees/DAGs) used by the dataset stand-ins and the property
//!   tests.
//! * [`edgelist`] — SNAP-style edge-list reading and writing so that the real
//!   datasets of Table IV can be plugged in when available.
//! * [`traversal`] — BFS/DFS reachability with optional *blocked-vertex*
//!   masks, the primitive behind spread computation under vertex blocking
//!   (Definition 2).
//! * [`stats`] — the per-dataset statistics reported in Table IV
//!   (n, m, average degree, maximum degree).
//! * [`binfmt`] — raw little-endian binary (de)serialisation of the CSR
//!   arenas plus a structural [`DiGraph::fingerprint`], the graph half of
//!   the core crate's pool-snapshot format.
//!
//! The graph is deliberately simple and cache friendly: vertices are dense
//! `u32` identifiers wrapped in [`VertexId`], out- and in-adjacency are both
//! materialised as CSR arrays with parallel probability arrays, and all
//! algorithmic state (blocked masks, visit stamps) lives in flat vectors owned
//! by the caller.
//!
//! ```
//! use imin_graph::{GraphBuilder, VertexId};
//!
//! // A small directed graph with propagation probabilities.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(VertexId::new(0), VertexId::new(1), 1.0).unwrap();
//! b.add_edge(VertexId::new(1), VertexId::new(2), 0.5).unwrap();
//! b.add_edge(VertexId::new(0), VertexId::new(3), 0.1).unwrap();
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_degree(VertexId::new(0)), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod builder;
pub mod csr;
pub mod edgelist;
pub mod error;
pub mod generators;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod vertex;

pub use builder::GraphBuilder;
pub use csr::{coin_threshold, DiGraph, EdgeRef, THRESHOLD_ALWAYS};
pub use error::GraphError;
pub use stats::GraphStats;
pub use subgraph::{InducedSubgraph, VertexMask};
pub use vertex::VertexId;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
